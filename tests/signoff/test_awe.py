"""RC-tree moments and two-pole AWE delay."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.signoff.awe import (
    RCTree,
    elmore_delay,
    rc_tree_moments,
    tree_delay,
    two_pole_delay,
)
from repro.spice import Circuit, simulate_transient, step


class TestRCTreeConstruction:
    def test_chain_builder(self):
        tree = RCTree.chain([100.0, 200.0], [1e-15, 2e-15])
        assert tree.size == 3
        assert tree.parents == [-1, 0, 1]

    def test_add_node_validation(self):
        tree = RCTree()
        with pytest.raises(ValueError):
            tree.add_node(5, 100.0, 1e-15)
        with pytest.raises(ValueError):
            tree.add_node(0, -1.0, 1e-15)
        with pytest.raises(ValueError):
            tree.add_node(0, 1.0, -1e-15)

    def test_add_cap(self):
        tree = RCTree.chain([100.0], [1e-15])
        tree.add_cap(1, 2e-15)
        assert tree.capacitances[1] == pytest.approx(3e-15)

    def test_chain_length_mismatch(self):
        with pytest.raises(ValueError):
            RCTree.chain([1.0, 2.0], [1e-15])


class TestMoments:
    def test_single_lump_elmore(self):
        # One R into one C: m1 = RC.
        tree = RCTree.chain([1000.0], [100e-15])
        assert elmore_delay(tree, 1) == pytest.approx(1000.0 * 100e-15)

    def test_driver_resistance_adds(self):
        tree = RCTree.chain([1000.0], [100e-15])
        with_driver = elmore_delay(tree, 1, driver_resistance=500.0)
        assert with_driver == pytest.approx(1500.0 * 100e-15)

    def test_chain_elmore_formula(self):
        # Two lumps: m1(2) = R1*(C1+C2) + R2*C2.
        r1, r2 = 100.0, 200.0
        c1, c2 = 10e-15, 20e-15
        tree = RCTree.chain([r1, r2], [c1, c2])
        expected = r1 * (c1 + c2) + r2 * c2
        assert elmore_delay(tree, 2) == pytest.approx(expected)

    def test_branching_tree_shared_resistance(self):
        # Root -> trunk -> two branches: the off-path branch cap only
        # sees the shared trunk resistance.
        tree = RCTree()
        trunk = tree.add_node(0, 100.0, 0.0)
        left = tree.add_node(trunk, 50.0, 10e-15)
        right = tree.add_node(trunk, 75.0, 20e-15)
        m1, _ = rc_tree_moments(tree)
        expected_left = 100.0 * (10e-15 + 20e-15) + 50.0 * 10e-15
        assert m1[left] == pytest.approx(expected_left)
        expected_right = 100.0 * (10e-15 + 20e-15) + 75.0 * 20e-15
        assert m1[right] == pytest.approx(expected_right)

    def test_second_moment_positive(self):
        tree = RCTree.chain([100.0] * 5, [10e-15] * 5)
        m1, m2 = rc_tree_moments(tree)
        assert all(v > 0 for v in m1[1:])
        assert all(v > 0 for v in m2[1:])


class TestTwoPoleDelay:
    def test_single_pole_limit(self):
        # For a single-pole system m2 = m1^2 and delay = ln(2) m1.
        m1 = 1e-10
        assert two_pole_delay(m1, m1 * m1) == pytest.approx(
            math.log(2.0) * m1, rel=1e-6)

    def test_zero_moment(self):
        assert two_pole_delay(0.0, 0.0) == 0.0

    def test_distributed_line_delay_near_0p38_elmore(self):
        # A long RC chain's 50% delay is ~0.76 of its Elmore value
        # (0.38 RC vs 0.5 RC).
        n = 40
        tree = RCTree.chain([10.0] * n, [1e-15] * n)
        m1, m2 = rc_tree_moments(tree)
        delay = two_pole_delay(float(m1[n]), float(m2[n]))
        assert delay == pytest.approx(0.76 * m1[n], rel=0.1)


class TestDegenerateTreeRegression:
    """One R driving one C has m2 = m1^2 exactly — the one-pole limit.

    The two-pole fit must not engage there (its b2 coefficient is zero,
    so the pole formula divides by zero); the single-pole branch has to
    catch the ratio-==-1 case."""

    def test_single_segment_tree_is_exactly_single_pole(self):
        tree = RCTree.chain([150.0], [2e-15])
        m1, m2 = rc_tree_moments(tree)
        assert m2[1] == pytest.approx(m1[1] ** 2, rel=1e-12)
        delay = tree_delay(tree, 1)
        assert math.isfinite(delay)
        assert delay == pytest.approx(math.log(2.0) * m1[1], rel=1e-12)

    def test_single_segment_with_driver_resistance(self):
        tree = RCTree.chain([150.0], [2e-15])
        delay = tree_delay(tree, 1, driver_resistance=500.0)
        assert math.isfinite(delay)
        assert delay == pytest.approx(math.log(2.0) * 650.0 * 2e-15,
                                      rel=1e-12)

    def test_two_segment_ladder_exact_two_pole_value(self):
        """R1=R2, C1=C2: moments (3RC, 8R^2C^2), ratio 8/9, so the
        two-pole branch engages; its 50% point is 2.224919... RC
        (independently computed), not the single-pole ln(2)*3RC."""
        r, c = 100.0, 1e-15
        tree = RCTree.chain([r, r], [c, c])
        m1, m2 = rc_tree_moments(tree)
        assert m1[2] == pytest.approx(3 * r * c, rel=1e-12)
        assert m2[2] == pytest.approx(8 * (r * c) ** 2, rel=1e-12)
        delay = tree_delay(tree, 2)
        assert delay == pytest.approx(2.22491916272872 * r * c,
                                      rel=1e-9)
        single_pole = math.log(2.0) * m1[2]
        assert abs(delay - single_pole) > 0.01 * single_pole

    def test_all_chain_lengths_finite(self):
        for segments in range(1, 6):
            tree = RCTree.chain([100.0] * segments, [1e-15] * segments)
            delay = tree_delay(tree, segments)
            assert math.isfinite(delay) and delay > 0


class TestAgainstSimulator:
    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=2, max_value=8),
           st.floats(min_value=100.0, max_value=2000.0),
           st.floats(min_value=5e-15, max_value=100e-15))
    def test_two_pole_matches_transient(self, segments, r_total, c_total):
        # Mirror the simulator's pi-ladder exactly: C/n at internal
        # nodes, C/2n at the far end (the source-side C/2n is driven).
        caps = [c_total / segments] * (segments - 1) \
            + [c_total / (2 * segments)]
        tree = RCTree.chain([r_total / segments] * segments, caps)
        predicted = tree_delay(tree, segments)

        circuit = Circuit()
        t0 = 0.05 * r_total * c_total + 1e-12
        circuit.add_voltage_source("in", step(1.0, at=t0))
        circuit.add_rc_ladder("in", "out", r_total, c_total,
                              segments=segments)
        sim = simulate_transient(circuit, t0 + 6 * r_total * c_total,
                                 record=["out"])
        measured = sim.waveform("out").crossing_time(0.5) - t0
        assert predicted == pytest.approx(measured, rel=0.12)
