"""Variance-reduction estimator validation.

Three layers of assurance, mirroring what each estimator actually
promises:

* **Statistical correctness** — every estimator's output is an
  unbiased estimate of the brute-force ``yield_reference`` truth,
  checked by :func:`tests.signoff.statistical.assert_unbiased`
  (repeated independent replications, two-sided z-test at
  ``alpha = 0.01``).  Importance sampling is validated on the tail
  probability it exists to resolve; the self-normalized variant on the
  mean under the mild shift where its O(1/N) bias is negligible.
* **Determinism** — bit-identical sample vectors for any ``workers``
  count, and for repeated runs of the same seed.
* **Structure** — report bookkeeping (ESS bounds, lane layout,
  evaluation accounting, metrics counters), ``target_ci`` escalation,
  and the argument-validation ordering regression.
"""

import dataclasses

import numpy as np
import pytest

from repro.runtime import METRICS
from repro.signoff.estimators import CI_Z, ESTIMATORS
from repro.signoff.variation import MAX_TARGET_ROUNDS, \
    monte_carlo_line_delay
from repro.units import ps
from tests.signoff.statistical import assert_unbiased, stat_reps

#: Draws per replication in the unbiasedness tests (count).
DRAWS = 256

#: Default replications per unbiasedness assertion (count; the CI
#: smoke job caps this via REPRO_STAT_REPS).
REPS = 24


def run_kernel(line, model, seed, estimator, samples=DRAWS, **kwargs):
    """One kernel-engine estimator run on the reference line."""
    return monte_carlo_line_delay(line, ps(100), samples=samples,
                                  seed=seed, workers=1,
                                  engine="kernel", model=model,
                                  estimator=estimator, **kwargs)


# ---------------------------------------------------------------------------
# Argument validation ordering (regression)
# ---------------------------------------------------------------------------

class TestValidationOrder:
    """A typo'd name must be reported as a typo'd name, even when the
    line geometry or the missing model would *also* be invalid."""

    @pytest.fixture()
    def nonuniform_line(self, estimator_line):
        stages = list(estimator_line.stages)
        stages[-1] = dataclasses.replace(stages[-1], driver_size=8.0)
        return dataclasses.replace(estimator_line,
                                   stages=tuple(stages))

    def test_bad_estimator_on_nonuniform_line_names_the_estimator(
            self, nonuniform_line):
        with pytest.raises(ValueError, match="unknown estimator "
                                             "'importnace'"):
            monte_carlo_line_delay(nonuniform_line, ps(100),
                                   samples=4, engine="kernel",
                                   estimator="importnace")

    def test_bad_engine_on_nonuniform_line_names_the_engine(
            self, nonuniform_line):
        with pytest.raises(ValueError, match="unknown engine"):
            monte_carlo_line_delay(nonuniform_line, ps(100),
                                   samples=4, engine="goldenn")

    def test_model_backed_estimator_requires_model_on_golden(
            self, estimator_line):
        with pytest.raises(ValueError, match="model-backed"):
            monte_carlo_line_delay(estimator_line, ps(100), samples=4,
                                   engine="golden",
                                   estimator="importance")

    def test_lanes_validated(self, estimator_line, suite90):
        with pytest.raises(ValueError, match="lanes"):
            run_kernel(estimator_line, suite90.proposed, 1, "qmc",
                       samples=4, lanes=0)

    def test_prepass_validated(self, estimator_line, suite90):
        with pytest.raises(ValueError, match="prepass_samples"):
            run_kernel(estimator_line, suite90.proposed, 1,
                       "importance", samples=4, prepass_samples=1)

    def test_target_ci_validated(self, estimator_line, suite90):
        with pytest.raises(ValueError, match="target_ci"):
            run_kernel(estimator_line, suite90.proposed, 1, "plain",
                       samples=4, target_ci=0.0)


# ---------------------------------------------------------------------------
# Unbiasedness against the million-draw reference
# ---------------------------------------------------------------------------

class TestUnbiasedness:
    """z-tests at alpha = 0.01 against ``yield_reference``."""

    def test_plain_mean_unbiased(self, estimator_line, suite90,
                                 yield_reference):
        assert_unbiased(
            lambda seed: run_kernel(estimator_line, suite90.proposed,
                                    seed, "plain").mean,
            yield_reference.mean, n_reps=stat_reps(REPS),
            truth_se=yield_reference.mean_se, label="plain mean")

    def test_qmc_mean_unbiased(self, estimator_line, suite90,
                               yield_reference):
        assert_unbiased(
            lambda seed: run_kernel(estimator_line, suite90.proposed,
                                    seed, "qmc").mean,
            yield_reference.mean, n_reps=stat_reps(REPS),
            truth_se=yield_reference.mean_se, label="qmc mean")

    def test_control_variate_mean_unbiased(self, estimator_line,
                                           suite90, yield_reference):
        assert_unbiased(
            lambda seed: run_kernel(estimator_line, suite90.proposed,
                                    seed, "control-variate").mean,
            yield_reference.mean, n_reps=stat_reps(REPS),
            truth_se=yield_reference.mean_se,
            label="control-variate mean")

    def test_importance_tail_unbiased(self, estimator_line, suite90,
                                      yield_reference):
        threshold = yield_reference.threshold

        def tail(seed):
            result = run_kernel(estimator_line, suite90.proposed,
                                seed, "importance",
                                critical_delay=threshold)
            return result.tail_probability(threshold).probability

        assert_unbiased(tail, yield_reference.tail_probability,
                        n_reps=stat_reps(REPS),
                        truth_se=yield_reference.tail_se,
                        label="importance 3-sigma tail")

    def test_self_normalized_mean_unbiased_mild_shift(
            self, estimator_line, suite90, yield_reference):
        # The SN ratio estimator carries an O(1/N) bias that grows
        # with the shift; under a mild 1-sigma shift it is far below
        # the detection threshold (the aggressive-shift bias is pinned
        # by test_self_normalized_bias_shrinks instead).
        mild = yield_reference.mean + yield_reference.sigma
        assert_unbiased(
            lambda seed: run_kernel(estimator_line, suite90.proposed,
                                    seed, "importance-sn",
                                    critical_delay=mild).mean,
            yield_reference.mean, n_reps=stat_reps(REPS),
            truth_se=yield_reference.mean_se,
            label="importance-sn mean (1-sigma shift)")


# ---------------------------------------------------------------------------
# Determinism
# ---------------------------------------------------------------------------

class TestDeterminism:
    @pytest.mark.parametrize("estimator", ESTIMATORS)
    def test_bit_identical_across_worker_counts(self, estimator_line,
                                                suite90, estimator):
        def run(workers):
            return monte_carlo_line_delay(
                estimator_line, ps(100), samples=8, seed=2010,
                workers=workers, engine="model",
                model=suite90.proposed, estimator=estimator,
                lanes=2, prepass_samples=64)

        serial = run(1)
        for workers in (2, 4):
            pooled = run(workers)
            assert pooled.samples == serial.samples, \
                f"{estimator} diverged at workers={workers}"
            assert pooled.mean == serial.mean
            assert pooled.weights == serial.weights

    @pytest.mark.parametrize("estimator", ESTIMATORS)
    def test_same_seed_reproduces(self, estimator_line, suite90,
                                  estimator):
        first = run_kernel(estimator_line, suite90.proposed, 7,
                           estimator, samples=16, lanes=2,
                           prepass_samples=64)
        second = run_kernel(estimator_line, suite90.proposed, 7,
                            estimator, samples=16, lanes=2,
                            prepass_samples=64)
        assert first.samples == second.samples
        assert first.mean == second.mean


# ---------------------------------------------------------------------------
# target_ci escalation
# ---------------------------------------------------------------------------

class TestTargetCI:
    def test_doubles_until_interval_met(self, estimator_line,
                                        suite90):
        target = ps(0.4)
        result = run_kernel(estimator_line, suite90.proposed, 2010,
                            "plain", samples=8, target_ci=target)
        assert len(result.samples) > 8
        assert CI_Z * result.report.standard_error <= target

    def test_keeps_samples_when_already_met(self, estimator_line,
                                            suite90):
        result = run_kernel(estimator_line, suite90.proposed, 2010,
                            "plain", samples=8, target_ci=ps(100))
        assert len(result.samples) == 8

    def test_rounds_are_bounded(self, estimator_line, suite90):
        result = run_kernel(estimator_line, suite90.proposed, 2010,
                            "plain", samples=4, target_ci=1e-18)
        assert len(result.samples) <= 4 * 2 ** MAX_TARGET_ROUNDS


# ---------------------------------------------------------------------------
# Report structure and bookkeeping
# ---------------------------------------------------------------------------

class TestReports:
    def test_importance_weights_positive_and_ess_bounded(
            self, estimator_line, suite90, yield_reference):
        result = run_kernel(estimator_line, suite90.proposed, 2010,
                            "importance",
                            critical_delay=yield_reference.threshold)
        weights = np.asarray(result.weights)
        assert np.all(weights > 0.0)
        assert 0.0 < result.report.ess <= len(result.samples)
        assert result.report.shift_norm > 0.0

    def test_importance_reports_engine_space_threshold(
            self, estimator_line, suite90, yield_reference):
        # The kernel engine IS the proxy, so the offset is exactly
        # zero and the reported threshold is the requested one.
        result = run_kernel(estimator_line, suite90.proposed, 2010,
                            "importance",
                            critical_delay=yield_reference.threshold)
        assert result.report.critical_delay == pytest.approx(
            yield_reference.threshold, rel=1e-12)

    def test_importance_tail_beats_plain_budget(self, estimator_line,
                                                suite90,
                                                yield_reference):
        threshold = yield_reference.threshold
        result = run_kernel(estimator_line, suite90.proposed, 2010,
                            "importance", critical_delay=threshold)
        tail = result.tail_probability(threshold)
        # The acceptance bar: the same tail CI would cost plain MC
        # at least 10x the draws the IS run spent.
        assert tail.plain_equivalent_evals >= 10 * len(result.samples)

    def test_qmc_lane_structure(self, estimator_line, suite90):
        result = run_kernel(estimator_line, suite90.proposed, 2010,
                            "qmc", samples=100, lanes=8)
        report = result.report
        assert report.lanes == 8
        assert report.per_lane >= 2
        assert report.per_lane & (report.per_lane - 1) == 0
        assert len(result.samples) == report.lanes * report.per_lane
        assert report.ess == len(result.samples)

    def test_qmc_tighter_than_plain(self, estimator_line, suite90):
        plain = run_kernel(estimator_line, suite90.proposed, 2010,
                           "plain")
        qmc = run_kernel(estimator_line, suite90.proposed, 2010,
                         "qmc")
        assert qmc.report.standard_error \
            < plain.report.standard_error

    def test_control_variate_reduces_variance(self, estimator_line,
                                              suite90):
        result = run_kernel(estimator_line, suite90.proposed, 2010,
                            "control-variate")
        assert result.report.variance_reduction > 5.0
        assert result.report.standard_error > 0.0

    def test_control_variate_golden_accounting(self, estimator_line,
                                               suite90):
        result = monte_carlo_line_delay(
            estimator_line, ps(100), samples=4, seed=2010, workers=1,
            engine="golden", model=suite90.proposed,
            estimator="control-variate", prepass_samples=256)
        report = result.report
        assert report.golden_evals == 4
        assert report.model_evals == 256 + 4
        assert result.mean == pytest.approx(result.nominal_delay,
                                            rel=0.1)

    def test_metrics_counters(self, estimator_line, suite90):
        METRICS.reset()
        run_kernel(estimator_line, suite90.proposed, 2010,
                   "importance", samples=16, prepass_samples=64)
        counters = METRICS.counters
        assert counters["mc.estimator.importance"] == 1
        assert counters["mc.ess"] >= 1
        assert counters["mc.model_evals"] >= 16
        assert counters["mc.golden_evals"] == 0


# ---------------------------------------------------------------------------
# Known finite-sample behaviour
# ---------------------------------------------------------------------------

class TestSelfNormalizedConsistency:
    def test_self_normalized_bias_shrinks(self, estimator_line,
                                          suite90, yield_reference):
        """The SN estimator is consistent: its aggressive-shift bias
        must shrink as N grows (averaged over replications)."""
        threshold = yield_reference.threshold
        seeds = [90210 + 7919 * index
                 for index in range(stat_reps(12))]

        def mean_bias(samples):
            estimates = [
                run_kernel(estimator_line, suite90.proposed, seed,
                           "importance-sn", samples=samples,
                           critical_delay=threshold).mean
                for seed in seeds]
            return abs(float(np.mean(estimates))
                       - yield_reference.mean)

        assert mean_bias(1024) < mean_bias(64)
