"""The LUT first-order Monte-Carlo lane on the model engine."""

from __future__ import annotations

import numpy as np

from repro.signoff.extraction import extract_buffered_line
from repro.signoff.variation import monte_carlo_line_delay
from repro.units import mm, ps


def _served_line(model):
    """A line the coarse artifact's MC tables cover."""
    return extract_buffered_line(model.tech, model.config, mm(5.0),
                                 12, 24.0)


class TestWorkerInvariance:
    def test_samples_bitwise_identical_across_workers(self, suite90,
                                                      lut90):
        line = _served_line(suite90.proposed)
        runs = [monte_carlo_line_delay(line, ps(100), samples=200,
                                       seed=2010, workers=w,
                                       engine="model", model=lut90)
                for w in (1, 2, 4)]
        for other in runs[1:]:
            assert np.array_equal(np.asarray(runs[0].samples),
                                  np.asarray(other.samples))
            assert other.nominal_delay == runs[0].nominal_delay


class TestAccuracy:
    def test_tracks_closed_form_model_engine(self, suite90, lut90):
        """Stream-aligned draws: the LUT lane's first-order samples
        track the full scalar stage chain sample-for-sample within
        the coarse contract plus first-order error."""
        line = _served_line(suite90.proposed)
        lut_run = monte_carlo_line_delay(line, ps(100), samples=200,
                                         seed=2010, engine="model",
                                         model=lut90)
        exact_run = monte_carlo_line_delay(line, ps(100),
                                           samples=200, seed=2010,
                                           engine="model",
                                           model=suite90.proposed)
        lut_samples = np.asarray(lut_run.samples)
        exact_samples = np.asarray(exact_run.samples)
        rel = np.abs(lut_samples - exact_samples) / exact_samples
        assert float(rel.max()) <= 0.15
        assert abs(lut_samples.mean() - exact_samples.mean()) \
            <= 0.05 * exact_samples.mean()


class TestEngineRouting:
    def test_kernel_engine_unwraps_to_base(self, suite90, lut90):
        """The kernel engine replays the exact stage chain — a LUT
        wrapper must hand it the calibrated base, bit-for-bit."""
        line = _served_line(suite90.proposed)
        wrapped = monte_carlo_line_delay(line, ps(100), samples=100,
                                         seed=2010, engine="kernel",
                                         model=lut90)
        base = monte_carlo_line_delay(line, ps(100), samples=100,
                                      seed=2010, engine="kernel",
                                      model=suite90.proposed)
        assert wrapped.samples == base.samples
        assert wrapped.nominal_delay == base.nominal_delay

    def test_uncovered_line_falls_back_to_scalar_chain(self, suite90,
                                                       lut90):
        """A line outside the grid serves nothing from the tables —
        the model engine must produce exactly the closed-form run."""
        spec = lut90.artifact.spec
        model = suite90.proposed
        line = extract_buffered_line(model.tech, model.config,
                                     1.5 * spec.lengths[-1], 12,
                                     24.0)
        lut_run = monte_carlo_line_delay(line, ps(100), samples=50,
                                         seed=2010, engine="model",
                                         model=lut90)
        base_run = monte_carlo_line_delay(line, ps(100), samples=50,
                                          seed=2010, engine="model",
                                          model=model)
        assert lut_run.samples == base_run.samples
