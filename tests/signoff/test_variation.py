"""Monte-Carlo within-die variation."""

import numpy as np
import pytest

from repro.signoff.extraction import extract_buffered_line
from repro.signoff.variation import (
    VariationModel,
    monte_carlo_line_delay,
    sample_line_delay,
)
from repro.units import mm, ps


@pytest.fixture(scope="module")
def short_line(tech90, swss90):
    return extract_buffered_line(tech90, swss90, mm(2), 2, 24.0)


class TestVariationModel:
    def test_sigma_validation(self):
        with pytest.raises(ValueError):
            VariationModel(drive_sigma=-0.1)

    def test_zero_sigma_is_identity(self, tech90):
        rng = np.random.default_rng(1)
        model = VariationModel(0.0, 0.0)
        perturbed = model.perturb_technology(tech90, rng)
        assert perturbed.nmos.k_sat == tech90.nmos.k_sat
        assert perturbed.pmos.vth == tech90.pmos.vth

    def test_perturbation_changes_devices(self, tech90):
        rng = np.random.default_rng(1)
        model = VariationModel(0.1, 0.05)
        perturbed = model.perturb_technology(tech90, rng)
        assert perturbed.nmos.k_sat != tech90.nmos.k_sat

    def test_deterministic_given_seed(self, tech90):
        model = VariationModel()
        a = model.perturb_technology(tech90,
                                     np.random.default_rng(7))
        b = model.perturb_technology(tech90,
                                     np.random.default_rng(7))
        assert a.nmos.k_sat == b.nmos.k_sat


class TestMonteCarlo:
    @pytest.fixture(scope="class")
    def result(self, short_line):
        return monte_carlo_line_delay(short_line, ps(100), samples=12,
                                      seed=42)

    def test_sigma_positive_and_small(self, result):
        assert result.sigma > 0
        # Per-stage 5% drive sigma averages down over the chain.
        assert result.sigma_over_mean < 0.10

    def test_mean_near_nominal(self, result):
        assert result.mean == pytest.approx(result.nominal_delay,
                                            rel=0.1)

    def test_reproducible(self, short_line):
        a = monte_carlo_line_delay(short_line, ps(100), samples=5,
                                   seed=3)
        b = monte_carlo_line_delay(short_line, ps(100), samples=5,
                                   seed=3)
        assert a.samples == b.samples

    def test_three_sigma_exceeds_mean(self, result):
        assert result.three_sigma_delay() > result.mean

    def test_sample_count_validation(self, short_line):
        with pytest.raises(ValueError):
            monte_carlo_line_delay(short_line, ps(100), samples=1)

    def test_format(self, result):
        assert "sigma" in result.format()


class TestClosedFormEngines:
    """The "model" (scalar) and "kernel" (batched) engines: bit-equal
    to each other, deterministic, and workers-invariant."""

    @pytest.fixture(scope="class")
    def model90(self, suite90):
        return suite90.proposed

    @pytest.fixture(scope="class")
    def line90(self, suite90):
        model = suite90.proposed
        return extract_buffered_line(model.tech, model.config, mm(5),
                                     10, 40.0)

    def test_model_nominal_is_the_closed_form_delay(self, model90,
                                                    line90):
        result = monte_carlo_line_delay(line90, ps(100), samples=5,
                                        seed=1, engine="model",
                                        model=model90)
        estimate = model90.evaluate(line90.length, 10, 40.0, ps(100))
        assert result.nominal_delay == estimate.delay

    def test_kernel_bit_equal_to_model_engine(self, model90, line90):
        scalar = monte_carlo_line_delay(line90, ps(100), samples=64,
                                        seed=9, engine="model",
                                        model=model90)
        kernel = monte_carlo_line_delay(line90, ps(100), samples=64,
                                        seed=9, engine="kernel",
                                        model=model90)
        assert kernel.samples == scalar.samples
        assert kernel.nominal_delay == scalar.nominal_delay

    def test_model_engine_workers_invariant(self, model90, line90):
        serial = monte_carlo_line_delay(line90, ps(100), samples=8,
                                        seed=4, workers=1,
                                        engine="model", model=model90)
        pooled = monte_carlo_line_delay(line90, ps(100), samples=8,
                                        seed=4, workers=2,
                                        engine="model", model=model90)
        assert serial.samples == pooled.samples

    def test_kernel_engine_deterministic(self, model90, line90):
        a = monte_carlo_line_delay(line90, ps(100), samples=16, seed=2,
                                   engine="kernel", model=model90)
        b = monte_carlo_line_delay(line90, ps(100), samples=16, seed=2,
                                   engine="kernel", model=model90)
        assert a.samples == b.samples

    def test_unknown_engine_rejected(self, line90, model90):
        with pytest.raises(ValueError):
            monte_carlo_line_delay(line90, ps(100), samples=4,
                                   engine="spice", model=model90)

    def test_closed_form_engines_require_a_model(self, line90):
        with pytest.raises(ValueError):
            monte_carlo_line_delay(line90, ps(100), samples=4,
                                   engine="kernel")

    def test_subclassed_model_rejected(self, suite90, line90):
        from repro.models.extensions import SlewAwareInterconnectModel
        slew_aware = SlewAwareInterconnectModel(
            suite90.tech, suite90.proposed.calibration,
            suite90.proposed.config)
        with pytest.raises(TypeError):
            monte_carlo_line_delay(line90, ps(100), samples=4,
                                   engine="model", model=slew_aware)

    def test_non_uniform_line_rejected(self, model90, tech90, swss90):
        from dataclasses import replace
        line = extract_buffered_line(tech90, swss90, mm(2), 2, 24.0)
        stages = list(line.stages)
        stages[1] = replace(stages[1],
                            driver_size=stages[1].driver_size * 2)
        uneven = replace(line, stages=tuple(stages))
        with pytest.raises(ValueError):
            monte_carlo_line_delay(uneven, ps(100), samples=4,
                                   engine="kernel", model=model90)


class TestAveragingEffect:
    def test_longer_chains_have_smaller_relative_sigma(self, tech90,
                                                       swss90):
        """Independent per-stage variation averages out over the chain:
        the relative sigma of a 4-stage line sits clearly below a
        single stage's (ideal iid scaling would be 1/2; wire delay is
        variation-free and the sigma estimator is noisy at this sample
        count, so assert a conservative gap)."""
        short = extract_buffered_line(tech90, swss90, mm(1), 1, 24.0)
        long_ = extract_buffered_line(tech90, swss90, mm(4), 4, 24.0)
        sigma_short = monte_carlo_line_delay(
            short, ps(100), samples=20, seed=11).sigma_over_mean
        sigma_long = monte_carlo_line_delay(
            long_, ps(100), samples=20, seed=11).sigma_over_mean
        assert sigma_long < 0.9 * sigma_short
