"""Monte-Carlo within-die variation."""

import numpy as np
import pytest

from repro.signoff.extraction import extract_buffered_line
from repro.signoff.variation import (
    VariationModel,
    monte_carlo_line_delay,
    sample_line_delay,
)
from repro.units import mm, ps


@pytest.fixture(scope="module")
def short_line(tech90, swss90):
    return extract_buffered_line(tech90, swss90, mm(2), 2, 24.0)


class TestVariationModel:
    def test_sigma_validation(self):
        with pytest.raises(ValueError):
            VariationModel(drive_sigma=-0.1)

    def test_zero_sigma_is_identity(self, tech90):
        rng = np.random.default_rng(1)
        model = VariationModel(0.0, 0.0)
        perturbed = model.perturb_technology(tech90, rng)
        assert perturbed.nmos.k_sat == tech90.nmos.k_sat
        assert perturbed.pmos.vth == tech90.pmos.vth

    def test_perturbation_changes_devices(self, tech90):
        rng = np.random.default_rng(1)
        model = VariationModel(0.1, 0.05)
        perturbed = model.perturb_technology(tech90, rng)
        assert perturbed.nmos.k_sat != tech90.nmos.k_sat

    def test_deterministic_given_seed(self, tech90):
        model = VariationModel()
        a = model.perturb_technology(tech90,
                                     np.random.default_rng(7))
        b = model.perturb_technology(tech90,
                                     np.random.default_rng(7))
        assert a.nmos.k_sat == b.nmos.k_sat


class TestMonteCarlo:
    @pytest.fixture(scope="class")
    def result(self, short_line):
        return monte_carlo_line_delay(short_line, ps(100), samples=12,
                                      seed=42)

    def test_sigma_positive_and_small(self, result):
        assert result.sigma > 0
        # Per-stage 5% drive sigma averages down over the chain.
        assert result.sigma_over_mean < 0.10

    def test_mean_near_nominal(self, result):
        assert result.mean == pytest.approx(result.nominal_delay,
                                            rel=0.1)

    def test_reproducible(self, short_line):
        a = monte_carlo_line_delay(short_line, ps(100), samples=5,
                                   seed=3)
        b = monte_carlo_line_delay(short_line, ps(100), samples=5,
                                   seed=3)
        assert a.samples == b.samples

    def test_three_sigma_exceeds_mean(self, result):
        assert result.three_sigma_delay() > result.mean

    def test_sample_count_validation(self, short_line):
        with pytest.raises(ValueError):
            monte_carlo_line_delay(short_line, ps(100), samples=1)

    def test_format(self, result):
        assert "sigma" in result.format()


class TestAveragingEffect:
    def test_longer_chains_have_smaller_relative_sigma(self, tech90,
                                                       swss90):
        """Independent per-stage variation averages out over the chain:
        the relative sigma of a 4-stage line sits clearly below a
        single stage's (ideal iid scaling would be 1/2; wire delay is
        variation-free and the sigma estimator is noisy at this sample
        count, so assert a conservative gap)."""
        short = extract_buffered_line(tech90, swss90, mm(1), 1, 24.0)
        long_ = extract_buffered_line(tech90, swss90, mm(4), 4, 24.0)
        sigma_short = monte_carlo_line_delay(
            short, ps(100), samples=20, seed=11).sigma_over_mean
        sigma_long = monte_carlo_line_delay(
            long_, ps(100), samples=20, seed=11).sigma_over_mean
        assert sigma_long < 0.9 * sigma_short
