"""Buffered-line parasitic extraction."""

import pytest

from repro.signoff.extraction import (
    WireSegmentParasitics,
    extract_buffered_line,
)
from repro.units import mm


class TestWireSegmentParasitics:
    def test_total_cap_miller(self):
        segment = WireSegmentParasitics(
            resistance=100.0, ground_cap=10e-15, coupling_cap=20e-15,
            length=mm(1))
        assert segment.total_cap(0.0) == pytest.approx(10e-15)
        assert segment.total_cap(1.9) == pytest.approx(48e-15)


class TestExtraction:
    def test_uniform_segmentation(self, tech90, swss90):
        line = extract_buffered_line(tech90, swss90, mm(4), 4, 16.0)
        assert line.num_repeaters == 4
        lengths = [stage.wire.length for stage in line.stages]
        assert all(length == pytest.approx(mm(1)) for length in lengths)

    def test_totals_match_per_meter_values(self, tech90, swss90):
        line = extract_buffered_line(tech90, swss90, mm(5), 5, 16.0)
        assert line.total_wire_resistance() == pytest.approx(
            swss90.resistance_per_meter() * mm(5), rel=1e-9)
        expected_ground = swss90.ground_capacitance_per_meter() * mm(5)
        assert line.total_wire_cap(0.0) == pytest.approx(expected_ground,
                                                         rel=1e-9)

    def test_repeater_input_cap_from_devices(self, tech90, swss90):
        line = extract_buffered_line(tech90, swss90, mm(2), 2, 8.0)
        wn, wp = tech90.inverter_widths(8.0)
        expected = tech90.nmos.c_gate * wn + tech90.pmos.c_gate * wp
        assert line.repeater_input_cap(0) == pytest.approx(expected)

    def test_stage_load_is_next_gate_then_receiver(self, tech90, swss90):
        line = extract_buffered_line(tech90, swss90, mm(3), 3, 8.0,
                                     receiver_size=2.0)
        assert line.stage_load_cap(0) == pytest.approx(
            line.repeater_input_cap(1))
        wn, wp = tech90.inverter_widths(2.0)
        receiver = tech90.nmos.c_gate * wn + tech90.pmos.c_gate * wp
        assert line.stage_load_cap(2) == pytest.approx(receiver)

    def test_receiver_defaults_to_repeater_size(self, tech90, swss90):
        line = extract_buffered_line(tech90, swss90, mm(1), 1, 12.0)
        assert line.receiver_cap == pytest.approx(
            line.repeater_input_cap(0))

    def test_validation(self, tech90, swss90):
        with pytest.raises(ValueError):
            extract_buffered_line(tech90, swss90, 0.0, 1, 8.0)
        with pytest.raises(ValueError):
            extract_buffered_line(tech90, swss90, mm(1), 0, 8.0)
        with pytest.raises(ValueError):
            extract_buffered_line(tech90, swss90, mm(1), 1, 0.0)
