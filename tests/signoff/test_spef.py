"""SPEF-like parasitic exchange format."""

import pytest
from hypothesis import given, strategies as st

from repro.signoff.extraction import extract_buffered_line
from repro.signoff.spef import (
    SpefFile,
    SpefNet,
    SpefParseError,
    dumps_spef,
    line_to_spef,
    loads_spef,
)
from repro.units import mm


def make_simple_spef():
    net = SpefNet(name="n1", total_cap=30e-15)
    net.ground_caps["n1:1"] = 10e-15
    net.ground_caps["n1:2"] = 12e-15
    net.coupling_caps[("n1:1", "n2:1")] = 8e-15
    net.resistors.append(("n1:in", "n1:1", 25.0))
    net.resistors.append(("n1:1", "n1:2", 35.0))
    return SpefFile(design="demo", nets=[net])


class TestRoundtrip:
    def test_basic_roundtrip(self):
        spef = make_simple_spef()
        back = loads_spef(dumps_spef(spef))
        assert back.design == "demo"
        net = back.net("n1")
        assert net.total_cap == pytest.approx(30e-15, rel=1e-5)
        assert net.ground_caps["n1:1"] == pytest.approx(10e-15, rel=1e-5)
        assert net.coupling_caps[("n1:1", "n2:1")] == \
            pytest.approx(8e-15, rel=1e-5)
        assert net.resistors[1] == ("n1:1", "n1:2", 35.0)

    @given(st.lists(st.floats(min_value=1e-18, max_value=1e-12),
                    min_size=1, max_size=8))
    def test_roundtrip_many_caps(self, caps):
        net = SpefNet(name="x", total_cap=sum(caps))
        for index, cap in enumerate(caps):
            net.ground_caps[f"x:{index}"] = cap
        spef = SpefFile(design="p", nets=[net])
        back = loads_spef(dumps_spef(spef)).net("x")
        for index, cap in enumerate(caps):
            assert back.ground_caps[f"x:{index}"] == \
                pytest.approx(cap, rel=1e-5)


class TestErrors:
    def test_missing_net_lookup(self):
        spef = make_simple_spef()
        with pytest.raises(KeyError):
            spef.net("nope")

    def test_unterminated_net(self):
        text = '*SPEF "IEEE 1481"\n*DESIGN d\n*D_NET n 1.0\n*CAP\n'
        with pytest.raises(SpefParseError, match="unterminated"):
            loads_spef(text)

    def test_end_without_net(self):
        with pytest.raises(SpefParseError):
            loads_spef("*END\n")

    def test_malformed_cap_line(self):
        text = ('*DESIGN d\n*D_NET n 1.0\n*CAP\n1 too many tokens here x\n'
                "*END\n")
        with pytest.raises(SpefParseError, match="cap"):
            loads_spef(text)

    def test_malformed_res_line(self):
        text = "*DESIGN d\n*D_NET n 1.0\n*RES\n1 a b\n*END\n"
        with pytest.raises(SpefParseError, match="res"):
            loads_spef(text)

    def test_unexpected_line(self):
        with pytest.raises(SpefParseError, match="unexpected"):
            loads_spef("GARBAGE\n")


class TestLineExport:
    def test_extracted_line_to_spef(self, tech90, swss90):
        line = extract_buffered_line(tech90, swss90, mm(2), 2, 8.0)
        spef = line_to_spef(line, segments_per_wire=4)
        assert len(spef.nets) == 2
        net = spef.net("seg0")
        assert len(net.resistors) == 4
        total_r = sum(r for _, _, r in net.resistors)
        assert total_r == pytest.approx(
            line.stages[0].wire.resistance, rel=1e-6)
        total_ground = sum(net.ground_caps.values())
        assert total_ground == pytest.approx(
            line.stages[0].wire.ground_cap, rel=1e-6)
        total_coupling = sum(net.coupling_caps.values())
        assert total_coupling == pytest.approx(
            line.stages[0].wire.coupling_cap, rel=1e-6)

    def test_export_roundtrips_through_text(self, tech90, swss90):
        line = extract_buffered_line(tech90, swss90, mm(1), 1, 8.0)
        spef = line_to_spef(line)
        back = loads_spef(dumps_spef(spef))
        assert back.design == spef.design
        original = spef.net("seg0")
        parsed = back.net("seg0")
        assert len(parsed.resistors) == len(original.resistors)
        assert sum(parsed.ground_caps.values()) == pytest.approx(
            sum(original.ground_caps.values()), rel=1e-4)
