"""Statistical assertion helpers for estimator validation.

Estimator correctness is statistical, not bit-exact: an unbiased
estimator is allowed to miss the truth on any single run, just not
systematically.  :func:`assert_unbiased` turns that into a testable
contract — repeat the estimator over independent fixed seeds, z-test
the replication mean against an analytic or brute-force reference, and
fail only when the deviation is statistically significant at ``alpha``.

With ``alpha = 0.01`` a *correct* estimator fails one run in a
hundred per assertion; the fixed replication seeds make any given test
run deterministic (it either always passes or always fails for a given
code state), so a failure is evidence of real bias, not flakiness.

``REPRO_STAT_REPS`` caps the replication count (the CI smoke job runs
reduced reps); the cap widens the detection threshold but never
changes which estimates are drawn for a given rep index.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, List

import numpy as np

#: Two-sided critical z values per significance level.
Z_CRITICAL: Dict[float, float] = {0.05: 1.960, 0.01: 2.576,
                                  0.001: 3.291}


def stat_reps(default: int) -> int:
    """The replication count to use: ``default``, capped by the
    ``REPRO_STAT_REPS`` environment variable (CI smoke mode)."""
    raw = os.environ.get("REPRO_STAT_REPS", "").strip()
    if not raw:
        return default
    cap = int(raw)
    if cap < 3:
        raise ValueError("REPRO_STAT_REPS must be >= 3")
    return min(default, cap)


def replication_seeds(root: int, count: int) -> List[int]:
    """``count`` distinct deterministic seeds for independent
    replications — a pure function of ``(root, count)`` so every test
    run draws the identical estimates."""
    return [root + 7919 * index for index in range(count)]


def assert_unbiased(estimator: Callable[[int], float], truth: float,
                    *, n_reps: int, alpha: float = 0.01,
                    truth_se: float = 0.0, seed: int = 90210,
                    label: str = "estimator") -> float:
    """Assert ``estimator(seed_i)`` is an unbiased estimate of
    ``truth`` via a two-sided z-test; returns the z score
    (dimensionless).

    ``estimator`` maps a seed to one independent estimate; it runs
    once per replication seed.  ``truth`` and ``truth_se`` are in the
    estimator's own output unit — ``truth_se`` is the standard error
    of the reference itself (non-zero for a brute-force Monte-Carlo
    truth), folded into the test in quadrature.  ``alpha`` is the
    significance level, a probability.
    """
    if alpha not in Z_CRITICAL:
        raise ValueError(f"alpha must be one of "
                         f"{sorted(Z_CRITICAL)}, got {alpha}")
    seeds = replication_seeds(seed, n_reps)
    estimates = np.asarray([float(estimator(value))
                            for value in seeds])
    mean = float(np.mean(estimates))
    spread = float(np.std(estimates, ddof=1))
    total_se = float(np.sqrt(spread ** 2 / n_reps + truth_se ** 2))
    if total_se == 0.0:
        assert mean == truth, (
            f"{label}: zero-variance estimates {mean!r} != truth "
            f"{truth!r}")
        return 0.0
    z = (mean - truth) / total_se
    critical = Z_CRITICAL[alpha]
    assert abs(z) <= critical, (
        f"{label}: biased at alpha={alpha}: replication mean "
        f"{mean:.6e} vs truth {truth:.6e} gives |z| = {abs(z):.2f} "
        f"> {critical:.2f} ({n_reps} reps, replication sd "
        f"{spread:.2e}, truth se {truth_se:.2e})")
    return z
