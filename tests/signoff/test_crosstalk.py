"""Explicit coupled-aggressor simulation vs the Miller abstraction."""

import pytest

from repro.signoff.crosstalk import (
    AggressorActivity,
    crosstalk_delay_bracket,
    effective_miller_factor,
    simulate_coupled_stage,
)
from repro.signoff.golden import simulate_stage
from repro.units import fF, mm, ps


@pytest.fixture(scope="module")
def stage_params(tech90, swss90):
    length = mm(1.5)
    return dict(
        tech=tech90,
        driver_size=24.0,
        wire_resistance=swss90.resistance_per_meter() * length,
        ground_cap=swss90.ground_capacitance_per_meter() * length,
        coupling_cap=swss90.coupling_capacitance_per_meter() * length,
        load_cap=fF(20),
        input_slew=ps(100),
    )


@pytest.fixture(scope="module")
def bracket(stage_params):
    return crosstalk_delay_bracket(**stage_params)


class TestActivityOrdering:
    def test_worst_exceeds_quiet_exceeds_best(self, bracket):
        best, quiet, worst = bracket
        assert best.delay < quiet.delay < worst.delay

    def test_opposite_slows_substantially(self, bracket):
        best, _quiet, worst = bracket
        # Coupling dominates this geometry: worst vs best should differ
        # by far more than measurement noise.
        assert worst.delay > 1.3 * best.delay


class TestMillerAbstraction:
    def test_miller_grounded_matches_explicit_worst_case(
            self, stage_params, bracket):
        _best, _quiet, worst = bracket
        approx = simulate_stage(
            stage_params["tech"], stage_params["driver_size"],
            stage_params["wire_resistance"],
            stage_params["ground_cap"]
            + 1.9 * stage_params["coupling_cap"],
            stage_params["load_cap"], stage_params["input_slew"],
            rising_input=True)
        assert approx.delay == pytest.approx(worst.delay, rel=0.12)

    def test_miller_grounded_matches_explicit_quiet(self, stage_params,
                                                    bracket):
        _best, quiet, _worst = bracket
        approx = simulate_stage(
            stage_params["tech"], stage_params["driver_size"],
            stage_params["wire_resistance"],
            stage_params["ground_cap"] + stage_params["coupling_cap"],
            stage_params["load_cap"], stage_params["input_slew"],
            rising_input=True)
        assert approx.delay == pytest.approx(quiet.delay, rel=0.12)

    def test_effective_miller_factors_physically_placed(self, bracket):
        best, quiet, worst = bracket
        assert effective_miller_factor(
            quiet.delay, quiet.delay, worst.delay) == pytest.approx(1.0)
        worst_factor = effective_miller_factor(
            quiet.delay, worst.delay, worst.delay)
        assert worst_factor == pytest.approx(2.0)
        best_factor = effective_miller_factor(
            quiet.delay, best.delay, worst.delay)
        # Same-direction switching cancels most of the coupling term.
        assert best_factor < 0.5

    def test_effective_miller_validation(self):
        with pytest.raises(ValueError):
            effective_miller_factor(1.0, 1.0, 0.5)


class TestFallingTransitions:
    def test_falling_victim_also_bracketed(self, stage_params):
        params = dict(stage_params)
        params["input_slew"] = ps(60)
        worst = simulate_coupled_stage(
            **params, rising_input=False,
            activity=AggressorActivity.OPPOSITE)
        quiet = simulate_coupled_stage(
            **params, rising_input=False,
            activity=AggressorActivity.QUIET)
        assert worst.delay > quiet.delay
