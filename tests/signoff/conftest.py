"""Fixtures for the signoff estimator suite.

``yield_reference`` is the ground truth the statistical tests compare
against: a brute-force kernel-engine Monte Carlo of one million draws
on the reference line, computed once per session.  The kernel batch
path makes this affordable (a couple of seconds); every unbiasedness
test then z-tests its estimator's replications against this mean /
tail probability, with the reference's own standard error folded in.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import pytest

from repro.signoff.estimators import engines
from repro.signoff.extraction import extract_buffered_line
from repro.signoff.variation import VariationModel
from repro.units import mm, ps

#: Draws in the brute-force reference (count).
REFERENCE_DRAWS = 1_000_000

#: Seed of the reference generator — deliberately unrelated to any
#: estimator seed so the truth and the tested runs are independent.
REFERENCE_SEED = 20_100_604


@dataclass(frozen=True)
class YieldReference:
    """Brute-force ground truth for the reference line.

    ``mean``/``sigma``/``threshold`` are in seconds, ``mean_se`` is
    the reference mean's own standard error in seconds;
    ``tail_probability``/``tail_se`` are dimensionless;
    ``draws`` is a count.
    """

    mean: float
    mean_se: float
    sigma: float
    threshold: float
    tail_probability: float
    tail_se: float
    draws: int


@pytest.fixture(scope="session")
def estimator_line(suite90):
    """The bench reference line: 2 mm, 2 repeaters of size 24 at
    90 nm, extracted with the proposed model's wire configuration."""
    model = suite90.proposed
    return extract_buffered_line(model.tech, model.config, mm(2), 2,
                                 24.0)


@pytest.fixture(scope="session")
def yield_reference(suite90, estimator_line) -> YieldReference:
    """One-million-draw plain kernel Monte Carlo of the reference
    line: the unbiasedness truth for mean delay and 3-sigma tail."""
    model = suite90.proposed
    variation = VariationModel()
    stages = len(estimator_line.stages)
    rng = np.random.default_rng(REFERENCE_SEED)
    z = rng.standard_normal((REFERENCE_DRAWS, 4 * stages))
    factors = engines.factor_matrix(z, variation, stages)
    delays = engines.evaluate_factors("kernel", model, estimator_line,
                                      ps(100), factors, workers=1)
    mean = float(np.mean(delays))
    sigma = float(np.std(delays, ddof=1))
    threshold = mean + 3.0 * sigma
    tail = float(np.mean(delays > threshold))
    return YieldReference(
        mean=mean,
        mean_se=sigma / float(np.sqrt(REFERENCE_DRAWS)),
        sigma=sigma,
        threshold=threshold,
        tail_probability=tail,
        tail_se=float(np.sqrt(tail * (1.0 - tail)
                              / REFERENCE_DRAWS)),
        draws=REFERENCE_DRAWS,
    )
