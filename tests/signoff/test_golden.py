"""Golden buffered-line evaluation."""

import pytest

from repro.signoff.extraction import extract_buffered_line
from repro.signoff.golden import evaluate_buffered_line, simulate_stage
from repro.units import mm, ps


class TestSimulateStage:
    def test_stage_timing_positive(self, tech90):
        timing = simulate_stage(tech90, 16.0, 200.0, 80e-15, 20e-15,
                                ps(100), rising_input=True)
        assert timing.delay > 0
        assert timing.output_slew > 0
        assert timing.input_slew == ps(100)

    def test_falling_input_also_works(self, tech90):
        timing = simulate_stage(tech90, 16.0, 200.0, 80e-15, 20e-15,
                                ps(100), rising_input=False)
        assert timing.delay > 0

    def test_delay_grows_with_wire_length(self, tech90, swss90):
        r = swss90.resistance_per_meter()
        c = swss90.ground_capacitance_per_meter()

        def stage_delay(length):
            return simulate_stage(
                tech90, 16.0, r * length, c * length, 20e-15,
                ps(100), True).delay

        assert stage_delay(mm(0.5)) < stage_delay(mm(1.5)) \
            < stage_delay(mm(3.0))


class TestEvaluateLine:
    def test_total_is_sum_of_stages(self, tech90, swss90):
        line = extract_buffered_line(tech90, swss90, mm(2), 2, 24.0)
        result = evaluate_buffered_line(line, ps(300))
        assert result.num_stages == 2
        assert result.total_delay == pytest.approx(
            sum(t.delay for t in result.stage_timings))

    def test_slew_propagates_between_stages(self, tech90, swss90):
        line = extract_buffered_line(tech90, swss90, mm(3), 3, 24.0)
        result = evaluate_buffered_line(line, ps(300))
        timings = result.stage_timings
        assert timings[0].input_slew == ps(300)
        assert timings[1].input_slew == pytest.approx(
            timings[0].output_slew)
        assert timings[2].input_slew == pytest.approx(
            timings[1].output_slew)

    def test_polarity_alternates(self, tech90, swss90):
        line = extract_buffered_line(tech90, swss90, mm(3), 3, 24.0)
        result = evaluate_buffered_line(line, ps(200))
        directions = [t.rising_input for t in result.stage_timings]
        assert directions == [True, False, True]

    def test_periodicity_shortcut_matches_full_evaluation(
            self, tech90, swss90):
        line = extract_buffered_line(tech90, swss90, mm(6), 8, 24.0)
        fast = evaluate_buffered_line(line, ps(300),
                                      use_periodicity=True)
        slow = evaluate_buffered_line(line, ps(300),
                                      use_periodicity=False)
        assert fast.total_delay == pytest.approx(slow.total_delay,
                                                 rel=0.02)

    def test_miller_factor_increases_delay(self, tech90, swss90):
        line = extract_buffered_line(tech90, swss90, mm(3), 3, 24.0)
        quiet = evaluate_buffered_line(line, ps(200), miller_factor=0.0)
        worst = evaluate_buffered_line(line, ps(200), miller_factor=1.9)
        assert worst.total_delay > quiet.total_delay * 1.3

    def test_more_repeaters_less_delay_on_long_wire(self, tech90,
                                                    swss90):
        sparse = extract_buffered_line(tech90, swss90, mm(8), 2, 24.0)
        dense = extract_buffered_line(tech90, swss90, mm(8), 8, 24.0)
        delay_sparse = evaluate_buffered_line(sparse, ps(100)).total_delay
        delay_dense = evaluate_buffered_line(dense, ps(100)).total_delay
        # 4 mm unbuffered segments are deep in the quadratic regime.
        assert delay_dense < delay_sparse

    def test_runtime_recorded(self, tech90, swss90):
        line = extract_buffered_line(tech90, swss90, mm(1), 1, 8.0)
        result = evaluate_buffered_line(line, ps(100))
        assert result.runtime_seconds > 0
