"""Monolithic full-line simulation vs the stage-based decomposition."""

import pytest

from repro.signoff.extraction import extract_buffered_line
from repro.signoff.fullline import evaluate_full_line
from repro.signoff.golden import evaluate_buffered_line
from repro.units import mm, ps


class TestFullLine:
    @pytest.mark.parametrize("length_mm,count", [(2, 2), (4, 4)])
    def test_stage_decomposition_matches_monolithic(
            self, tech90, swss90, length_mm, count):
        """The core validation: breaking the line at repeater inputs
        and re-launching ideal ramps (what every static timer does)
        agrees with simulating everything at once."""
        line = extract_buffered_line(tech90, swss90, mm(length_mm),
                                     count, 24.0)
        staged = evaluate_buffered_line(line, ps(150))
        monolithic = evaluate_full_line(line, ps(150))
        assert staged.total_delay == pytest.approx(
            monolithic.total_delay, rel=0.06)

    def test_output_slew_agreement(self, tech90, swss90):
        line = extract_buffered_line(tech90, swss90, mm(3), 3, 24.0)
        staged = evaluate_buffered_line(line, ps(150))
        monolithic = evaluate_full_line(line, ps(150))
        # The staged flow measures slew at the driver-side convention;
        # agreement within ~20% validates the abstraction for slews.
        assert staged.output_slew == pytest.approx(
            monolithic.output_slew, rel=0.2)

    def test_miller_factor_consistency(self, tech90, swss90):
        line = extract_buffered_line(tech90, swss90, mm(2), 2, 24.0)
        quiet = evaluate_full_line(line, ps(100), miller_factor=0.0)
        worst = evaluate_full_line(line, ps(100), miller_factor=1.9)
        assert worst.total_delay > 1.2 * quiet.total_delay

    def test_node_count_reported(self, tech90, swss90):
        line = extract_buffered_line(tech90, swss90, mm(2), 2, 24.0)
        result = evaluate_full_line(line, ps(100))
        # 2 stages x (driver + 4 RC sections) plus input/output/rails.
        assert result.node_count > 8
