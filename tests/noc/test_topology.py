"""NoC topology graph."""

import pytest

from repro.noc.spec import CommunicationSpec
from repro.noc.topology import NocTopology, core_node, router_node
from repro.units import mm


@pytest.fixture
def spec():
    spec = CommunicationSpec(name="t", data_width=32)
    spec.add_core("a", 0.0, 0.0)
    spec.add_core("b", mm(2), 0.0)
    spec.add_core("c", mm(4), 0.0)
    spec.add_flow("a", "c", 1e9)
    spec.add_flow("b", "c", 2e9)
    return spec


@pytest.fixture
def topology(spec):
    topo = NocTopology(spec=spec)
    for name in ("a", "b", "c"):
        topo.add_core_node(name)
        core = spec.cores[name]
        topo.add_router(f"r_{name}", core.x, core.y)
        topo.add_link(core_node(name), router_node(f"r_{name}"),
                      mm(0.2))
        topo.add_link(router_node(f"r_{name}"), core_node(name),
                      mm(0.2))
    topo.add_link(router_node("r_a"), router_node("r_b"), mm(2))
    topo.add_link(router_node("r_b"), router_node("r_c"), mm(2))
    return topo


class TestConstruction:
    def test_add_link_requires_nodes(self, spec):
        topo = NocTopology(spec=spec)
        with pytest.raises(KeyError):
            topo.add_link(core_node("a"), router_node("r"), mm(1))

    def test_add_link_idempotent(self, topology):
        before = topology.graph.number_of_edges()
        topology.add_link(router_node("r_a"), router_node("r_b"), mm(2))
        assert topology.graph.number_of_edges() == before


class TestRouting:
    def test_route_flow_accumulates_load(self, topology):
        path = [core_node("a"), router_node("r_a"), router_node("r_b"),
                router_node("r_c"), core_node("c")]
        topology.route_flow(0, path)
        assert topology.edge_load(router_node("r_a"),
                                  router_node("r_b")) == 1e9
        path_b = [core_node("b"), router_node("r_b"),
                  router_node("r_c"), core_node("c")]
        topology.route_flow(1, path_b)
        assert topology.edge_load(router_node("r_b"),
                                  router_node("r_c")) == pytest.approx(
            3e9)

    def test_route_must_match_endpoints(self, topology):
        with pytest.raises(ValueError):
            topology.route_flow(0, [core_node("b"),
                                    router_node("r_b"),
                                    core_node("c")])

    def test_route_requires_installed_links(self, topology):
        with pytest.raises(KeyError):
            topology.route_flow(0, [core_node("a"),
                                    router_node("r_c"),
                                    core_node("c")])

    def test_double_route_rejected(self, topology):
        path = [core_node("a"), router_node("r_a"), router_node("r_b"),
                router_node("r_c"), core_node("c")]
        topology.route_flow(0, path)
        with pytest.raises(ValueError):
            topology.route_flow(0, path)

    def test_hop_count(self, topology):
        path = [core_node("a"), router_node("r_a"), router_node("r_b"),
                router_node("r_c"), core_node("c")]
        topology.route_flow(0, path)
        assert topology.hop_count(0) == 3

    def test_hop_statistics(self, topology):
        topology.route_flow(0, [core_node("a"), router_node("r_a"),
                                router_node("r_b"), router_node("r_c"),
                                core_node("c")])
        topology.route_flow(1, [core_node("b"), router_node("r_b"),
                                router_node("r_c"), core_node("c")])
        avg, worst = topology.hop_statistics()
        assert avg == pytest.approx(2.5)
        assert worst == 3


class TestQueries:
    def test_router_degree_counts_distinct_neighbours(self, topology):
        # r_b touches: core b (both directions), r_a, r_c.
        assert topology.router_degree(router_node("r_b")) == 3

    def test_max_link_length(self, topology):
        assert topology.max_link_length() == pytest.approx(mm(2))

    def test_router_link_count(self, topology):
        assert topology.router_link_count() == 2

    def test_summary(self, topology):
        assert "3 routers" in topology.summary()


class TestValidation:
    def full_routes(self, topology):
        topology.route_flow(0, [core_node("a"), router_node("r_a"),
                                router_node("r_b"), router_node("r_c"),
                                core_node("c")])
        topology.route_flow(1, [core_node("b"), router_node("r_b"),
                                router_node("r_c"), core_node("c")])

    def test_clean_topology_validates(self, topology):
        self.full_routes(topology)
        assert topology.validate(capacity=1e12) == []

    def test_unrouted_flow_detected(self, topology):
        problems = topology.validate(capacity=1e12)
        assert any("unrouted" in p for p in problems)

    def test_overload_detected(self, topology):
        self.full_routes(topology)
        problems = topology.validate(capacity=2.5e9)
        assert any("overloaded" in p for p in problems)

    def test_port_limit_detected(self, topology):
        self.full_routes(topology)
        problems = topology.validate(capacity=1e12, max_ports=2)
        assert any("ports" in p for p in problems)

    def test_load_consistency_detected(self, topology):
        self.full_routes(topology)
        # Corrupt a load behind the API's back.
        topology.graph.edges[router_node("r_b"),
                             router_node("r_c")]["load"] *= 2
        problems = topology.validate(capacity=1e12)
        assert any("does not match" in p for p in problems)
