"""Flit-width exploration."""

import pytest

from repro.noc.testcases import dual_vopd
from repro.noc.width_exploration import (
    explore_widths,
    respecify_width,
    serialization_overhead,
)


class TestSerializationModel:
    def test_overhead_above_one(self):
        for width in (16, 32, 64, 128, 256):
            assert serialization_overhead(width) > 1.0

    def test_sweet_spot_exists(self):
        # Narrow flits repeat control bits, wide flits pay padding:
        # 64 bits is the minimum for the default packet shape.
        assert serialization_overhead(16) > serialization_overhead(64)
        assert serialization_overhead(256) > serialization_overhead(64)

    def test_width_validation(self):
        with pytest.raises(ValueError):
            serialization_overhead(2)


class TestRespecify:
    def test_bandwidths_inflated(self, suite90):
        spec = dual_vopd(suite90.tech)
        narrow = respecify_width(spec, 32)
        assert narrow.data_width == 32
        overhead = serialization_overhead(32)
        for original, adjusted in zip(spec.flows, narrow.flows):
            assert adjusted.bandwidth == pytest.approx(
                original.bandwidth * overhead)

    def test_cores_preserved(self, suite90):
        spec = dual_vopd(suite90.tech)
        narrow = respecify_width(spec, 64)
        assert set(narrow.cores) == set(spec.cores)


class TestExploration:
    @pytest.fixture(scope="class")
    def exploration(self, suite90):
        spec = dual_vopd(suite90.tech)
        return explore_widths(spec, suite90.proposed, suite90.tech,
                              widths=(32, 64, 128))

    def test_all_widths_evaluated(self, exploration):
        assert [p.width for p in exploration.points] == [32, 64, 128]

    def test_feasible_points_have_reports(self, exploration):
        for point in exploration.points:
            if point.feasible:
                assert point.report is not None
                assert point.report.total_power > 0

    def test_best_is_minimum_power(self, exploration):
        best = exploration.best()
        assert best.total_power == min(p.total_power
                                       for p in exploration.points
                                       if p.feasible)

    def test_narrower_links_cost_less_wire_power(self, exploration):
        by_width = {p.width: p for p in exploration.points
                    if p.feasible}
        if 32 in by_width and 128 in by_width:
            narrow = by_width[32].report
            wide = by_width[128].report
            # Link switching power scales with bus width (same routes);
            # serialization overhead only partially offsets it.
            assert narrow.dynamic_power < wide.dynamic_power

    def test_format(self, exploration):
        text = exploration.format()
        assert "best width" in text
