"""Topology/floorplan text rendering."""

import pytest

from repro.noc.spec import CommunicationSpec
from repro.noc.synthesis import synthesize
from repro.noc.testcases import dual_vopd
from repro.noc.visualization import (
    render_floorplan,
    render_report,
    render_topology,
    router_utilization,
)
from repro.units import mm


@pytest.fixture(scope="module")
def dvopd_topology(suite90):
    spec = dual_vopd(suite90.tech)
    return spec, synthesize(spec, suite90.proposed, suite90.tech)


class TestFloorplan:
    def test_contains_all_core_markers(self, dvopd_topology):
        spec, _ = dvopd_topology
        sketch = render_floorplan(spec)
        assert spec.name in sketch
        # At least the first characters of several core names appear.
        assert "d0_vld" in sketch or "d0_vld"[:6] in sketch

    def test_reports_die_size(self, dvopd_topology):
        spec, _ = dvopd_topology
        assert "mm" in render_floorplan(spec)

    def test_single_row_floorplan(self):
        spec = CommunicationSpec(name="line", data_width=8)
        spec.add_core("a", 0.0, 0.0)
        spec.add_core("b", mm(5), 0.0)
        spec.add_flow("a", "b", 1e9)
        sketch = render_floorplan(spec)
        assert "a" in sketch and "b" in sketch


class TestTopologyRendering:
    def test_link_table_sorted_by_load(self, dvopd_topology):
        _, topology = dvopd_topology
        text = render_topology(topology)
        assert "Gb/s" in text
        assert "per-flow routes" in text

    def test_report_combines_both(self, dvopd_topology):
        spec, topology = dvopd_topology
        text = render_report(topology, spec)
        assert spec.name in text
        assert "router-router links" in text

    def test_router_utilization(self, dvopd_topology):
        _, topology = dvopd_topology
        utilization = router_utilization(topology)
        assert len(utilization) == len(topology.routers())
        assert all(ports >= 1 for ports in utilization.values())
