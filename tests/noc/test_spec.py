"""Communication specification."""

import pytest

from repro.noc.spec import CommunicationSpec, Core, Flow, \
    flows_by_bandwidth
from repro.units import mm


def make_spec():
    spec = CommunicationSpec(name="demo", data_width=64)
    spec.add_core("a", 0.0, 0.0)
    spec.add_core("b", mm(2), 0.0)
    spec.add_core("c", mm(2), mm(3))
    spec.add_flow("a", "b", 1e9)
    spec.add_flow("b", "c", 2e9)
    return spec


class TestCore:
    def test_manhattan_distance(self):
        a = Core("a", 0.0, 0.0)
        b = Core("b", mm(3), mm(4))
        assert a.distance_to(b) == pytest.approx(mm(7))


class TestFlow:
    def test_self_flow_rejected(self):
        with pytest.raises(ValueError):
            Flow("x", "x", 1e9)

    def test_bandwidth_positive(self):
        with pytest.raises(ValueError):
            Flow("a", "b", 0.0)


class TestSpec:
    def test_duplicate_core_rejected(self):
        spec = make_spec()
        with pytest.raises(ValueError, match="already"):
            spec.add_core("a", 0.0, 0.0)

    def test_flow_endpoints_must_exist(self):
        spec = make_spec()
        with pytest.raises(KeyError):
            spec.add_flow("a", "zz", 1e9)

    def test_validate_ok(self):
        make_spec().validate()

    def test_validate_empty(self):
        with pytest.raises(ValueError):
            CommunicationSpec(name="empty").validate()

    def test_total_bandwidth(self):
        assert make_spec().total_bandwidth() == pytest.approx(3e9)

    def test_bounding_box(self):
        width, height = make_spec().bounding_box()
        assert width == pytest.approx(mm(2))
        assert height == pytest.approx(mm(3))

    def test_flow_distance(self):
        spec = make_spec()
        assert spec.flow_distance(spec.flows[1]) == pytest.approx(mm(3))

    def test_scaled(self):
        spec = make_spec().scaled(0.5, name_suffix="@45")
        assert spec.name == "demo@45"
        assert spec.bounding_box()[0] == pytest.approx(mm(1))
        assert len(spec.flows) == 2
        with pytest.raises(ValueError):
            make_spec().scaled(0.0)


class TestOrdering:
    def test_flows_by_bandwidth_descending_deterministic(self):
        spec = make_spec()
        spec.add_flow("a", "c", 2e9)  # tie with b->c
        ordered = flows_by_bandwidth(spec.flows)
        assert ordered[0].bandwidth == 2e9
        # Tie broken by names: (a, c) before (b, c).
        assert (ordered[0].source, ordered[0].dest) == ("a", "c")
        assert ordered[-1].bandwidth == 1e9
