"""Rip-up-and-re-route improvement."""

import pytest

from repro.noc.evaluation import evaluate_topology
from repro.noc.improvement import improve_topology, \
    _rebuild_without_flow
from repro.noc.spec import CommunicationSpec
from repro.noc.synthesis import synthesize
from repro.noc.testcases import dual_vopd, vproc
from repro.units import mm


@pytest.fixture(scope="module")
def vproc_result(suite90):
    spec = vproc(suite90.tech)
    topology = synthesize(spec, suite90.proposed, suite90.tech)
    return topology, improve_topology(topology, suite90.proposed,
                                      suite90.tech)


class TestRebuildWithoutFlow:
    def test_removes_route_and_load(self, suite90):
        spec = dual_vopd(suite90.tech)
        topology = synthesize(spec, suite90.proposed, suite90.tech)
        index = next(iter(topology.routes))
        flow = spec.flows[index]
        stripped = _rebuild_without_flow(topology, index)
        assert index not in stripped.routes
        assert len(stripped.routes) == len(topology.routes) - 1
        # Loads on the remaining network never exceed the original.
        for a, b, data in stripped.links():
            assert data["load"] <= topology.edge_load(a, b) + 1e-9

    def test_remaining_routes_intact(self, suite90):
        spec = dual_vopd(suite90.tech)
        topology = synthesize(spec, suite90.proposed, suite90.tech)
        index = next(iter(topology.routes))
        stripped = _rebuild_without_flow(topology, index)
        for other, path in stripped.routes.items():
            assert path == topology.routes[other]


class TestImprovement:
    def test_never_worse(self, vproc_result, suite90):
        _, result = vproc_result
        assert result.final_power <= result.initial_power * (1 + 1e-9)
        assert result.improvement >= 0.0

    def test_all_flows_still_routed(self, vproc_result, suite90):
        _, result = vproc_result
        spec = result.topology.spec
        assert len(result.topology.routes) == len(spec.flows)
        capacity = 128 * suite90.tech.clock_frequency * 0.75
        assert result.topology.validate(capacity, max_ports=8) == []

    def test_reported_power_matches_evaluation(self, vproc_result,
                                               suite90):
        _, result = vproc_result
        report = evaluate_topology(result.topology, suite90.proposed,
                                   suite90.tech)
        assert report.total_power == pytest.approx(result.final_power,
                                                   rel=1e-9)

    def test_terminates_quickly_on_stable_topology(self, vproc_result,
                                                   suite90):
        # A second improvement run on an already-improved topology
        # makes no further changes.
        _, result = vproc_result
        again = improve_topology(result.topology, suite90.proposed,
                                 suite90.tech)
        assert again.reroutes == 0
        assert again.final_power == pytest.approx(result.final_power,
                                                  rel=1e-12)

    def test_improves_adversarial_ordering(self, suite90):
        """A spec engineered so greedy bandwidth-order routing commits
        a detour the improvement pass can undo: many small flows first
        install a shared trunk, then re-routing lets the big flow's
        early dedicated path be folded onto it."""
        spec = CommunicationSpec(name="adv", data_width=64)
        spec.add_core("a", 0.0, 0.0)
        spec.add_core("h1", mm(3), mm(0.4))
        spec.add_core("h2", mm(6), mm(0.4))
        spec.add_core("b", mm(9), 0.0)
        # Big flow routed first (greedy order): direct a->b link.
        spec.add_flow("a", "b", 4e9)
        # Smaller flows then build a parallel shared path a->h1->h2->b.
        spec.add_flow("a", "h1", 2e9)
        spec.add_flow("h1", "h2", 2e9)
        spec.add_flow("h2", "b", 2e9)
        spec.add_flow("a", "h2", 1.5e9)
        spec.add_flow("h1", "b", 1.5e9)
        topology = synthesize(spec, suite90.proposed, suite90.tech)
        result = improve_topology(topology, suite90.proposed,
                                  suite90.tech)
        assert result.final_power <= result.initial_power * (1 + 1e-9)
