"""Link design and feasibility."""

import pytest

from repro.noc.link import _LENGTH_QUANTUM, LinkDesign, LinkDesigner
from repro.units import mm


@pytest.fixture(scope="module")
def designer(suite90):
    return LinkDesigner(suite90.proposed, suite90.tech, bus_width=128)


class TestCapacityAndFeasibility:
    def test_capacity(self, designer, suite90):
        expected = 128 * suite90.tech.clock_frequency * 0.75
        assert designer.capacity() == pytest.approx(expected)

    def test_max_length_cached(self, designer):
        first = designer.max_length()
        second = designer.max_length()
        assert first == second > mm(2)

    def test_feasibility(self, designer):
        assert designer.is_feasible(mm(2))
        assert not designer.is_feasible(designer.max_length() * 1.5)

    def test_utilization_validation(self, suite90):
        with pytest.raises(ValueError):
            LinkDesigner(suite90.proposed, suite90.tech, 128,
                         utilization=0.0)


class TestDesign:
    def test_design_meets_clock_period(self, designer, suite90):
        design = designer.design(mm(4))
        assert design is not None
        assert design.delay <= suite90.tech.clock_period() * (1 + 1e-6)

    def test_design_infeasible_length_returns_none(self, designer):
        too_long = designer.max_length() * 1.5
        assert designer.design(too_long) is None

    def test_design_cache_by_quantum(self, designer):
        a = designer.design(mm(2.0))
        b = designer.design(mm(2.0) + 1e-6)  # same 0.05 mm bucket
        assert a is b

    def test_length_validation(self, designer):
        with pytest.raises(ValueError):
            designer.design(0.0)

    def test_dynamic_power_scales_with_load(self, designer, suite90):
        design = designer.design(mm(3))
        vdd = suite90.tech.vdd
        f = suite90.tech.clock_frequency
        low = design.dynamic_power(1e9, vdd, f)
        high = design.dynamic_power(4e9, vdd, f)
        assert high == pytest.approx(4 * low)
        assert design.dynamic_power(0.0, vdd, f) == 0.0
        with pytest.raises(ValueError):
            design.dynamic_power(-1.0, vdd, f)

    def test_longer_links_cost_more(self, designer, suite90):
        short = designer.design(mm(1))
        long_ = designer.design(mm(5))
        vdd, f = suite90.tech.vdd, suite90.tech.clock_frequency
        assert long_.leakage_power > short.leakage_power
        assert long_.dynamic_power(1e9, vdd, f) > \
            short.dynamic_power(1e9, vdd, f)
        assert long_.total_area > short.total_area

    def test_bus_width_reflected_in_design(self, suite90):
        narrow = LinkDesigner(suite90.proposed, suite90.tech, 32)
        wide = LinkDesigner(suite90.proposed, suite90.tech, 128)
        d_narrow = narrow.design(mm(3))
        d_wide = wide.design(mm(3))
        assert d_wide.leakage_power == pytest.approx(
            4 * d_narrow.leakage_power, rel=0.01)


class TestQuantizationEdges:
    """Regression tests for the length-quantum boundary behaviour."""

    def test_boundary_and_epsilon_below_share_a_design(self, designer):
        on_boundary = 40 * _LENGTH_QUANTUM          # exactly 2.0 mm
        just_below = on_boundary - 1e-12
        assert designer.design(on_boundary) \
            == designer.design(just_below)

    def test_every_grid_point_matches_its_neighborhood(self, designer):
        for index in (21, 33, 47):
            boundary = index * _LENGTH_QUANTUM
            design = designer.design(boundary)
            assert design is not None
            assert designer.design(boundary - 1e-12) == design

    def test_design_consistent_with_max_feasible_length(self, designer):
        """``is_feasible`` and ``design`` must agree at the edge: the
        longest feasible length gets a design even though rounding to
        the quantum grid would push it past the feasibility bound."""
        edge = designer.max_length()
        assert designer.is_feasible(edge)
        design = designer.design(edge)
        assert design is not None
        # The designed (quantized) length never exceeds the bound.
        assert design.length <= edge + 1e-15

    def test_just_past_the_edge_is_rejected(self, designer):
        past = designer.max_length() * (1 + 1e-9)
        assert not designer.is_feasible(past)
        assert designer.design(past) is None


class TestBatchedScorerBoundaries:
    """`design_batch` feeds the kernel-backed scorer; the quantization
    edges must behave exactly as one-at-a-time `design` calls."""

    def test_edge_exactly_at_max_feasible_length(self, designer):
        edge = designer.max_length()
        batch = designer.design_batch([mm(1), edge])
        assert batch[0] is not None
        assert batch[1] is not None
        assert batch[1] == designer.design(edge)

    def test_past_edge_yields_none_in_batch(self, designer):
        past = designer.max_length() * (1 + 1e-9)
        batch = designer.design_batch([mm(2), past])
        assert batch[0] is not None
        assert batch[1] is None

    def test_zero_length_link_rejected(self, designer):
        with pytest.raises(ValueError):
            designer.design_batch([mm(1), 0.0])
        with pytest.raises(ValueError):
            designer.design_batch([-mm(1)])

    def test_batch_elements_are_the_memoized_designs(self, designer):
        lengths = [mm(1.5), mm(2.5)]
        batch = designer.design_batch(lengths)
        for length, design in zip(lengths, batch):
            assert designer.design(length) is design

    def test_empty_batch(self, designer):
        assert designer.design_batch([]) == []


class TestPersistentRoundTrip:
    def test_payload_round_trip_is_lossless(self, designer):
        design = designer.design(mm(3))
        clone = LinkDesign.from_payload(design.to_payload())
        assert clone == design

    def test_unfingerprintable_model_still_constructs(self, suite90):
        class Opaque:
            pass

        # No crash: the persistent level is skipped for models the
        # canonicalizer cannot render.
        LinkDesigner(Opaque(), suite90.tech, 64)
