"""Link design and feasibility."""

import pytest

from repro.noc.link import (
    _LENGTH_QUANTUM,
    _LRUMemo,
    _MISS,
    LinkDesign,
    LinkDesigner,
    quantize_length,
)
from repro.runtime import METRICS
from repro.units import mm


@pytest.fixture(scope="module")
def designer(suite90):
    return LinkDesigner(suite90.proposed, suite90.tech, bus_width=128)


class TestCapacityAndFeasibility:
    def test_capacity(self, designer, suite90):
        expected = 128 * suite90.tech.clock_frequency * 0.75
        assert designer.capacity() == pytest.approx(expected)

    def test_max_length_cached(self, designer):
        first = designer.max_length()
        second = designer.max_length()
        assert first == second > mm(2)

    def test_feasibility(self, designer):
        assert designer.is_feasible(mm(2))
        assert not designer.is_feasible(designer.max_length() * 1.5)

    def test_utilization_validation(self, suite90):
        with pytest.raises(ValueError):
            LinkDesigner(suite90.proposed, suite90.tech, 128,
                         utilization=0.0)


class TestDesign:
    def test_design_meets_clock_period(self, designer, suite90):
        design = designer.design(mm(4))
        assert design is not None
        assert design.delay <= suite90.tech.clock_period() * (1 + 1e-6)

    def test_design_infeasible_length_returns_none(self, designer):
        too_long = designer.max_length() * 1.5
        assert designer.design(too_long) is None

    def test_design_cache_by_quantum(self, designer):
        a = designer.design(mm(2.0))
        b = designer.design(mm(2.0) + 1e-6)  # same 0.05 mm bucket
        assert a is b

    def test_length_validation(self, designer):
        with pytest.raises(ValueError):
            designer.design(0.0)

    def test_dynamic_power_scales_with_load(self, designer, suite90):
        design = designer.design(mm(3))
        vdd = suite90.tech.vdd
        f = suite90.tech.clock_frequency
        low = design.dynamic_power(1e9, vdd, f)
        high = design.dynamic_power(4e9, vdd, f)
        assert high == pytest.approx(4 * low)
        assert design.dynamic_power(0.0, vdd, f) == 0.0
        with pytest.raises(ValueError):
            design.dynamic_power(-1.0, vdd, f)

    def test_longer_links_cost_more(self, designer, suite90):
        short = designer.design(mm(1))
        long_ = designer.design(mm(5))
        vdd, f = suite90.tech.vdd, suite90.tech.clock_frequency
        assert long_.leakage_power > short.leakage_power
        assert long_.dynamic_power(1e9, vdd, f) > \
            short.dynamic_power(1e9, vdd, f)
        assert long_.total_area > short.total_area

    def test_bus_width_reflected_in_design(self, suite90):
        narrow = LinkDesigner(suite90.proposed, suite90.tech, 32)
        wide = LinkDesigner(suite90.proposed, suite90.tech, 128)
        d_narrow = narrow.design(mm(3))
        d_wide = wide.design(mm(3))
        assert d_wide.leakage_power == pytest.approx(
            4 * d_narrow.leakage_power, rel=0.01)


class TestQuantizationEdges:
    """Regression tests for the length-quantum boundary behaviour."""

    def test_boundary_and_epsilon_below_share_a_design(self, designer):
        on_boundary = 40 * _LENGTH_QUANTUM          # exactly 2.0 mm
        just_below = on_boundary - 1e-12
        assert designer.design(on_boundary) \
            == designer.design(just_below)

    def test_every_grid_point_matches_its_neighborhood(self, designer):
        for index in (21, 33, 47):
            boundary = index * _LENGTH_QUANTUM
            design = designer.design(boundary)
            assert design is not None
            assert designer.design(boundary - 1e-12) == design

    def test_design_consistent_with_max_feasible_length(self, designer):
        """``is_feasible`` and ``design`` must agree at the edge: the
        longest feasible length gets a design even though rounding to
        the quantum grid would push it past the feasibility bound."""
        edge = designer.max_length()
        assert designer.is_feasible(edge)
        design = designer.design(edge)
        assert design is not None
        # The designed (quantized) length never exceeds the bound.
        assert design.length <= edge + 1e-15

    def test_just_past_the_edge_is_rejected(self, designer):
        past = designer.max_length() * (1 + 1e-9)
        assert not designer.is_feasible(past)
        assert designer.design(past) is None


class TestBatchedScorerBoundaries:
    """`design_batch` feeds the kernel-backed scorer; the quantization
    edges must behave exactly as one-at-a-time `design` calls."""

    def test_edge_exactly_at_max_feasible_length(self, designer):
        edge = designer.max_length()
        batch = designer.design_batch([mm(1), edge])
        assert batch[0] is not None
        assert batch[1] is not None
        assert batch[1] == designer.design(edge)

    def test_past_edge_yields_none_in_batch(self, designer):
        past = designer.max_length() * (1 + 1e-9)
        batch = designer.design_batch([mm(2), past])
        assert batch[0] is not None
        assert batch[1] is None

    def test_zero_length_link_rejected(self, designer):
        with pytest.raises(ValueError):
            designer.design_batch([mm(1), 0.0])
        with pytest.raises(ValueError):
            designer.design_batch([-mm(1)])

    def test_batch_elements_are_the_memoized_designs(self, designer):
        lengths = [mm(1.5), mm(2.5)]
        batch = designer.design_batch(lengths)
        for length, design in zip(lengths, batch):
            assert designer.design(length) is design

    def test_empty_batch(self, designer):
        assert designer.design_batch([]) == []


class TestQuantizeLength:
    """The one key function both design entry points share."""

    def test_rounds_to_nearest_quantum(self):
        assert quantize_length(2.0e-3, 1.0) == 40
        assert quantize_length(2.024e-3, 1.0) == 40
        assert quantize_length(2.026e-3, 1.0) == 41

    def test_floors_at_one_quantum(self):
        assert quantize_length(1e-9, 1.0) == 1

    def test_falls_back_below_the_feasibility_edge(self):
        # Rounding 2.03 mm up to 41 quanta would cross a 2.04 mm
        # bound; the key falls back to the quantum at or below.
        assert quantize_length(2.03e-3, 2.04e-3) == 40


class TestLRUMemo:
    def test_none_is_a_first_class_entry(self):
        memo = _LRUMemo(4)
        memo.store(7, None)
        assert memo.lookup(7) is None
        assert memo.lookup(8) is _MISS

    def test_evicts_least_recently_used(self):
        memo = _LRUMemo(2)
        memo.store(1, "a")
        memo.store(2, "b")
        memo.lookup(1)          # 1 is now most recently used
        memo.store(3, "c")      # evicts 2
        assert memo.lookup(2) is _MISS
        assert memo.lookup(1) == "a"
        assert memo.lookup(3) == "c"
        assert len(memo) == 2

    def test_eviction_counted(self):
        before = METRICS.counters.get("link.memo_evicted", 0)
        memo = _LRUMemo(1)
        memo.store(1, "a")
        memo.store(2, "b")
        memo.store(3, "c")
        assert METRICS.counters["link.memo_evicted"] - before == 2

    def test_bound_validated(self):
        with pytest.raises(ValueError):
            _LRUMemo(0)


class TestMemoBound:
    def test_designer_memo_respects_the_bound(self, suite90):
        """Six distinct quanta through a 4-entry memo stay at 4."""
        designer = LinkDesigner(suite90.proposed, suite90.tech, 128,
                                memo_entries=4)
        lengths = [mm(value) for value in
                   (1.0, 1.5, 2.0, 2.5, 3.0, 3.5)]
        for length in lengths:
            designer.design(length)
        assert len(designer._memo) == 4

    def test_evicted_entry_recomputes_identically(self, suite90):
        designer = LinkDesigner(suite90.proposed, suite90.tech, 128,
                                memo_entries=1)
        first = designer.design(mm(1.0))
        designer.design(mm(2.0))    # evicts the 1.0 mm entry
        again = designer.design(mm(1.0))
        assert again == first


class TestBatchScalarParity:
    """`design_batch` must populate and consult the caches exactly as
    scalar `design` does: bit-equal results, identical counter
    attribution."""

    LENGTHS_MM = (1.0, 2.2, 3.7, 2.2, 2.2001)

    def _fresh(self, suite90):
        # No disk level: parity must hold from the memo and the
        # compute path alone (the disk level would mask divergence
        # between the two entry points).
        return LinkDesigner(suite90.proposed, suite90.tech, 128,
                            use_disk_cache=False)

    def test_bit_equal_results_and_identical_accounting(self,
                                                        suite90):
        lengths = [mm(value) for value in self.LENGTHS_MM]

        scalar_designer = self._fresh(suite90)
        before = dict(METRICS.counters)
        scalar = [scalar_designer.design(length)
                  for length in lengths]
        scalar_delta = {
            name: METRICS.counters.get(name, 0) - before.get(name, 0)
            for name in ("link.memo_hit", "link.design_attempts")}

        batch_designer = self._fresh(suite90)
        before = dict(METRICS.counters)
        batch = batch_designer.design_batch(lengths)
        batch_delta = {
            name: METRICS.counters.get(name, 0) - before.get(name, 0)
            for name in ("link.memo_hit", "link.design_attempts")}

        assert [design.to_payload() for design in scalar] \
            == [design.to_payload() for design in batch]
        # 2.2 repeats twice (same quantum: two memo hits) and 2.2001
        # lands on the same quantum as 2.2 — three distinct computes.
        assert scalar_delta == batch_delta
        assert scalar_delta["link.memo_hit"] == 2
        assert scalar_delta["link.design_attempts"] == 3

    def test_batch_then_scalar_shares_the_memo(self, suite90):
        designer = self._fresh(suite90)
        lengths = [mm(1.0), mm(2.0)]
        batch = designer.design_batch(lengths)
        before = METRICS.counters.get("link.design_attempts", 0)
        assert designer.design(mm(1.0)) is batch[0]
        assert designer.design(mm(2.0)) is batch[1]
        assert METRICS.counters.get("link.design_attempts", 0) \
            == before


class TestPersistentRoundTrip:
    def test_payload_round_trip_is_lossless(self, designer):
        design = designer.design(mm(3))
        clone = LinkDesign.from_payload(design.to_payload())
        assert clone == design

    def test_unfingerprintable_model_still_constructs(self, suite90):
        class Opaque:
            pass

        # No crash: the persistent level is skipped for models the
        # canonicalizer cannot render.
        LinkDesigner(Opaque(), suite90.tech, 64)
