"""Channel-dependency deadlock analysis."""

import pytest

from repro.noc.deadlock import (
    analyze_deadlock,
    assert_deadlock_free,
    channel_dependency_graph,
)
from repro.noc.mesh import build_mesh
from repro.noc.spec import CommunicationSpec
from repro.noc.synthesis import synthesize
from repro.noc.testcases import dual_vopd, vproc
from repro.noc.topology import NocTopology, core_node, router_node
from repro.units import mm


def ring_topology():
    """A hand-built topology whose routes form a dependency cycle."""
    spec = CommunicationSpec(name="ring", data_width=8)
    positions = [(0, 0), (2, 0), (2, 2), (0, 2)]
    for index, (x, y) in enumerate(positions):
        spec.add_core(f"c{index}", mm(x), mm(y))
    # Each flow goes two hops clockwise around the ring.
    for index in range(4):
        spec.add_flow(f"c{index}", f"c{(index + 2) % 4}", 1e8)

    topology = NocTopology(spec=spec)
    for index, (x, y) in enumerate(positions):
        topology.add_core_node(f"c{index}")
        topology.add_router(f"r{index}", mm(x), mm(y))
        topology.add_link(core_node(f"c{index}"),
                          router_node(f"r{index}"), mm(0.2))
        topology.add_link(router_node(f"r{index}"),
                          core_node(f"c{index}"), mm(0.2))
    for index in range(4):
        topology.add_link(router_node(f"r{index}"),
                          router_node(f"r{(index + 1) % 4}"), mm(2))
    for index in range(4):
        path = [core_node(f"c{index}"),
                router_node(f"r{index}"),
                router_node(f"r{(index + 1) % 4}"),
                router_node(f"r{(index + 2) % 4}"),
                core_node(f"c{(index + 2) % 4}")]
        topology.route_flow(index, path)
    return topology


class TestCdgConstruction:
    def test_channels_are_nodes(self, suite90):
        spec = dual_vopd(suite90.tech)
        topology = synthesize(spec, suite90.proposed, suite90.tech)
        cdg = channel_dependency_graph(topology)
        assert cdg.number_of_nodes() == \
            topology.graph.number_of_edges()

    def test_dependencies_follow_routes(self):
        topology = ring_topology()
        cdg = channel_dependency_graph(topology)
        held = (router_node("r0"), router_node("r1"))
        wanted = (router_node("r1"), router_node("r2"))
        assert cdg.has_edge(held, wanted)


class TestCycleDetection:
    def test_ring_routes_deadlock(self):
        report = analyze_deadlock(ring_topology())
        assert not report.deadlock_free
        assert len(report.cycles) >= 1
        assert "cycle" in report.summary()

    def test_assert_raises_on_ring(self):
        with pytest.raises(RuntimeError, match="dependency cycle"):
            assert_deadlock_free(ring_topology())

    def test_xy_mesh_is_deadlock_free(self, suite90):
        spec = vproc(suite90.tech)
        mesh = build_mesh(spec)
        report = analyze_deadlock(mesh)
        assert report.deadlock_free, report.summary()

    def test_synthesized_testcases_are_deadlock_free(self, suite90):
        for factory in (dual_vopd, vproc):
            spec = factory(suite90.tech)
            topology = synthesize(spec, suite90.proposed, suite90.tech)
            report = analyze_deadlock(topology)
            assert report.deadlock_free, (spec.name, report.summary())
