"""Flow-level timing analysis."""

import pytest

from repro.noc.router import RouterParameters
from repro.noc.synthesis import synthesize
from repro.noc.testcases import dual_vopd
from repro.noc.timing import analyze_timing, check_latency_requirements
from repro.noc.topology import NocTopology
from repro.units import ns


@pytest.fixture(scope="module")
def report(suite90):
    spec = dual_vopd(suite90.tech)
    topology = synthesize(spec, suite90.proposed, suite90.tech)
    return analyze_timing(topology, suite90.tech)


class TestAnalyzeTiming:
    def test_every_flow_covered(self, report, suite90):
        spec = dual_vopd(suite90.tech)
        assert len(report.flows) == len(spec.flows)

    def test_cycle_accounting(self, report, suite90):
        params = RouterParameters.for_technology(suite90.tech, 128)
        for timing in report.flows:
            assert timing.router_cycles == \
                timing.hops * params.pipeline_cycles
            # Path structure: core->r, (hops-1) router links, r->core.
            assert timing.link_cycles == timing.hops + 1
            expected = (timing.total_cycles
                        * suite90.tech.clock_period())
            assert timing.latency_seconds == pytest.approx(expected)

    def test_minimum_latency_is_two_hop_path(self, report):
        fastest = min(report.flows, key=lambda f: f.total_cycles)
        # core->r->r->core: 3 links + 2 routers x 3 cycles = 9 cycles.
        assert fastest.total_cycles == 9

    def test_worst_and_average(self, report):
        worst = report.worst()
        assert worst.total_cycles >= report.average_cycles()

    def test_format(self, report):
        text = report.format(limit=5)
        assert "worst latency" in text
        assert "cycles" in text

    def test_empty_topology_rejected(self, suite90):
        spec = dual_vopd(suite90.tech)
        empty = NocTopology(spec=spec)
        with pytest.raises(ValueError):
            analyze_timing(empty, suite90.tech)


class TestRequirements:
    def test_met_requirements_are_silent(self, report):
        worst = report.worst()
        requirements = {(worst.source, worst.dest):
                        worst.latency_seconds * 1.01}
        assert check_latency_requirements(report, requirements) == []

    def test_violation_reported(self, report):
        worst = report.worst()
        requirements = {(worst.source, worst.dest):
                        worst.latency_seconds * 0.5}
        violations = check_latency_requirements(report, requirements)
        assert len(violations) == 1
        assert "exceeds" in violations[0]

    def test_unconstrained_flows_ignored(self, report):
        assert check_latency_requirements(report, {}) == []
