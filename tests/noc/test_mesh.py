"""2D-mesh baseline."""

import pytest

from repro.noc.evaluation import evaluate_topology
from repro.noc.mesh import (
    MeshPlacement,
    build_mesh,
    mesh_hop_bound,
    xy_route,
)
from repro.noc.spec import CommunicationSpec
from repro.noc.testcases import dual_vopd
from repro.units import mm


@pytest.fixture
def square_spec():
    spec = CommunicationSpec(name="sq", data_width=64)
    for index, (x, y) in enumerate([(0, 0), (4, 0), (0, 4), (4, 4),
                                    (2, 2)]):
        spec.add_core(f"c{index}", mm(x), mm(y))
    spec.add_flow("c0", "c3", 1e9)
    spec.add_flow("c1", "c2", 2e9)
    spec.add_flow("c4", "c0", 0.5e9)
    return spec


class TestXYRoute:
    def test_straight_line(self):
        assert xy_route((0, 0), (3, 0)) == [(0, 0), (1, 0), (2, 0),
                                            (3, 0)]

    def test_l_shape_x_first(self):
        path = xy_route((0, 0), (2, 2))
        assert path == [(0, 0), (1, 0), (2, 0), (2, 1), (2, 2)]

    def test_negative_directions(self):
        path = xy_route((2, 2), (0, 1))
        assert path == [(2, 2), (1, 2), (0, 2), (0, 1)]

    def test_same_point(self):
        assert xy_route((1, 1), (1, 1)) == [(1, 1)]

    def test_deadlock_free_property(self):
        # XY routing never takes a Y step before finishing X: check the
        # invariant on a batch of routes.
        for src in [(0, 0), (3, 1), (2, 4)]:
            for dst in [(4, 4), (0, 2), (1, 0)]:
                path = xy_route(src, dst)
                turned = False
                for (c0, r0), (c1, r1) in zip(path, path[1:]):
                    if r1 != r0:
                        turned = True
                    if c1 != c0:
                        assert not turned, (src, dst, path)


class TestMeshPlacement:
    def test_nearest_router(self, square_spec):
        placement = MeshPlacement(square_spec, columns=3, rows=3)
        assert placement.nearest(0.0, 0.0) == (0, 0)
        assert placement.nearest(mm(4), mm(4)) == (2, 2)
        assert placement.nearest(mm(2), mm(2)) == (1, 1)

    def test_degenerate_collinear_floorplan(self):
        spec = CommunicationSpec(name="line", data_width=8)
        spec.add_core("a", 0.0, 0.0)
        spec.add_core("b", mm(2), 0.0)
        spec.add_flow("a", "b", 1e9)
        placement = MeshPlacement(spec)
        assert placement.pitch_y > 0


class TestBuildMesh:
    def test_all_flows_routed(self, square_spec):
        topology = build_mesh(square_spec)
        assert len(topology.routes) == len(square_spec.flows)
        assert topology.validate(capacity=1e15) == []

    def test_xy_paths_have_manhattan_hops(self, square_spec):
        topology = build_mesh(square_spec, columns=3, rows=3)
        # c0 at (0,0) -> c3 at (2,2): 2+2 grid steps -> 5 routers.
        assert topology.hop_count(0) == 5

    def test_mesh_links_have_pitch_length(self, square_spec):
        topology = build_mesh(square_spec, columns=3, rows=3)
        for a, b, data in topology.links():
            if a[0] == "router" and b[0] == "router":
                assert data["length"] == pytest.approx(mm(2), rel=1e-6)

    def test_dvopd_mesh(self, suite90):
        spec = dual_vopd(suite90.tech)
        topology = build_mesh(spec)
        assert len(topology.routes) == len(spec.flows)
        report = evaluate_topology(topology, suite90.proposed,
                                   suite90.tech)
        assert report.total_power > 0
        avg, worst = topology.hop_statistics()
        assert worst <= mesh_hop_bound(spec)


class TestCustomVsMesh:
    def test_synthesized_topology_beats_mesh_on_power(self, suite90):
        """The COSI-style claim: application-specific synthesis beats
        the regular mesh on interconnect power."""
        from repro.noc.synthesis import synthesize
        spec = dual_vopd(suite90.tech)
        custom = synthesize(spec, suite90.proposed, suite90.tech)
        mesh = build_mesh(spec)
        custom_report = evaluate_topology(custom, suite90.proposed,
                                          suite90.tech)
        mesh_report = evaluate_topology(mesh, suite90.proposed,
                                        suite90.tech)
        assert custom_report.total_power < mesh_report.total_power
        assert custom_report.avg_hops <= mesh_report.avg_hops
