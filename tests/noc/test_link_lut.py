"""LinkDesigner on the LUT-served model: designs and cache identity."""

from __future__ import annotations

import dataclasses

from repro.luts.build import build_artifact
from repro.luts.grid import COARSE_GRID
from repro.luts.model import serve
from repro.noc.link import LinkDesigner
from repro.units import mm


class TestLutLinkDesigns:
    def test_designs_meet_the_clock(self, suite90, lut90, tech90):
        designer = LinkDesigner(lut90, tech90, 64)
        period = tech90.clock_period()
        for length_mm in (1.0, 3.0, 6.0):
            design = designer.design(mm(length_mm))
            assert design is not None
            assert design.solution.delay <= period

    def test_max_length_matches_closed_form(self, suite90, lut90,
                                            tech90):
        lut_designer = LinkDesigner(lut90, tech90, 64)
        base_designer = LinkDesigner(suite90.proposed, tech90, 64)
        assert lut_designer.max_length() \
            == base_designer.max_length()


class TestDiskCacheIdentity:
    def test_lut_context_differs_from_base(self, suite90, lut90,
                                           tech90):
        lut_designer = LinkDesigner(lut90, tech90, 64)
        base_designer = LinkDesigner(suite90.proposed, tech90, 64)
        assert lut_designer._context_hash is not None
        assert lut_designer._context_hash \
            != base_designer._context_hash

    def test_rebuilt_grid_misses_the_cache(self, suite90, lut90,
                                           tech90):
        """Satellite regression: a rebuilt artifact (different grid,
        hence different content hash) must produce a different link
        disk-cache context, so stale designs cannot be served."""
        spec = dataclasses.replace(COARSE_GRID,
                                   counts=tuple(range(1, 17)))
        rebuilt = build_artifact(suite90.proposed, "90nm", spec,
                                 workers=2)
        assert rebuilt.content_hash != lut90.artifact.content_hash
        first = LinkDesigner(lut90, tech90, 64)
        second = LinkDesigner(serve(suite90.proposed, rebuilt),
                              tech90, 64)
        assert first._context_hash != second._context_hash
