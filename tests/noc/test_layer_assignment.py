"""Layer-aware link design."""

import pytest

from repro.models.interconnect import BufferedInterconnectModel
from repro.noc.link import LayerAwareLinkDesigner, LinkDesigner
from repro.tech.design_styles import DesignStyle, WireConfiguration
from repro.units import mm


@pytest.fixture(scope="module")
def layer_models(suite90):
    intermediate_config = WireConfiguration.for_style(
        suite90.tech.wire_layers["intermediate"], DesignStyle.SWSS)
    intermediate_model = BufferedInterconnectModel(
        tech=suite90.tech,
        calibration=suite90.calibration,
        config=intermediate_config,
        activity_factor=suite90.proposed.activity_factor,
    )
    return {"global": suite90.proposed,
            "intermediate": intermediate_model}


@pytest.fixture(scope="module")
def designer(layer_models, suite90):
    return LayerAwareLinkDesigner(layer_models, suite90.tech,
                                  bus_width=128)


class TestConstruction:
    def test_needs_layers(self, suite90):
        with pytest.raises(ValueError):
            LayerAwareLinkDesigner({}, suite90.tech, 128)

    def test_capacity_matches_plain_designer(self, designer,
                                             layer_models, suite90):
        plain = LinkDesigner(layer_models["global"], suite90.tech, 128)
        assert designer.capacity() == plain.capacity()


class TestFeasibility:
    def test_max_length_is_best_layer(self, designer, layer_models,
                                      suite90):
        per_layer = [
            LinkDesigner(model, suite90.tech, 128).max_length()
            for model in layer_models.values()
        ]
        assert designer.max_length() == pytest.approx(max(per_layer))

    def test_global_layer_reaches_farther(self, layer_models, suite90):
        global_reach = LinkDesigner(layer_models["global"],
                                    suite90.tech, 128).max_length()
        intermediate_reach = LinkDesigner(layer_models["intermediate"],
                                          suite90.tech,
                                          128).max_length()
        assert global_reach > intermediate_reach


class TestLayerChoice:
    def test_long_links_use_global(self, designer):
        # Beyond the intermediate layer's reach, only global works.
        long_length = mm(12)
        assert designer.layer_choice(long_length) == "global"

    def test_choice_matches_design(self, designer, layer_models,
                                   suite90):
        length = mm(2)
        chosen = designer.layer_choice(length)
        assert chosen in layer_models
        design = designer.design(length)
        reference = LinkDesigner(layer_models[chosen], suite90.tech,
                                 128).design(length)
        assert design.leakage_power == pytest.approx(
            reference.leakage_power)

    def test_infeasible_returns_none(self, designer):
        too_long = designer.max_length() * 2.0
        assert designer.design(too_long) is None
        assert designer.layer_choice(too_long) is None

    def test_design_never_worse_than_single_layer(self, designer,
                                                  layer_models,
                                                  suite90):
        plain = LinkDesigner(layer_models["global"], suite90.tech, 128)
        for length_mm in (1.0, 3.0, 6.0):
            combined = designer.design(mm(length_mm))
            single = plain.design(mm(length_mm))
            ref_cost = designer._reference_cost
            assert ref_cost(combined) <= ref_cost(single) * (1 + 1e-9)
