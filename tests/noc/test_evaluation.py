"""Topology evaluation and cross-evaluation."""

import pytest

from repro.noc.evaluation import NocReport, evaluate_topology
from repro.noc.synthesis import synthesize
from repro.noc.testcases import dual_vopd


@pytest.fixture(scope="module")
def dvopd_proposed(suite90):
    spec = dual_vopd(suite90.tech)
    return synthesize(spec, suite90.proposed, suite90.tech)


@pytest.fixture(scope="module")
def dvopd_report(dvopd_proposed, suite90):
    return evaluate_topology(dvopd_proposed, suite90.proposed,
                             suite90.tech)


class TestReportBasics:
    def test_totals_positive(self, dvopd_report):
        assert dvopd_report.dynamic_power > 0
        assert dvopd_report.leakage_power > 0
        assert dvopd_report.router_dynamic_power > 0
        assert dvopd_report.total_area > 0

    def test_total_power_composition(self, dvopd_report):
        assert dvopd_report.total_power == pytest.approx(
            dvopd_report.dynamic_power + dvopd_report.leakage_power
            + dvopd_report.router_dynamic_power)

    def test_no_infeasible_links_under_own_model(self, dvopd_report):
        assert dvopd_report.infeasible_links == 0

    def test_hops_at_least_two(self, dvopd_report):
        # Every flow traverses at least ingress and egress routers.
        assert dvopd_report.avg_hops >= 2.0
        assert dvopd_report.max_hops >= 2

    def test_max_link_delay_within_clock(self, dvopd_report, suite90):
        assert dvopd_report.max_link_delay <= \
            suite90.tech.clock_period() * (1 + 1e-6)

    def test_row_and_header_render(self, dvopd_report):
        assert len(NocReport.header()) > 0
        assert dvopd_report.name in dvopd_report.row()


class TestCrossEvaluation:
    def test_original_power_underestimated(self, suite90):
        """The Table III headline: the original model underestimates
        dynamic power by up to ~3x."""
        spec = dual_vopd(suite90.tech)
        topology = synthesize(spec, suite90.bakoglu, suite90.tech)
        self_view = evaluate_topology(topology, suite90.bakoglu,
                                      suite90.tech)
        accurate = evaluate_topology(topology, suite90.proposed,
                                     suite90.tech)
        ratio = accurate.dynamic_power / self_view.dynamic_power
        assert ratio > 1.5

    def test_same_topology_same_router_costs(self, suite90):
        # Router power/area depend only on the topology, not on the
        # interconnect model.
        spec = dual_vopd(suite90.tech)
        topology = synthesize(spec, suite90.bakoglu, suite90.tech)
        a = evaluate_topology(topology, suite90.bakoglu, suite90.tech)
        b = evaluate_topology(topology, suite90.proposed, suite90.tech)
        assert a.router_dynamic_power == pytest.approx(
            b.router_dynamic_power)
        assert a.router_area == pytest.approx(b.router_area)
        assert a.avg_hops == b.avg_hops

    def test_area_estimates_differ_strongly(self, suite90):
        spec = dual_vopd(suite90.tech)
        topology = synthesize(spec, suite90.bakoglu, suite90.tech)
        original = evaluate_topology(topology, suite90.bakoglu,
                                     suite90.tech)
        accurate = evaluate_topology(topology, suite90.proposed,
                                     suite90.tech)
        assert accurate.repeater_area > 1.5 * original.repeater_area
