"""Router cost model."""

import pytest

from repro.noc.router import RouterParameters
from repro.tech import get_technology


class TestScaling:
    def test_reference_values_at_90nm(self, tech90):
        params = RouterParameters.for_technology(tech90, flit_width=128)
        assert params.energy_per_bit == pytest.approx(1.0e-12, rel=0.01)
        assert params.leakage_per_port == pytest.approx(0.4e-3,
                                                        rel=0.01)
        assert params.area_per_port == pytest.approx(0.06e-6, rel=0.01)

    def test_energy_shrinks_with_node(self, tech90):
        tech45 = get_technology("45nm")
        p90 = RouterParameters.for_technology(tech90)
        p45 = RouterParameters.for_technology(tech45)
        assert p45.energy_per_bit < p90.energy_per_bit
        assert p45.area_per_port < p90.area_per_port

    def test_flit_width_scales_costs(self, tech90):
        narrow = RouterParameters.for_technology(tech90, flit_width=64)
        wide = RouterParameters.for_technology(tech90, flit_width=128)
        assert wide.leakage_per_port == pytest.approx(
            2 * narrow.leakage_per_port)
        assert wide.area_per_port == pytest.approx(
            2 * narrow.area_per_port)


class TestCostQueries:
    @pytest.fixture
    def params(self, tech90):
        return RouterParameters.for_technology(tech90)

    def test_dynamic_power(self, params):
        assert params.dynamic_power(1e9) == pytest.approx(
            params.energy_per_bit * 1e9)

    def test_traversal_energy(self, params):
        assert params.traversal_energy(128.0) == pytest.approx(
            128 * params.energy_per_bit)

    def test_leakage_and_area_linear_in_ports(self, params):
        assert params.leakage_power(6) == pytest.approx(
            3 * params.leakage_power(2))
        assert params.area(6) == pytest.approx(3 * params.area(2))

    def test_latency(self, params, tech90):
        assert params.latency(tech90.clock_period()) == pytest.approx(
            params.pipeline_cycles * tech90.clock_period())


class TestValidation:
    def test_parameter_checks(self):
        with pytest.raises(ValueError):
            RouterParameters(energy_per_bit=-1.0, leakage_per_port=0.0,
                             area_per_port=1.0)
        with pytest.raises(ValueError):
            RouterParameters(energy_per_bit=0.0, leakage_per_port=0.0,
                             area_per_port=0.0)
        with pytest.raises(ValueError):
            RouterParameters(energy_per_bit=0.0, leakage_per_port=0.0,
                             area_per_port=1.0, pipeline_cycles=0)
        with pytest.raises(ValueError):
            RouterParameters(energy_per_bit=0.0, leakage_per_port=0.0,
                             area_per_port=1.0, max_ports=1)
