"""NoC synthesis end-to-end."""

import pytest

from repro.noc.spec import CommunicationSpec
from repro.noc.synthesis import SynthesisConfig, SynthesisError, \
    synthesize
from repro.noc.testcases import dual_vopd
from repro.units import mm


@pytest.fixture(scope="module")
def small_spec():
    spec = CommunicationSpec(name="small", data_width=64)
    spec.add_core("a", 0.0, 0.0)
    spec.add_core("b", mm(3), 0.0)
    spec.add_core("c", mm(3), mm(3))
    spec.add_core("d", 0.0, mm(3))
    spec.add_flow("a", "b", 4e9)
    spec.add_flow("b", "c", 2e9)
    spec.add_flow("a", "c", 1e9)
    spec.add_flow("d", "a", 0.5e9)
    return spec


@pytest.fixture(scope="module")
def small_noc(small_spec, suite90):
    return synthesize(small_spec, suite90.proposed, suite90.tech)


class TestSynthesizeSmall:
    def test_all_flows_routed(self, small_noc, small_spec):
        assert len(small_noc.routes) == len(small_spec.flows)

    def test_constraints_hold(self, small_noc, suite90):
        capacity = 64 * suite90.tech.clock_frequency * 0.75
        assert small_noc.validate(capacity, max_ports=8) == []

    def test_paths_start_and_end_at_cores(self, small_noc, small_spec):
        for index, path in small_noc.routes.items():
            flow = small_spec.flows[index]
            assert path[0] == ("core", flow.source)
            assert path[-1] == ("core", flow.dest)
            # Interior nodes are routers.
            assert all(node[0] == "router" for node in path[1:-1])

    def test_no_infeasible_link_installed(self, small_noc, suite90):
        from repro.noc.link import LinkDesigner
        designer = LinkDesigner(suite90.proposed, suite90.tech, 64)
        for _, _, data in small_noc.links():
            assert data["length"] <= designer.max_length() * (1 + 1e-6)


class TestSynthesizeDvopd:
    def test_dvopd_synthesis_completes(self, suite90):
        spec = dual_vopd(suite90.tech)
        topology = synthesize(spec, suite90.proposed, suite90.tech)
        assert len(topology.routes) == len(spec.flows)
        capacity = 128 * suite90.tech.clock_frequency * 0.75
        assert topology.validate(capacity, max_ports=8) == []

    def test_two_instances_stay_disjoint(self, suite90):
        spec = dual_vopd(suite90.tech)
        topology = synthesize(spec, suite90.proposed, suite90.tech)
        # Flows never leave their instance, and the min-power routing
        # has no reason to cross: check routers used per flow.
        for index, path in topology.routes.items():
            flow = spec.flows[index]
            instance = flow.source.split("_")[0]
            for node in path:
                assert node[1].startswith(instance)


class TestConstraintsAndErrors:
    def test_unroutable_flow_raises(self, suite90):
        spec = CommunicationSpec(name="far", data_width=128)
        spec.add_core("a", 0.0, 0.0)
        # Farther than any feasible chain of candidate links: the only
        # sites are the two endpoint routers, 60 mm apart.
        spec.add_core("b", mm(60), 0.0)
        spec.add_flow("a", "b", 1e9)
        with pytest.raises(SynthesisError):
            synthesize(spec, suite90.proposed, suite90.tech)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SynthesisConfig(access_length=0.0)
        with pytest.raises(ValueError):
            SynthesisConfig(utilization=2.0)

    def test_flows_share_links_and_loads_aggregate(self, suite90):
        spec = CommunicationSpec(name="share", data_width=16)
        spec.add_core("a", 0.0, 0.0)
        spec.add_core("b", mm(2), 0.0)
        capacity = 16 * suite90.tech.clock_frequency * 0.75
        spec.add_flow("a", "b", 0.3 * capacity)
        spec.add_flow("a", "b", 0.3 * capacity)
        topology = synthesize(spec, suite90.proposed, suite90.tech)
        assert topology.validate(capacity, max_ports=8) == []
        # Both flows share the single direct link; loads aggregate.
        from repro.noc.topology import router_node
        load = topology.edge_load(router_node("a"), router_node("b"))
        assert load == pytest.approx(0.6 * capacity)

    def test_capacity_saturation_is_detected(self, suite90):
        # Total demand from one core exceeding a link's payload
        # capacity cannot be routed: the access link itself saturates.
        spec = CommunicationSpec(name="hot", data_width=4)
        spec.add_core("a", 0.0, 0.0)
        spec.add_core("b", mm(2), 0.0)
        capacity = 4 * suite90.tech.clock_frequency * 0.75
        spec.add_flow("a", "b", 0.9 * capacity)
        spec.add_flow("a", "b", 0.2 * capacity)
        with pytest.raises(SynthesisError):
            synthesize(spec, suite90.proposed, suite90.tech)


class TestModelDependence:
    def test_optimistic_model_admits_longer_links(self):
        # At 45 nm / 3 GHz the feasible-length gap between the models
        # is wide: a long direct link is fine under the optimistic
        # model but must be split under the accurate one.
        from repro.experiments.suite import ModelSuite
        suite = ModelSuite.for_node("45nm")
        spec = CommunicationSpec(name="span", data_width=128)
        spec.add_core("a", 0.0, 0.0)
        spec.add_core("mid", mm(4), 0.0)
        spec.add_core("b", mm(8), 0.0)
        spec.add_flow("a", "b", 1e9)
        original = synthesize(spec, suite.bakoglu, suite.tech)
        accurate = synthesize(spec, suite.proposed, suite.tech)
        assert original.max_link_length() > accurate.max_link_length()
        avg_orig, _ = original.hop_statistics()
        avg_accu, _ = accurate.hop_statistics()
        assert avg_accu >= avg_orig
