"""Hop (latency) constraints in synthesis."""

import pytest

from repro.noc.spec import CommunicationSpec, Flow
from repro.noc.synthesis import SynthesisConfig, SynthesisError, \
    synthesize
from repro.units import mm


@pytest.fixture
def long_spec(suite90):
    # a ... far apart ... b, with stepping-stone cores between: without
    # constraints the accurate model routes through intermediates.
    spec = CommunicationSpec(name="long", data_width=128)
    spec.add_core("a", 0.0, 0.0)
    spec.add_core("m1", mm(7), 0.0)
    spec.add_core("m2", mm(14), 0.0)
    spec.add_core("b", mm(21), 0.0)
    return spec


class TestFlowValidation:
    def test_max_hops_minimum(self):
        with pytest.raises(ValueError, match="max_hops"):
            Flow("a", "b", 1e9, max_hops=1)

    def test_config_validation(self):
        with pytest.raises(ValueError, match="max_flow_hops"):
            SynthesisConfig(max_flow_hops=1)


class TestHopBudget:
    def test_unconstrained_uses_intermediate_routers(self, long_spec,
                                                     suite90):
        long_spec.add_flow("a", "b", 1e9)
        topology = synthesize(long_spec, suite90.proposed, suite90.tech)
        # 21 mm exceeds the 90 nm feasible link; multi-hop required.
        assert topology.hop_count(0) > 2

    def test_tight_budget_makes_flow_unroutable(self, long_spec,
                                                suite90):
        long_spec.add_flow("a", "b", 1e9, max_hops=2)
        with pytest.raises(SynthesisError, match="within 2 hops"):
            synthesize(long_spec, suite90.proposed, suite90.tech)

    def test_budget_respected_when_feasible(self, long_spec, suite90):
        long_spec.add_flow("a", "b", 1e9, max_hops=4)
        topology = synthesize(long_spec, suite90.proposed, suite90.tech)
        assert topology.hop_count(0) <= 4

    def test_global_budget_applies_to_all_flows(self, long_spec,
                                                suite90):
        long_spec.add_flow("a", "m2", 1e9)
        long_spec.add_flow("a", "b", 1e9)
        config = SynthesisConfig(max_flow_hops=4)
        topology = synthesize(long_spec, suite90.proposed, suite90.tech,
                              config=config)
        for index in topology.routes:
            assert topology.hop_count(index) <= 4

    def test_flow_limit_tightens_global(self, long_spec, suite90):
        long_spec.add_flow("a", "b", 1e9, max_hops=2)
        config = SynthesisConfig(max_flow_hops=6)
        with pytest.raises(SynthesisError):
            synthesize(long_spec, suite90.proposed, suite90.tech,
                       config=config)

    def test_scaled_spec_preserves_max_hops(self, long_spec):
        long_spec.add_flow("a", "b", 1e9, max_hops=3)
        scaled = long_spec.scaled(0.5)
        assert scaled.flows[0].max_hops == 3


class TestBudgetVsOptimum:
    def test_budget_may_cost_power(self, suite90):
        """Forcing fewer hops forces longer (costlier) links when the
        unconstrained optimum prefers relaying."""
        spec = CommunicationSpec(name="tri", data_width=128)
        spec.add_core("a", 0.0, 0.0)
        spec.add_core("relay", mm(5), 0.0)
        spec.add_core("b", mm(10), 0.0)
        spec.add_flow("a", "b", 1e9)
        free = synthesize(spec, suite90.proposed, suite90.tech)

        spec_tight = CommunicationSpec(name="tri2", data_width=128)
        spec_tight.add_core("a", 0.0, 0.0)
        spec_tight.add_core("relay", mm(5), 0.0)
        spec_tight.add_core("b", mm(10), 0.0)
        spec_tight.add_flow("a", "b", 1e9, max_hops=2)
        tight = synthesize(spec_tight, suite90.proposed, suite90.tech)

        assert tight.hop_count(0) == 2
        assert tight.max_link_length() >= free.max_link_length()
