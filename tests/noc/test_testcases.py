"""VPROC and dual-VOPD test cases."""

import pytest

from repro.noc.testcases import dual_vopd, vproc
from repro.tech import get_technology
from repro.units import mm


class TestDualVopd:
    def test_core_count_matches_paper(self):
        assert dual_vopd().num_cores == 26

    def test_data_width(self):
        assert dual_vopd().data_width == 128

    def test_two_independent_instances(self):
        spec = dual_vopd()
        # No flow crosses instances.
        for flow in spec.flows:
            assert flow.source.split("_")[0] == flow.dest.split("_")[0]

    def test_validates(self):
        dual_vopd().validate()

    def test_highest_bandwidth_flow_is_the_decode_stream(self):
        spec = dual_vopd()
        top = max(spec.flows, key=lambda f: f.bandwidth)
        assert top.bandwidth == pytest.approx(362 * 8e6)

    def test_floorplan_scales_with_node(self):
        base = dual_vopd()
        scaled = dual_vopd(get_technology("45nm"))
        ratio = scaled.bounding_box()[0] / base.bounding_box()[0]
        assert ratio == pytest.approx(45.0 / 90.0)


class TestVproc:
    def test_core_count_matches_paper(self):
        assert vproc().num_cores == 42

    def test_data_width(self):
        assert vproc().data_width == 128

    def test_validates(self):
        vproc().validate()

    def test_pipelines_connected(self):
        spec = vproc()
        flow_pairs = {(f.source, f.dest) for f in spec.flows}
        for k in range(4):
            assert ("demux", f"pe{k}_s0") in flow_pairs
            assert (f"pe{k}_s4", "mux") in flow_pairs

    def test_die_size_supports_global_wires(self):
        # The floorplan must exercise multi-millimeter routes, the
        # regime the paper's models target.
        width, height = vproc().bounding_box()
        assert width > mm(8)
        assert height > mm(6)

    def test_flow_distances_span_short_and_long(self):
        spec = vproc()
        distances = [spec.flow_distance(flow) for flow in spec.flows]
        assert min(distances) < mm(2)
        assert max(distances) > mm(6)
