"""Shared fixtures.

Session-scoped fixtures cache the expensive artifacts (calibration,
characterized cells) so the suite stays fast: calibration loads from
the pre-fitted coefficient cache when present and is memoized in
process either way.
"""

from __future__ import annotations

import pytest

from repro.characterization import (
    CharacterizationGrid,
    RepeaterKind,
    characterize_cell,
)
from repro.experiments.suite import ModelSuite
from repro.tech import DesignStyle, WireConfiguration, get_technology
from repro.units import ps


@pytest.fixture(scope="session", autouse=True)
def _hermetic_disk_cache(tmp_path_factory):
    """Point the persistent runtime cache at a per-session directory.

    Tests must neither read stale entries from ``~/.cache/repro`` (a
    code change could otherwise be masked by a pre-change cached
    design) nor litter the user's real cache.
    """
    import os
    directory = tmp_path_factory.mktemp("repro-cache")
    previous = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(directory)
    yield directory
    if previous is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:
        os.environ["REPRO_CACHE_DIR"] = previous


@pytest.fixture(scope="session")
def tech90():
    """The 90 nm technology node."""
    return get_technology("90nm")


@pytest.fixture(scope="session")
def tech45():
    """The 45 nm technology node."""
    return get_technology("45nm")


@pytest.fixture(scope="session")
def swss90(tech90):
    """90 nm global layer, single-width single-spacing."""
    return WireConfiguration.for_style(tech90.global_layer,
                                       DesignStyle.SWSS)


@pytest.fixture(scope="session")
def suite90():
    """Full model suite (proposed + baselines) at 90 nm."""
    return ModelSuite.for_node("90nm")


@pytest.fixture(scope="session")
def calibration90(suite90):
    """Calibrated coefficients at 90 nm."""
    return suite90.calibration


@pytest.fixture(scope="session")
def small_grid():
    """A tiny characterization grid for fast sweeps in tests."""
    return CharacterizationGrid(
        sizes=(8.0, 32.0),
        input_slews=(ps(40), ps(160), ps(320)),
        load_factors=(2.0, 8.0, 24.0),
    )


@pytest.fixture(scope="session")
def cell_char90(tech90, small_grid):
    """One characterized inverter cell (x8) on the tiny grid."""
    return characterize_cell(tech90, RepeaterKind.INVERTER, 8.0,
                             small_grid)


@pytest.fixture(scope="session")
def artifact90(suite90):
    """A validated coarse-grid LUT artifact for the 90 nm proposed
    model (built once per session — the builder is the expensive
    part)."""
    from repro.luts.build import build_artifact
    from repro.luts.grid import COARSE_GRID
    return build_artifact(suite90.proposed, "90nm", COARSE_GRID,
                          workers=2)


@pytest.fixture(scope="session")
def lut90(suite90, artifact90):
    """The LUT-served view of the 90 nm proposed model."""
    from repro.luts.model import serve
    return serve(suite90.proposed, artifact90)
