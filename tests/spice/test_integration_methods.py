"""Backward-Euler vs trapezoidal integration."""


import pytest

from repro.spice import Circuit, ramp, simulate_transient, step
from repro.units import fF, ps


TAU = 1000.0 * 100e-15
STOP = 6 * TAU


def rc_circuit():
    """RC driven by a *smooth* ramp so the source sampling does not
    dominate the integration error (a discontinuous step degrades every
    fixed-step method to first order)."""
    circuit = Circuit()
    circuit.add_voltage_source("in", ramp(0.0, 1.0, 0.0, 2 * TAU))
    circuit.add_resistor("in", "out", 1000.0)
    circuit.add_capacitor("out", "0", fF(100))
    return circuit


def rc_step_circuit():
    circuit = Circuit()
    circuit.add_voltage_source("in", step(1.0, at=ps(10)))
    circuit.add_resistor("in", "out", 1000.0)
    circuit.add_capacitor("out", "0", fF(100))
    return circuit


class TestAccuracyOrder:
    @classmethod
    def reference_value(cls, t_probe):
        result = simulate_transient(rc_circuit(), STOP,
                                    time_step=STOP / 20000,
                                    method="trap")
        return result.waveform("out").value_at(t_probe)

    def measurement_error(self, method, steps, reference, t_probe):
        result = simulate_transient(rc_circuit(), STOP,
                                    time_step=STOP / steps,
                                    method=method)
        return abs(result.waveform("out").value_at(t_probe)
                   - reference)

    def test_convergence_orders(self):
        t_probe = 3 * TAU
        reference = self.reference_value(t_probe)
        be_coarse = self.measurement_error("be", 50, reference, t_probe)
        be_fine = self.measurement_error("be", 200, reference, t_probe)
        trap_coarse = self.measurement_error("trap", 50, reference,
                                             t_probe)
        trap_fine = self.measurement_error("trap", 200, reference,
                                           t_probe)

        # Trapezoidal beats backward Euler at equal step...
        assert trap_coarse < be_coarse
        # ...BE is first order (4x step -> ~4x error)...
        assert be_fine < be_coarse / 2.5
        # ...and trap is second order (4x step -> ~16x error).
        assert trap_fine < trap_coarse / 8.0


class TestNonlinearAgreement:
    def test_methods_agree_on_inverter_delay(self, tech90):
        wn, wp = tech90.inverter_widths(8.0)

        def delay(method):
            circuit = Circuit()
            circuit.add_supply("vdd", tech90.vdd)
            circuit.add_voltage_source(
                "in", ramp(0.0, tech90.vdd, ps(20), ps(80)))
            circuit.add_inverter("in", "out", "vdd", tech90.nmos,
                                 tech90.pmos, wn, wp, tech90.vdd)
            circuit.add_capacitor("out", "0", fF(30))
            result = simulate_transient(circuit, ps(600),
                                        method=method)
            t_in = result.waveform("in").midpoint_time(0, tech90.vdd)
            t_out = result.waveform("out").midpoint_time(0, tech90.vdd)
            return t_out - t_in

        assert delay("trap") == pytest.approx(delay("be"), rel=0.03)


class TestValidation:
    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError, match="method"):
            simulate_transient(rc_circuit(), ps(100), method="rk4")

    def test_both_methods_handle_discontinuous_sources(self):
        # A hard step degrades accuracy but must not break stability.
        for method in ("be", "trap"):
            result = simulate_transient(rc_step_circuit(), ps(800),
                                        method=method)
            assert result.final_voltage("out") == pytest.approx(
                1.0, abs=0.01), method
