"""Alpha-power MOSFET model: physics and Newton-readiness."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.spice.mosfet import Mosfet, subthreshold_smoothing
from repro.tech import get_technology


@pytest.fixture(scope="module")
def nmos(tech=None):
    tech = get_technology("90nm")
    return Mosfet(drain=0, gate=1, source=-1, parameters=tech.nmos,
                  width=1e-6, reference_vdd=tech.vdd)


@pytest.fixture(scope="module")
def pmos():
    tech = get_technology("90nm")
    return Mosfet(drain=0, gate=1, source=2, parameters=tech.pmos,
                  width=2e-6, reference_vdd=tech.vdd)


class TestNmosPhysics:
    def test_off_current_matches_spec(self, nmos):
        # The smoothing parameter is solved so that the off current at
        # (vgs=0, vds=vdd) equals the specified subthreshold leakage.
        point = nmos.evaluate(0.0, 1.0)
        specified = nmos.parameters.i_leak * nmos.width
        assert point.ids == pytest.approx(specified, rel=0.05)

    def test_on_current_close_to_idsat_target(self, nmos):
        point = nmos.evaluate(1.0, 1.0)
        overdrive = 1.0 - nmos.parameters.vth
        target = (nmos.parameters.k_sat * nmos.width
                  * overdrive**nmos.parameters.alpha)
        # CLM adds a little; softplus smoothing perturbs slightly.
        assert point.ids == pytest.approx(target, rel=0.15)
        assert point.ids > 0

    def test_zero_vds_zero_current(self, nmos):
        point = nmos.evaluate(1.0, 0.0)
        assert point.ids == pytest.approx(0.0, abs=1e-9)

    def test_symmetric_conduction(self, nmos):
        forward = nmos.evaluate(1.0, 0.4)
        # Same physical bias seen from the other terminal: the gate sits
        # 0.6 V above the (new) source and the channel drop reverses.
        reverse = nmos.evaluate(0.6, -0.4)
        assert reverse.ids == pytest.approx(-forward.ids, rel=1e-9)

    def test_monotonic_in_vgs(self, nmos):
        currents = [nmos.evaluate(v, 1.0).ids
                    for v in (0.0, 0.2, 0.4, 0.6, 0.8, 1.0)]
        assert all(b > a for a, b in zip(currents, currents[1:]))

    def test_monotonic_in_vds(self, nmos):
        currents = [nmos.evaluate(1.0, v).ids
                    for v in (0.0, 0.1, 0.2, 0.4, 0.8, 1.0)]
        assert all(b > a for a, b in zip(currents, currents[1:]))

    def test_gm_positive_above_threshold(self, nmos):
        assert nmos.evaluate(0.8, 1.0).gm > 0

    def test_gds_positive(self, nmos):
        assert nmos.evaluate(1.0, 1.0).gds > 0
        assert nmos.evaluate(1.0, 0.1).gds > 0


class TestDerivativeConsistency:
    @settings(max_examples=60, deadline=None)
    @given(st.floats(min_value=-0.2, max_value=1.2),
           st.floats(min_value=-1.2, max_value=1.2))
    def test_gm_matches_finite_difference(self, vgs, vds):
        tech = get_technology("90nm")
        device = Mosfet(0, 1, -1, tech.nmos, 1e-6, tech.vdd)
        h = 1e-6
        base = device.evaluate(vgs, vds)
        bumped = device.evaluate(vgs + h, vds)
        numeric = (bumped.ids - base.ids) / h
        scale = max(abs(base.gm), abs(numeric), 1e-9)
        assert abs(base.gm - numeric) / scale < 0.05

    @settings(max_examples=60, deadline=None)
    @given(st.floats(min_value=-0.2, max_value=1.2),
           st.floats(min_value=-1.2, max_value=1.2))
    def test_gds_matches_finite_difference(self, vgs, vds):
        tech = get_technology("90nm")
        device = Mosfet(0, 1, -1, tech.nmos, 1e-6, tech.vdd)
        h = 1e-6
        base = device.evaluate(vgs, vds)
        bumped = device.evaluate(vgs, vds + h)
        numeric = (bumped.ids - base.ids) / h
        scale = max(abs(base.gds), abs(numeric), 1e-9)
        assert abs(base.gds - numeric) / scale < 0.05


class TestPmos:
    def test_conducts_with_negative_bias(self, pmos):
        # pMOS in an inverter: source at vdd, gate low, drain below vdd.
        point = pmos.evaluate(-1.0, -1.0)  # vgs = -vdd, vds = -vdd
        assert point.ids < 0  # current flows source -> drain

    def test_off_at_zero_vgs(self, pmos):
        on = abs(pmos.evaluate(-1.0, -1.0).ids)
        off = abs(pmos.evaluate(0.0, -1.0).ids)
        assert off < on / 100


class TestSmoothing:
    def test_cached_and_in_range(self):
        tech = get_technology("65nm")
        s1 = subthreshold_smoothing(tech.nmos, tech.vdd)
        s2 = subthreshold_smoothing(tech.nmos, tech.vdd)
        assert s1 == s2
        assert 0.005 <= s1 <= 0.5


class TestCapacitancesAndLeakage:
    def test_capacitances_scale_with_width(self):
        tech = get_technology("90nm")
        small = Mosfet(0, 1, -1, tech.nmos, 1e-6, tech.vdd)
        large = Mosfet(0, 1, -1, tech.nmos, 3e-6, tech.vdd)
        assert large.gate_capacitance == pytest.approx(
            3 * small.gate_capacitance)
        assert large.drain_capacitance == pytest.approx(
            3 * small.drain_capacitance)

    def test_leakage_current_includes_gate_tunneling(self):
        tech = get_technology("90nm")
        device = Mosfet(0, 1, -1, tech.nmos, 1e-6, tech.vdd)
        leak = device.leakage_current(tech.vdd)
        channel_only = abs(device.evaluate(0.0, tech.vdd).ids)
        assert leak > channel_only

    def test_width_validation(self):
        tech = get_technology("90nm")
        with pytest.raises(ValueError):
            Mosfet(0, 1, -1, tech.nmos, 0.0, tech.vdd)
