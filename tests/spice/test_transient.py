"""Transient analysis against closed-form references."""

import math

import numpy as np
import pytest

from repro.spice import Circuit, ramp, simulate_transient, step
from repro.spice.elements import constant
from repro.spice.transient import ConvergenceError
from repro.units import ps, fF, ns


class TestLinearCircuits:
    def test_rc_step_response_matches_analytic(self):
        # Single-pole RC: v(t) = 1 - exp(-(t - t0)/RC), tau = 100 ps.
        # The step fires after t = 0 so the DC start state is 0 V.
        r, c = 1000.0, 100e-15
        t0 = 0.5 * r * c
        circuit = Circuit()
        circuit.add_voltage_source("in", step(1.0, at=t0))
        circuit.add_resistor("in", "out", r)
        circuit.add_capacitor("out", "0", c)
        result = simulate_transient(circuit, 6 * r * c,
                                    time_step=r * c / 400)
        wave = result.waveform("out")
        tau_measured = wave.crossing_time(1.0 - math.exp(-1.0)) - t0
        assert tau_measured == pytest.approx(r * c, rel=0.02)

    def test_resistive_divider_dc(self):
        circuit = Circuit()
        circuit.add_supply("vdd", 1.0)
        circuit.add_resistor("vdd", "mid", 1000.0)
        circuit.add_resistor("mid", "0", 3000.0)
        result = simulate_transient(circuit, ps(100))
        assert result.final_voltage("mid") == pytest.approx(0.75,
                                                            rel=1e-3)

    def test_distributed_line_elmore(self):
        # 50% delay of a distributed RC line under a step: ~0.38 RC.
        r, c = 2000.0, 150e-15
        t0 = 0.1 * r * c
        circuit = Circuit()
        circuit.add_voltage_source("in", step(1.0, at=t0))
        circuit.add_rc_ladder("in", "out", r, c, segments=25)
        result = simulate_transient(circuit, 5 * r * c, record=["out"])
        t50 = result.waveform("out").crossing_time(0.5) - t0
        assert t50 == pytest.approx(0.38 * r * c, rel=0.05)

    def test_current_source_into_capacitor(self):
        # I = C dV/dt: 1 uA into 1 fF ramps 1 V per ns.  A resistor to
        # ground keeps the DC start state well-defined; its effect over
        # one nanosecond is a small exponential correction.
        r, c, i = 1e9, 1e-15, 1e-6
        circuit = Circuit()
        circuit.add_current_source("out",
                                   lambda t: i if t > 0 else 0.0)
        circuit.add_capacitor("out", "0", c)
        circuit.add_resistor("out", "0", r)
        result = simulate_transient(circuit, ns(1), record=["out"])
        # Ideal ramp would reach 1.0 V; the bleed resistor gives
        # i*r*(1 - exp(-t/rc)) ~ 0.9995 V.
        expected = i * r * (1.0 - math.exp(-1e-9 / (r * c)))
        assert result.final_voltage("out") == pytest.approx(expected,
                                                            rel=0.02)

    def test_charge_conservation_between_capacitors(self):
        # A charged capacitor sharing into an equal uncharged one
        # through a resistor settles at half the initial voltage.
        circuit = Circuit()
        circuit.add_voltage_source("a", lambda t: 1.0 if t < ps(50)
                                    else 0.0)
        # Drive node 'b' to 1 V, then watch 'c' follow through R.
        circuit2 = Circuit()
        circuit2.add_voltage_source("in", step(1.0))
        circuit2.add_resistor("in", "x", 100.0)
        circuit2.add_capacitor("x", "0", fF(10))
        circuit2.add_resistor("x", "y", 100.0)
        circuit2.add_capacitor("y", "0", fF(10))
        result = simulate_transient(circuit2, ns(1))
        assert result.final_voltage("x") == pytest.approx(1.0, abs=0.01)
        assert result.final_voltage("y") == pytest.approx(1.0, abs=0.01)


class TestNonlinearCircuits:
    def test_inverter_static_levels(self, tech90):
        wn, wp = tech90.inverter_widths(4.0)
        circuit = Circuit()
        circuit.add_supply("vdd", tech90.vdd)
        circuit.add_voltage_source("in", constant(0.0))
        circuit.add_inverter("in", "out", "vdd", tech90.nmos,
                             tech90.pmos, wn, wp, tech90.vdd)
        circuit.add_capacitor("out", "0", fF(5))
        result = simulate_transient(circuit, ps(300))
        assert result.final_voltage("out") == pytest.approx(
            tech90.vdd, abs=0.02)

    def test_inverter_switches(self, tech90):
        wn, wp = tech90.inverter_widths(8.0)
        circuit = Circuit()
        circuit.add_supply("vdd", tech90.vdd)
        circuit.add_voltage_source("in",
                                   ramp(0.0, tech90.vdd, ps(20), ps(50)))
        circuit.add_inverter("in", "out", "vdd", tech90.nmos,
                             tech90.pmos, wn, wp, tech90.vdd)
        circuit.add_capacitor("out", "0", fF(10))
        result = simulate_transient(circuit, ps(500))
        out = result.waveform("out")
        assert out.initial == pytest.approx(tech90.vdd, abs=0.02)
        assert out.final == pytest.approx(0.0, abs=0.02)

    def test_delay_increases_with_load(self, tech90):
        def delay_with_load(load):
            wn, wp = tech90.inverter_widths(8.0)
            circuit = Circuit()
            circuit.add_supply("vdd", tech90.vdd)
            circuit.add_voltage_source(
                "in", ramp(0.0, tech90.vdd, ps(20), ps(60)))
            circuit.add_inverter("in", "out", "vdd", tech90.nmos,
                                 tech90.pmos, wn, wp, tech90.vdd)
            circuit.add_capacitor("out", "0", load)
            result = simulate_transient(circuit, ps(2000))
            t_in = result.waveform("in").midpoint_time(0, tech90.vdd)
            t_out = result.waveform("out").midpoint_time(0, tech90.vdd)
            return t_out - t_in

        delays = [delay_with_load(fF(c)) for c in (5, 20, 80)]
        assert delays[0] < delays[1] < delays[2]


class TestApiContract:
    def test_requires_positive_stop_time(self):
        circuit = Circuit()
        circuit.add_resistor("a", "0", 1.0)
        with pytest.raises(ValueError):
            simulate_transient(circuit, 0.0)

    def test_time_step_validation(self):
        circuit = Circuit()
        circuit.add_resistor("a", "0", 1.0)
        with pytest.raises(ValueError):
            simulate_transient(circuit, 1e-9, time_step=2e-9)

    def test_record_subset(self):
        circuit = Circuit()
        circuit.add_voltage_source("in", step(1.0))
        circuit.add_resistor("in", "out", 100.0)
        circuit.add_capacitor("out", "0", fF(1))
        result = simulate_transient(circuit, ps(100), record=["out"])
        assert set(result.voltages) == {"out"}
        with pytest.raises(KeyError):
            result.waveform("in")

    def test_fully_driven_circuit_is_trivially_solved(self):
        circuit = Circuit()
        circuit.add_supply("vdd", 1.0)
        circuit.add_resistor("vdd", "0", 100.0)
        # 'vdd' is the only non-ground node and it is driven: the
        # solver has nothing to do but must not fail.
        result = simulate_transient(circuit, ps(10))
        assert result.final_voltage("vdd") == pytest.approx(1.0)

    def test_times_cover_stop_time(self):
        circuit = Circuit()
        circuit.add_voltage_source("in", step(1.0))
        circuit.add_resistor("in", "out", 100.0)
        circuit.add_capacitor("out", "0", fF(1))
        result = simulate_transient(circuit, ps(100), time_step=ps(7))
        assert result.times[0] == 0.0
        assert result.times[-1] >= ps(100)
        assert np.all(np.diff(result.times) > 0)
