"""Linear elements and source waveforms."""

import pytest
from hypothesis import given, strategies as st

from repro.spice.elements import (
    Capacitor,
    Resistor,
    constant,
    ramp,
    step,
)


class TestResistor:
    def test_conductance(self):
        assert Resistor(0, 1, 500.0).conductance == pytest.approx(0.002)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            Resistor(0, 1, 0.0)
        with pytest.raises(ValueError):
            Resistor(0, 1, -5.0)


class TestCapacitor:
    def test_accepts_zero(self):
        assert Capacitor(0, 1, 0.0).capacitance == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Capacitor(0, 1, -1e-15)


class TestStep:
    def test_before_and_after(self):
        waveform = step(1.0, at=1e-9, initial=0.2)
        assert waveform(0.0) == 0.2
        assert waveform(1e-9) == 1.0
        assert waveform(2e-9) == 1.0


class TestRamp:
    def test_endpoints(self):
        waveform = ramp(0.0, 1.0, t_start=1e-10, transition=2e-10)
        assert waveform(0.0) == 0.0
        assert waveform(1e-10) == 0.0
        assert waveform(3e-10) == 1.0
        assert waveform(1e-9) == 1.0

    def test_midpoint(self):
        waveform = ramp(0.0, 1.0, t_start=0.0, transition=2e-10)
        assert waveform(1e-10) == pytest.approx(0.5)

    def test_falling_ramp(self):
        waveform = ramp(1.0, 0.0, t_start=0.0, transition=1e-10)
        assert waveform(0.5e-10) == pytest.approx(0.5)
        assert waveform(1e-10) == 0.0

    def test_zero_transition_is_step(self):
        waveform = ramp(0.0, 1.0, t_start=1e-10, transition=0.0)
        assert waveform(0.99e-10) == 0.0
        assert waveform(1.01e-10) == 1.0

    def test_negative_transition_rejected(self):
        with pytest.raises(ValueError):
            ramp(0.0, 1.0, 0.0, -1e-12)

    @given(st.floats(min_value=0.0, max_value=1e-8),
           st.floats(min_value=1e-12, max_value=1e-9))
    def test_monotonic(self, t_start, transition):
        waveform = ramp(0.0, 1.0, t_start, transition)
        times = [t_start + fraction * transition * 1.5
                 for fraction in (0.0, 0.25, 0.5, 0.75, 1.0)]
        values = [waveform(t) for t in times]
        assert all(b >= a for a, b in zip(values, values[1:]))
        assert all(0.0 <= v <= 1.0 for v in values)


def test_constant():
    waveform = constant(1.1)
    assert waveform(0.0) == 1.1
    assert waveform(1e-6) == 1.1
