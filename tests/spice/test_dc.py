"""DC operating point and supply-current measurement."""

import pytest

from repro.spice import Circuit, dc_operating_point
from repro.spice.dc import supply_current
from repro.spice.elements import constant


class TestOperatingPoint:
    def test_divider(self):
        circuit = Circuit()
        circuit.add_supply("vdd", 1.2)
        circuit.add_resistor("vdd", "mid", 2000.0)
        circuit.add_resistor("mid", "0", 1000.0)
        solution = dc_operating_point(circuit)
        assert solution["mid"] == pytest.approx(0.4, rel=1e-6)
        assert solution["vdd"] == pytest.approx(1.2)

    def test_inverter_output_high(self, tech90):
        wn, wp = tech90.inverter_widths(4.0)
        circuit = Circuit()
        circuit.add_supply("vdd", tech90.vdd)
        circuit.add_supply("in", 0.0)
        circuit.add_inverter("in", "out", "vdd", tech90.nmos,
                             tech90.pmos, wn, wp, tech90.vdd)
        solution = dc_operating_point(circuit)
        # Output pulls to vdd minus a tiny leakage-induced droop.
        assert solution["out"] == pytest.approx(tech90.vdd, abs=0.02)

    def test_inverter_output_low(self, tech90):
        wn, wp = tech90.inverter_widths(4.0)
        circuit = Circuit()
        circuit.add_supply("vdd", tech90.vdd)
        circuit.add_supply("in", tech90.vdd)
        circuit.add_inverter("in", "out", "vdd", tech90.nmos,
                             tech90.pmos, wn, wp, tech90.vdd)
        solution = dc_operating_point(circuit)
        assert solution["out"] == pytest.approx(0.0, abs=0.02)


class TestSupplyCurrent:
    def test_resistive_load_current(self):
        circuit = Circuit()
        circuit.add_supply("vdd", 1.0)
        circuit.add_resistor("vdd", "0", 1000.0)
        current = supply_current(circuit, "vdd")
        assert current == pytest.approx(1e-3, rel=1e-6)

    def test_ground_rejected(self):
        circuit = Circuit()
        circuit.add_supply("vdd", 1.0)
        circuit.add_resistor("vdd", "0", 1000.0)
        with pytest.raises(ValueError):
            supply_current(circuit, "gnd")

    def test_inverter_leakage_scales_with_width(self, tech90):
        def leakage(size):
            wn, wp = tech90.inverter_widths(size)
            circuit = Circuit()
            circuit.add_supply("vdd", tech90.vdd)
            circuit.add_supply("in", 0.0)
            circuit.add_inverter("in", "out", "vdd", tech90.nmos,
                                 tech90.pmos, wn, wp, tech90.vdd)
            return abs(supply_current(circuit, "vdd"))

        small = leakage(4.0)
        large = leakage(16.0)
        assert small > 0
        # Subthreshold leakage is linear in device width.
        assert large == pytest.approx(4 * small, rel=0.1)

    def test_off_inverter_current_matches_nmos_spec(self, tech90):
        # Input low: the off nMOS sets the rail current.
        wn, wp = tech90.inverter_widths(8.0)
        circuit = Circuit()
        circuit.add_supply("vdd", tech90.vdd)
        circuit.add_supply("in", 0.0)
        circuit.add_inverter("in", "out", "vdd", tech90.nmos,
                             tech90.pmos, wn, wp, tech90.vdd)
        current = abs(supply_current(circuit, "vdd"))
        expected = tech90.nmos.i_leak * wn
        assert current == pytest.approx(expected, rel=0.15)
