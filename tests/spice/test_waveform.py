"""Waveform measurements."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.spice.waveform import Waveform, measure_delay, measure_slew


def make_ramp(t_start=1e-10, transition=2e-10, v0=0.0, v1=1.0,
              samples=500, t_end=1e-9):
    times = np.linspace(0.0, t_end, samples)
    values = np.clip((times - t_start) / transition, 0.0, 1.0)
    return Waveform(times, v0 + values * (v1 - v0))


class TestConstruction:
    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            Waveform(np.array([0.0, 1.0]), np.array([0.0]))

    def test_too_short(self):
        with pytest.raises(ValueError):
            Waveform(np.array([0.0]), np.array([0.0]))


class TestCrossings:
    def test_rising_crossing_interpolates(self):
        wave = make_ramp()
        t50 = wave.crossing_time(0.5)
        assert t50 == pytest.approx(2e-10, rel=0.01)

    def test_falling_crossing(self):
        wave = make_ramp(v0=1.0, v1=0.0)
        t50 = wave.crossing_time(0.5)
        assert t50 == pytest.approx(2e-10, rel=0.01)
        assert not wave.rising

    def test_never_crossed_raises(self):
        wave = make_ramp()
        with pytest.raises(ValueError, match="never crosses"):
            wave.crossing_time(2.0)

    def test_direction_override(self):
        # A pulse: rises then falls; ask for the falling crossing.
        times = np.linspace(0, 4e-10, 400)
        values = np.where(times < 2e-10, times / 2e-10,
                          2.0 - times / 2e-10)
        wave = Waveform(times, values)
        t_fall = wave.crossing_time(0.5, rising=False)
        assert t_fall == pytest.approx(3e-10, rel=0.02)


class TestSlew:
    def test_ideal_ramp_slew_equals_transition(self):
        # The 20-80 window scaled by 1/0.6 recovers the full ramp time.
        wave = make_ramp(transition=3e-10)
        assert wave.slew(0.0, 1.0) == pytest.approx(3e-10, rel=0.02)

    def test_falling_slew(self):
        wave = make_ramp(v0=1.0, v1=0.0, transition=2e-10)
        assert wave.slew(0.0, 1.0) == pytest.approx(2e-10, rel=0.02)

    @given(st.floats(min_value=5e-11, max_value=5e-10))
    def test_slew_scales_with_ramp(self, transition):
        wave = make_ramp(transition=transition, t_end=2e-9,
                         samples=2000)
        assert wave.slew(0.0, 1.0) == pytest.approx(transition,
                                                    rel=0.05)


class TestDelay:
    def test_delay_between_shifted_ramps(self):
        wave_in = make_ramp(t_start=0.0)
        wave_out = make_ramp(t_start=1.5e-10)
        delay = measure_delay(wave_in, wave_out, 0.0, 1.0)
        assert delay == pytest.approx(1.5e-10, rel=0.02)

    def test_inverting_delay(self):
        wave_in = make_ramp(t_start=0.0, transition=1e-10)
        wave_out = make_ramp(t_start=2e-10, transition=1e-10,
                             v0=1.0, v1=0.0)
        delay = measure_delay(wave_in, wave_out, 0.0, 1.0)
        assert delay == pytest.approx(2e-10, rel=0.02)

    def test_measure_slew_helper(self):
        wave = make_ramp(transition=2.4e-10)
        assert measure_slew(wave, 0.0, 1.0) == pytest.approx(2.4e-10,
                                                             rel=0.05)


class TestUtility:
    def test_settled(self):
        wave = make_ramp()
        assert wave.settled(1.0, 0.01)
        assert not wave.settled(0.5, 0.01)

    def test_value_at_interpolates(self):
        wave = make_ramp(t_start=0.0, transition=2e-10)
        assert wave.value_at(1e-10) == pytest.approx(0.5, abs=0.01)

    def test_swing(self):
        wave = make_ramp(v0=0.2, v1=0.9)
        assert wave.swing() == pytest.approx(0.7, abs=0.01)
