"""Circuit container."""

import pytest

from repro.spice import Circuit
from repro.spice.elements import GROUND, constant


class TestNodes:
    def test_ground_aliases(self):
        circuit = Circuit()
        for name in ("0", "gnd", "GND", "vss", "VSS"):
            assert circuit.node(name) == GROUND
        assert circuit.node_count == 0

    def test_indices_are_dense_and_stable(self):
        circuit = Circuit()
        a = circuit.node("a")
        b = circuit.node("b")
        assert (a, b) == (0, 1)
        assert circuit.node("a") == a
        assert circuit.node_count == 2
        assert circuit.node_names() == ["a", "b"]

    def test_node_name_roundtrip(self):
        circuit = Circuit()
        index = circuit.node("out")
        assert circuit.node_name(index) == "out"
        assert circuit.node_name(GROUND) == "0"

    def test_has_node(self):
        circuit = Circuit()
        circuit.node("x")
        assert circuit.has_node("x")
        assert circuit.has_node("gnd")
        assert not circuit.has_node("y")


class TestElements:
    def test_add_elements(self, tech90):
        circuit = Circuit("demo")
        circuit.add_resistor("a", "b", 100.0)
        circuit.add_capacitor("b", "0", 1e-15)
        circuit.add_supply("vdd", 1.0)
        circuit.add_current_source("a", constant(1e-6))
        circuit.add_mosfet("b", "a", "0", tech90.nmos, 1e-6)
        assert len(circuit.resistors) == 1
        assert len(circuit.capacitors) == 1
        assert len(circuit.voltage_sources) == 1
        assert len(circuit.current_sources) == 1
        assert len(circuit.mosfets) == 1
        summary = circuit.summary()
        assert "demo" in summary
        assert "1R 1C 1M 1V 1I" in summary

    def test_cannot_drive_ground(self):
        circuit = Circuit()
        with pytest.raises(ValueError, match="ground"):
            circuit.add_supply("gnd", 1.0)

    def test_cannot_double_drive_a_node(self):
        circuit = Circuit()
        circuit.add_supply("vdd", 1.0)
        with pytest.raises(ValueError, match="already"):
            circuit.add_supply("vdd", 1.2)

    def test_driven_nodes_mapping(self):
        circuit = Circuit()
        circuit.add_supply("vdd", 1.0)
        driven = circuit.driven_nodes()
        assert list(driven) == [circuit.node("vdd")]
        assert driven[circuit.node("vdd")](0.0) == 1.0


class TestComposites:
    def test_inverter_adds_two_devices(self, tech90):
        circuit = Circuit()
        circuit.add_supply("vdd", tech90.vdd)
        n_dev, p_dev = circuit.add_inverter(
            "in", "out", "vdd", tech90.nmos, tech90.pmos,
            1e-6, 2e-6, tech90.vdd)
        assert n_dev.parameters.is_nmos
        assert not p_dev.parameters.is_nmos
        assert n_dev.source == GROUND
        assert p_dev.source == circuit.node("vdd")
        assert n_dev.drain == p_dev.drain == circuit.node("out")

    def test_rc_ladder_structure(self):
        circuit = Circuit()
        circuit.add_rc_ladder("in", "out", 1000.0, 100e-15, segments=5)
        assert len(circuit.resistors) == 5
        assert len(circuit.capacitors) == 10
        total_r = sum(r.resistance for r in circuit.resistors)
        total_c = sum(c.capacitance for c in circuit.capacitors)
        assert total_r == pytest.approx(1000.0)
        assert total_c == pytest.approx(100e-15)

    def test_rc_ladder_single_segment(self):
        circuit = Circuit()
        circuit.add_rc_ladder("in", "out", 500.0, 50e-15, segments=1)
        assert len(circuit.resistors) == 1
        assert circuit.has_node("out")

    def test_rc_ladder_rejects_zero_segments(self):
        circuit = Circuit()
        with pytest.raises(ValueError):
            circuit.add_rc_ladder("in", "out", 1.0, 1e-15, segments=0)
