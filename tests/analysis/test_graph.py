"""Symbol resolution and call-graph traversal."""

from repro.analysis.graph import CallGraph, ProjectIndex, build_graph
from repro.analysis.index import index_source


def _project(*sources):
    """Build a ProjectIndex from (source, path[, module]) tuples."""
    return ProjectIndex(index_source(*entry) for entry in sources)


LIB = ("def helper(x):\n"
       "    return x * 2.0\n"
       "class Widget:\n"
       "    def size(self):\n"
       "        return 4\n"
       "    def area(self):\n"
       "        return self.size() * self.size()\n",
       "src/repro/pkg/lib.py")

APP = ("from repro.pkg.lib import helper\n"
       "from repro.pkg import lib\n"
       "def top(x):\n"
       "    return helper(x) + lib.helper(x)\n",
       "src/repro/pkg/app.py")


class TestResolution:
    def test_from_import_resolves(self):
        project = _project(LIB, APP)
        app = project.modules["repro.pkg.app"]
        assert project.resolve(app, "helper") \
            == "repro.pkg.lib.helper"

    def test_module_alias_attribute_resolves(self):
        project = _project(LIB, APP)
        app = project.modules["repro.pkg.app"]
        assert project.resolve(app, "lib.helper") \
            == "repro.pkg.lib.helper"

    def test_self_method_resolves_uniquely(self):
        project = _project(LIB)
        lib = project.modules["repro.pkg.lib"]
        assert project.resolve(lib, "self.size") \
            == "repro.pkg.lib.Widget.size"

    def test_unknown_callee_resolves_to_none(self):
        project = _project(LIB, APP)
        app = project.modules["repro.pkg.app"]
        assert project.resolve(app, "np.clip") is None


class TestGraph:
    def test_edges_connect_caller_to_callee(self):
        graph = build_graph([index_source(*entry)
                             for entry in (LIB, APP)])
        callees = {callee for callee, _site
                   in graph.callees_of("repro.pkg.app.top")}
        assert callees == {"repro.pkg.lib.helper"}

    def test_closure_returns_shortest_chains(self):
        chain_src = ("def a():\n    return b()\n"
                     "def b():\n    return c()\n"
                     "def c():\n    return 1\n",
                     "src/repro/pkg/chain.py")
        graph = build_graph([index_source(*chain_src)])
        reached = graph.closure(["repro.pkg.chain.a"])
        assert reached["repro.pkg.chain.c"] == [
            "repro.pkg.chain.a", "repro.pkg.chain.b",
            "repro.pkg.chain.c"]

    def test_closure_stop_modules_are_not_expanded(self):
        runtime = ("def inner():\n    return deep()\n"
                   "def deep():\n    return 2\n",
                   "src/repro/runtime/thing.py")
        caller = ("from repro.runtime.thing import inner\n"
                  "def go():\n    return inner()\n",
                  "src/repro/pkg/caller.py")
        graph = build_graph([index_source(*entry)
                             for entry in (runtime, caller)])
        reached = graph.closure(["repro.pkg.caller.go"],
                                stop={"repro.runtime.thing"})
        # ``inner`` is reached (its facts are reportable) but not
        # expanded — ``deep`` stays invisible.
        assert "repro.runtime.thing.inner" in reached
        assert "repro.runtime.thing.deep" not in reached


class TestSerialization:
    def test_json_payload_has_nodes_and_edges(self):
        graph = build_graph([index_source(*entry)
                             for entry in (LIB, APP)])
        payload = graph.to_json()
        names = {node["name"] for node in payload["nodes"]}
        assert "repro.pkg.lib.Widget.area" in names
        assert {"caller": "repro.pkg.app.top",
                "callee": "repro.pkg.lib.helper",
                "line": 4} in payload["edges"]

    def test_dot_output_is_wellformed(self):
        graph = build_graph([index_source(*entry)
                             for entry in (LIB, APP)])
        dot = graph.to_dot()
        assert dot.startswith("digraph repro_calls {")
        assert '"repro.pkg.app.top" -> "repro.pkg.lib.helper";' in dot
        assert dot.rstrip().endswith("}")


class TestSuppression:
    def test_noqa_map_travels_with_the_index(self):
        index = index_source("def f():\n    return 1\n",
                             "src/repro/pkg/sup.py",
                             noqa={1: ["kernel-parity"], 2: ["*"]})
        project = ProjectIndex([index])
        name = "repro.pkg.sup.f"
        assert project.is_suppressed(name, 1, "kernel-parity")
        assert not project.is_suppressed(name, 1, "unit-flow")
        assert project.is_suppressed(name, 2, "unit-flow")
        assert not project.is_suppressed(name, 3, "unit-flow")
