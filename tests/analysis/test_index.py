"""Per-file symbol extraction: ops, consts, taints, calls, round-trip."""

from repro.analysis.index import (
    FileIndex,
    index_source,
    module_name_for,
)


def _index(source, path="src/repro/pkg/mod.py", **kwargs):
    return index_source(source, path, **kwargs)


def _fn(index, qualname):
    return index.functions[qualname]


class TestModuleNames:
    def test_src_root_is_stripped(self):
        assert module_name_for("src/repro/units.py") == "repro.units"

    def test_init_maps_to_the_package(self):
        assert module_name_for("src/repro/kernels/__init__.py") \
            == "repro.kernels"

    def test_paths_outside_src_keep_their_components(self):
        assert module_name_for("tests/analysis/test_core.py") \
            == "tests.analysis.test_core"


class TestOpExtraction:
    def test_binops_count_into_the_multiset(self):
        index = _index("def f(a, b):\n"
                       "    return a * b + a * a - b\n")
        assert _fn(index, "f").ops == {"Mult": 2, "Add": 1, "Sub": 1}

    def test_op_calls_canonicalize(self):
        # ``np.power`` reads as Pow, ``np.clip`` as Max+Min, ``sum``
        # as Add — idiom differences must not read as parity drift.
        index = _index("import numpy as np\n"
                       "def f(x):\n"
                       "    y = np.power(x, 2.0)\n"
                       "    z = np.clip(y, 0.0, 1.0)\n"
                       "    return sum([z])\n")
        assert _fn(index, "f").ops == {"Pow": 1, "Max": 1, "Min": 1,
                                       "Add": 1}

    def test_method_calls_are_not_canonicalized(self):
        # ``counts.max()`` is a reduction on an instance — only
        # resolved module-level / builtin names canonicalize.
        index = _index("def f(counts):\n"
                       "    return counts.max()\n")
        assert _fn(index, "f").ops == {}

    def test_negated_literal_is_not_a_usub(self):
        index = _index("def f(x):\n"
                       "    return -1.0 * x\n")
        assert _fn(index, "f").ops == {"Mult": 1}
        assert _fn(index, "f").consts == {"-1.0": 1}


class TestConstExtraction:
    def test_arithmetic_literals_count(self):
        index = _index("def f(x):\n"
                       "    return 0.69 * x + 0.69\n")
        assert _fn(index, "f").consts == {"0.69": 2}

    def test_comparison_guards_are_blind(self):
        index = _index("def f(x):\n"
                       "    if x <= 0:\n"
                       "        return 0.0\n"
                       "    return x * 2.0\n")
        assert _fn(index, "f").consts == {"0.0": 1, "2.0": 1}

    def test_subscript_indices_are_blind(self):
        index = _index("def f(coeffs, x):\n"
                       "    return coeffs[0] + coeffs[1] * x\n")
        assert _fn(index, "f").consts == {}
        assert _fn(index, "f").ops == {"Add": 1, "Mult": 1}


class TestTaints:
    def test_wall_clock(self):
        index = _index("import time\n"
                       "def f():\n"
                       "    return time.time()\n")
        taints = _fn(index, "f").taints
        assert [t.kind for t in taints] == ["wall-clock"]

    def test_env_read(self):
        index = _index("import os\n"
                       "def f():\n"
                       "    return os.environ.get('HOME')\n")
        assert [t.kind for t in _fn(index, "f").taints] == ["env-read"]

    def test_global_rng_but_not_the_seeded_api(self):
        index = _index("import numpy as np\n"
                       "def bad():\n"
                       "    return np.random.normal()\n"
                       "def good(seed):\n"
                       "    return np.random.default_rng(seed)\n")
        assert [t.kind for t in _fn(index, "bad").taints] \
            == ["global-rng"]
        assert _fn(index, "good").taints == ()

    def test_module_global_writes(self):
        index = _index("_CACHE = {}\n"
                       "def f(k, v):\n"
                       "    _CACHE[k] = v\n")
        taints = _fn(index, "f").taints
        assert [t.kind for t in taints] == ["global-write"]
        assert "_CACHE" in taints[0].detail

    def test_local_mutable_is_not_a_global_write(self):
        index = _index("def f(k, v):\n"
                       "    local = {}\n"
                       "    local[k] = v\n"
                       "    return local\n")
        assert _fn(index, "f").taints == ()


class TestCallsAndImports:
    def test_from_import_and_call_site(self):
        index = _index("from repro.runtime.parallel import parallel_map\n"
                       "def run(items):\n"
                       "    return parallel_map(work, items, chunk=4)\n")
        assert index.imports["parallel_map"] \
            == "repro.runtime.parallel.parallel_map"
        (site,) = index.calls
        assert site.caller == "run"
        assert site.callee == "parallel_map"
        assert [(a.position, a.keyword, a.name) for a in site.args] \
            == [(0, None, "work"), (1, None, "items"),
                (None, "chunk", None)]

    def test_cache_scoped_detection(self):
        index = _index("def f(cache, key):\n"
                       "    return cache.get(key)\n")
        assert _fn(index, "f").cache_scoped

    def test_syntax_error_yields_empty_index(self):
        index = _index("def broken(:\n")
        assert index.functions == {}
        assert index.calls == []


class TestPayloadRoundTrip:
    def test_round_trip_preserves_everything(self):
        index = _index("import time\n"
                       "_REG = {}\n"
                       "class C:\n"
                       "    def m(self, x_ps):\n"
                       "        _REG['k'] = time.time()\n"
                       "        return x_ps * 2.0\n",
                       noqa={3: ["units"]})
        clone = FileIndex.from_payload(index.to_payload())
        assert clone.module == index.module
        assert clone.imports == index.imports
        assert clone.noqa == {3: ["units"]}
        assert set(clone.functions) == {"C.m"}
        original, copy = index.functions["C.m"], clone.functions["C.m"]
        assert copy.ops == original.ops
        assert copy.consts == original.consts
        assert copy.taints == original.taints
        assert copy.params == original.params
        assert copy.is_method
