"""Each rule catches its seeded fixture; clean fixtures stay silent."""

from pathlib import Path

import pytest

from repro.analysis import check_file, check_source, make_checkers

FIXTURES = Path(__file__).resolve().parent / "fixtures"

#: bad fixture → (expected rule, expected finding count)
BAD_FIXTURES = {
    "models/units_bad.py": ("units", 2),
    "determinism_bad.py": ("determinism", 6),
    "kernels/determinism_bad.py": ("determinism", 3),
    "runtime/clock_bad.py": ("determinism", 1),
    "worker_safety_bad.py": ("worker-safety", 2),
    "cache_purity_bad.py": ("cache-purity", 2),
    "span_hygiene_bad.py": ("span-hygiene", 4),
}

CLEAN_FIXTURES = (
    "models/units_clean.py",
    "determinism_clean.py",
    "kernels/determinism_clean.py",
    # The fault-injection harness path suffix is the one sanctioned
    # nondeterminism hook: clocks allowed in runtime/faults.py only.
    "runtime/faults.py",
    "worker_safety_clean.py",
    "cache_purity_clean.py",
    "span_hygiene_clean.py",
)


def _lint(relative):
    """All five checkers over one fixture (so cross-rule false
    positives fail the clean tests too)."""
    path = FIXTURES / relative
    return check_file(path, make_checkers(), path.as_posix())


class TestSeededViolations:
    @pytest.mark.parametrize("relative,expected",
                             sorted(BAD_FIXTURES.items()))
    def test_rule_catches_its_fixture(self, relative, expected):
        rule, count = expected
        findings = _lint(relative)
        assert [finding.rule for finding in findings] == [rule] * count

    def test_findings_carry_real_positions(self):
        for relative in BAD_FIXTURES:
            for finding in _lint(relative):
                assert finding.line > 0
                assert finding.path.endswith(relative)


class TestCleanFixtures:
    @pytest.mark.parametrize("relative", CLEAN_FIXTURES)
    def test_no_false_positives(self, relative):
        assert _lint(relative) == []


class TestSuppression:
    def test_noqa_fixture_is_fully_silenced(self):
        assert _lint("noqa_suppressed.py") == []


class TestMixedSuffixDetail:
    """check_source-level probes of the units arithmetic rule."""

    def _units(self, source):
        return check_source(source, "models/probe.py",
                            make_checkers(["units"]))

    def test_cross_dimension_addition(self):
        findings = self._units("total = delay_ps + length_um\n")
        assert len(findings) == 1
        assert "time with length" in findings[0].message

    def test_same_dimension_different_scale(self):
        findings = self._units("slack = margin_ps - margin_ns\n")
        assert len(findings) == 1

    def test_comparison_mixing_scales(self):
        findings = self._units("ok = cap_ff < cap_f\n")
        assert len(findings) == 1

    def test_same_suffix_is_fine(self):
        assert self._units("total = left_ps + right_ps\n") == []

    def test_alias_suffixes_with_equal_factor_are_fine(self):
        assert self._units("total = start_s + ramp_seconds\n") == []

    def test_multiplication_combines_dimensions_legitimately(self):
        assert self._units("tau = drive_ohms * load_f\n") == []
