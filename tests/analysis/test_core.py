"""The visitor core: noqa, syntax findings, file collection."""

import pytest

from repro.analysis import (
    Finding,
    SYNTAX_RULE,
    check_source,
    collect_files,
    make_checkers,
)

#: One determinism violation per line — handy for suppression tests.
CLOCK_LINE = "import time\nnow = time.time()\n"


def _determinism():
    return make_checkers(["determinism"])


class TestFinding:
    def test_fingerprint_ignores_position(self):
        near = Finding("a.py", 3, 1, "units", "msg")
        far = Finding("a.py", 99, 7, "units", "msg")
        assert near.fingerprint() == far.fingerprint()

    def test_fingerprint_separates_paths_and_rules(self):
        base = Finding("a.py", 1, 1, "units", "msg")
        other_path = Finding("b.py", 1, 1, "units", "msg")
        other_rule = Finding("a.py", 1, 1, "determinism", "msg")
        assert base.fingerprint() != other_path.fingerprint()
        assert base.fingerprint() != other_rule.fingerprint()

    def test_format_is_gcc_style(self):
        finding = Finding("a.py", 3, 5, "units", "msg",
                          severity="warning")
        assert finding.format() == "a.py:3:5: warning: units: msg"


class TestNoqa:
    def test_bare_noqa_suppresses_everything(self):
        source = "import time\nnow = time.time()  # repro: noqa\n"
        assert check_source(source, "x.py", _determinism()) == []

    def test_named_rule_suppresses_only_that_rule(self):
        source = ("import time\n"
                  "now = time.time()  # repro: noqa[determinism]\n")
        assert check_source(source, "x.py", _determinism()) == []

    def test_other_rule_name_does_not_suppress(self):
        source = ("import time\n"
                  "now = time.time()  # repro: noqa[units]\n")
        findings = check_source(source, "x.py", _determinism())
        assert [finding.rule for finding in findings] == ["determinism"]

    def test_unsuppressed_line_still_fires(self):
        findings = check_source(CLOCK_LINE, "x.py", _determinism())
        assert len(findings) == 1
        assert findings[0].line == 2


class TestSyntaxErrors:
    def test_unparseable_file_is_one_syntax_finding(self):
        findings = check_source("def broken(:\n", "x.py",
                                make_checkers())
        assert [finding.rule for finding in findings] == [SYNTAX_RULE]

    def test_syntax_finding_cannot_be_suppressed(self):
        findings = check_source("def broken(:  # repro: noqa\n",
                                "x.py", make_checkers())
        assert [finding.rule for finding in findings] == [SYNTAX_RULE]


class TestMakeCheckers:
    def test_default_is_all_five_rules(self):
        rules = {checker.rule for checker in make_checkers()}
        assert rules == {"units", "determinism", "worker-safety",
                         "cache-purity", "span-hygiene"}

    def test_unknown_rule_is_a_usage_error(self):
        with pytest.raises(ValueError, match="unknown rule"):
            make_checkers(["units", "made-up"])

    def test_empty_selection_is_a_usage_error(self):
        with pytest.raises(ValueError, match="no rules selected"):
            make_checkers([])

    def test_project_rules_validate_but_make_no_file_checker(self):
        assert make_checkers(["kernel-parity"]) == []


class TestCollectFiles:
    def test_walks_directories_and_skips_junk(self, tmp_path):
        (tmp_path / "a.py").write_text("x = 1\n")
        sub = tmp_path / "sub"
        sub.mkdir()
        (sub / "b.py").write_text("y = 2\n")
        pycache = sub / "__pycache__"
        pycache.mkdir()
        (pycache / "b.cpython-311.py").write_text("z = 3\n")
        hidden = tmp_path / ".hidden"
        hidden.mkdir()
        (hidden / "c.py").write_text("w = 4\n")

        names = [path.name for path in collect_files([tmp_path])]
        assert names == ["a.py", "b.py"]

    def test_exclude_fragments(self, tmp_path):
        (tmp_path / "keep.py").write_text("x = 1\n")
        skip = tmp_path / "fixtures"
        skip.mkdir()
        (skip / "drop.py").write_text("y = 2\n")
        names = [path.name
                 for path in collect_files([tmp_path],
                                           exclude=("fixtures",))]
        assert names == ["keep.py"]

    def test_overlapping_arguments_deduplicate(self, tmp_path):
        target = tmp_path / "a.py"
        target.write_text("x = 1\n")
        assert collect_files([tmp_path, target]) \
            == collect_files([tmp_path])

    def test_missing_path_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            collect_files([tmp_path / "nope"])

    def test_directly_named_file_overrides_exclusion(self, tmp_path):
        # A fragment filter applies to directory walks; asking for a
        # file by name always scans it (how fixture tests stay
        # runnable under the CLI's default fixtures exclusion).
        target = tmp_path / "fixtures" / "direct.py"
        target.parent.mkdir()
        target.write_text("x = 1\n")
        assert collect_files([target], exclude=("fixtures",)) \
            == [target]
        assert collect_files([tmp_path], exclude=("fixtures",)) == []


class TestEdgeCases:
    def test_crlf_sources_lint_and_suppress_normally(self):
        source = ("import time\r\n"
                  "a = time.time()\r\n"
                  "b = time.time()  # repro: noqa[determinism]\r\n")
        findings = check_source(source, "x.py", _determinism())
        assert [finding.line for finding in findings] == [2]

    def test_noqa_on_a_decorated_def_suppresses_at_the_def_line(self):
        # The finding anchors at the ``def`` line, not the decorator:
        # the noqa comment belongs there too.
        source = ("import functools\n"
                  "@functools.lru_cache\n"
                  "def delay(load: float) -> float:"
                  "  # repro: noqa[units]\n"
                  "    return load\n"
                  "@functools.lru_cache\n"
                  "def slew(load: float) -> float:\n"
                  "    return load\n")
        findings = check_source(source, "src/repro/models/x.py",
                                make_checkers(["units"]))
        assert [finding.line for finding in findings] == [6]
        assert "slew" in findings[0].message

    def test_noqa_suppresses_at_the_first_line_of_a_multiline_call(
            self):
        source = ("import time\n"
                  "value = max(  # repro: noqa[determinism]\n"
                  "    time.time(),\n"
                  "    0.0,\n"
                  ")\n")
        # ``time.time()`` is reported at its own line (3), so a noqa
        # there suppresses ...
        suppressed = source.replace(
            "max(  # repro: noqa[determinism]", "max(").replace(
            "time.time(),", "time.time(),  # repro: noqa[determinism]")
        assert check_source(suppressed, "x.py", _determinism()) == []
        # ... while one on the expression's opening line does not.
        findings = check_source(source, "x.py", _determinism())
        assert [finding.line for finding in findings] == [3]
