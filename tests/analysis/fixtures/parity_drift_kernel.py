"""Kernel side of the seeded kernel-parity drift pair.

Deliberately drifted from ``parity_drift_scalar``: one extra multiply
(the spurious ``* 1.02`` fudge) and a changed coefficient (``0.7``
instead of ``0.69``).  Also defines an unpaired public kernel so the
registry-coverage finding has something to flag.
"""
import numpy as np


def stage_delay_batch(r_drive, c_load):
    """Drifted: extra fudge multiply, 0.7 instead of 0.69."""
    return 0.7 * np.asarray(r_drive) * np.asarray(c_load) * 1.02


def orphan_kernel(x):
    """Public kernel with no parity-registry entry."""
    return np.asarray(x) + 1.0
