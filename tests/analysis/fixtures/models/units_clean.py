"""Clean fixture: every float carries a suffix or a documented unit."""


def stage_delay_ps(load_ff: float, slew_ps: float) -> float:
    """Stage delay in picoseconds."""
    return load_ff * 0.5 + slew_ps


def utilization(area_um: float, budget_um: float) -> float:
    """Fraction of the area budget consumed (dimensionless)."""
    return area_um / budget_um


def wire_delay(length: float, per_meter: float) -> float:
    """Delay in seconds of ``length`` meters of wire."""
    return length * per_meter
