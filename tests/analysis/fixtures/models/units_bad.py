"""Seeded ``units`` violations: a bare-float public API and
mixed-suffix arithmetic."""


def stage_delay(load: float, slew: float) -> float:
    """Delay of one stage."""
    return load * slew


def span_length(length_um: float, gap_m: float) -> float:
    """Total distance in meters."""
    return length_um + gap_m
