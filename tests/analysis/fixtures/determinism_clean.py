"""Clean fixture: seeded streams, monotonic clocks, sorted dispatch."""

import time

import numpy as np

from repro.runtime import fingerprint, parallel_map


def jitter(seed: int) -> float:
    rng = np.random.default_rng(seed)
    return float(rng.standard_normal())


def elapsed() -> float:
    return time.perf_counter()


def dispatch(worker, items):
    return parallel_map(worker, sorted(set(items)))


def key(names):
    return fingerprint(sorted(names))
