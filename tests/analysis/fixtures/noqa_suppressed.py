"""Every violation in this file is suppressed inline."""

import time


def stamp() -> float:
    return time.time()  # repro: noqa[determinism]


def stamp_again() -> float:
    return time.time()  # repro: noqa
