"""Seeded ``span-hygiene`` violations: a span that never begins and
dynamically named histogram metrics."""

from repro.runtime.metrics import METRICS
from repro.runtime.trace import span


def timed(work):
    span("fixture-phase")
    return work()


def dynamic_observe(kind, elapsed):
    METRICS.observe(f"cache.lookup_seconds.{kind}", elapsed)


def variable_observe(metric_name, elapsed):
    METRICS.observe(metric_name, elapsed)


def concatenated_observed(suffix):
    with METRICS.observed("batch." + suffix):
        pass
