"""Seeded ``span-hygiene`` violation: a span that never begins."""

from repro.runtime.trace import span


def timed(work):
    span("fixture-phase")
    return work()
