"""Seeded ``worker-safety`` violations: closures into the pool."""

from repro.runtime import parallel_map


def run(items):
    def local_worker(item):
        return item * 2

    first = parallel_map(lambda item: item + 1, items)
    second = parallel_map(local_worker, items)
    return first, second
