"""Clean fixture: every span is entered as a context manager."""

from contextlib import ExitStack

from repro.runtime.trace import span


def timed(work):
    with span("fixture-phase"):
        return work()


def stacked(work):
    with ExitStack() as stack:
        stack.enter_context(span("fixture-stacked"))
        return work()


def delegating():
    return span("fixture-delegated")
