"""Clean fixture: every span is entered as a context manager and
every histogram metric name is statically enumerable."""

from contextlib import ExitStack

from repro.runtime.metrics import METRICS
from repro.runtime.trace import span

_BATCH_METRIC = "fixture.batch_seconds"


def timed(work):
    with span("fixture-phase"):
        return work()


def stacked(work):
    with ExitStack() as stack:
        stack.enter_context(span("fixture-stacked"))
        return work()


def delegating():
    return span("fixture-delegated")


def literal_observe(elapsed):
    METRICS.observe("fixture.task_seconds", elapsed)


def constant_observe(elapsed):
    METRICS.observe(_BATCH_METRIC, elapsed)


def keyed_observe(kind, elapsed):
    # observe_keyed is the sanctioned door for per-key series: the
    # base name stays a static literal.
    METRICS.observe_keyed("fixture.lookup_seconds", kind, elapsed)


def timed_block(work):
    with METRICS.observed("fixture.block_seconds"):
        return work()
