"""Seeded worker-safety-transitive violation.

``run`` submits ``work`` to the pool; ``work`` itself is clean, but
its helper two calls down consults the wall clock.  Only the
whole-program rule can see that — the per-file ``worker-safety`` rule
passes this file.
"""
import time

from repro.runtime.parallel import parallel_map


def _stamp() -> float:
    return time.time()


def _helper(item: int) -> float:
    return item + _stamp()


def work(item: int) -> float:
    return _helper(item) * 2.0


def run(items):
    return parallel_map(work, items)
