"""Clean fixture: the cached payload is a pure function of its key."""

from repro.runtime import DiskCache

_CACHE = DiskCache("analysis-fixture")

GAIN = 2.0


def compute(key: str, scale: float) -> float:
    cached = _CACHE.get(key)
    if cached is not None:
        return cached
    value = GAIN * scale
    _CACHE.put(key, value)
    return value
