"""Seeded ``cache-purity`` violations: environment and mutable-global
reads inside a DiskCache-keyed function."""

import os

from repro.runtime import DiskCache

_CACHE = DiskCache("analysis-fixture")
_TWEAKS = {"gain": 2.0}


def compute(key: str) -> float:
    cached = _CACHE.get(key)
    if cached is not None:
        return cached
    value = _TWEAKS["gain"] * float(os.environ.get("SCALE", "1"))
    _CACHE.put(key, value)
    return value
