"""Scalar side of the seeded kernel-parity drift pair.

The test indexes this file under module name ``repro.models.fake`` and
its kernel counterpart under ``repro.kernels.fake``; the kernel's
extra multiply and changed coefficient must both surface as
``kernel-parity`` findings.
"""


def stage_delay(r_drive: float, c_load: float) -> float:
    """tau = 0.69 * R * C."""
    return 0.69 * r_drive * c_load
