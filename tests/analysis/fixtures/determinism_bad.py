"""Seeded ``determinism`` violations: global RNG, wall clocks, and
unordered sets feeding ordered machinery."""

import random
import time

import numpy as np

from repro.runtime import fingerprint, parallel_map


def jitter() -> float:
    return random.gauss(0.0, 1.0) + np.random.rand()


def stamp() -> float:
    return time.time()


def dispatch(worker):
    return parallel_map(worker, {3, 1, 2})


def key():
    return fingerprint({"a", "b"})
