"""Clean fixture: only module-level callables cross the pool."""

from repro.runtime import parallel_map


def double(item):
    return item * 2


def run(items):
    return parallel_map(double, items)
