"""Seeded unit-flow violations.

Each call site passes a suffixed identifier into a parameter whose
declared suffix disagrees: a 1000x time-scale drift (``_ps`` into
``_ns``), a dimension clash (``_ff`` into ``_ohm``), and — for the
negative case — an equivalent-suffix call (``_ohm`` into ``_ohms``)
that must NOT fire.
"""


def settle(delay_ns: float) -> float:
    return delay_ns * 2.0


def drop(r_ohm: float) -> float:
    return r_ohm * 0.5


def drain(r_ohms: float) -> float:
    return r_ohms * 0.1


def caller():
    clock_ps = 140.0
    cap_ff = 3.0
    load_ohm = 75.0
    bad_scale = settle(clock_ps)
    bad_dimension = drop(cap_ff)
    fine = drain(r_ohms=load_ohm)
    return bad_scale + bad_dimension + fine
