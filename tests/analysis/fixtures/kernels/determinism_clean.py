"""Kernels module done right: draws arrive from the caller."""

import numpy as np


def perturbed_delay_batch(sizes, factors):
    """Pure array transform; ``factors`` were drawn by the caller."""
    return sizes * np.maximum(factors, 0.5)


def delay_with_generator(sizes, rng):
    """A Generator threaded in as an argument is also fine."""
    return sizes + rng.normal(0.0, 1.0, sizes.shape)
