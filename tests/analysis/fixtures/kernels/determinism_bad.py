"""Kernels module drawing its own randomness: three violations."""

import numpy as np
from numpy.random import default_rng   # banned in kernels, even seeded


def noisy_delay_batch(sizes):
    rng = np.random.default_rng(1234)  # seeded, still banned here
    noise = np.random.normal(0.0, 1.0, sizes.shape)  # module-level RNG
    return sizes + noise + rng.normal(0.0, 1.0)
