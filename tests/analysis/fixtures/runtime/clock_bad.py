"""Seeded violation: a wall clock in runtime code that is *not* the
fault harness — only the ``runtime/faults.py`` suffix (and the
observability layer) is sanctioned, not the whole runtime package."""

import time


def stamp() -> float:
    return time.time()
