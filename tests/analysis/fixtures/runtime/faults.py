"""Clean fixture: the fault-injection harness is path-sanctioned.

This file's path ends with ``runtime/faults.py``, the one suffix
besides the observability layer that the ``determinism`` rule allows
to touch wall clocks — injection points (straggler delays, crash
sites) are the only sanctioned nondeterminism hooks.  The identical
calls anywhere else under ``runtime/`` are violations (see
``runtime/clock_bad.py``).
"""

import time


def straggle(delay: float) -> float:
    started = time.time()
    time.sleep(delay)
    return time.time() - started
