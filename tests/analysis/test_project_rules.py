"""The three interprocedural rules, against seeded-drift fixtures."""

from pathlib import Path

from repro.analysis.graph import CallGraph, ProjectIndex
from repro.analysis.index import index_source
from repro.analysis.checkers import (
    KernelParityChecker,
    UnitFlowChecker,
    WorkerSafetyTransitiveChecker,
)
from repro.kernels.parity import EXEMPT, PARITY_PAIRS, ParityPair

FIXTURES = Path(__file__).resolve().parent / "fixtures"


def _index_fixture(name, module=None):
    path = FIXTURES / name
    return index_source(path.read_text(encoding="utf-8"),
                        f"tests/analysis/fixtures/{name}",
                        module=module)


def _run(checker, *indexes):
    project = ProjectIndex(indexes)
    return checker.run(project, CallGraph(project))


class TestKernelParity:
    PAIRS = (ParityPair(
        name="stage-delay",
        kernel=("repro.kernels.fake.stage_delay_batch",),
        scalar=("repro.models.fake.stage_delay",)),)

    def _indexes(self):
        return (_index_fixture("parity_drift_kernel.py",
                               module="repro.kernels.fake"),
                _index_fixture("parity_drift_scalar.py",
                               module="repro.models.fake"))

    def test_seeded_drift_fires_op_and_const_findings(self):
        checker = KernelParityChecker(pairs=self.PAIRS,
                                      exempt=frozenset(
                                          {"repro.kernels.fake"
                                           ".orphan_kernel"}))
        findings = _run(checker, *self._indexes())
        messages = [finding.message for finding in findings]
        assert len(findings) == 2
        assert any("operation multiset drift" in msg
                   for msg in messages)
        assert any("numeric-constant drift" in msg
                   for msg in messages)
        # Anchored at the kernel definition, not the scalar.
        assert all(finding.path.endswith("parity_drift_kernel.py")
                   for finding in findings)

    def test_ops_mode_ignores_constant_drift(self):
        pair = ParityPair(
            name="stage-delay",
            kernel=("repro.kernels.fake.stage_delay_batch",),
            scalar=("repro.models.fake.stage_delay",),
            compare="ops", rationale="constants hoisted in test")
        checker = KernelParityChecker(
            pairs=(pair,),
            exempt=frozenset({"repro.kernels.fake.orphan_kernel"}))
        findings = _run(checker, *self._indexes())
        assert len(findings) == 1
        assert "operation multiset drift" in findings[0].message

    def test_unpaired_public_kernel_is_a_coverage_finding(self):
        checker = KernelParityChecker(pairs=self.PAIRS,
                                      exempt=frozenset())
        findings = _run(checker, *self._indexes())
        coverage = [finding for finding in findings
                    if "no entry in the parity registry"
                    in finding.message]
        assert len(coverage) == 1
        assert "orphan_kernel" in coverage[0].message

    def test_registry_referencing_missing_function_is_a_finding(self):
        pair = ParityPair(
            name="ghost",
            kernel=("repro.kernels.fake.stage_delay_batch",),
            scalar=("repro.models.fake.no_such_function",))
        checker = KernelParityChecker(
            pairs=(pair,),
            exempt=frozenset({"repro.kernels.fake.orphan_kernel"}))
        findings = _run(checker, *self._indexes())
        assert len(findings) == 1
        assert "unindexed function" in findings[0].message
        assert "no_such_function" in findings[0].message

    def test_skips_entirely_when_no_kernel_module_in_scope(self):
        checker = KernelParityChecker(pairs=self.PAIRS,
                                      exempt=frozenset())
        scalar_only = _index_fixture("parity_drift_scalar.py",
                                     module="repro.models.fake")
        assert _run(checker, scalar_only) == []

    def test_real_registry_is_clean_and_covers_every_kernel(self):
        """The acceptance criterion: the shipped registry matches the
        shipped code, with every public kernel paired or exempt."""
        import repro
        src = Path(repro.__file__).parent
        indexes = []
        for path in sorted(src.rglob("*.py")):
            rel = path.relative_to(src.parent.parent).as_posix()
            indexes.append(index_source(
                path.read_text(encoding="utf-8"), rel))
        findings = _run(KernelParityChecker(), *indexes)
        assert findings == [], "\n".join(
            finding.format() for finding in findings)

    def test_every_registry_entry_names_a_kernel_and_scalar(self):
        for pair in PARITY_PAIRS:
            assert pair.kernel and pair.scalar
            assert all(name.startswith("repro.kernels.")
                       for name in pair.kernel), pair.name
            if pair.compare == "ops":
                assert pair.rationale, (
                    f"ops-only pair '{pair.name}' needs a rationale")
        assert all(name.startswith("repro.kernels.")
                   for name in EXEMPT)


class TestWorkerSafetyTransitive:
    def test_clock_two_calls_deep_fires_with_the_chain(self):
        index = _index_fixture("transitive_unsafe.py")
        findings = _run(WorkerSafetyTransitiveChecker(), index)
        assert len(findings) == 1
        (finding,) = findings
        assert "submitted to parallel_map" in finding.message
        assert "via work -> _helper -> _stamp" in finding.message
        assert "wall-clock" in finding.message
        # Anchored at the dispatch site, where the fix decision lives.
        assert finding.line == 26

    def test_clean_closure_is_silent(self):
        source = ("from repro.runtime.parallel import parallel_map\n"
                  "def work(item):\n"
                  "    return item * 2.0\n"
                  "def run(items):\n"
                  "    return parallel_map(work, items)\n")
        index = index_source(source, "src/repro/pkg/cleanpool.py")
        assert _run(WorkerSafetyTransitiveChecker(), index) == []

    def test_cache_scoped_function_with_env_read_fires(self):
        source = ("import os\n"
                  "def lookup(cache, key):\n"
                  "    tag = os.getenv('TAG')\n"
                  "    return cache.get([key, tag])\n")
        index = index_source(source, "src/repro/pkg/cachedenv.py")
        findings = _run(WorkerSafetyTransitiveChecker(), index)
        assert len(findings) == 1
        assert "computes DiskCache keys" in findings[0].message
        assert "env-read" in findings[0].message

    def test_runtime_modules_are_the_trust_boundary(self):
        # The closure reaches into repro.runtime, whose own clock use
        # is sanctioned — no finding.
        runtime = ("import time\n"
                   "def stamp():\n"
                   "    return time.time()\n",
                   "src/repro/runtime/stamps.py")
        caller = ("from repro.runtime.stamps import stamp\n"
                  "from repro.runtime.parallel import parallel_map\n"
                  "def work(item):\n"
                  "    return stamp() + item\n"
                  "def run(items):\n"
                  "    return parallel_map(work, items)\n",
                  "src/repro/pkg/trusting.py")
        indexes = [index_source(*entry) for entry in (runtime, caller)]
        assert _run(WorkerSafetyTransitiveChecker(), *indexes) == []

    def test_noqa_at_the_dispatch_site_suppresses(self):
        index = _index_fixture("transitive_unsafe.py")
        index.noqa = {26: ["worker-safety-transitive"]}
        assert _run(WorkerSafetyTransitiveChecker(), index) == []


class TestUnitFlow:
    def test_seeded_fixture_fires_scale_and_dimension_findings(self):
        index = _index_fixture("unit_flow_bad.py",
                               module="repro.pkg.unitflow")
        findings = _run(UnitFlowChecker(), index)
        assert len(findings) == 2
        scale = [finding for finding in findings
                 if "'clock_ps'" in finding.message]
        dimension = [finding for finding in findings
                     if "'cap_ff'" in finding.message]
        assert len(scale) == 1 and len(dimension) == 1
        assert "'ps' into 'ns'" in scale[0].message
        assert "capacitance into resistance" in dimension[0].message
        assert all(finding.severity == "warning"
                   for finding in findings)

    def test_equivalent_suffixes_do_not_fire(self):
        # ``_ohm`` into ``_ohms``: same dimension, same SI factor.
        source = ("def drain(r_ohms):\n"
                  "    return r_ohms * 0.1\n"
                  "def go(load_ohm):\n"
                  "    return drain(load_ohm)\n")
        index = index_source(source, "src/repro/pkg/okunits.py")
        assert _run(UnitFlowChecker(), index) == []

    def test_unsuffixed_names_do_not_fire(self):
        source = ("def settle(delay_ns):\n"
                  "    return delay_ns * 2.0\n"
                  "def go(value):\n"
                  "    return settle(value)\n")
        index = index_source(source, "src/repro/pkg/nosuffix.py")
        assert _run(UnitFlowChecker(), index) == []

    def test_method_calls_map_past_self(self):
        source = ("class Line:\n"
                  "    def settle(self, delay_ns):\n"
                  "        return delay_ns * 2.0\n"
                  "    def go(self, clock_ps):\n"
                  "        return self.settle(clock_ps)\n")
        index = index_source(source, "src/repro/pkg/methodflow.py")
        findings = _run(UnitFlowChecker(), index)
        assert len(findings) == 1
        assert "'clock_ps' into parameter 'delay_ns'" \
            in findings[0].message
