"""The incremental, parallel lint engine: caching and rule selection."""

import time

import pytest

from repro.analysis import scan_paths, split_rules
from repro.analysis.checkers import UnitsChecker
from repro.runtime.metrics import METRICS

#: A parse-heavy but clean module body, repeated to make cold walks
#: measurably slower than warm cache reads.
_BLOCK = ("def fn_{i}(x_ps, y_ps):\n"
          "    total_ps = x_ps + y_ps\n"
          "    scaled_ps = total_ps * 0.5\n"
          "    if scaled_ps <= 0:\n"
          "        return 0.0\n"
          "    return scaled_ps\n\n")

#: File-level-only selection: no src/repro context files get indexed,
#: so cache counters map 1:1 onto the files under test.
FILE_RULES = ["units", "determinism"]


def _make_tree(root, files=24, blocks=40):
    root.mkdir(exist_ok=True)
    for number in range(files):
        body = "".join(_BLOCK.format(i=i) for i in range(blocks))
        (root / f"mod_{number}.py").write_text(body,
                                               encoding="utf-8")
    return root


def _scan(tree, cache, rules=FILE_RULES):
    METRICS.reset()
    started = time.perf_counter()
    scan = scan_paths([tree], rules=rules, cache_dir=cache)
    elapsed = time.perf_counter() - started
    return scan, elapsed


class TestIncremental:
    def test_warm_run_hits_the_cache_for_every_file(self, tmp_path):
        tree = _make_tree(tmp_path / "tree")
        cache = tmp_path / "cache"
        cold, cold_s = _scan(tree, cache)
        assert METRICS.counters.get("lint.cache.miss") == 24
        assert "lint.cache.hit" not in METRICS.counters
        warm, warm_s = _scan(tree, cache)
        assert METRICS.counters.get("lint.cache.hit") == 24
        assert "lint.cache.miss" not in METRICS.counters
        # No file re-parsed: the walk histogram saw zero observations.
        assert METRICS.histogram("lint.walk_seconds") is None
        assert warm.findings == cold.findings
        assert warm.files_scanned == cold.files_scanned == 24
        # The acceptance bar: warm incremental lint is at least 5x
        # faster than the cold run it replays.  The warm side is
        # best-of-three — one replay hitting a scheduler hiccup must
        # not fail the gate, which measures the replay path, not the
        # machine's worst moment.
        for _ in range(2):
            if warm_s * 5 <= cold_s:
                break
            _, retry_s = _scan(tree, cache)
            warm_s = min(warm_s, retry_s)
        assert warm_s * 5 <= cold_s, (
            f"warm {warm_s:.3f}s vs cold {cold_s:.3f}s")

    def test_touching_one_file_reparses_only_that_file(self, tmp_path):
        tree = _make_tree(tmp_path / "tree")
        cache = tmp_path / "cache"
        _scan(tree, cache)
        target = tree / "mod_3.py"
        target.write_text(target.read_text() + "EXTRA_PS = 1\n",
                          encoding="utf-8")
        _scan(tree, cache)
        assert METRICS.counters.get("lint.cache.hit") == 23
        assert METRICS.counters.get("lint.cache.miss") == 1

    def test_renaming_a_file_invalidates_its_entry(self, tmp_path):
        # The display path is part of the cache key — findings and
        # index entries carry it, so a rename must not replay them
        # under the old name.
        tree = _make_tree(tmp_path / "tree", files=4)
        cache = tmp_path / "cache"
        _scan(tree, cache)
        (tree / "mod_0.py").rename(tree / "renamed.py")
        _scan(tree, cache)
        assert METRICS.counters.get("lint.cache.hit") == 3
        assert METRICS.counters.get("lint.cache.miss") == 1

    def test_rule_version_bump_invalidates(self, tmp_path,
                                           monkeypatch):
        tree = _make_tree(tmp_path / "tree", files=4)
        cache = tmp_path / "cache"
        _scan(tree, cache)
        monkeypatch.setattr(UnitsChecker, "version",
                            UnitsChecker.version + 1)
        _scan(tree, cache)
        assert METRICS.counters.get("lint.cache.miss") == 4
        assert "lint.cache.hit" not in METRICS.counters

    def test_findings_replay_identically_from_cache(self, tmp_path):
        bad = tmp_path / "tree"
        bad.mkdir()
        (bad / "clocky.py").write_text(
            "import time\nnow = time.time()\n", encoding="utf-8")
        cache = tmp_path / "cache"
        cold, _ = _scan(bad, cache)
        warm, _ = _scan(bad, cache)
        assert METRICS.counters.get("lint.cache.hit") == 1
        assert [f.to_json() for f in warm.findings] \
            == [f.to_json() for f in cold.findings]
        assert warm.findings[0].rule == "determinism"

    def test_parallel_scan_matches_serial(self, tmp_path,
                                          monkeypatch):
        tree = _make_tree(tmp_path / "tree", files=8)
        serial, _ = _scan(tree, tmp_path / "cache-serial")
        monkeypatch.setenv("REPRO_WORKERS", "2")
        parallel, _ = _scan(tree, tmp_path / "cache-parallel")
        assert parallel.findings == serial.findings
        assert parallel.files_scanned == serial.files_scanned


class TestSplitRules:
    def test_none_selects_every_rule(self):
        file_rules, project_rules = split_rules(None)
        assert set(file_rules) == {"units", "determinism",
                                   "worker-safety", "cache-purity",
                                   "span-hygiene"}
        assert set(project_rules) == {"kernel-parity",
                                      "worker-safety-transitive",
                                      "unit-flow"}

    def test_mixed_selection_splits_by_kind(self):
        file_rules, project_rules = split_rules(
            ["units", "unit-flow"])
        assert file_rules == ["units"]
        assert project_rules == ["unit-flow"]

    def test_empty_selection_is_a_usage_error(self):
        with pytest.raises(ValueError, match="no rules selected"):
            split_rules([])
        with pytest.raises(ValueError, match="no rules selected"):
            split_rules(["", ""])

    def test_unknown_rule_lists_the_valid_names(self):
        with pytest.raises(ValueError) as excinfo:
            split_rules(["made-up"])
        message = str(excinfo.value)
        assert "unknown rule(s): made-up" in message
        for rule in ("units", "kernel-parity", "unit-flow",
                     "worker-safety-transitive"):
            assert rule in message


class TestProjectScope:
    def test_project_findings_stay_inside_the_scanned_set(
            self, tmp_path):
        # Scanning a tree with a unit-flow violation reports it; the
        # always-indexed src/repro context files contribute call-graph
        # context but no findings of their own.
        tree = tmp_path / "tree"
        tree.mkdir()
        (tree / "flow.py").write_text(
            "def settle(delay_ns):\n"
            "    return delay_ns * 2.0\n"
            "def go(clock_ps):\n"
            "    return settle(clock_ps)\n", encoding="utf-8")
        scan = scan_paths([tree], rules=["unit-flow"],
                          cache_dir=tmp_path / "cache")
        assert [finding.rule for finding in scan.findings] \
            == ["unit-flow"]
        assert scan.files_scanned == 1
        assert all(finding.path.endswith("flow.py")
                   for finding in scan.findings)

    def test_graph_covers_context_beyond_the_scanned_files(
            self, tmp_path):
        tree = tmp_path / "tree"
        tree.mkdir()
        (tree / "solo.py").write_text("x = 1\n", encoding="utf-8")
        scan = scan_paths([tree], rules=None,
                          cache_dir=tmp_path / "cache")
        graph = scan.graph()
        assert scan.files_scanned == 1
        # src/repro symbols are present for resolution even though
        # only solo.py was scanned.
        assert any(name.startswith("repro.")
                   for name in graph.project.symbols)
