"""`repro lint` end to end: exit codes, formats, baseline workflow."""

import json
from pathlib import Path

from repro.cli import main

FIXTURES = Path(__file__).resolve().parent / "fixtures"
REPO_SRC = Path(__file__).resolve().parents[2] / "src"

BAD = str(FIXTURES / "span_hygiene_bad.py")
CLEAN = str(FIXTURES / "span_hygiene_clean.py")


def _lint(tmp_path, *argv):
    """Run `repro lint` with the baseline pointed away from the repo's
    committed file."""
    return main(["lint", *argv,
                 "--baseline", str(tmp_path / "baseline.json")])


class TestExitCodes:
    def test_clean_file_exits_zero(self, tmp_path, capsys):
        assert _lint(tmp_path, CLEAN) == 0
        assert "0 findings" in capsys.readouterr().out

    def test_findings_exit_one(self, tmp_path, capsys):
        assert _lint(tmp_path, BAD) == 1
        output = capsys.readouterr().out
        assert "span-hygiene" in output
        assert "4 findings" in output

    def test_missing_path_is_usage_error(self, tmp_path, capsys):
        assert _lint(tmp_path, str(tmp_path / "nope")) == 2
        assert "error:" in capsys.readouterr().err

    def test_unknown_rule_is_usage_error(self, tmp_path, capsys):
        assert _lint(tmp_path, CLEAN, "--rules", "made-up") == 2
        assert "unknown rule" in capsys.readouterr().err


class TestRuleSelection:
    def test_rules_flag_restricts_the_scan(self, tmp_path):
        # The only violation in this fixture is a determinism one, so
        # a span-hygiene-only scan comes back clean.
        bad = str(FIXTURES / "determinism_bad.py")
        assert _lint(tmp_path, bad, "--rules", "span-hygiene") == 0

    def test_exclude_skips_matching_paths(self, tmp_path):
        assert _lint(tmp_path, str(FIXTURES),
                     "--exclude", "_bad", "--exclude", "noqa") == 0


class TestOutputs:
    def test_json_format_is_parseable(self, tmp_path, capsys):
        assert _lint(tmp_path, BAD, "--format", "json") == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["counts_by_rule"] == {"span-hygiene": 4}
        assert payload["findings"][0]["rule"] == "span-hygiene"

    def test_report_writes_the_json_artifact(self, tmp_path, capsys):
        report = tmp_path / "report.json"
        assert _lint(tmp_path, BAD, "--report", str(report)) == 1
        payload = json.loads(report.read_text())
        assert payload["files_scanned"] == 1
        assert payload["counts_by_rule"] == {"span-hygiene": 4}

    def test_stats_footer_reports_throughput(self, tmp_path, capsys):
        assert _lint(tmp_path, CLEAN, "--stats") == 0
        output = capsys.readouterr().out
        assert "lint.throughput" in output
        assert "files/s" in output


class TestBaselineWorkflow:
    def test_write_then_scan_round_trip(self, tmp_path, capsys):
        assert _lint(tmp_path, BAD, "--write-baseline") == 0
        assert "grandfathered" in capsys.readouterr().out
        # The same finding is now baselined, so the gate passes ...
        assert _lint(tmp_path, BAD) == 0
        assert "4 baselined" in capsys.readouterr().out
        # ... but a different file's findings are still new.
        bad_elsewhere = str(FIXTURES / "worker_safety_bad.py")
        assert _lint(tmp_path, bad_elsewhere) == 1


class TestMergedTree:
    def test_repo_src_is_clean(self, tmp_path):
        """The acceptance criterion: `repro lint src/` exits 0."""
        assert _lint(tmp_path, str(REPO_SRC)) == 0
