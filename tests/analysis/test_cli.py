"""`repro lint` end to end: exit codes, formats, baseline workflow."""

import json
from pathlib import Path

from repro.cli import main

FIXTURES = Path(__file__).resolve().parent / "fixtures"
REPO_SRC = Path(__file__).resolve().parents[2] / "src"

BAD = str(FIXTURES / "span_hygiene_bad.py")
CLEAN = str(FIXTURES / "span_hygiene_clean.py")


def _lint(tmp_path, *argv):
    """Run `repro lint` with the baseline pointed away from the repo's
    committed file."""
    return main(["lint", *argv,
                 "--baseline", str(tmp_path / "baseline.json")])


class TestExitCodes:
    def test_clean_file_exits_zero(self, tmp_path, capsys):
        assert _lint(tmp_path, CLEAN) == 0
        assert "0 findings" in capsys.readouterr().out

    def test_findings_exit_one(self, tmp_path, capsys):
        assert _lint(tmp_path, BAD) == 1
        output = capsys.readouterr().out
        assert "span-hygiene" in output
        assert "4 findings" in output

    def test_missing_path_is_usage_error(self, tmp_path, capsys):
        assert _lint(tmp_path, str(tmp_path / "nope")) == 2
        assert "error:" in capsys.readouterr().err

    def test_unknown_rule_is_usage_error(self, tmp_path, capsys):
        assert _lint(tmp_path, CLEAN, "--rules", "made-up") == 2
        err = capsys.readouterr().err
        assert "unknown rule" in err
        # The usage error lists every valid rule, project ones too.
        assert "units" in err and "kernel-parity" in err

    def test_empty_rule_selection_is_usage_error(self, tmp_path,
                                                 capsys):
        # ``--rules ,`` must not silently lint nothing and exit 0.
        assert _lint(tmp_path, CLEAN, "--rules", ",") == 2
        assert "no rules selected" in capsys.readouterr().err


class TestRuleSelection:
    def test_rules_flag_restricts_the_scan(self, tmp_path):
        # The only violation in this fixture is a determinism one, so
        # a span-hygiene-only scan comes back clean.
        bad = str(FIXTURES / "determinism_bad.py")
        assert _lint(tmp_path, bad, "--rules", "span-hygiene") == 0

    def test_exclude_skips_matching_paths(self, tmp_path):
        assert _lint(tmp_path, str(FIXTURES),
                     "--exclude", "_bad", "--exclude", "noqa") == 0


class TestOutputs:
    def test_json_format_is_parseable(self, tmp_path, capsys):
        assert _lint(tmp_path, BAD, "--format", "json") == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["counts_by_rule"] == {"span-hygiene": 4}
        assert payload["findings"][0]["rule"] == "span-hygiene"

    def test_report_writes_the_json_artifact(self, tmp_path, capsys):
        report = tmp_path / "report.json"
        assert _lint(tmp_path, BAD, "--report", str(report)) == 1
        payload = json.loads(report.read_text())
        assert payload["files_scanned"] == 1
        assert payload["counts_by_rule"] == {"span-hygiene": 4}

    def test_stats_footer_reports_throughput(self, tmp_path, capsys):
        assert _lint(tmp_path, CLEAN, "--stats") == 0
        output = capsys.readouterr().out
        assert "lint.throughput" in output
        assert "files/s" in output


class TestGraphOutput:
    def test_json_graph_artifact(self, tmp_path, capsys):
        out = tmp_path / "graph.json"
        assert _lint(tmp_path, CLEAN, "--graph", str(out)) == 0
        assert "call graph written" in capsys.readouterr().out
        payload = json.loads(out.read_text())
        assert payload["schema"] == 1
        assert payload["nodes"] and payload["edges"]
        # The always-indexed src/repro context is in the graph.
        assert any(node["name"].startswith("repro.")
                   for node in payload["nodes"])

    def test_dot_graph_artifact(self, tmp_path):
        out = tmp_path / "graph.dot"
        assert _lint(tmp_path, CLEAN, "--graph", str(out)) == 0
        dot = out.read_text()
        assert dot.startswith("digraph repro_calls {")
        assert "->" in dot


class TestBaselineWorkflow:
    def test_write_then_scan_round_trip(self, tmp_path, capsys):
        assert _lint(tmp_path, BAD, "--write-baseline") == 0
        assert "grandfathered" in capsys.readouterr().out
        # The same finding is now baselined, so the gate passes ...
        assert _lint(tmp_path, BAD) == 0
        assert "4 baselined" in capsys.readouterr().out
        # ... but a different file's findings are still new.
        bad_elsewhere = str(FIXTURES / "worker_safety_bad.py")
        assert _lint(tmp_path, bad_elsewhere) == 1

    def test_prune_baseline_drops_fixed_entries(self, tmp_path,
                                                capsys):
        # Grandfather two files' findings, then prune against a scan
        # covering only one of them: the other file's entries go.
        bad_elsewhere = str(FIXTURES / "worker_safety_bad.py")
        assert _lint(tmp_path, BAD, bad_elsewhere,
                     "--write-baseline") == 0
        capsys.readouterr()
        assert _lint(tmp_path, BAD, "--prune-baseline") == 0
        assert "baseline pruned" in capsys.readouterr().out
        # The pruned baseline still admits BAD ...
        assert _lint(tmp_path, BAD) == 0
        # ... but no longer grandfathers the file dropped from scope.
        assert _lint(tmp_path, bad_elsewhere) == 1

    def test_prune_without_a_baseline_is_usage_error(self, tmp_path,
                                                     capsys):
        assert _lint(tmp_path, CLEAN, "--prune-baseline") == 2
        assert "no baseline" in capsys.readouterr().err

    def test_syntax_findings_survive_a_baseline(self, tmp_path,
                                                capsys):
        # Regression: an unparseable file can be neither written into
        # a baseline nor suppressed by one.
        broken = tmp_path / "broken.py"
        broken.write_text("def broken(:\n")
        assert _lint(tmp_path, str(broken), "--write-baseline") == 0
        assert "0 findings grandfathered" in capsys.readouterr().out
        assert _lint(tmp_path, str(broken)) == 1
        assert "syntax" in capsys.readouterr().out


class TestMergedTree:
    def test_repo_src_is_clean(self, tmp_path):
        """The acceptance criterion: `repro lint src/` exits 0."""
        assert _lint(tmp_path, str(REPO_SRC)) == 0

    def test_repo_default_paths_are_clean(self, tmp_path):
        """src + tests + scripts — the CLI's default scope — all pass
        all eight rules (deliberate-violation fixtures excluded by
        the built-in default)."""
        repo = REPO_SRC.parent
        assert _lint(tmp_path, str(REPO_SRC), str(repo / "tests"),
                     str(repo / "scripts")) == 0
