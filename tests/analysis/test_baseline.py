"""Baseline files: round-trip, budgets, loud failure on bad input."""

import json

import pytest

from repro.analysis import (
    Finding,
    apply_baseline,
    read_baseline,
    write_baseline,
)


def _finding(path="a.py", line=1, rule="units", message="msg"):
    return Finding(path, line, 1, rule, message)


class TestRoundTrip:
    def test_write_then_read_restores_counts(self, tmp_path):
        target = tmp_path / "baseline.json"
        findings = [_finding(line=1), _finding(line=9),
                    _finding(rule="determinism", message="other")]
        write_baseline(target, findings)
        budget = read_baseline(target)
        assert budget[_finding().fingerprint()] == 2
        assert budget[_finding(rule="determinism",
                               message="other").fingerprint()] == 1

    def test_empty_baseline_round_trips(self, tmp_path):
        target = tmp_path / "baseline.json"
        write_baseline(target, [])
        assert read_baseline(target) == {}


class TestApplyBaseline:
    def test_grandfathered_findings_are_filtered(self):
        budget = {_finding().fingerprint(): 1}
        fresh, suppressed = apply_baseline([_finding(line=5)], budget)
        assert fresh == []
        assert suppressed == 1

    def test_budget_is_per_occurrence(self):
        budget = {_finding().fingerprint(): 1}
        duplicated = [_finding(line=5), _finding(line=9)]
        fresh, suppressed = apply_baseline(duplicated, budget)
        assert suppressed == 1
        assert [finding.line for finding in fresh] == [9]

    def test_new_findings_pass_through(self):
        fresh, suppressed = apply_baseline([_finding()], {})
        assert fresh == [_finding()]
        assert suppressed == 0


class TestBadBaselines:
    def test_wrong_schema_fails_loudly(self, tmp_path):
        target = tmp_path / "baseline.json"
        target.write_text(json.dumps({"schema": 99, "findings": []}))
        with pytest.raises(ValueError, match="schema"):
            read_baseline(target)

    def test_malformed_entry_fails_loudly(self, tmp_path):
        target = tmp_path / "baseline.json"
        target.write_text(json.dumps(
            {"schema": 1, "findings": [{"rule": "units"}]}))
        with pytest.raises(ValueError, match="malformed"):
            read_baseline(target)
