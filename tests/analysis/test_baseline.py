"""Baseline files: round-trip, budgets, loud failure on bad input."""

import json

import pytest

from repro.analysis import (
    Finding,
    SYNTAX_RULE,
    apply_baseline,
    prune_baseline,
    read_baseline,
    write_baseline,
)


def _finding(path="a.py", line=1, rule="units", message="msg"):
    return Finding(path, line, 1, rule, message)


class TestRoundTrip:
    def test_write_then_read_restores_counts(self, tmp_path):
        target = tmp_path / "baseline.json"
        findings = [_finding(line=1), _finding(line=9),
                    _finding(rule="determinism", message="other")]
        write_baseline(target, findings)
        budget = read_baseline(target)
        assert budget[_finding().fingerprint()] == 2
        assert budget[_finding(rule="determinism",
                               message="other").fingerprint()] == 1

    def test_empty_baseline_round_trips(self, tmp_path):
        target = tmp_path / "baseline.json"
        write_baseline(target, [])
        assert read_baseline(target) == {}


class TestApplyBaseline:
    def test_grandfathered_findings_are_filtered(self):
        budget = {_finding().fingerprint(): 1}
        fresh, suppressed = apply_baseline([_finding(line=5)], budget)
        assert fresh == []
        assert suppressed == 1

    def test_budget_is_per_occurrence(self):
        budget = {_finding().fingerprint(): 1}
        duplicated = [_finding(line=5), _finding(line=9)]
        fresh, suppressed = apply_baseline(duplicated, budget)
        assert suppressed == 1
        assert [finding.line for finding in fresh] == [9]

    def test_new_findings_pass_through(self):
        fresh, suppressed = apply_baseline([_finding()], {})
        assert fresh == [_finding()]
        assert suppressed == 0


class TestRenameInvalidation:
    def test_renamed_file_is_no_longer_grandfathered(self, tmp_path):
        # The fingerprint carries the path: grandfather a finding in
        # a.py, move the code to b.py, and the same violation is new
        # again — a baseline must not follow code around the tree.
        target = tmp_path / "baseline.json"
        write_baseline(target, [_finding(path="a.py")])
        budget = read_baseline(target)
        fresh, suppressed = apply_baseline(
            [_finding(path="b.py")], budget)
        assert suppressed == 0
        assert [finding.path for finding in fresh] == ["b.py"]


class TestSyntaxImmunity:
    """SYNTAX_RULE findings can never be baselined (regression)."""

    def _syntax(self):
        return _finding(rule=SYNTAX_RULE,
                        message="file does not parse: bad")

    def test_write_baseline_drops_syntax_findings(self, tmp_path):
        target = tmp_path / "baseline.json"
        write_baseline(target, [self._syntax(), _finding()])
        budget = read_baseline(target)
        assert self._syntax().fingerprint() not in budget
        assert budget[_finding().fingerprint()] == 1

    def test_apply_never_suppresses_syntax_findings(self):
        # Even a hand-edited baseline entry must not admit an
        # unparseable file: grandfathering it would blind every other
        # rule to that file.
        budget = {self._syntax().fingerprint(): 5}
        fresh, suppressed = apply_baseline([self._syntax()], budget)
        assert suppressed == 0
        assert [finding.rule for finding in fresh] == [SYNTAX_RULE]


class TestPruneBaseline:
    def test_fixed_findings_lose_their_budget(self, tmp_path):
        target = tmp_path / "baseline.json"
        write_baseline(target, [_finding(line=1), _finding(line=9),
                                _finding(rule="determinism",
                                         message="other")])
        # The tree now produces only one of the two 'units' findings
        # and none of the determinism one.
        kept, pruned = prune_baseline(target, [_finding(line=4)])
        assert (kept, pruned) == (1, 2)
        budget = read_baseline(target)
        assert budget == {_finding().fingerprint(): 1}

    def test_prune_is_a_no_op_when_nothing_was_fixed(self, tmp_path):
        target = tmp_path / "baseline.json"
        findings = [_finding(line=1), _finding(line=9)]
        write_baseline(target, findings)
        kept, pruned = prune_baseline(target, findings)
        assert (kept, pruned) == (1, 0)
        assert read_baseline(target)[_finding().fingerprint()] == 2


class TestBadBaselines:
    def test_wrong_schema_fails_loudly(self, tmp_path):
        target = tmp_path / "baseline.json"
        target.write_text(json.dumps({"schema": 99, "findings": []}))
        with pytest.raises(ValueError, match="schema"):
            read_baseline(target)

    def test_malformed_entry_fails_loudly(self, tmp_path):
        target = tmp_path / "baseline.json"
        target.write_text(json.dumps(
            {"schema": 1, "findings": [{"rule": "units"}]}))
        with pytest.raises(ValueError, match="malformed"):
            read_baseline(target)
