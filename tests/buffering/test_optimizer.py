"""Buffering optimization."""

import pytest

from repro.buffering.optimizer import (
    max_feasible_length,
    minimize_power_under_delay,
    optimize_buffering,
)
from repro.units import mm, ps


class TestOptimizeBuffering:
    def test_delay_weight_one_minimizes_delay(self, suite90):
        fastest = optimize_buffering(suite90.proposed, mm(5),
                                     delay_weight=1.0)
        balanced = optimize_buffering(suite90.proposed, mm(5),
                                      delay_weight=0.5)
        assert fastest.delay <= balanced.delay * (1 + 1e-6)

    def test_lower_weight_trades_delay_for_power(self, suite90):
        fast = optimize_buffering(suite90.proposed, mm(5),
                                  delay_weight=1.0)
        lean = optimize_buffering(suite90.proposed, mm(5),
                                  delay_weight=0.2)
        assert lean.power < fast.power
        assert lean.delay > fast.delay

    def test_solution_beats_perturbations(self, suite90):
        """Local optimality: neighbours in (count, size) are no better."""
        solution = optimize_buffering(suite90.proposed, mm(5),
                                      delay_weight=0.5)

        def objective(count, size):
            estimate = suite90.proposed.evaluate(mm(5), count, size,
                                                 ps(100))
            return estimate.delay**0.5 * estimate.total_power**0.5

        base = objective(solution.num_repeaters, solution.repeater_size)
        for count_delta in (-1, 1):
            count = solution.num_repeaters + count_delta
            if count >= 1:
                assert base <= objective(
                    count, solution.repeater_size) * 1.02
        for size_factor in (0.8, 1.25):
            assert base <= objective(
                solution.num_repeaters,
                max(solution.repeater_size * size_factor, 1.0)) * 1.02

    def test_practical_size_cap_respected(self, suite90):
        solution = optimize_buffering(suite90.proposed, mm(10),
                                      delay_weight=1.0, max_size=48.0)
        assert solution.repeater_size <= 48.0 + 0.5

    def test_weight_validation(self, suite90):
        with pytest.raises(ValueError):
            optimize_buffering(suite90.proposed, mm(1), delay_weight=1.5)
        with pytest.raises(ValueError):
            optimize_buffering(suite90.proposed, 0.0)

    def test_explicit_counts(self, suite90):
        solution = optimize_buffering(suite90.proposed, mm(5),
                                      counts=[3])
        assert solution.num_repeaters == 3

    def test_works_with_baselines(self, suite90):
        for model in (suite90.bakoglu, suite90.pamunuwa):
            solution = optimize_buffering(model, mm(5),
                                          delay_weight=0.5)
            assert solution.delay > 0
            assert solution.power > 0


class TestMinimizePowerUnderDelay:
    def test_meets_bound(self, suite90):
        bound = ps(500)
        solution = minimize_power_under_delay(suite90.proposed, mm(5),
                                              bound)
        assert solution is not None
        assert solution.delay <= bound * (1 + 1e-6)

    def test_cheaper_than_delay_optimal(self, suite90):
        fastest = optimize_buffering(suite90.proposed, mm(5),
                                     delay_weight=1.0)
        relaxed = minimize_power_under_delay(
            suite90.proposed, mm(5), 2.0 * fastest.delay)
        assert relaxed is not None
        assert relaxed.power <= fastest.power

    def test_infeasible_returns_none(self, suite90):
        solution = minimize_power_under_delay(suite90.proposed, mm(15),
                                              ps(50))
        assert solution is None

    def test_tighter_bound_costs_more_power(self, suite90):
        loose = minimize_power_under_delay(suite90.proposed, mm(5),
                                           ps(800))
        tight = minimize_power_under_delay(suite90.proposed, mm(5),
                                           ps(300))
        assert loose is not None and tight is not None
        assert tight.power >= loose.power

    def test_bound_validation(self, suite90):
        with pytest.raises(ValueError):
            minimize_power_under_delay(suite90.proposed, mm(1), 0.0)


class TestMaxFeasibleLength:
    def test_monotone_in_budget(self, suite90):
        short_budget = max_feasible_length(suite90.proposed, ps(300))
        long_budget = max_feasible_length(suite90.proposed, ps(700))
        assert 0 < short_budget < long_budget

    def test_optimistic_model_allows_longer_wires(self, suite90):
        period = suite90.tech.clock_period()
        accurate = max_feasible_length(suite90.proposed, period)
        optimistic = max_feasible_length(suite90.bakoglu, period)
        # The paper: the original model admits excessively long wires.
        assert optimistic > 1.2 * accurate

    def test_impossible_budget_returns_zero(self, suite90):
        assert max_feasible_length(suite90.proposed, ps(1)) == 0.0
