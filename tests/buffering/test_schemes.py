"""Closed-form buffering schemes."""

import pytest

from repro.buffering.optimizer import optimize_buffering
from repro.buffering.schemes import delay_optimal_buffering
from repro.units import mm, ps


class TestDelayOptimal:
    def test_count_grows_with_length(self, suite90):
        short = delay_optimal_buffering(suite90.tech,
                                        suite90.calibration,
                                        suite90.config, mm(2))
        long_ = delay_optimal_buffering(suite90.tech,
                                        suite90.calibration,
                                        suite90.config, mm(10))
        assert long_.num_repeaters > short.num_repeaters

    def test_size_is_impractically_large(self, suite90):
        # Section III-D: delay-optimal sizes are never used in practice.
        prescription = delay_optimal_buffering(
            suite90.tech, suite90.calibration, suite90.config, mm(10))
        assert prescription.repeater_size > 50

    def test_size_independent_of_length(self, suite90):
        # h_opt = sqrt(R0 c_w / (r_w C0)) is length-invariant because
        # both c_w and r_w are linear in length.
        a = delay_optimal_buffering(suite90.tech, suite90.calibration,
                                    suite90.config, mm(4))
        b = delay_optimal_buffering(suite90.tech, suite90.calibration,
                                    suite90.config, mm(12))
        assert a.repeater_size == pytest.approx(b.repeater_size,
                                                rel=0.01)

    def test_close_to_searched_delay_optimum(self, suite90):
        """The closed form should land near the search-based optimum."""
        length = mm(8)
        closed = delay_optimal_buffering(
            suite90.tech, suite90.calibration, suite90.config, length)
        searched = optimize_buffering(
            suite90.proposed, length, delay_weight=1.0, max_size=400.0)
        closed_delay = suite90.proposed.evaluate(
            length, closed.num_repeaters,
            min(closed.repeater_size, 400.0), ps(100)).delay
        # The closed form over-inserts repeaters (its wire capacitance
        # includes the Miller-amplified coupling), so it lands within a
        # modest factor of the searched optimum, not on top of it.
        assert closed_delay <= 1.6 * searched.delay

    def test_length_validation(self, suite90):
        with pytest.raises(ValueError):
            delay_optimal_buffering(suite90.tech, suite90.calibration,
                                    suite90.config, 0.0)
