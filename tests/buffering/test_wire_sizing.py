"""Wire sizing co-optimization."""

import pytest

from repro.buffering.wire_sizing import (
    optimize_wire_sizing,
    sized_configuration,
    sizing_frontier,
)
from repro.units import mm


class TestSizedConfiguration:
    def test_scales_geometry(self, swss90):
        sized = sized_configuration(swss90, 2.0, 1.5)
        assert sized.layer.width == pytest.approx(2 * swss90.layer.width)
        assert sized.layer.spacing == pytest.approx(
            1.5 * swss90.layer.spacing)

    def test_validation(self, swss90):
        with pytest.raises(ValueError):
            sized_configuration(swss90, 0.0, 1.0)


class TestScatteringPayoff:
    def test_resistance_falls_superlinearly_with_width(self, suite90):
        """The Shi-Pan effect: R(2W) < R(W)/2 because scattering
        relaxes as the cross-section grows."""
        frontier = sizing_frontier(suite90.tech, suite90.calibration,
                                   suite90.config, mm(5),
                                   width_multiples=(1.0, 2.0))
        (_, _, r_base), (_, _, r_wide) = frontier
        assert r_wide < 0.5 * r_base

    def test_wider_wires_are_faster(self, suite90):
        frontier = sizing_frontier(suite90.tech, suite90.calibration,
                                   suite90.config, mm(8),
                                   width_multiples=(1.0, 2.0, 3.0))
        delays = [delay for _, delay, _ in frontier]
        assert delays[0] > delays[1] > delays[2]


class TestOptimizeWireSizing:
    def test_long_line_picks_wider_wire(self, suite90):
        solution = optimize_wire_sizing(
            suite90.tech, suite90.calibration, suite90.config, mm(10),
            delay_weight=0.9)
        assert solution.width_multiple > 1.0

    def test_beats_base_geometry(self, suite90):
        from repro.buffering.optimizer import optimize_buffering
        base = optimize_buffering(suite90.proposed, mm(10),
                                  delay_weight=0.9)
        sized = optimize_wire_sizing(
            suite90.tech, suite90.calibration, suite90.config, mm(10),
            delay_weight=0.9)
        assert sized.buffering.objective <= base.objective * (1 + 1e-9)

    def test_pitch_cap_respected(self, suite90):
        solution = optimize_wire_sizing(
            suite90.tech, suite90.calibration, suite90.config, mm(10),
            delay_weight=0.9, max_pitch_multiple=1.5)
        assert solution.pitch_multiple <= 1.5 + 1e-9

    def test_impossible_pitch_cap_rejected(self, suite90):
        with pytest.raises(ValueError, match="pitch cap"):
            optimize_wire_sizing(
                suite90.tech, suite90.calibration, suite90.config,
                mm(5), max_pitch_multiple=0.5)

    def test_describe(self, suite90):
        solution = optimize_wire_sizing(
            suite90.tech, suite90.calibration, suite90.config, mm(5),
            width_multiples=(1.0, 2.0), spacing_multiples=(1.0,))
        assert "repeaters" in solution.describe()

    def test_length_validation(self, suite90):
        with pytest.raises(ValueError):
            optimize_wire_sizing(suite90.tech, suite90.calibration,
                                 suite90.config, 0.0)
