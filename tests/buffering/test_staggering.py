"""Staggered-insertion experiment."""

import pytest

from repro.buffering.staggering import compare_staggering
from repro.units import mm


class TestCompareStaggering:
    def test_power_saving_positive(self, suite90):
        comparison = compare_staggering(suite90.proposed, mm(5))
        assert comparison.power_saving > 0.05

    def test_delay_penalty_within_budget(self, suite90):
        comparison = compare_staggering(suite90.proposed, mm(5),
                                        allowed_delay_penalty=0.025)
        assert comparison.delay_penalty <= 0.025 + 1e-6

    def test_reproduces_paper_magnitude(self, suite90):
        """~20% power for just above 2% delay (Section III-D)."""
        comparison = compare_staggering(suite90.proposed, mm(5))
        assert 0.10 <= comparison.power_saving <= 0.35

    def test_staggered_uses_fewer_or_equal_repeaters(self, suite90):
        comparison = compare_staggering(suite90.proposed, mm(10))
        assert (comparison.staggered.num_repeaters
                <= comparison.normal.num_repeaters)

    def test_zero_budget_still_feasible(self, suite90):
        # Even with no delay allowance, the staggered line can match the
        # normal solution (Miller cancellation provides slack).
        comparison = compare_staggering(suite90.proposed, mm(5),
                                        allowed_delay_penalty=0.0)
        assert comparison.power_saving >= 0.0

    def test_penalty_validation(self, suite90):
        with pytest.raises(ValueError):
            compare_staggering(suite90.proposed, mm(5),
                               allowed_delay_penalty=-0.1)
