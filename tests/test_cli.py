"""Command-line interface."""

import os

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestNodes:
    def test_lists_all_nodes(self, capsys):
        assert main(["nodes"]) == 0
        output = capsys.readouterr().out
        for node in ("90nm", "65nm", "45nm", "32nm", "22nm", "16nm"):
            assert node in output


class TestCalibrate:
    def test_prints_coefficients(self, capsys):
        assert main(["calibrate", "65nm"]) == 0
        output = capsys.readouterr().out
        assert "65nm" in output
        assert "rise" in output and "fall" in output

    def test_buffer_kind(self, capsys):
        assert main(["calibrate", "90nm", "--kind", "buffer"]) == 0
        assert "buffer" in capsys.readouterr().out


class TestLink:
    def test_optimizes_and_reports(self, capsys):
        assert main(["link", "90nm", "5"]) == 0
        output = capsys.readouterr().out
        assert "repeaters" in output
        assert "delay" in output and "power" in output

    def test_staggered_flag(self, capsys):
        assert main(["link", "90nm", "5", "--staggered"]) == 0
        assert "staggered" in capsys.readouterr().out

    def test_delay_weight_changes_result(self, capsys):
        main(["link", "90nm", "5", "--weight", "1.0"])
        fast = capsys.readouterr().out
        main(["link", "90nm", "5", "--weight", "0.2"])
        lean = capsys.readouterr().out
        assert fast != lean


class TestAccuracy:
    def test_mini_table2(self, capsys):
        assert main(["accuracy", "90nm", "--lengths", "1", "3"]) == 0
        output = capsys.readouterr().out
        assert "Prop %" in output
        assert "90nm" in output


class TestSynth:
    def test_dvopd_case(self, capsys):
        assert main(["synth", "dvopd", "90nm"]) == 0
        output = capsys.readouterr().out
        assert "original/self" in output
        assert "underestimated" in output


class TestExperimentPassthroughs:
    def test_staggering(self, capsys):
        assert main(["staggering"]) == 0
        assert "power saving" in capsys.readouterr().out

    def test_leakage_area(self, capsys):
        assert main(["leakage-area", "90nm"]) == 0
        assert "paper" in capsys.readouterr().out

    def test_corners(self, capsys):
        assert main(["corners", "90nm", "--length-mm", "3"]) == 0
        assert "guard band" in capsys.readouterr().out

    def test_mesh(self, capsys):
        assert main(["mesh", "dvopd", "90nm"]) == 0
        output = capsys.readouterr().out
        assert "custom" in output and "mesh" in output

    def test_widths(self, capsys):
        assert main(["widths", "dvopd", "90nm",
                     "--widths", "64", "128"]) == 0
        assert "best width" in capsys.readouterr().out


class _FakeResult:
    def format(self):
        return "fake table"


class TestRuntimeFlags:
    """The shared --workers / --no-cache / --stats options."""

    @pytest.fixture(autouse=True)
    def _isolated_runtime(self, tmp_path, monkeypatch):
        from repro import runtime
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        runtime.reset_configuration()
        yield tmp_path
        runtime.reset_configuration()

    def test_table2_workers_and_stats_footer(self, capsys,
                                             monkeypatch):
        import repro.experiments.table2 as table2
        captured = {}

        def fake_run():
            from repro.runtime import resolve_workers
            captured["workers"] = resolve_workers()
            return _FakeResult()

        monkeypatch.setattr(table2, "run", fake_run)
        assert main(["table2", "--workers", "2", "--stats"]) == 0
        output = capsys.readouterr().out
        assert "fake table" in output
        assert "runtime stats" in output
        assert "workers" in output
        # The flag reached the experiment through the configuration.
        assert captured["workers"] == 2

    def test_accuracy_parallel_real_run(self, capsys):
        assert main(["accuracy", "90nm", "--lengths", "1",
                     "--workers", "2", "--stats"]) == 0
        output = capsys.readouterr().out
        assert "Prop %" in output
        assert "runtime stats" in output

    def test_no_stats_footer_by_default(self, capsys):
        assert main(["nodes"]) == 0
        assert "runtime stats" not in capsys.readouterr().out

    def test_no_cache_creates_no_files(self, _isolated_runtime,
                                       capsys):
        # Synthesis designs links, the heaviest cache writer — with
        # --no-cache not a single file may appear.
        assert main(["widths", "dvopd", "90nm", "--widths", "64",
                     "--no-cache"]) == 0
        assert os.listdir(_isolated_runtime) == []

    def test_cache_populated_without_no_cache(self, _isolated_runtime,
                                              capsys):
        assert main(["widths", "dvopd", "90nm", "--widths", "64"]) == 0
        assert os.listdir(_isolated_runtime) != []

    def test_workers_validation(self):
        with pytest.raises(ValueError):
            main(["nodes", "--workers", "0"])


class TestMonteCarlo:
    def test_plain_kernel_run(self, capsys):
        assert main(["mc", "90nm", "--samples", "16"]) == 0
        output = capsys.readouterr().out
        assert "kernel engine, plain estimator" in output
        assert "estimator plain" in output
        assert "P(delay >" in output

    def test_importance_reports_shift_and_budget(self, capsys):
        assert main(["mc", "90nm", "--samples", "16",
                     "--estimator", "importance",
                     "--prepass", "256", "--stats"]) == 0
        output = capsys.readouterr().out
        assert "estimator importance" in output
        assert "shift" in output
        assert "mc.estimator.importance" in output
        assert "mc.ess" in output

    def test_qmc_lane_report(self, capsys):
        assert main(["mc", "90nm", "--samples", "16",
                     "--estimator", "qmc", "--lanes", "4"]) == 0
        assert "4 lanes x" in capsys.readouterr().out

    def test_target_ci_flag_escalates(self, capsys):
        assert main(["mc", "90nm", "--samples", "8",
                     "--target-ci", "0.4"]) == 0
        # 8 draws cannot reach a 0.4 ps half-width; the run doubles
        # deterministically until the interval is met (128 for this
        # seed).
        output = capsys.readouterr().out
        assert "128 samples" in output

    def test_bad_estimator_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["mc", "--estimator", "bogus"])


class TestObservability:
    """--profile / --metrics / report --flamegraph / bench diff."""

    def test_profile_time_prints_table(self, capsys):
        assert main(["nodes", "--profile", "time"]) == 0
        output = capsys.readouterr().out
        assert "-- profile (time) --" in output
        assert "repro.nodes" in output

    def test_profile_all_prints_memory_columns(self, capsys):
        assert main(["nodes", "--profile", "all"]) == 0
        output = capsys.readouterr().out
        assert "-- profile (all) --" in output
        assert "peak KiB" in output

    def test_profile_off_prints_nothing(self, capsys):
        assert main(["nodes"]) == 0
        assert "-- profile" not in capsys.readouterr().out

    def test_metrics_exports_openmetrics(self, tmp_path):
        out = tmp_path / "metrics.prom"
        assert main(["nodes", "--metrics", str(out)]) == 0
        text = out.read_text()
        assert text.endswith("# EOF\n")
        assert "repro_command_seconds_total" in text

    def test_report_flamegraph_weight_matches_root(self, tmp_path,
                                                   capsys):
        """Acceptance: serial-trace flamegraph weight equals the root
        span's duration within 1%."""
        from repro.runtime.trace import read_trace
        trace = tmp_path / "trace.jsonl"
        flame = tmp_path / "flame.txt"
        assert main(["mc", "90nm", "--samples", "16",
                     "--trace", str(trace)]) == 0
        capsys.readouterr()
        assert main(["report", str(trace),
                     "--flamegraph", str(flame)]) == 0
        assert "flamegraph written" in capsys.readouterr().out
        events = read_trace(trace)
        root_begin = next(e for e in events if e["ph"] == "B"
                          and e.get("parent") is None)
        root_end = next(e for e in events if e["ph"] == "E"
                        and e["span"] == root_begin["span"])
        root_us = (root_end["ts"] - root_begin["ts"]) * 1e6
        total = sum(int(line.rsplit(" ", 1)[1])
                    for line in flame.read_text().splitlines())
        assert abs(total - root_us) <= 0.01 * root_us

    def _seed_diff_inputs(self, tmp_path, current_s):
        import json

        from repro.bench_registry import (
            BenchSample,
            append_record,
            build_record,
        )
        history = tmp_path / "history.jsonl"
        baseline = tmp_path / "baseline.json"
        record = build_record(
            "kernels", node="90nm", quick=True, config={},
            samples=[BenchSample("monte_carlo.scalar", current_s,
                                 0.001, 2000)])
        append_record(record, history)
        baseline.write_text(json.dumps({"results": [{
            "op": "monte_carlo", "n": 2000,
            "wall_s": {"scalar": 1.0},
        }]}))
        return ["bench", "diff", "--suite", "kernels",
                "--history", str(history),
                "--baseline", str(baseline)]

    def test_bench_diff_regression_exits_nonzero(self, tmp_path,
                                                 capsys):
        args = self._seed_diff_inputs(tmp_path, current_s=1.3)
        assert main(args) == 1
        assert "[regression]" in capsys.readouterr().out

    def test_bench_diff_warn_only_exits_zero(self, tmp_path, capsys):
        args = self._seed_diff_inputs(tmp_path, current_s=1.3)
        assert main(args + ["--warn-only"]) == 0
        assert "warning" in capsys.readouterr().out

    def test_bench_diff_unchanged_exits_zero(self, tmp_path, capsys):
        args = self._seed_diff_inputs(tmp_path, current_s=1.0)
        assert main(args) == 0
        assert "[ok]" in capsys.readouterr().out

    def test_bench_diff_nothing_to_diff_exits_two(self, tmp_path,
                                                  capsys):
        assert main(["bench", "diff",
                     "--history",
                     str(tmp_path / "absent.jsonl")]) == 2
        assert "nothing to diff" in capsys.readouterr().err


class TestLuts:
    def test_build_check_round_trip(self, tmp_path, capsys):
        artifact = tmp_path / "90nm-coarse.json"
        assert main(["luts", "build", "90nm", "--grid", "coarse",
                     "--output", str(artifact)]) == 0
        output = capsys.readouterr().out
        assert "content hash" in output
        assert artifact.exists()

        assert main(["luts", "check", "90nm", "--artifact",
                     str(artifact)]) == 0
        output = capsys.readouterr().out
        assert "LUT drift check" in output
        assert "within threshold" in output

    def test_check_without_artifact_exits_two(self, tmp_path,
                                              capsys):
        assert main(["luts", "check", "90nm", "--artifact",
                     str(tmp_path / "absent.json")]) == 2
        assert "no usable artifact" in capsys.readouterr().err

    def test_bad_grid_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["luts", "build", "90nm",
                                       "--grid", "bogus"])

    def test_bench_lut_suite_accepted_by_parser(self):
        args = build_parser().parse_args(["bench", "lut", "--quick"])
        assert args.suite == "lut"
        assert args.quick
