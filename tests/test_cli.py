"""Command-line interface."""

import os

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestNodes:
    def test_lists_all_nodes(self, capsys):
        assert main(["nodes"]) == 0
        output = capsys.readouterr().out
        for node in ("90nm", "65nm", "45nm", "32nm", "22nm", "16nm"):
            assert node in output


class TestCalibrate:
    def test_prints_coefficients(self, capsys):
        assert main(["calibrate", "65nm"]) == 0
        output = capsys.readouterr().out
        assert "65nm" in output
        assert "rise" in output and "fall" in output

    def test_buffer_kind(self, capsys):
        assert main(["calibrate", "90nm", "--kind", "buffer"]) == 0
        assert "buffer" in capsys.readouterr().out


class TestLink:
    def test_optimizes_and_reports(self, capsys):
        assert main(["link", "90nm", "5"]) == 0
        output = capsys.readouterr().out
        assert "repeaters" in output
        assert "delay" in output and "power" in output

    def test_staggered_flag(self, capsys):
        assert main(["link", "90nm", "5", "--staggered"]) == 0
        assert "staggered" in capsys.readouterr().out

    def test_delay_weight_changes_result(self, capsys):
        main(["link", "90nm", "5", "--weight", "1.0"])
        fast = capsys.readouterr().out
        main(["link", "90nm", "5", "--weight", "0.2"])
        lean = capsys.readouterr().out
        assert fast != lean


class TestAccuracy:
    def test_mini_table2(self, capsys):
        assert main(["accuracy", "90nm", "--lengths", "1", "3"]) == 0
        output = capsys.readouterr().out
        assert "Prop %" in output
        assert "90nm" in output


class TestSynth:
    def test_dvopd_case(self, capsys):
        assert main(["synth", "dvopd", "90nm"]) == 0
        output = capsys.readouterr().out
        assert "original/self" in output
        assert "underestimated" in output


class TestExperimentPassthroughs:
    def test_staggering(self, capsys):
        assert main(["staggering"]) == 0
        assert "power saving" in capsys.readouterr().out

    def test_leakage_area(self, capsys):
        assert main(["leakage-area", "90nm"]) == 0
        assert "paper" in capsys.readouterr().out

    def test_corners(self, capsys):
        assert main(["corners", "90nm", "--length-mm", "3"]) == 0
        assert "guard band" in capsys.readouterr().out

    def test_mesh(self, capsys):
        assert main(["mesh", "dvopd", "90nm"]) == 0
        output = capsys.readouterr().out
        assert "custom" in output and "mesh" in output

    def test_widths(self, capsys):
        assert main(["widths", "dvopd", "90nm",
                     "--widths", "64", "128"]) == 0
        assert "best width" in capsys.readouterr().out


class _FakeResult:
    def format(self):
        return "fake table"


class TestRuntimeFlags:
    """The shared --workers / --no-cache / --stats options."""

    @pytest.fixture(autouse=True)
    def _isolated_runtime(self, tmp_path, monkeypatch):
        from repro import runtime
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        runtime.reset_configuration()
        yield tmp_path
        runtime.reset_configuration()

    def test_table2_workers_and_stats_footer(self, capsys,
                                             monkeypatch):
        import repro.experiments.table2 as table2
        captured = {}

        def fake_run():
            from repro.runtime import resolve_workers
            captured["workers"] = resolve_workers()
            return _FakeResult()

        monkeypatch.setattr(table2, "run", fake_run)
        assert main(["table2", "--workers", "2", "--stats"]) == 0
        output = capsys.readouterr().out
        assert "fake table" in output
        assert "runtime stats" in output
        assert "workers" in output
        # The flag reached the experiment through the configuration.
        assert captured["workers"] == 2

    def test_accuracy_parallel_real_run(self, capsys):
        assert main(["accuracy", "90nm", "--lengths", "1",
                     "--workers", "2", "--stats"]) == 0
        output = capsys.readouterr().out
        assert "Prop %" in output
        assert "runtime stats" in output

    def test_no_stats_footer_by_default(self, capsys):
        assert main(["nodes"]) == 0
        assert "runtime stats" not in capsys.readouterr().out

    def test_no_cache_creates_no_files(self, _isolated_runtime,
                                       capsys):
        # Synthesis designs links, the heaviest cache writer — with
        # --no-cache not a single file may appear.
        assert main(["widths", "dvopd", "90nm", "--widths", "64",
                     "--no-cache"]) == 0
        assert os.listdir(_isolated_runtime) == []

    def test_cache_populated_without_no_cache(self, _isolated_runtime,
                                              capsys):
        assert main(["widths", "dvopd", "90nm", "--widths", "64"]) == 0
        assert os.listdir(_isolated_runtime) != []

    def test_workers_validation(self):
        with pytest.raises(ValueError):
            main(["nodes", "--workers", "0"])


class TestMonteCarlo:
    def test_plain_kernel_run(self, capsys):
        assert main(["mc", "90nm", "--samples", "16"]) == 0
        output = capsys.readouterr().out
        assert "kernel engine, plain estimator" in output
        assert "estimator plain" in output
        assert "P(delay >" in output

    def test_importance_reports_shift_and_budget(self, capsys):
        assert main(["mc", "90nm", "--samples", "16",
                     "--estimator", "importance",
                     "--prepass", "256", "--stats"]) == 0
        output = capsys.readouterr().out
        assert "estimator importance" in output
        assert "shift" in output
        assert "mc.estimator.importance" in output
        assert "mc.ess" in output

    def test_qmc_lane_report(self, capsys):
        assert main(["mc", "90nm", "--samples", "16",
                     "--estimator", "qmc", "--lanes", "4"]) == 0
        assert "4 lanes x" in capsys.readouterr().out

    def test_target_ci_flag_escalates(self, capsys):
        assert main(["mc", "90nm", "--samples", "8",
                     "--target-ci", "0.4"]) == 0
        # 8 draws cannot reach a 0.4 ps half-width; the run doubles
        # deterministically until the interval is met (128 for this
        # seed).
        output = capsys.readouterr().out
        assert "128 samples" in output

    def test_bad_estimator_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["mc", "--estimator", "bogus"])
