"""Command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestNodes:
    def test_lists_all_nodes(self, capsys):
        assert main(["nodes"]) == 0
        output = capsys.readouterr().out
        for node in ("90nm", "65nm", "45nm", "32nm", "22nm", "16nm"):
            assert node in output


class TestCalibrate:
    def test_prints_coefficients(self, capsys):
        assert main(["calibrate", "65nm"]) == 0
        output = capsys.readouterr().out
        assert "65nm" in output
        assert "rise" in output and "fall" in output

    def test_buffer_kind(self, capsys):
        assert main(["calibrate", "90nm", "--kind", "buffer"]) == 0
        assert "buffer" in capsys.readouterr().out


class TestLink:
    def test_optimizes_and_reports(self, capsys):
        assert main(["link", "90nm", "5"]) == 0
        output = capsys.readouterr().out
        assert "repeaters" in output
        assert "delay" in output and "power" in output

    def test_staggered_flag(self, capsys):
        assert main(["link", "90nm", "5", "--staggered"]) == 0
        assert "staggered" in capsys.readouterr().out

    def test_delay_weight_changes_result(self, capsys):
        main(["link", "90nm", "5", "--weight", "1.0"])
        fast = capsys.readouterr().out
        main(["link", "90nm", "5", "--weight", "0.2"])
        lean = capsys.readouterr().out
        assert fast != lean


class TestAccuracy:
    def test_mini_table2(self, capsys):
        assert main(["accuracy", "90nm", "--lengths", "1", "3"]) == 0
        output = capsys.readouterr().out
        assert "Prop %" in output
        assert "90nm" in output


class TestSynth:
    def test_dvopd_case(self, capsys):
        assert main(["synth", "dvopd", "90nm"]) == 0
        output = capsys.readouterr().out
        assert "original/self" in output
        assert "underestimated" in output


class TestExperimentPassthroughs:
    def test_staggering(self, capsys):
        assert main(["staggering"]) == 0
        assert "power saving" in capsys.readouterr().out

    def test_leakage_area(self, capsys):
        assert main(["leakage-area", "90nm"]) == 0
        assert "paper" in capsys.readouterr().out

    def test_corners(self, capsys):
        assert main(["corners", "90nm", "--length-mm", "3"]) == 0
        assert "guard band" in capsys.readouterr().out

    def test_mesh(self, capsys):
        assert main(["mesh", "dvopd", "90nm"]) == 0
        output = capsys.readouterr().out
        assert "custom" in output and "mesh" in output

    def test_widths(self, capsys):
        assert main(["widths", "dvopd", "90nm",
                     "--widths", "64", "128"]) == 0
        assert "best width" in capsys.readouterr().out
