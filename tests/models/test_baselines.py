"""Bakoglu and Pamunuwa baseline models."""

import pytest

from repro.units import fF, mm, ps


class TestBakoglu:
    def test_estimate_interface_compatible(self, suite90):
        estimate = suite90.bakoglu.evaluate(mm(5), 5, 16.0, ps(100))
        assert estimate.delay > 0
        assert estimate.dynamic_power > 0
        assert estimate.leakage_power > 0
        assert estimate.num_repeaters == 5

    def test_slew_independent(self, suite90):
        fast = suite90.bakoglu.evaluate(mm(5), 5, 16.0, ps(10))
        slow = suite90.bakoglu.evaluate(mm(5), 5, 16.0, ps(500))
        assert fast.delay == pytest.approx(slow.delay)

    def test_neglects_coupling_in_power(self, suite90):
        # Bakoglu's switched capacitance excludes lateral capacitance,
        # so its dynamic power is far below the proposed model's.
        bakoglu = suite90.bakoglu.evaluate(mm(5), 5, 16.0, ps(100))
        proposed = suite90.proposed.evaluate(mm(5), 5, 16.0, ps(100))
        assert bakoglu.dynamic_power < 0.6 * proposed.dynamic_power

    def test_underestimates_delay_on_long_coupled_lines(self, suite90):
        bakoglu = suite90.bakoglu.evaluate(mm(10), 10, 32.0, ps(300))
        proposed = suite90.proposed.evaluate(mm(10), 10, 32.0, ps(300))
        assert bakoglu.delay < proposed.delay

    def test_simplistic_area_much_smaller(self, suite90):
        bakoglu = suite90.bakoglu.evaluate(mm(5), 5, 16.0, ps(100))
        proposed = suite90.proposed.evaluate(mm(5), 5, 16.0, ps(100))
        assert bakoglu.repeater_area < 0.2 * proposed.repeater_area

    def test_drive_resistance_inverse_in_size(self, suite90):
        r4 = suite90.bakoglu.drive_resistance(4.0)
        r16 = suite90.bakoglu.drive_resistance(16.0)
        assert r4 == pytest.approx(4 * r16, rel=1e-9)

    def test_delay_optimal_buffering(self, suite90):
        count, size = suite90.bakoglu.delay_optimal_buffering(mm(10))
        assert count >= 2
        # Delay-optimal sizes are notoriously enormous.
        assert size > 20

    def test_validation(self, suite90):
        with pytest.raises(ValueError):
            suite90.bakoglu.evaluate(0.0, 1, 8.0)
        with pytest.raises(ValueError):
            suite90.bakoglu.evaluate(mm(1), 0, 8.0)


class TestPamunuwa:
    def test_includes_coupling_in_delay(self, suite90):
        bakoglu = suite90.bakoglu.evaluate(mm(10), 10, 32.0)
        pamunuwa = suite90.pamunuwa.evaluate(mm(10), 10, 32.0)
        assert pamunuwa.delay > bakoglu.delay

    def test_includes_coupling_in_power(self, suite90):
        bakoglu = suite90.bakoglu.evaluate(mm(5), 5, 16.0)
        pamunuwa = suite90.pamunuwa.evaluate(mm(5), 5, 16.0)
        assert pamunuwa.dynamic_power > bakoglu.dynamic_power

    def test_still_optimistic_about_resistance(self, suite90):
        # Bulk resistivity + no barrier: the Pamunuwa wire resistance
        # is below the calibrated one.
        assert suite90.pamunuwa.wire_resistance(mm(1)) < \
            suite90.config.resistance_per_meter() * mm(1)

    def test_slew_independent(self, suite90):
        fast = suite90.pamunuwa.evaluate(mm(5), 5, 16.0, ps(10))
        slow = suite90.pamunuwa.evaluate(mm(5), 5, 16.0, ps(500))
        assert fast.delay == pytest.approx(slow.delay)

    def test_validation(self, suite90):
        with pytest.raises(ValueError):
            suite90.pamunuwa.evaluate(0.0, 1, 8.0)
        with pytest.raises(ValueError):
            suite90.pamunuwa.evaluate(mm(1), 0, 8.0)


class TestOrderingAcrossModels:
    def test_delay_ordering_on_coupled_lines(self, suite90):
        """Bakoglu < Pamunuwa < proposed on long SWSS lines."""
        b = suite90.bakoglu.evaluate(mm(10), 10, 32.0, ps(300)).delay
        p = suite90.pamunuwa.evaluate(mm(10), 10, 32.0, ps(300)).delay
        proposed = suite90.proposed.evaluate(mm(10), 10, 32.0,
                                             ps(300)).delay
        assert b < p < proposed
