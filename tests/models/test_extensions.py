"""Slew-aware interconnect model extension."""

import pytest

from repro.models.extensions import SlewAwareInterconnectModel
from repro.signoff import evaluate_buffered_line, extract_buffered_line
from repro.units import mm, ps


@pytest.fixture(scope="module")
def slew_aware(suite90):
    return SlewAwareInterconnectModel(
        tech=suite90.tech,
        calibration=suite90.calibration,
        config=suite90.config,
        activity_factor=suite90.proposed.activity_factor,
    )


class TestWireSlew:
    def test_grows_with_length(self, slew_aware):
        short = slew_aware.wire_slew(mm(0.5), 10e-15)
        long_ = slew_aware.wire_slew(mm(2.0), 10e-15)
        assert long_ > short > 0

    def test_quadratic_in_length(self, slew_aware):
        s1 = slew_aware.wire_slew(mm(1), 0.0)
        s2 = slew_aware.wire_slew(mm(2), 0.0)
        assert s2 == pytest.approx(4 * s1, rel=1e-6)


class TestSlewPropagation:
    def test_predicted_slew_worse_than_base_model(self, suite90,
                                                  slew_aware):
        base = suite90.proposed.evaluate(mm(6), 4, 32.0, ps(100))
        extended = slew_aware.evaluate(mm(6), 4, 32.0, ps(100))
        assert extended.output_slew > base.output_slew

    def test_extension_improves_output_slew_accuracy(self, suite90,
                                                     slew_aware):
        """The reason the extension exists: the far-end slew of a long
        stage is underestimated by the lumped-load slew model."""
        length, count, size = mm(8), 4, 32.0
        line = extract_buffered_line(suite90.tech, suite90.config,
                                     length, count, size)
        golden = evaluate_buffered_line(line, ps(100))
        base = suite90.proposed.evaluate(length, count, size, ps(100))
        extended = slew_aware.evaluate(length, count, size, ps(100))

        golden_slew = golden.output_slew
        base_error = abs(base.output_slew - golden_slew) / golden_slew
        extended_error = abs(extended.output_slew
                             - golden_slew) / golden_slew
        assert extended_error < base_error

    def test_delay_error_shows_compensation_effect(self, suite90,
                                                   slew_aware):
        """Getting the slew right *worsens* the delay slightly.

        The paper-form delay model overestimates at large input slews;
        in the base model this cancels against the underestimated
        propagated slews.  Feeding the (correct) degraded slews into
        the same delay equations removes that cancellation — a
        compensation effect worth knowing about when extending the
        model.  The extension's delay must still stay within a modest
        band of golden.
        """
        length, count, size = mm(8), 4, 32.0
        line = extract_buffered_line(suite90.tech, suite90.config,
                                     length, count, size)
        golden = evaluate_buffered_line(line, ps(100))
        base = suite90.proposed.evaluate(length, count, size, ps(100))
        extended = slew_aware.evaluate(length, count, size, ps(100))
        base_error = abs(base.delay - golden.total_delay) \
            / golden.total_delay
        extended_error = abs(extended.delay - golden.total_delay) \
            / golden.total_delay
        assert extended_error < 0.25
        # The compensation effect: base delay is no worse than the
        # slew-corrected delay on this configuration.
        assert base_error <= extended_error


class TestStaggeredVariant:
    def test_staggered_returns_extension_type(self, slew_aware):
        staggered = slew_aware.staggered()
        assert isinstance(staggered, SlewAwareInterconnectModel)
        assert staggered.config.delay_miller == 0.0
