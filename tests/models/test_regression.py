"""Regression utilities: exact recovery and robustness."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.models.regression import (
    inverse_fit,
    linear_fit,
    multilinear_fit,
    quadratic_fit,
)

finite = st.floats(min_value=-100.0, max_value=100.0,
                   allow_nan=False, allow_infinity=False)


class TestLinearFit:
    def test_exact_recovery(self):
        x = [1.0, 2.0, 3.0, 4.0]
        y = [2.0 + 3.0 * v for v in x]
        fit = linear_fit(x, y)
        assert fit[0] == pytest.approx(2.0)
        assert fit[1] == pytest.approx(3.0)
        assert fit.r_squared == pytest.approx(1.0)

    def test_zero_intercept_variant(self):
        x = [1.0, 2.0, 4.0]
        y = [5.0 * v for v in x]
        fit = linear_fit(x, y, intercept=False)
        assert fit[0] == 0.0
        assert fit[1] == pytest.approx(5.0)

    def test_noisy_data_r2_below_one(self):
        rng = np.random.default_rng(7)
        x = np.linspace(0, 10, 50)
        y = 2 * x + rng.normal(0, 1.0, 50)
        fit = linear_fit(x, y)
        assert 0.9 < fit.r_squared < 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            linear_fit([1.0], [1.0])
        with pytest.raises(ValueError):
            linear_fit([1.0, 2.0], [1.0])

    @given(st.tuples(finite, finite),
           st.lists(st.floats(min_value=-50, max_value=50),
                    min_size=3, max_size=10, unique=True))
    def test_recovers_any_line(self, coefficients, xs):
        from hypothesis import assume
        # Near-coincident abscissae make the system ill-conditioned;
        # require a minimal spread for a meaningful recovery check.
        assume(max(xs) - min(xs) > 1.0)
        c0, c1 = coefficients
        ys = [c0 + c1 * x for x in xs]
        fit = linear_fit(xs, ys)
        assert fit[0] == pytest.approx(c0, abs=1e-4 + 1e-5 * abs(c0))
        assert fit[1] == pytest.approx(c1, abs=1e-4 + 1e-5 * abs(c1))


class TestQuadraticFit:
    def test_exact_recovery(self):
        x = [0.0, 1.0, 2.0, 3.0]
        y = [1.0 - 2.0 * v + 0.5 * v * v for v in x]
        fit = quadratic_fit(x, y)
        assert fit[0] == pytest.approx(1.0)
        assert fit[1] == pytest.approx(-2.0)
        assert fit[2] == pytest.approx(0.5)

    def test_needs_three_points(self):
        with pytest.raises(ValueError):
            quadratic_fit([1.0, 2.0], [1.0, 2.0])

    def test_degenerates_to_linear(self):
        x = [0.0, 1.0, 2.0, 3.0]
        y = [2.0 * v for v in x]
        fit = quadratic_fit(x, y)
        assert fit[2] == pytest.approx(0.0, abs=1e-9)


class TestInverseFit:
    def test_exact_recovery(self):
        x = [1.0, 2.0, 4.0, 8.0]
        y = [10.0 / v for v in x]
        fit = inverse_fit(x, y)
        assert fit[0] == pytest.approx(10.0)
        assert fit.r_squared == pytest.approx(1.0)

    def test_zero_x_rejected(self):
        with pytest.raises(ValueError):
            inverse_fit([0.0, 1.0], [1.0, 1.0])

    @given(st.floats(min_value=0.1, max_value=1e3))
    def test_recovers_any_constant(self, a):
        x = [0.5, 1.0, 2.0, 5.0]
        y = [a / v for v in x]
        fit = inverse_fit(x, y)
        assert fit[0] == pytest.approx(a, rel=1e-9)


class TestMultilinearFit:
    def test_two_regressors(self):
        rng = np.random.default_rng(3)
        col1 = rng.uniform(0, 10, 30)
        col2 = rng.uniform(0, 5, 30)
        y = 1.5 + 2.0 * col1 - 3.0 * col2
        fit = multilinear_fit([col1, col2], y)
        assert fit[0] == pytest.approx(1.5, abs=1e-9)
        assert fit[1] == pytest.approx(2.0, abs=1e-9)
        assert fit[2] == pytest.approx(-3.0, abs=1e-9)
        assert fit.r_squared == pytest.approx(1.0)

    def test_without_intercept(self):
        col = [1.0, 2.0, 3.0]
        y = [4.0 * v for v in col]
        fit = multilinear_fit([col], y, intercept=False)
        assert fit.coefficients == pytest.approx((4.0,))

    def test_validation(self):
        with pytest.raises(ValueError):
            multilinear_fit([], [1.0])
        with pytest.raises(ValueError):
            multilinear_fit([[1.0, 2.0]], [1.0])
        with pytest.raises(ValueError):
            multilinear_fit([[1.0], [1.0]], [1.0])  # underdetermined


class TestRegressionResult:
    def test_iteration_and_indexing(self):
        fit = linear_fit([1.0, 2.0], [3.0, 5.0])
        coefficients = list(fit)
        assert coefficients == [pytest.approx(1.0), pytest.approx(2.0)]
        assert fit[1] == pytest.approx(2.0)

    def test_constant_target_r2(self):
        fit = linear_fit([1.0, 2.0, 3.0], [5.0, 5.0, 5.0])
        assert fit.r_squared == pytest.approx(1.0)
