"""Calibration pipeline: functional forms, serialization, caching."""

import pytest

from repro.characterization import RepeaterKind, characterize_library
from repro.models.calibration import (
    CalibratedTechnology,
    OutputSlewForm,
    calibrate_from_library,
    describe_coefficients,
    load_calibration,
)
from repro.units import ps, um


@pytest.fixture(scope="module")
def small_calibration(tech90, small_grid):
    library = characterize_library(tech90, RepeaterKind.INVERTER,
                                   small_grid)
    return calibrate_from_library(library)


class TestFunctionalForms:
    def test_intrinsic_quadratic_fits_well(self, calibration90):
        # Fig. 1's claim: intrinsic delay is near-quadratic in slew.
        assert calibration90.rise.intrinsic_r2 > 0.9
        assert calibration90.fall.intrinsic_r2 > 0.9

    def test_drive_resistance_inverse_in_size(self, calibration90):
        assert calibration90.rise.drive_r2 > 0.95
        assert calibration90.fall.drive_r2 > 0.95

    def test_intrinsic_increases_with_slew(self, calibration90):
        direction = calibration90.rise
        values = [direction.intrinsic_delay(ps(s))
                  for s in (20, 100, 300)]
        assert values[0] < values[1] < values[2]

    def test_drive_resistance_positive_and_decreasing_in_size(
            self, calibration90):
        direction = calibration90.fall
        r_small = direction.drive_resistance(ps(100), um(2))
        r_large = direction.drive_resistance(ps(100), um(8))
        assert r_small > r_large > 0
        assert r_small == pytest.approx(4 * r_large, rel=1e-9)

    def test_drive_resistance_grows_with_slew(self, calibration90):
        direction = calibration90.rise
        assert direction.drive_resistance(ps(300), um(4)) > \
            direction.drive_resistance(ps(50), um(4))

    def test_delay_composition(self, calibration90):
        direction = calibration90.rise
        slew, wr, load = ps(100), um(4), 100e-15
        expected = (direction.intrinsic_delay(slew)
                    + direction.drive_resistance(slew, wr) * load)
        assert direction.delay(slew, wr, load) == pytest.approx(expected)

    def test_leakage_linear_in_width(self, calibration90):
        assert calibration90.leakage_r2 > 0.99
        e0n, e1n = calibration90.leakage_n
        assert e1n > 0

    def test_area_linear_in_width(self, calibration90):
        assert calibration90.area_r2 > 0.99
        f0, f1 = calibration90.area
        assert f1 > 0

    def test_gamma_positive(self, calibration90):
        assert calibration90.input_cap_gamma > 0


class TestSlewForms:
    def test_size_scaled_fits_better(self, tech90, small_grid):
        library = characterize_library(tech90, RepeaterKind.INVERTER,
                                       small_grid)
        paper = calibrate_from_library(library, OutputSlewForm.PAPER)
        scaled = calibrate_from_library(library,
                                        OutputSlewForm.SIZE_SCALED)
        assert scaled.rise.slew_r2 > paper.rise.slew_r2

    def test_output_slew_evaluation_differs_between_forms(
            self, tech90, small_grid):
        library = characterize_library(tech90, RepeaterKind.INVERTER,
                                       small_grid)
        paper = calibrate_from_library(library, OutputSlewForm.PAPER)
        scaled = calibrate_from_library(library,
                                        OutputSlewForm.SIZE_SCALED)
        a = paper.rise.output_slew(100e-15, ps(100), um(4))
        b = scaled.rise.output_slew(100e-15, ps(100), um(4))
        assert a > 0 and b > 0
        assert a != pytest.approx(b, rel=1e-6)


class TestSerialization:
    def test_roundtrip(self, small_calibration):
        data = small_calibration.to_dict()
        back = CalibratedTechnology.from_dict(data)
        assert back == small_calibration

    def test_dict_is_json_friendly(self, small_calibration):
        import json
        text = json.dumps(small_calibration.to_dict())
        assert "90nm" in text


class TestLoadCalibration:
    def test_cached_fitted_data_used(self, tech90):
        # The generated cache covers all built-in nodes; loading must
        # not trigger a fresh characterization (instant).
        import time
        started = time.perf_counter()
        calibration = load_calibration(tech90)
        assert time.perf_counter() - started < 1.0
        assert calibration.tech_name == "90nm"

    def test_memoized(self, tech90):
        a = load_calibration(tech90)
        b = load_calibration(tech90)
        assert a is b

    def test_buffer_kind_available(self, tech90):
        calibration = load_calibration(tech90, RepeaterKind.BUFFER)
        assert calibration.kind is RepeaterKind.BUFFER


class TestDescribe:
    def test_describe_renders(self, calibration90):
        text = describe_coefficients(calibration90)
        assert "90nm" in text
        assert "rise" in text and "fall" in text
        assert "gamma" in text


class TestCachedAgainstRegenerated:
    def test_cached_coefficients_match_regeneration(self, tech90):
        """The shipped _fitted_data must reproduce from the pipeline.

        Full-grid regeneration is slow, so this compares the cached
        90 nm inverter coefficients against a fresh calibration on the
        same default grid — they must agree exactly (the pipeline is
        deterministic).
        """
        from repro.models.calibration import calibrate_technology
        cached = load_calibration(tech90)
        fresh = calibrate_technology(tech90)
        assert fresh.rise.intrinsic == pytest.approx(
            cached.rise.intrinsic, rel=1e-6)
        assert fresh.rise.drive == pytest.approx(cached.rise.drive,
                                                 rel=1e-6)
        assert fresh.leakage_n == pytest.approx(cached.leakage_n,
                                                rel=1e-6)
