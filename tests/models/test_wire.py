"""Wire-delay model."""

import dataclasses

import pytest

from repro.models.wire import (
    effective_load_capacitance,
    switched_wire_capacitance,
    wire_delay,
    wire_delay_components,
)
from repro.units import fF, mm


class TestWireDelay:
    def test_components_sum(self, swss90):
        components = wire_delay_components(swss90, mm(2), fF(20))
        assert components.total == pytest.approx(
            components.ground_term + components.coupling_term
            + components.load_term)
        assert wire_delay(swss90, mm(2), fF(20)) == pytest.approx(
            components.total)

    def test_quadratic_in_length(self, swss90):
        # Both R and C grow with length, so the wire-cap terms grow
        # quadratically.
        d1 = wire_delay(swss90, mm(1), 0.0)
        d2 = wire_delay(swss90, mm(2), 0.0)
        assert d2 == pytest.approx(4 * d1, rel=1e-6)

    def test_miller_factor_scales_coupling_only(self, swss90):
        quiet = wire_delay_components(swss90, mm(2), fF(20),
                                      miller_factor=0.0)
        worst = wire_delay_components(swss90, mm(2), fF(20),
                                      miller_factor=2.0)
        assert quiet.coupling_term == 0.0
        assert worst.coupling_term > 0
        assert worst.ground_term == pytest.approx(quiet.ground_term)
        assert worst.load_term == pytest.approx(quiet.load_term)

    def test_default_miller_from_configuration(self, swss90):
        explicit = wire_delay(swss90, mm(1), fF(10),
                              miller_factor=swss90.delay_miller)
        default = wire_delay(swss90, mm(1), fF(10))
        assert default == pytest.approx(explicit)

    def test_zero_length(self, swss90):
        assert wire_delay(swss90, 0.0, fF(10)) == 0.0

    def test_negative_length_rejected(self, swss90):
        with pytest.raises(ValueError):
            wire_delay(swss90, -mm(1), fF(10))

    def test_resistivity_corrections_increase_delay(self, swss90):
        optimistic = dataclasses.replace(
            swss90, include_scattering=False, include_barrier=False)
        assert wire_delay(swss90, mm(5), fF(20)) > \
            wire_delay(optimistic, mm(5), fF(20))


class TestLoadCapacitance:
    def test_effective_load_composition(self, swss90):
        length = mm(1)
        load = effective_load_capacitance(swss90, length, fF(15))
        expected = (swss90.ground_capacitance_per_meter() * length
                    + swss90.delay_miller
                    * swss90.coupling_capacitance_per_meter() * length
                    + fF(15))
        assert load == pytest.approx(expected)

    def test_switched_capacitance_uses_power_miller(self, swss90):
        switched = switched_wire_capacitance(swss90, mm(1))
        expected = swss90.switched_capacitance_per_meter() * mm(1)
        assert switched == pytest.approx(expected)
        # Staggering must not change switched (power) capacitance.
        assert switched_wire_capacitance(swss90.staggered(), mm(1)) == \
            pytest.approx(switched)
