"""Repeater model behaviour."""

import pytest

from repro.models.repeater import RepeaterModel
from repro.units import fF, ps, um


@pytest.fixture(scope="module")
def model(suite90):
    return RepeaterModel(tech=suite90.tech,
                         calibration=suite90.calibration)


class TestDelay:
    def test_positive(self, model):
        assert model.delay(8.0, ps(100), fF(50)) > 0

    def test_linear_in_load(self, model):
        d1 = model.delay(8.0, ps(100), fF(20))
        d2 = model.delay(8.0, ps(100), fF(40))
        d3 = model.delay(8.0, ps(100), fF(60))
        assert d3 - d2 == pytest.approx(d2 - d1, rel=1e-9)

    def test_decreases_with_size(self, model):
        small = model.delay(4.0, ps(100), fF(100))
        large = model.delay(32.0, ps(100), fF(100))
        assert large < small

    def test_increases_with_slew(self, model):
        fast = model.delay(8.0, ps(30), fF(50))
        slow = model.delay(8.0, ps(300), fF(50))
        assert slow > fast

    def test_rise_fall_differ(self, model):
        rise = model.delay(8.0, ps(100), fF(50), rising_output=True)
        fall = model.delay(8.0, ps(100), fF(50), rising_output=False)
        assert rise != pytest.approx(fall, rel=0.01)

    def test_average_and_worst(self, model):
        rise = model.delay(8.0, ps(100), fF(50), True)
        fall = model.delay(8.0, ps(100), fF(50), False)
        assert model.average_delay(8.0, ps(100), fF(50)) == \
            pytest.approx(0.5 * (rise + fall))
        assert model.worst_delay(8.0, ps(100), fF(50)) == \
            pytest.approx(max(rise, fall))


class TestTransitionWidth:
    def test_pmos_for_rise_nmos_for_fall(self, model, tech90):
        wn, wp = tech90.inverter_widths(8.0)
        assert model.transition_width(8.0, True) == pytest.approx(wp)
        assert model.transition_width(8.0, False) == pytest.approx(wn)


class TestOutputSlew:
    def test_positive_and_grows_with_load(self, model):
        s1 = model.output_slew(8.0, ps(100), fF(20))
        s2 = model.output_slew(8.0, ps(100), fF(200))
        assert 0 < s1 < s2


class TestInputCapacitance:
    def test_proportional_to_size(self, model):
        assert model.input_capacitance(16.0) == pytest.approx(
            4 * model.input_capacitance(4.0))

    def test_close_to_device_value(self, model, tech90):
        # gamma is fit on gate capacitance that is linear by
        # construction, so the model should be nearly exact.
        wn, wp = tech90.inverter_widths(8.0)
        expected = tech90.nmos.c_gate * wn + tech90.pmos.c_gate * wp
        assert model.input_capacitance(8.0) == pytest.approx(expected,
                                                             rel=0.02)


class TestDriveResistance:
    def test_inverse_in_size(self, model):
        r4 = model.drive_resistance(4.0, ps(100))
        r16 = model.drive_resistance(16.0, ps(100))
        assert r4 == pytest.approx(4 * r16, rel=1e-9)


class TestValidation:
    def test_mismatched_calibration_rejected(self, suite90):
        from repro.tech import get_technology
        with pytest.raises(ValueError, match="does not match"):
            RepeaterModel(tech=get_technology("45nm"),
                          calibration=suite90.calibration)
