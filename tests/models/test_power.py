"""Power models."""

import pytest

from repro.models.power import (
    dynamic_power,
    leakage_power_from_coefficients,
    repeater_leakage_power,
)
from repro.units import fF, ghz, um


class TestLeakage:
    def test_average_of_states(self, calibration90):
        e0n, e1n = calibration90.leakage_n
        e0p, e1p = calibration90.leakage_p
        wn, wp = um(2), um(4)
        expected = 0.5 * ((e0n + e1n * wn) + (e0p + e1p * wp))
        assert leakage_power_from_coefficients(
            calibration90, wn, wp) == pytest.approx(expected)

    def test_repeater_leakage_grows_with_size(self, suite90):
        small = repeater_leakage_power(suite90.tech,
                                       suite90.calibration, 4.0)
        large = repeater_leakage_power(suite90.tech,
                                       suite90.calibration, 32.0)
        assert large > small > 0

    def test_leakage_roughly_linear(self, suite90):
        p8 = repeater_leakage_power(suite90.tech, suite90.calibration,
                                    8.0)
        p16 = repeater_leakage_power(suite90.tech, suite90.calibration,
                                     16.0)
        assert p16 == pytest.approx(2 * p8, rel=0.1)


class TestDynamic:
    def test_formula(self):
        assert dynamic_power(fF(100), 1.0, ghz(1), 0.25) == \
            pytest.approx(0.25 * 100e-15 * 1e9)

    def test_quadratic_in_vdd(self):
        low = dynamic_power(fF(100), 1.0, ghz(1))
        high = dynamic_power(fF(100), 1.1, ghz(1))
        assert high / low == pytest.approx(1.21)

    def test_validation(self):
        with pytest.raises(ValueError):
            dynamic_power(fF(1), 1.0, ghz(1), activity_factor=1.5)
        with pytest.raises(ValueError):
            dynamic_power(-fF(1), 1.0, ghz(1))
        with pytest.raises(ValueError):
            dynamic_power(fF(1), 0.0, ghz(1))
        with pytest.raises(ValueError):
            dynamic_power(fF(1), 1.0, 0.0)

    def test_zero_activity_zero_power(self):
        assert dynamic_power(fF(100), 1.0, ghz(1), 0.0) == 0.0
