"""Area models."""

import pytest

from repro.models.area import (
    predictive_repeater_area,
    regression_repeater_area,
    repeater_area,
    wire_area,
)
from repro.tech import DesignStyle, WireConfiguration
from repro.units import mm, um


class TestRepeaterArea:
    def test_regression_linear(self, calibration90):
        f0, f1 = calibration90.area
        assert regression_repeater_area(calibration90, um(2)) == \
            pytest.approx(f0 + f1 * um(2))

    def test_predictive_grows_with_size(self, tech90):
        areas = [predictive_repeater_area(tech90, size)
                 for size in (4.0, 16.0, 64.0)]
        assert areas[0] < areas[1] < areas[2]

    def test_predictive_close_to_regression_for_calibrated_node(
            self, tech90, calibration90):
        # Both paths describe the same layout generator, so they agree
        # within the regression residual for mid-range sizes.
        for size in (8.0, 16.0, 32.0):
            wn, _ = tech90.inverter_widths(size)
            from_fit = regression_repeater_area(calibration90, wn)
            from_fingers = predictive_repeater_area(tech90, size)
            assert from_fit == pytest.approx(from_fingers, rel=0.25)

    def test_repeater_area_dispatch(self, tech90, calibration90):
        wn, _ = tech90.inverter_widths(8.0)
        assert repeater_area(tech90, calibration90, 8.0) == \
            pytest.approx(regression_repeater_area(calibration90, wn))
        assert repeater_area(tech90, None, 8.0) == pytest.approx(
            predictive_repeater_area(tech90, 8.0))

    def test_future_node_predictive_area_works(self):
        from repro.tech import get_technology
        tech16 = get_technology("16nm")
        assert predictive_repeater_area(tech16, 8.0) > 0


class TestWireArea:
    def test_bus_formula(self, swss90):
        layer = swss90.layer
        expected = (8 * (layer.width + layer.spacing)
                    + layer.spacing) * mm(2)
        assert wire_area(swss90, mm(2), bus_width=8) == \
            pytest.approx(expected)

    def test_shielded_bus_wider(self, tech90):
        swss = WireConfiguration.for_style(tech90.global_layer,
                                           DesignStyle.SWSS)
        shielded = WireConfiguration.for_style(tech90.global_layer,
                                               DesignStyle.SHIELDED)
        assert wire_area(shielded, mm(1), 16) > \
            1.8 * wire_area(swss, mm(1), 16)

    def test_validation(self, swss90):
        with pytest.raises(ValueError):
            wire_area(swss90, mm(1), bus_width=0)
        with pytest.raises(ValueError):
            wire_area(swss90, -mm(1), bus_width=1)

    def test_scales_linearly_with_length(self, swss90):
        assert wire_area(swss90, mm(4), 4) == pytest.approx(
            2 * wire_area(swss90, mm(2), 4))
