"""NLDM table-lookup interconnect model."""

import pytest

from repro.characterization import RepeaterKind, characterize_library
from repro.models.table_model import TableInterconnectModel
from repro.signoff import evaluate_buffered_line, extract_buffered_line
from repro.units import fF, mm, ps


@pytest.fixture(scope="module")
def library(tech90):
    from repro.characterization import CharacterizationGrid
    grid = CharacterizationGrid(
        sizes=(8.0, 16.0, 32.0, 64.0),
        input_slews=(ps(30), ps(80), ps(160), ps(320)),
        load_factors=(2.0, 4.0, 8.0, 16.0, 32.0),
    )
    return characterize_library(tech90, RepeaterKind.INVERTER, grid)


@pytest.fixture(scope="module")
def table_model(library, swss90):
    return TableInterconnectModel(library=library, config=swss90)


class TestSizeSnapping:
    def test_exact_sizes_unchanged(self, table_model):
        assert table_model.snap_size(16.0) == 16.0

    def test_snaps_to_nearest(self, table_model):
        assert table_model.snap_size(20.0) == 16.0
        assert table_model.snap_size(27.0) == 32.0
        assert table_model.snap_size(200.0) == 64.0


class TestLookups:
    def test_on_grid_lookup_is_exact(self, table_model, library):
        cell = library.cell(16.0)
        slew = cell.rise.delay.index_1[1]
        load = cell.rise.delay.index_2[2]
        expected = cell.rise.delay.values[1][2]
        assert table_model.repeater_delay(16.0, slew, load, True) == \
            pytest.approx(expected)

    def test_interpolated_lookup_monotone(self, table_model):
        d1 = table_model.repeater_delay(16.0, ps(100), fF(50), True)
        d2 = table_model.repeater_delay(16.0, ps(100), fF(150), True)
        assert d2 > d1


class TestEvaluation:
    def test_estimate_shape(self, table_model):
        estimate = table_model.evaluate(mm(4), 4, 32.0, ps(100))
        assert estimate.num_repeaters == 4
        assert estimate.delay == pytest.approx(
            sum(estimate.stage_delays))
        assert estimate.total_power > 0

    def test_validation(self, table_model):
        with pytest.raises(ValueError):
            table_model.evaluate(0.0, 1, 8.0, ps(100))
        with pytest.raises(ValueError):
            table_model.evaluate(mm(1), 0, 8.0, ps(100))

    def test_tracks_golden_at_least_as_well_as_closed_form(
            self, table_model, suite90):
        """The tables are the accuracy ceiling: on a characterized
        size, the table model's delay error vs golden must be within
        the closed-form band (and typically tighter)."""
        length, count, size = mm(5), 5, 32.0
        line = extract_buffered_line(suite90.tech, suite90.config,
                                     length, count, size)
        golden = evaluate_buffered_line(line, ps(300)).total_delay
        table_error = abs(table_model.evaluate(
            length, count, size, ps(300)).delay - golden) / golden
        closed_error = abs(suite90.proposed.evaluate(
            length, count, size, ps(300)).delay - golden) / golden
        assert table_error < 0.15
        assert table_error <= closed_error + 0.02

    def test_optimizer_compatible(self, table_model):
        from repro.buffering import optimize_buffering
        solution = optimize_buffering(table_model, mm(5),
                                      delay_weight=0.5)
        assert solution.delay > 0
        # The reported size snaps to the characterized grid.
        assert solution.estimate.repeater_size in (8.0, 16.0, 32.0,
                                                   64.0)
