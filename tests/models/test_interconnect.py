"""End-to-end buffered-interconnect model."""

import pytest

from repro.units import mm, ps


class TestEvaluate:
    def test_estimate_fields_consistent(self, suite90):
        estimate = suite90.proposed.evaluate(mm(5), 5, 16.0, ps(100))
        assert estimate.num_repeaters == 5
        assert len(estimate.stage_delays) == 5
        assert estimate.delay == pytest.approx(
            sum(estimate.stage_delays))
        assert estimate.total_power == pytest.approx(
            estimate.dynamic_power + estimate.leakage_power)
        assert estimate.total_area == pytest.approx(
            estimate.repeater_area + estimate.wire_area)

    def test_slew_settles_along_uniform_line(self, suite90):
        estimate = suite90.proposed.evaluate(mm(10), 10, 24.0, ps(300))
        # Interior stages converge: late stage delays become periodic.
        late = estimate.stage_delays[-4:-1]
        assert max(late) - min(late) < 0.1 * max(late)

    def test_first_stage_slowest_with_slow_input(self, suite90):
        estimate = suite90.proposed.evaluate(mm(10), 10, 24.0, ps(400))
        assert estimate.stage_delays[0] > estimate.stage_delays[2]

    def test_delay_decreases_with_repeater_count_on_long_line(
            self, suite90):
        sparse = suite90.proposed.evaluate(mm(10), 2, 24.0, ps(100))
        dense = suite90.proposed.evaluate(mm(10), 10, 24.0, ps(100))
        assert dense.delay < sparse.delay

    def test_power_grows_with_repeater_count(self, suite90):
        few = suite90.proposed.evaluate(mm(10), 2, 24.0, ps(100))
        many = suite90.proposed.evaluate(mm(10), 10, 24.0, ps(100))
        assert many.leakage_power > few.leakage_power
        assert many.dynamic_power > few.dynamic_power

    def test_bus_width_scales_power_and_area(self, suite90):
        single = suite90.proposed.evaluate(mm(5), 5, 16.0, ps(100),
                                           bus_width=1)
        bus = suite90.proposed.evaluate(mm(5), 5, 16.0, ps(100),
                                        bus_width=32)
        assert bus.dynamic_power == pytest.approx(
            32 * single.dynamic_power)
        assert bus.leakage_power == pytest.approx(
            32 * single.leakage_power)
        assert bus.repeater_area == pytest.approx(
            32 * single.repeater_area)
        assert bus.wire_area > single.wire_area
        # Delay is per-bit and unchanged.
        assert bus.delay == pytest.approx(single.delay)

    def test_receiver_cap_override(self, suite90):
        big_receiver = suite90.proposed.evaluate(
            mm(2), 2, 16.0, ps(100), receiver_cap=500e-15)
        small_receiver = suite90.proposed.evaluate(
            mm(2), 2, 16.0, ps(100), receiver_cap=5e-15)
        assert big_receiver.delay > small_receiver.delay

    def test_validation(self, suite90):
        with pytest.raises(ValueError):
            suite90.proposed.evaluate(0.0, 1, 8.0, ps(100))
        with pytest.raises(ValueError):
            suite90.proposed.evaluate(mm(1), 0, 8.0, ps(100))


class TestBufferKind:
    def test_buffer_line_keeps_polarity(self, tech90, swss90):
        """A buffer-based line is non-inverting: every stage sees the
        same transition direction, so (unlike an inverter chain) all
        interior stage delays converge to ONE value, not an
        alternating pair."""
        from repro.characterization import RepeaterKind
        from repro.models.calibration import load_calibration
        from repro.models.interconnect import BufferedInterconnectModel
        calibration = load_calibration(tech90, RepeaterKind.BUFFER)
        model = BufferedInterconnectModel(tech=tech90,
                                          calibration=calibration,
                                          config=swss90)
        estimate = model.evaluate(mm(8), 8, 24.0, ps(100))
        late = estimate.stage_delays[-4:]
        # Converged: consecutive stages equal (no rise/fall alternation).
        assert late[-1] == pytest.approx(late[-2], rel=1e-6)
        assert estimate.delay > 0

    def test_buffer_vs_inverter_models_differ(self, suite90, tech90,
                                              swss90):
        from repro.characterization import RepeaterKind
        from repro.models.calibration import load_calibration
        from repro.models.interconnect import BufferedInterconnectModel
        buffer_model = BufferedInterconnectModel(
            tech=tech90,
            calibration=load_calibration(tech90, RepeaterKind.BUFFER),
            config=swss90)
        inv = suite90.proposed.evaluate(mm(5), 5, 16.0, ps(100))
        buf = buffer_model.evaluate(mm(5), 5, 16.0, ps(100))
        # Buffers carry two stages of intrinsic delay per repeater.
        assert buf.delay > inv.delay


class TestStaggered:
    def test_staggered_faster_same_power(self, suite90):
        normal = suite90.proposed.evaluate(mm(5), 5, 16.0, ps(100))
        staggered_model = suite90.proposed.staggered()
        staggered = staggered_model.evaluate(mm(5), 5, 16.0, ps(100))
        assert staggered.delay < normal.delay
        assert staggered.dynamic_power == pytest.approx(
            normal.dynamic_power)
        assert staggered.leakage_power == pytest.approx(
            normal.leakage_power)


class TestAccuracyEnvelope:
    def test_tracks_golden_within_paper_bound(self, suite90):
        """The headline claim: proposed model within ~12% of sign-off."""
        from repro.signoff import (
            evaluate_buffered_line,
            extract_buffered_line,
        )
        length, count, size = mm(5), 6, 32.0
        line = extract_buffered_line(suite90.tech, suite90.config,
                                     length, count, size)
        golden = evaluate_buffered_line(line, ps(300))
        estimate = suite90.proposed.evaluate(length, count, size,
                                             ps(300))
        error = abs(estimate.delay - golden.total_delay) \
            / golden.total_delay
        assert error < 0.15
