"""Kernel batch evaluation vs the scalar golden reference.

The contract is ≤ 1e-9 relative; the kernels mirror the scalar
operation order, so in practice every field lands bit-exact.
"""

import dataclasses

import numpy as np
import pytest

from repro.characterization import RepeaterKind
from repro.kernels import evaluate_line_batch, supports_model
from repro.models.extensions import SlewAwareInterconnectModel
from repro.models.interconnect import BufferedInterconnectModel
from repro.units import mm, ps

RTOL = 1e-9


def _slew_aware(suite90):
    return SlewAwareInterconnectModel(suite90.tech,
                                      suite90.proposed.calibration,
                                      suite90.proposed.config)


@pytest.fixture(scope="module")
def model(suite90):
    return suite90.proposed


class TestSupportsModel:
    def test_plain_model_supported(self, model):
        assert supports_model(model)

    def test_subclass_rejected(self, suite90):
        slew_aware = _slew_aware(suite90)
        # The subclass overrides stage composition, so the kernels'
        # mirrored arithmetic would silently diverge from it.
        assert isinstance(slew_aware, BufferedInterconnectModel)
        assert not supports_model(slew_aware)

    def test_non_model_rejected(self):
        assert not supports_model(object())


class TestBatchMatchesScalar:
    def test_every_field_over_size_sweep(self, model):
        sizes = np.linspace(1.0, 128.0, 64)
        batch = evaluate_line_batch(model, mm(5), 8, sizes, ps(100))
        for index, size in enumerate(sizes):
            estimate = model.evaluate(mm(5), 8, float(size), ps(100))
            assert batch.delay[index] == pytest.approx(
                estimate.delay, rel=RTOL)
            assert batch.output_slew[index] == pytest.approx(
                estimate.output_slew, rel=RTOL)
            assert batch.dynamic_power[index] == pytest.approx(
                estimate.dynamic_power, rel=RTOL)
            assert batch.leakage_power[index] == pytest.approx(
                estimate.leakage_power, rel=RTOL)
            assert batch.repeater_area[index] == pytest.approx(
                estimate.repeater_area, rel=RTOL)
            assert batch.wire_area[index] == pytest.approx(
                estimate.wire_area, rel=RTOL)
            assert batch.total_power[index] == pytest.approx(
                estimate.total_power, rel=RTOL)

    def test_count_axis_and_broadcasting(self, model):
        counts = np.array([1, 2, 4, 8, 16])
        batch = evaluate_line_batch(model, mm(5), counts, 32.0, ps(100))
        assert batch.delay.shape == counts.shape
        for index, count in enumerate(counts):
            estimate = model.evaluate(mm(5), int(count), 32.0, ps(100))
            assert batch.delay[index] == pytest.approx(
                estimate.delay, rel=RTOL)

    def test_length_axis(self, model):
        lengths = np.array([mm(1), mm(3), mm(7)])
        batch = evaluate_line_batch(model, lengths, 6, 40.0, ps(100))
        for index, length in enumerate(lengths):
            estimate = model.evaluate(float(length), 6, 40.0, ps(100))
            assert batch.delay[index] == pytest.approx(
                estimate.delay, rel=RTOL)
            assert batch.total_power[index] == pytest.approx(
                estimate.total_power, rel=RTOL)

    def test_bus_width_and_receiver_cap(self, model):
        receiver = model.repeater_model().input_capacitance(64.0)
        batch = evaluate_line_batch(model, mm(4), 5, 24.0, ps(100),
                                    bus_width=128,
                                    receiver_cap=receiver)
        estimate = model.evaluate(mm(4), 5, 24.0, ps(100),
                                  bus_width=128, receiver_cap=receiver)
        assert batch.delay[0] == pytest.approx(estimate.delay, rel=RTOL)
        assert batch.leakage_power[0] == pytest.approx(
            estimate.leakage_power, rel=RTOL)

    def test_buffer_kind_input_cap_branch(self, suite90):
        """BUFFER calibrations hit the first-stage max() branch."""
        from repro.models.calibration import load_calibration
        calibration = load_calibration(suite90.tech, RepeaterKind.BUFFER)
        model = BufferedInterconnectModel(suite90.tech, calibration,
                                          suite90.proposed.config)
        sizes = np.array([1.0, 2.0, 8.0, 64.0])
        batch = evaluate_line_batch(model, mm(3), 4, sizes, ps(100))
        for index, size in enumerate(sizes):
            estimate = model.evaluate(mm(3), 4, float(size), ps(100))
            assert batch.delay[index] == pytest.approx(
                estimate.delay, rel=RTOL)


class TestValidation:
    def test_rejects_unsupported_model(self, suite90):
        slew_aware = _slew_aware(suite90)
        with pytest.raises(TypeError):
            evaluate_line_batch(slew_aware, mm(5), 8, 32.0, ps(100))

    def test_rejects_nonpositive_inputs(self, model):
        with pytest.raises(ValueError):
            evaluate_line_batch(model, 0.0, 8, 32.0, ps(100))
        with pytest.raises(ValueError):
            evaluate_line_batch(model, mm(5), 0, 32.0, ps(100))
        with pytest.raises(ValueError):
            evaluate_line_batch(model, mm(5), 8, 0.0, ps(100))

    def test_metrics_record_batch_size(self, model):
        from repro.runtime.metrics import METRICS
        before = METRICS.counters.get("kernels.batch_size", 0)
        evaluate_line_batch(model, mm(5), 8,
                            np.linspace(1.0, 64.0, 17), ps(100))
        assert METRICS.counters["kernels.batch_size"] == before + 17


class TestLineBatchDataclass:
    def test_total_power_is_dynamic_plus_leakage(self, model):
        batch = evaluate_line_batch(model, mm(5), 8,
                                    np.array([8.0, 32.0]), ps(100))
        np.testing.assert_array_equal(
            batch.total_power, batch.dynamic_power + batch.leakage_power)

    def test_frozen(self, model):
        batch = evaluate_line_batch(model, mm(5), 8, 32.0, ps(100))
        with pytest.raises(dataclasses.FrozenInstanceError):
            batch.delay = None
