"""The variation kernel: alpha-power width mapping + batched MC."""

import numpy as np
import pytest

from repro.kernels.variation import (
    OVERDRIVE_FLOOR,
    effective_widths,
    line_delay_batch,
)
from repro.units import mm, ps


@pytest.fixture(scope="module")
def model(suite90):
    return suite90.proposed


class TestEffectiveWidths:
    def test_unit_factors_are_identity(self, tech90):
        width = tech90.min_nmos_width * 8
        ones = np.ones(5)
        out = effective_widths(tech90.nmos, width, tech90.vdd, ones,
                               ones)
        np.testing.assert_array_equal(out, np.full(5, width))

    def test_drive_factor_scales_linearly(self, tech90):
        width = tech90.min_nmos_width * 8
        drives = np.array([0.5, 1.0, 2.0])
        out = effective_widths(tech90.nmos, width, tech90.vdd, drives,
                               np.ones(3))
        np.testing.assert_allclose(out, width * drives)

    def test_higher_vth_weakens_the_device(self, tech90):
        width = tech90.min_nmos_width * 8
        out = effective_widths(tech90.nmos, width, tech90.vdd,
                               np.ones(2), np.array([1.0, 1.3]))
        assert out[1] < out[0]

    def test_overdrive_floor_engages(self, tech90):
        """A vth draw large enough to kill the overdrive is floored,
        not driven negative."""
        width = tech90.min_nmos_width * 8
        huge_vth = np.array([tech90.vdd / tech90.nmos.vth * 2.0])
        out = effective_widths(tech90.nmos, width, tech90.vdd,
                               np.ones(1), huge_vth)
        nominal_overdrive = tech90.vdd - tech90.nmos.vth
        floor_ratio = OVERDRIVE_FLOOR * tech90.vdd / nominal_overdrive
        expected = width * floor_ratio ** tech90.nmos.alpha
        assert out[0] == pytest.approx(expected)
        assert out[0] > 0


class TestLineDelayBatch:
    def test_all_ones_row_is_the_nominal_delay(self, model):
        receiver = model.repeater_model().input_capacitance(40.0)
        factors = np.ones((3, 6, 4))
        delays = line_delay_batch(model, mm(3), 6, 40.0, receiver,
                                  ps(100), factors)
        estimate = model.evaluate(mm(3), 6, 40.0, ps(100),
                                  receiver_cap=receiver)
        assert delays.shape == (3,)
        np.testing.assert_allclose(delays, estimate.delay, rtol=1e-9)

    def test_perturbed_rows_differ_from_nominal(self, model):
        receiver = model.repeater_model().input_capacitance(40.0)
        factors = np.ones((2, 6, 4))
        factors[1, :, :] = 1.2
        delays = line_delay_batch(model, mm(3), 6, 40.0, receiver,
                                  ps(100), factors)
        assert delays[1] != delays[0]

    def test_factor_shape_validated(self, model):
        receiver = model.repeater_model().input_capacitance(40.0)
        with pytest.raises(ValueError):
            line_delay_batch(model, mm(3), 6, 40.0, receiver, ps(100),
                             np.ones((4, 5, 4)))
        with pytest.raises(ValueError):
            line_delay_batch(model, mm(3), 6, 40.0, receiver, ps(100),
                             np.ones((4, 6)))
