"""Batched buffering searches vs the scalar optimizer.

The lockstep searches follow the scalar trajectory operation-for-
operation, so pure delay / pure power objectives must return the
*identical* solution object contents; the fractional weighted product
may differ by one ulp of ``pow`` and gets the 1e-9 contract.
"""

import pytest

from repro.buffering.optimizer import (
    max_feasible_length,
    minimize_power_under_delay,
    optimize_buffering,
)
from repro.units import mm, ps

RTOL = 1e-9


@pytest.fixture(scope="module")
def model(suite90):
    return suite90.proposed


class TestOptimizeBuffering:
    @pytest.mark.parametrize("weight", [1.0, 0.0])
    def test_pure_objectives_bit_equal(self, model, weight):
        scalar = optimize_buffering(model, mm(5), delay_weight=weight,
                                    use_kernels=False)
        kernel = optimize_buffering(model, mm(5), delay_weight=weight,
                                    use_kernels=True)
        assert scalar == kernel

    def test_weighted_objective_within_tolerance(self, model):
        scalar = optimize_buffering(model, mm(5), delay_weight=0.5,
                                    use_kernels=False)
        kernel = optimize_buffering(model, mm(5), delay_weight=0.5,
                                    use_kernels=True)
        assert kernel.num_repeaters == scalar.num_repeaters
        assert kernel.repeater_size == pytest.approx(
            scalar.repeater_size, rel=RTOL)
        assert kernel.objective == pytest.approx(
            scalar.objective, rel=RTOL)

    def test_auto_dispatch_matches_explicit(self, model):
        auto = optimize_buffering(model, mm(3))
        explicit = optimize_buffering(model, mm(3), use_kernels=True)
        assert auto == explicit


class TestMinimizePowerUnderDelay:
    @pytest.mark.parametrize("max_delay_ps", [300.0, 500.0, 1000.0])
    def test_feasible_bounds_bit_equal(self, model, max_delay_ps):
        scalar = minimize_power_under_delay(model, mm(5),
                                            ps(max_delay_ps),
                                            use_kernels=False)
        kernel = minimize_power_under_delay(model, mm(5),
                                            ps(max_delay_ps),
                                            use_kernels=True)
        assert scalar is not None
        assert scalar == kernel

    def test_infeasible_bound_is_none_for_both(self, model):
        scalar = minimize_power_under_delay(model, mm(5), ps(150),
                                            use_kernels=False)
        kernel = minimize_power_under_delay(model, mm(5), ps(150),
                                            use_kernels=True)
        assert scalar is None
        assert kernel is None


class TestMaxFeasibleLength:
    def test_kernel_and_scalar_agree(self, model, suite90):
        max_delay = suite90.tech.clock_period()
        scalar = max_feasible_length(model, max_delay,
                                     use_kernels=False)
        kernel = max_feasible_length(model, max_delay,
                                     use_kernels=True)
        assert kernel == scalar


class TestDispatchValidation:
    def test_forcing_kernels_on_unsupported_model_raises(self, suite90):
        from repro.models.extensions import SlewAwareInterconnectModel
        slew_aware = SlewAwareInterconnectModel(
            suite90.tech, suite90.proposed.calibration,
            suite90.proposed.config)
        with pytest.raises(ValueError):
            optimize_buffering(slew_aware, mm(5), use_kernels=True)

    def test_unsupported_model_auto_falls_back(self, suite90):
        from repro.models.extensions import SlewAwareInterconnectModel
        slew_aware = SlewAwareInterconnectModel(
            suite90.tech, suite90.proposed.calibration,
            suite90.proposed.config)
        solution = optimize_buffering(slew_aware, mm(5))
        assert solution.num_repeaters >= 1
