"""Batched LUT lane vs the scalar LUT model: bitwise on served lanes,
exact closed-form fallback everywhere else, and the search fast path.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.buffering.optimizer import minimize_power_under_delay
from repro.kernels.line import evaluate_line_batch
from repro.kernels.lut import (
    evaluate_line_lut,
    interpolate_trilinear,
    line_delay_first_order,
    serves_model,
)
from repro.luts.interp import trilinear
from repro.luts.model import first_order_line_delay
from repro.units import mm


def _lane_queries(spec, lanes=64):
    """Deterministic in-grid (length, count, size) lanes: coprime
    strides walk off-grid interior points across all three axes."""
    sizes = np.geomspace(spec.sizes[0] * 1.07, spec.sizes[-1] / 1.07,
                         lanes)
    lengths = np.geomspace(spec.lengths[0] * 1.13,
                           spec.lengths[-1] / 1.13, lanes)
    span = spec.counts[-1] - spec.counts[0] + 1
    counts = spec.counts[0] + (7 * np.arange(lanes)) % span
    return lengths, counts, sizes


class TestServesModel:
    def test_recognizes_lut_model(self, suite90, lut90):
        assert serves_model(lut90)
        assert not serves_model(suite90.proposed)


class TestTrilinearParity:
    def test_batch_matches_scalar_bitwise(self, lut90):
        artifact = lut90.artifact
        size_axis, length_axis, count_axis = lut90.axes()
        table = artifact.interp_table("delay")
        scalar_table = artifact.scalar_interp_table("delay")
        lengths, counts, sizes = _lane_queries(artifact.spec)
        log_sizes = np.log(sizes)
        log_lengths = np.log(lengths)
        batch = interpolate_trilinear(
            table, size_axis, length_axis, count_axis,
            log_sizes, log_lengths, counts.astype(float))
        for lane in range(lengths.size):
            scalar = trilinear(
                scalar_table, size_axis, length_axis, count_axis,
                float(np.log(sizes[lane])),
                float(np.log(lengths[lane])), int(counts[lane]))
            assert batch[lane] == scalar


class TestFirstOrderParity:
    def test_batch_matches_scalar_bitwise(self):
        nominal = 3.2e-10
        weights = 1e-12 * np.sin(np.arange(48.0)).reshape(12, 4)
        factors = 1.0 + 0.08 * np.cos(
            np.arange(1920.0)).reshape(40, 12, 4)
        batch = line_delay_first_order(nominal, weights, factors)
        for row in range(factors.shape[0]):
            assert batch[row] == first_order_line_delay(
                nominal, weights, factors[row])


class TestLineEvaluateParity:
    def test_served_lanes_match_scalar_bitwise(self, lut90):
        spec = lut90.artifact.spec
        lengths, counts, sizes = _lane_queries(spec)
        batch = evaluate_line_lut(lut90, lengths, counts, sizes,
                                  spec.input_slew)
        checked = 0
        for lane in range(lengths.size):
            length = float(lengths[lane])
            count = int(counts[lane])
            size = float(sizes[lane])
            if not lut90.serves(length, count, size,
                                spec.input_slew):
                continue
            scalar = lut90.evaluate(length, count, size,
                                    spec.input_slew)
            assert batch.delay[lane] == scalar.delay
            assert batch.output_slew[lane] == scalar.output_slew
            assert batch.dynamic_power[lane] == pytest.approx(
                scalar.dynamic_power, rel=1e-12)
            assert batch.leakage_power[lane] == pytest.approx(
                scalar.leakage_power, rel=1e-12)
            checked += 1
        assert checked >= 20

    def test_unserved_lanes_fall_back_to_closed_form(self, suite90,
                                                     lut90):
        spec = lut90.artifact.spec
        lengths = np.array([mm(5.0), 2.0 * spec.lengths[-1]])
        counts = np.array([8, 8])
        sizes = np.array([24.0, 24.0])
        served = evaluate_line_lut(lut90, lengths, counts, sizes,
                                   spec.input_slew)
        exact = evaluate_line_batch(suite90.proposed, lengths,
                                    counts, sizes, spec.input_slew)
        assert served.delay[1] == exact.delay[1]
        assert served.output_slew[1] == exact.output_slew[1]

    def test_whole_batch_falls_back_on_receiver_cap(self, suite90,
                                                    lut90):
        spec = lut90.artifact.spec
        lengths = np.array([mm(3.0), mm(5.0)])
        counts = np.array([6, 10])
        sizes = np.array([12.0, 32.0])
        served = evaluate_line_lut(lut90, lengths, counts, sizes,
                                   spec.input_slew,
                                   receiver_cap=2e-15)
        exact = evaluate_line_batch(suite90.proposed, lengths,
                                    counts, sizes, spec.input_slew,
                                    receiver_cap=2e-15)
        assert np.array_equal(served.delay, exact.delay)
        assert np.array_equal(served.output_slew, exact.output_slew)

    def test_dispatch_through_evaluate_line_batch(self, lut90):
        spec = lut90.artifact.spec
        lengths = np.array([mm(2.0), mm(6.0)])
        counts = np.array([4, 12])
        sizes = np.array([8.0, 40.0])
        direct = evaluate_line_lut(lut90, lengths, counts, sizes,
                                   spec.input_slew)
        dispatched = evaluate_line_batch(lut90, lengths, counts,
                                         sizes, spec.input_slew)
        assert np.array_equal(direct.delay, dispatched.delay)
        assert np.array_equal(direct.output_slew,
                              dispatched.output_slew)


class TestSearchFastPath:
    def test_meets_delay_bound(self, suite90, lut90):
        tech = suite90.proposed.tech
        max_delay = 0.8 / tech.clock_frequency
        for length_mm in (1.0, 3.0, 6.0, 10.0):
            fast = minimize_power_under_delay(lut90, mm(length_mm),
                                              max_delay)
            assert fast is not None
            assert fast.delay <= max_delay

    def test_tracks_scalar_search_power(self, suite90, lut90):
        """The vectorized search over the LUT profile lands within a
        few percent of the scalar golden-section search over the same
        LUT model (flat power objective near the optimum — the exact
        (count, size) pick may differ)."""
        tech = suite90.proposed.tech
        max_delay = 0.8 / tech.clock_frequency
        length = mm(6.0)
        fast = minimize_power_under_delay(lut90, length, max_delay)
        scalar = minimize_power_under_delay(lut90, length, max_delay,
                                            use_kernels=False)
        assert fast is not None and scalar is not None
        assert fast.power <= scalar.power * 1.10

    def test_infeasible_bound_returns_none(self, lut90):
        assert minimize_power_under_delay(lut90, mm(10.0),
                                          1e-12) is None
