"""Cross-cutting property-based invariants.

These tests pin down behaviours that hold across whole families of
inputs — the physics and algorithmic contracts everything else builds
on — rather than individual examples.
"""

import dataclasses

import numpy as np
import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.models.wire import effective_load_capacitance, wire_delay
from repro.spice import Circuit, simulate_transient, step
from repro.units import fF, mm, ps


# ---------------------------------------------------------------------------
# Linear-circuit physics
# ---------------------------------------------------------------------------

class TestLinearSuperposition:
    @settings(max_examples=10, deadline=None)
    @given(st.floats(min_value=0.2, max_value=1.5),
           st.floats(min_value=0.2, max_value=1.5))
    def test_rc_response_scales_linearly(self, v1, v2):
        """For a linear RC network the response to a*step is a times
        the response to the step — the simulator must not introduce
        spurious nonlinearity."""
        def response(amplitude):
            circuit = Circuit()
            circuit.add_voltage_source("in", step(amplitude,
                                                  at=ps(10)))
            circuit.add_resistor("in", "out", 1000.0)
            circuit.add_capacitor("out", "0", fF(50))
            result = simulate_transient(circuit, ps(400),
                                        time_step=ps(0.5))
            return result.waveform("out").value_at(ps(200))

        r1 = response(v1)
        r2 = response(v2)
        assert r1 / v1 == pytest.approx(r2 / v2, rel=1e-3)

    @settings(max_examples=10, deadline=None)
    @given(st.floats(min_value=100.0, max_value=5000.0),
           st.floats(min_value=10e-15, max_value=200e-15))
    def test_rc_settles_to_source_value(self, resistance, capacitance):
        circuit = Circuit()
        circuit.add_voltage_source("in", step(1.0, at=0.1e-12))
        circuit.add_resistor("in", "out", resistance)
        circuit.add_capacitor("out", "0", capacitance)
        tau = resistance * capacitance
        result = simulate_transient(circuit, 12 * tau,
                                    time_step=tau / 100)
        assert result.final_voltage("out") == pytest.approx(1.0,
                                                            abs=1e-3)

    def test_passive_network_never_overshoots(self):
        """RC-only networks are monotone under a step: no node may
        exceed the source voltage (a numerical-stability property of
        the backward-Euler integrator)."""
        circuit = Circuit()
        circuit.add_voltage_source("in", step(1.0, at=ps(5)))
        circuit.add_rc_ladder("in", "out", 5000.0, fF(300),
                              segments=15)
        result = simulate_transient(circuit, ps(2000))
        for name, trace in result.voltages.items():
            assert np.max(trace) <= 1.0 + 1e-6, name
            assert np.min(trace) >= -1e-6, name


# ---------------------------------------------------------------------------
# Model monotonicity families
# ---------------------------------------------------------------------------

class TestModelMonotonicity:
    @settings(max_examples=20, deadline=None)
    @given(st.floats(min_value=1e-3, max_value=10e-3),
           st.floats(min_value=1e-3, max_value=10e-3))
    def test_proposed_delay_monotone_in_length(self, suite90, l1, l2):
        assume(abs(l1 - l2) > 1e-4)
        short, long_ = sorted((l1, l2))
        d_short = suite90.proposed.evaluate(short, 4, 24.0,
                                            ps(100)).delay
        d_long = suite90.proposed.evaluate(long_, 4, 24.0,
                                           ps(100)).delay
        assert d_long > d_short

    @settings(max_examples=20, deadline=None)
    @given(st.floats(min_value=10e-15, max_value=500e-15),
           st.floats(min_value=4.0, max_value=64.0))
    def test_repeater_delay_monotone_in_load(self, suite90, load, size):
        repeater = suite90.proposed.repeater_model()
        d1 = repeater.delay(size, ps(100), load)
        d2 = repeater.delay(size, ps(100), load * 1.5)
        assert d2 > d1

    @settings(max_examples=20, deadline=None)
    @given(st.floats(min_value=0.0, max_value=2.0))
    def test_wire_delay_monotone_in_miller(self, swss90, miller):
        base = wire_delay(swss90, mm(2), fF(20), miller_factor=miller)
        more = wire_delay(swss90, mm(2), fF(20),
                          miller_factor=miller + 0.2)
        assert more > base

    @settings(max_examples=20, deadline=None)
    @given(st.floats(min_value=0.5e-3, max_value=5e-3),
           st.floats(min_value=5e-15, max_value=100e-15))
    def test_effective_load_additive_in_receiver_cap(self, swss90,
                                                     length, cap):
        base = effective_load_capacitance(swss90, length, 0.0)
        loaded = effective_load_capacitance(swss90, length, cap)
        assert loaded == pytest.approx(base + cap, rel=1e-9)


# ---------------------------------------------------------------------------
# Algorithmic determinism
# ---------------------------------------------------------------------------

class TestDeterminism:
    def test_synthesis_is_deterministic(self, suite90):
        from repro.noc.synthesis import synthesize
        from repro.noc.testcases import dual_vopd
        spec_a = dual_vopd(suite90.tech)
        spec_b = dual_vopd(suite90.tech)
        topo_a = synthesize(spec_a, suite90.proposed, suite90.tech)
        topo_b = synthesize(spec_b, suite90.proposed, suite90.tech)
        links_a = sorted((a, b, round(d["length"], 12))
                         for a, b, d in topo_a.links())
        links_b = sorted((a, b, round(d["length"], 12))
                         for a, b, d in topo_b.links())
        assert links_a == links_b
        assert topo_a.hop_statistics() == topo_b.hop_statistics()

    def test_optimizer_is_deterministic(self, suite90):
        from repro.buffering import optimize_buffering
        a = optimize_buffering(suite90.proposed, mm(7),
                               delay_weight=0.5)
        b = optimize_buffering(suite90.proposed, mm(7),
                               delay_weight=0.5)
        assert a.num_repeaters == b.num_repeaters
        assert a.repeater_size == pytest.approx(b.repeater_size)

    def test_characterization_is_deterministic(self, tech90,
                                               small_grid):
        from repro.characterization import RepeaterKind, \
            characterize_cell
        first = characterize_cell(tech90, RepeaterKind.INVERTER, 8.0,
                                  small_grid)
        second = characterize_cell(tech90, RepeaterKind.INVERTER, 8.0,
                                   small_grid)
        assert first.rise.delay.values == second.rise.delay.values


# ---------------------------------------------------------------------------
# Estimator invariants
# ---------------------------------------------------------------------------

class TestEstimatorInvariants:
    """Structural laws of the variance-reduction estimators that hold
    for *every* seed, checked over hypothesis-drawn seeds."""

    @pytest.fixture(scope="class")
    def est_line(self, suite90):
        from repro.signoff.extraction import extract_buffered_line
        model = suite90.proposed
        return extract_buffered_line(model.tech, model.config, mm(2),
                                     2, 24.0)

    @staticmethod
    def _run(line, model, seed, estimator, **kwargs):
        from repro.signoff.variation import monte_carlo_line_delay
        return monte_carlo_line_delay(
            line, ps(100), samples=kwargs.pop("samples", 64),
            seed=seed, workers=1, engine="kernel", model=model,
            estimator=estimator, **kwargs)

    @pytest.fixture(scope="class")
    def mild_threshold(self, suite90, est_line):
        """A 1-sigma tail threshold (seconds): mild enough that the
        importance weights stay light-tailed and their sample mean is
        a trustworthy estimate of E[w] = 1."""
        plain = self._run(est_line, suite90.proposed, 2010, "plain",
                          samples=256)
        return plain.mean + float(np.std(plain.samples, ddof=1))

    @settings(max_examples=5, deadline=None)
    @given(st.integers(min_value=0, max_value=2 ** 16))
    def test_likelihood_weights_positive_mean_one(self, suite90,
                                                  est_line,
                                                  mild_threshold,
                                                  seed):
        """LR weights are strictly positive and average to 1 under
        the nominal measure (E[w] = 1 exactly; the sample mean must
        sit within 8 estimated standard errors — loose enough never
        to fire on a correct implementation)."""
        result = self._run(est_line, suite90.proposed, seed,
                           "importance", samples=256,
                           prepass_samples=512,
                           critical_delay=mild_threshold)
        weights = np.asarray(result.weights)
        assert np.all(weights > 0.0)
        # 8 *estimated* standard errors, not 5: the weights are
        # right-skewed even at a mild shift, and a draw that misses
        # the rare large weights shrinks the mean and the spread
        # estimate together, so nominal z coverage under-covers (a
        # hypothesis-found seed sat at 5.01 estimated SEs).  A wrong
        # likelihood ratio misses by far more than 8.
        spread = float(np.std(weights, ddof=1))
        margin = 8.0 * spread / np.sqrt(len(weights))
        assert abs(float(np.mean(weights)) - 1.0) <= margin

    @settings(max_examples=5, deadline=None)
    @given(st.integers(min_value=0, max_value=2 ** 16))
    def test_control_variate_beta_zero_is_plain(self, suite90,
                                                est_line, seed):
        """With beta pinned to 0 the control-variate correction
        vanishes and the estimate is bit-for-bit the plain mean."""
        plain = self._run(est_line, suite90.proposed, seed, "plain")
        control = self._run(est_line, suite90.proposed, seed,
                            "control-variate", beta=0.0)
        assert control.samples == plain.samples
        assert control.mean == plain.mean

    @settings(max_examples=5, deadline=None)
    @given(st.integers(min_value=0, max_value=2 ** 16))
    def test_qmc_single_lane_degenerates_to_kernel(self, suite90,
                                                   est_line, seed):
        """One Sobol lane has no between-lane error estimate, so it
        must fall back to the existing kernel engine bit-for-bit."""
        plain = self._run(est_line, suite90.proposed, seed, "plain")
        qmc = self._run(est_line, suite90.proposed, seed, "qmc",
                        lanes=1)
        assert qmc.samples == plain.samples
        assert qmc.mean == plain.mean
        assert qmc.nominal_delay == plain.nominal_delay

    @settings(max_examples=5, deadline=None)
    @given(st.integers(min_value=0, max_value=2 ** 16))
    def test_effective_sample_size_never_exceeds_draws(self, suite90,
                                                       est_line,
                                                       seed):
        """Kong's ESS = (sum w)^2 / sum w^2 is at most N by
        Cauchy-Schwarz, for every seed and shift."""
        result = self._run(est_line, suite90.proposed, seed,
                           "importance", samples=32,
                           prepass_samples=256)
        assert 0.0 < result.ess <= len(result.samples) + 1e-9


# ---------------------------------------------------------------------------
# Failure injection
# ---------------------------------------------------------------------------

class TestFailureInjection:
    def test_newton_reports_nonconvergence(self, tech90):
        """A pathological circuit (two cross-coupled inverters with no
        defined state, i.e. a bistable latch driven by nothing) either
        converges to a valid rail state or raises ConvergenceError —
        it must not return garbage silently."""
        from repro.spice.transient import ConvergenceError
        wn, wp = tech90.inverter_widths(8.0)
        circuit = Circuit()
        circuit.add_supply("vdd", tech90.vdd)
        circuit.add_inverter("a", "b", "vdd", tech90.nmos, tech90.pmos,
                             wn, wp, tech90.vdd)
        circuit.add_inverter("b", "a", "vdd", tech90.nmos, tech90.pmos,
                             wn, wp, tech90.vdd)
        try:
            result = simulate_transient(circuit, ps(100))
        except ConvergenceError:
            return
        va = result.final_voltage("a")
        vb = result.final_voltage("b")
        # Any DC solution of the latch satisfies both inverter curves;
        # node voltages must at least be physical.
        assert -0.1 <= va <= tech90.vdd + 0.1
        assert -0.1 <= vb <= tech90.vdd + 0.1

    def test_floating_node_does_not_crash(self):
        """GMIN keeps purely capacitive nodes solvable."""
        circuit = Circuit()
        circuit.add_voltage_source("in", step(1.0, at=ps(5)))
        circuit.add_capacitor("in", "float", fF(10))
        circuit.add_capacitor("float", "0", fF(10))
        result = simulate_transient(circuit, ps(100))
        # Capacitive divider: the floating node follows half the step.
        assert result.final_voltage("float") == pytest.approx(0.5,
                                                              abs=0.05)

    def test_zero_capacitance_nodes_are_fine(self):
        circuit = Circuit()
        circuit.add_voltage_source("in", step(1.0, at=ps(5)))
        circuit.add_resistor("in", "mid", 100.0)
        circuit.add_resistor("mid", "0", 100.0)
        result = simulate_transient(circuit, ps(50))
        assert result.final_voltage("mid") == pytest.approx(0.5,
                                                            rel=1e-3)
