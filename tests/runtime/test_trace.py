"""The span tracer: sinks, nesting, worker splicing, summaries."""

import json

import pytest

from repro.runtime import (
    JsonlSink,
    METRICS,
    SpanCollector,
    TRACER,
    parallel_map,
    span,
)
from repro.runtime.trace import (
    NULL_SPAN,
    export_chrome_trace,
    read_trace,
    summarize_events,
    summarize_trace,
)


def _traced_square(value):
    """Pool-safe workload that both traces and counts."""
    with span("work.square", value=value):
        METRICS.count("work.calls")
        return value * value


class TestDisabledTracing:
    def test_span_without_sink_is_shared_noop(self):
        """The disabled path allocates nothing: every call hands back
        the same context-manager object and the same null span."""
        assert not TRACER.enabled
        first = TRACER.span("a", attr=1)  # repro: noqa[span-hygiene]
        second = TRACER.span("b")  # repro: noqa[span-hygiene]
        assert first is second
        with first as live:
            assert live is NULL_SPAN
            live.annotate(anything="goes")
            live.count("things")

    def test_no_events_reach_a_later_sink(self):
        with TRACER.span("before-sink"):
            pass
        collector = SpanCollector()
        TRACER.add_sink(collector)
        assert collector.events == []


class TestSpanNesting:
    def test_parent_child_ids(self):
        collector = SpanCollector()
        TRACER.add_sink(collector)
        with span("outer") as outer:
            with span("inner") as inner:
                assert inner.parent_id == outer.span_id
        begins = [e for e in collector.events if e["ph"] == "B"]
        ends = [e for e in collector.events if e["ph"] == "E"]
        assert [e["name"] for e in begins] == ["outer", "inner"]
        assert [e["name"] for e in ends] == ["inner", "outer"]
        assert begins[1]["parent"] == begins[0]["span"]
        assert begins[0]["parent"] is None

    def test_attributes_and_counters_on_end_event(self):
        collector = SpanCollector()
        TRACER.add_sink(collector)
        with span("op", node="65nm") as sp:
            sp.count("rejects", 2)
            sp.count("rejects")
            sp.annotate(result="ok")
        end = collector.events[-1]
        assert end["ph"] == "E"
        assert end["args"] == {"node": "65nm", "rejects": 3,
                               "result": "ok"}

    def test_exception_is_annotated(self):
        collector = SpanCollector()
        TRACER.add_sink(collector)
        with pytest.raises(RuntimeError):
            with span("doomed"):
                raise RuntimeError("boom")
        end = collector.events[-1]
        assert end["args"]["error"] == "RuntimeError"

    def test_current_span(self):
        collector = SpanCollector()
        TRACER.add_sink(collector)
        assert TRACER.current() is NULL_SPAN
        with span("active") as sp:
            assert TRACER.current() is sp
        assert TRACER.current() is NULL_SPAN


class TestJsonlSink:
    def test_lines_are_json_events(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(path)
        TRACER.add_sink(sink)
        with span("one"):
            with span("two"):
                pass
        TRACER.remove_sink(sink)
        sink.close()
        events = read_trace(path)
        assert len(events) == 4
        assert all(event["ph"] in ("B", "E") for event in events)

    def test_read_trace_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"ph": "B", "span": 1}\nnot json\n')
        with pytest.raises(ValueError):
            read_trace(path)


class TestSplicing:
    def test_worker_payload_is_reparented_and_remapped(self):
        collector = SpanCollector()
        TRACER.add_sink(collector)
        worker_events = [
            {"ph": "B", "name": "chunk", "span": 1, "parent": None,
             "pid": 999, "ts": 1.0, "args": {}},
            {"ph": "B", "name": "item", "span": 2, "parent": 1,
             "pid": 999, "ts": 1.1, "args": {}},
            {"ph": "E", "name": "item", "span": 2, "pid": 999,
             "ts": 1.2},
            {"ph": "E", "name": "chunk", "span": 1, "pid": 999,
             "ts": 1.3},
        ]
        with span("dispatch") as dispatch:
            TRACER.splice_payload(worker_events,
                                  parent_id=dispatch.span_id)
        spliced = [e for e in collector.events
                   if e.get("name") in ("chunk", "item")]
        chunk_b = next(e for e in spliced
                       if e["ph"] == "B" and e["name"] == "chunk")
        item_b = next(e for e in spliced
                      if e["ph"] == "B" and e["name"] == "item")
        # Worker root hangs off the dispatching span; ids re-allocated
        # in the parent's space, child still points at its parent.
        assert chunk_b["parent"] == dispatch.span_id
        assert chunk_b["span"] != 1
        assert item_b["parent"] == chunk_b["span"]
        assert chunk_b["pid"] == 999


class TestWorkerPropagation:
    def test_worker_spans_arrive_in_parent_sink(self):
        collector = SpanCollector()
        TRACER.add_sink(collector)
        results = parallel_map(_traced_square, list(range(6)),
                               workers=2, chunk=2)
        assert results == [v * v for v in range(6)]
        names = [e.get("name") for e in collector.events
                 if e["ph"] == "B"]
        if "parallel.map" not in names:
            pytest.skip("process pool unavailable in this environment")
        # Every task's span came back from the workers.
        assert names.count("work.square") == 6
        assert names.count("parallel.chunk") == 3
        summary = summarize_events(collector.events)
        assert summary.well_formed
        # Worker pids differ from the parent's for at least one span.
        import os
        pids = {e["pid"] for e in collector.events}
        assert any(pid != os.getpid() for pid in pids)

    def test_worker_metrics_merge_into_parent(self):
        parallel_map(_traced_square, list(range(6)), workers=2,
                     chunk=2)
        assert METRICS.counters.get("work.calls") == 6

    def test_serial_run_records_same_counters(self):
        parallel_map(_traced_square, list(range(6)), workers=1)
        assert METRICS.counters.get("work.calls") == 6


class TestSplicedSelfTimeAttribution:
    """Recovered-chunk spans must not double-count task work.

    When a worker crashes mid-run the crashed chunk's spans die with
    the worker process (its payload never returns), and the chunk's
    items re-run under the serial ``parallel.recover`` span.  Every
    item must therefore appear exactly once in the spliced trace —
    a double-counted task span would silently inflate self time in
    ``repro report`` summaries, ``--profile`` tables and flamegraphs.
    """

    def test_crash_recovery_traces_each_item_once(self):
        from repro.runtime import faults
        from repro.runtime.profile import build_profile

        collector = SpanCollector()
        TRACER.add_sink(collector)
        with faults.inject("worker_crash", at=0):
            results = parallel_map(_traced_square, list(range(6)),
                                   workers=2, chunk=2)
        assert results == [v * v for v in range(6)]
        names = [e.get("name") for e in collector.events
                 if e["ph"] == "B"]
        if "parallel.map" not in names:
            pytest.skip("process pool unavailable in this environment")
        assert names.count("work.square") == 6
        summary = summarize_events(collector.events)
        assert summary.well_formed
        # Same invariant at profile resolution: the task paths (one
        # under the spliced worker chunks, one under the recovery
        # span) sum to exactly one call per item.
        profile = build_profile(collector.events)
        task_calls = sum(entry.calls
                         for entry in profile.paths.values()
                         if entry.path[-1] == "work.square")
        assert task_calls == 6
        # One recovery span per serially re-run chunk.
        assert names.count("parallel.recover") >= 1


class TestSummaries:
    def test_self_and_child_time(self):
        events = [
            {"ph": "B", "name": "outer", "span": 1, "parent": None,
             "ts": 0.0},
            {"ph": "B", "name": "inner", "span": 2, "parent": 1,
             "ts": 1.0},
            {"ph": "E", "name": "inner", "span": 2, "ts": 3.0},
            {"ph": "E", "name": "outer", "span": 1, "ts": 4.0},
        ]
        summary = summarize_events(events)
        assert summary.well_formed
        outer = summary.aggregates["outer"]
        inner = summary.aggregates["inner"]
        assert outer.total == pytest.approx(4.0)
        assert outer.self_time == pytest.approx(2.0)
        assert outer.child_time == pytest.approx(2.0)
        assert inner.total == pytest.approx(2.0)
        assert inner.self_time == pytest.approx(2.0)
        assert "outer" in summary.format()

    def test_unmatched_spans_are_reported(self):
        events = [
            {"ph": "B", "name": "lost", "span": 1, "parent": None,
             "ts": 0.0},
            {"ph": "E", "name": "phantom", "span": 9, "ts": 1.0},
        ]
        summary = summarize_events(events)
        assert not summary.well_formed
        assert len(summary.errors) == 2

    def test_round_trip_through_file(self, tmp_path):
        path = tmp_path / "t.jsonl"
        sink = JsonlSink(path)
        TRACER.add_sink(sink)
        with span("a"):
            with span("b"):
                pass
        TRACER.remove_sink(sink)
        sink.close()
        summary = summarize_trace(path)
        assert summary.well_formed
        assert set(summary.aggregates) == {"a", "b"}

    def test_chrome_export(self, tmp_path):
        events = [
            {"ph": "B", "name": "x", "span": 1, "parent": None,
             "pid": 7, "ts": 0.5, "args": {"k": 1}},
            {"ph": "E", "name": "x", "span": 1, "pid": 7, "ts": 1.5},
        ]
        out = tmp_path / "chrome.json"
        export_chrome_trace(events, out)
        data = json.loads(out.read_text())
        assert data["traceEvents"][0]["ts"] == pytest.approx(0.5e6)
        assert data["traceEvents"][0]["pid"] == 7
