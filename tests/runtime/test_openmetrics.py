"""The OpenMetrics exporter: exposition grammar and worker invariance.

Two properties matter for a scrape-able exporter: every line obeys the
OpenMetrics text exposition format (a parser on the other end is not
ours to patch), and the histogram series are invariant to how the work
was split across worker processes — the same run at ``--workers 1``
and ``--workers 4`` must export identical bucket counts and quantiles,
or dashboards would drift with the machine's core count.
"""

import re

import pytest

from repro.runtime import METRICS, MetricsRegistry, parallel_map

#: One exposition line: comment, blank, or `name{labels} value`.
_SAMPLE_LINE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"            # metric name
    r"(\{[a-zA-Z0-9_]+=\"[^\"]*\"\})?"      # optional label set
    r" \S+$")                               # value
_COMMENT_LINE = re.compile(r"^# (HELP|TYPE|EOF$)")


def _observe_fixed(value):
    """Pool-safe task: observes a deterministic per-item value."""
    METRICS.observe("invariance.task_value", value * 0.001)
    return value


class TestExpositionGrammar:
    def _registry(self):
        registry = MetricsRegistry()
        registry.count("cache.hit", 3)
        registry.add_time("command", 1.25)
        for index in range(5):
            registry.observe("task.seconds", 0.01 * (index + 1))
        return registry

    def test_every_line_parses(self):
        text = self._registry().to_openmetrics()
        for line in text.splitlines():
            if not line or line.startswith("#"):
                assert line == "" or _COMMENT_LINE.match(line), line
                continue
            assert _SAMPLE_LINE.match(line), line

    def test_ends_with_eof(self):
        text = self._registry().to_openmetrics()
        assert text.endswith("# EOF\n")
        assert text.count("# EOF") == 1

    def test_counter_becomes_total(self):
        text = self._registry().to_openmetrics()
        assert "repro_cache_hit_total 3" in text
        assert "# TYPE repro_cache_hit counter" in text

    def test_timer_becomes_seconds_total(self):
        text = self._registry().to_openmetrics()
        assert "repro_command_seconds_total 1.25" in text

    def test_histogram_families(self):
        text = self._registry().to_openmetrics()
        assert "# TYPE repro_task_seconds histogram" in text
        assert 'repro_task_seconds_bucket{le="+Inf"} 5' in text
        assert "repro_task_seconds_count 5" in text
        assert "repro_task_seconds_sum" in text

    def test_buckets_are_cumulative_and_end_at_count(self):
        text = self._registry().to_openmetrics()
        buckets = re.findall(
            r'repro_task_seconds_bucket\{le="([^"]+)"\} (\d+)', text)
        counts = [int(count) for _le, count in buckets]
        assert counts == sorted(counts)
        assert buckets[-1][0] == "+Inf"
        assert counts[-1] == 5
        # Non-Inf edges ascend numerically.
        edges = [float(le) for le, _ in buckets[:-1]]
        assert edges == sorted(edges)

    def test_name_sanitization(self):
        registry = MetricsRegistry()
        registry.count("cache.hit-rate test", 1)
        text = registry.to_openmetrics()
        assert "repro_cache_hit_rate_test_total 1" in text

    def test_help_escaping(self):
        registry = MetricsRegistry()
        registry.count("weird", 1)
        text = registry.to_openmetrics()
        for line in text.splitlines():
            if line.startswith("# HELP"):
                assert "\n" not in line


class TestWorkerInvariance:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_histogram_export_matches_serial(self, workers):
        """Identical observations exported identically regardless of
        how many worker processes made them."""
        def lines_and_quantiles():
            text = METRICS.to_openmetrics()
            # The _sum line accumulates in merge order, so it is only
            # float-approximately invariant; buckets, counts and the
            # quantiles derived from them are exact.
            lines = [line for line in text.splitlines()
                     if "invariance_task_value" in line
                     and "_sum" not in line]
            total = next(
                float(line.split()[-1]) for line in text.splitlines()
                if "invariance_task_value_sum" in line)
            return (lines, total,
                    METRICS.quantile("invariance.task_value", 0.5),
                    METRICS.quantile("invariance.task_value", 0.99))

        items = list(range(40))
        METRICS.reset()
        parallel_map(_observe_fixed, items, workers=1)
        serial_lines, serial_sum, serial_p50, serial_p99 = \
            lines_and_quantiles()

        METRICS.reset()
        parallel_map(_observe_fixed, items, workers=workers, chunk=7)
        split_lines, split_sum, split_p50, split_p99 = \
            lines_and_quantiles()
        assert split_lines == serial_lines
        assert split_p50 == serial_p50
        assert split_p99 == serial_p99
        assert split_sum == pytest.approx(serial_sum)
