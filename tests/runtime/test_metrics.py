"""The metrics registry, footer formatting, and the STATS facade."""

import math
import re

import pytest

from repro.runtime import (
    Histogram,
    METRICS,
    MetricsRegistry,
    RuntimeStats,
    STATS,
)


class TestFacade:
    def test_stats_is_metrics(self):
        """Old and new import paths share one registry object."""
        assert STATS is METRICS
        assert RuntimeStats is MetricsRegistry


class TestCacheHitRate:
    def test_zero_lookups_is_none(self):
        registry = MetricsRegistry()
        assert registry.cache_hit_rate() is None

    def test_hits_only(self):
        registry = MetricsRegistry()
        registry.count("cache.hit", 4)
        assert registry.cache_hit_rate() == 1.0

    def test_misses_only(self):
        registry = MetricsRegistry()
        registry.count("cache.miss", 3)
        assert registry.cache_hit_rate() == 0.0

    def test_mixed(self):
        registry = MetricsRegistry()
        registry.count("cache.hit")
        registry.count("cache.miss", 3)
        assert registry.cache_hit_rate() == 0.25


class TestMerge:
    def test_payload_round_trip(self):
        source = MetricsRegistry()
        source.count("tasks", 5)
        source.add_time("phase", 1.5)
        target = MetricsRegistry()
        target.count("tasks", 2)
        target.merge_payload(source.to_payload())
        assert target.counters["tasks"] == 7
        assert target.timers["phase"] == 1.5

    def test_merge_registry(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        a.add_time("t", 1.0)
        b.add_time("t", 0.5)
        a.merge(b)
        assert a.timers["t"] == 1.5


class TestFooter:
    def test_long_names_stay_aligned(self):
        registry = MetricsRegistry()
        registry.count("short", 1)
        registry.count("a.very.long.metric.name.beyond.24", 2)
        registry.add_time("timer", 0.5)
        footer = registry.format_footer()
        # Every row is "  <name padded to W> <value>": the name field
        # must be one shared width, so each value starts at the same
        # character offset.
        lines = footer.splitlines()[1:]
        width = max(len("a.very.long.metric.name.beyond.24"), 24)
        for line in lines:
            name = line[2:2 + width]
            rest = line[2 + width:]
            assert rest.startswith(" ")
            assert name.strip()  # name fits inside its column

    def test_short_names_keep_default_width(self):
        registry = MetricsRegistry()
        registry.count("short", 1)
        footer = registry.format_footer()
        assert f"  {'short':<24} " in footer

    def test_throughput_printed_with_tasks_and_timer(self):
        registry = MetricsRegistry()
        registry.count("parallel.tasks", 10)
        registry.add_time("parallel.pool", 2.0)
        assert registry.task_throughput() == 5.0
        assert "parallel.throughput" in registry.format_footer()
        assert "5.0 tasks/s" in registry.format_footer()

    def test_throughput_absent_without_timer(self):
        registry = MetricsRegistry()
        registry.count("parallel.tasks", 10)
        assert registry.task_throughput() is None
        assert "parallel.throughput" not in registry.format_footer()

    def test_throughput_sums_serial_and_pool_time(self):
        registry = MetricsRegistry()
        registry.count("parallel.tasks", 6)
        registry.add_time("parallel.pool", 1.0)
        registry.add_time("parallel.serial", 2.0)
        assert registry.task_throughput() == 2.0

    def test_extra_rows(self):
        registry = MetricsRegistry()
        footer = registry.format_footer(extra={"workers": 4})
        assert re.search(r"workers\s+4", footer)


class TestHistogram:
    def test_exact_count_sum_min_max(self):
        histogram = Histogram()
        for value in (0.5, 1.5, 2.5, 0.003):
            histogram.observe(value)
        assert histogram.count == 4
        assert histogram.sum == pytest.approx(4.503)
        assert histogram.minimum == 0.003
        assert histogram.maximum == 2.5
        assert histogram.mean == pytest.approx(4.503 / 4)

    def test_quantile_bounds(self):
        histogram = Histogram()
        assert histogram.quantile(0.5) is None
        histogram.observe(0.25)
        histogram.observe(4.0)
        assert histogram.quantile(0.0) == 0.25
        assert histogram.quantile(1.0) == 4.0
        # Interpolated quantiles never leave the observed range.
        for q in (0.1, 0.5, 0.9, 0.99):
            assert 0.25 <= histogram.quantile(q) <= 4.0

    def test_quantile_is_order_invariant(self):
        import numpy as np
        rng = np.random.default_rng(7)
        values = rng.uniform(1e-4, 10.0, size=500).tolist()
        forward = Histogram()
        shuffled = Histogram()
        for value in values:
            forward.observe(value)
        for value in np.random.default_rng(11).permutation(values):
            shuffled.observe(float(value))
        for q in (0.5, 0.95, 0.99):
            assert forward.quantile(q) == shuffled.quantile(q)

    def test_merge_equals_single_registry(self):
        """Split-then-merge must be bit-identical to one histogram —
        the property that makes worker-spliced quantiles exact."""
        values = [0.001 * (index + 1) ** 1.3 for index in range(200)]
        whole = Histogram()
        for value in values:
            whole.observe(value)
        left, right = Histogram(), Histogram()
        for index, value in enumerate(values):
            (left if index % 2 else right).observe(value)
        left.merge(right)
        assert left.counts == whole.counts
        assert left.count == whole.count
        # The sum accumulates in a different order (float rounding);
        # quantiles are pure functions of the bucket counts and the
        # exact min/max, so they are bit-identical, not just close.
        assert left.sum == pytest.approx(whole.sum)
        assert left.minimum == whole.minimum
        assert left.maximum == whole.maximum
        for q in (0.5, 0.95, 0.99):
            assert left.quantile(q) == whole.quantile(q)

    def test_standard_error(self):
        histogram = Histogram()
        histogram.observe(1.0)
        assert histogram.standard_error() == 0.0
        histogram.observe(3.0)
        # Sample variance of {1, 3} is 2; SE = sqrt(2 / 2) = 1.
        assert histogram.standard_error() == pytest.approx(1.0)

    def test_payload_round_trip(self):
        histogram = Histogram()
        for value in (0.1, 0.2, 5.0):
            histogram.observe(value)
        restored = Histogram()
        restored.merge_payload(histogram.to_payload())
        assert restored.counts == histogram.counts
        assert restored.sum == histogram.sum
        assert restored.minimum == histogram.minimum
        assert restored.maximum == histogram.maximum

    def test_overflow_bucket(self):
        histogram = Histogram()
        histogram.observe(1e15)  # beyond the largest edge
        assert histogram.count == 1
        assert histogram.quantile(0.5) == 1e15


class TestRegistryHistograms:
    def test_observe_and_quantile(self):
        registry = MetricsRegistry()
        for value in (0.01, 0.02, 0.03):
            registry.observe("task.seconds", value)
        assert registry.histogram("task.seconds").count == 3
        assert 0.01 <= registry.quantile("task.seconds", 0.5) <= 0.03
        assert registry.quantile("missing", 0.5) is None

    def test_observe_keyed_builds_dotted_series(self):
        registry = MetricsRegistry()
        registry.observe_keyed("cache.lookup_seconds", "repro.link",
                               0.004)
        registry.observe_keyed("cache.lookup_seconds", "", 0.002)
        assert registry.histogram(
            "cache.lookup_seconds.repro.link").count == 1
        assert registry.histogram("cache.lookup_seconds").count == 1

    def test_observed_times_a_block(self):
        registry = MetricsRegistry()
        with registry.observed("phase.seconds"):
            pass
        histogram = registry.histogram("phase.seconds")
        assert histogram.count == 1
        assert histogram.minimum >= 0.0

    def test_reset_clears_histograms(self):
        registry = MetricsRegistry()
        registry.observe("x", 1.0)
        registry.reset()
        assert registry.histogram("x") is None

    def test_payload_round_trip_with_histograms(self):
        source = MetricsRegistry()
        source.observe("h", 0.5)
        source.count("c", 2)
        target = MetricsRegistry()
        target.observe("h", 1.5)
        target.merge_payload(source.to_payload())
        assert target.histogram("h").count == 2
        assert target.counters["c"] == 2

    def test_merge_payload_without_histograms_block(self):
        """Payloads from pre-histogram workers still merge."""
        registry = MetricsRegistry()
        registry.merge_payload({"counters": {"c": 1}, "timers": {}})
        assert registry.counters["c"] == 1

    def test_footer_has_quantile_rows(self):
        registry = MetricsRegistry()
        for index in range(10):
            registry.observe("task.seconds", 0.01 * (index + 1))
        footer = registry.format_footer()
        row = next(line for line in footer.splitlines()
                   if "task.seconds" in line)
        assert "p50" in row and "p95" in row and "p99" in row
        assert "(10 obs)" in row

    def test_summaries_skip_empty(self):
        registry = MetricsRegistry()
        registry.observe("a", 1.0)
        summaries = registry.histogram_summaries()
        assert set(summaries) == {"a"}
        entry = summaries["a"]
        assert entry["count"] == 1
        assert math.isclose(entry["p50"], 1.0)


class TestKernelThroughput:
    def test_none_before_any_batch(self):
        registry = MetricsRegistry()
        assert registry.kernel_throughput() is None
        assert "kernels.throughput" not in registry.format_footer()

    def test_lanes_per_second(self):
        registry = MetricsRegistry()
        registry.count("kernels.batch_size", 1000)
        registry.add_time("kernels.batch", 2.0)
        assert registry.kernel_throughput() == 500.0
        footer = registry.format_footer()
        assert "kernels.throughput" in footer
        assert "500.0 lanes/s" in footer

    def test_absent_without_timer(self):
        registry = MetricsRegistry()
        registry.count("kernels.batch_size", 1000)
        assert registry.kernel_throughput() is None
        assert "kernels.throughput" not in registry.format_footer()
