"""The metrics registry, footer formatting, and the STATS facade."""

import re

from repro.runtime import METRICS, STATS, MetricsRegistry, RuntimeStats


class TestFacade:
    def test_stats_is_metrics(self):
        """Old and new import paths share one registry object."""
        assert STATS is METRICS
        assert RuntimeStats is MetricsRegistry


class TestCacheHitRate:
    def test_zero_lookups_is_none(self):
        registry = MetricsRegistry()
        assert registry.cache_hit_rate() is None

    def test_hits_only(self):
        registry = MetricsRegistry()
        registry.count("cache.hit", 4)
        assert registry.cache_hit_rate() == 1.0

    def test_misses_only(self):
        registry = MetricsRegistry()
        registry.count("cache.miss", 3)
        assert registry.cache_hit_rate() == 0.0

    def test_mixed(self):
        registry = MetricsRegistry()
        registry.count("cache.hit")
        registry.count("cache.miss", 3)
        assert registry.cache_hit_rate() == 0.25


class TestMerge:
    def test_payload_round_trip(self):
        source = MetricsRegistry()
        source.count("tasks", 5)
        source.add_time("phase", 1.5)
        target = MetricsRegistry()
        target.count("tasks", 2)
        target.merge_payload(source.to_payload())
        assert target.counters["tasks"] == 7
        assert target.timers["phase"] == 1.5

    def test_merge_registry(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        a.add_time("t", 1.0)
        b.add_time("t", 0.5)
        a.merge(b)
        assert a.timers["t"] == 1.5


class TestFooter:
    def test_long_names_stay_aligned(self):
        registry = MetricsRegistry()
        registry.count("short", 1)
        registry.count("a.very.long.metric.name.beyond.24", 2)
        registry.add_time("timer", 0.5)
        footer = registry.format_footer()
        # Every row is "  <name padded to W> <value>": the name field
        # must be one shared width, so each value starts at the same
        # character offset.
        lines = footer.splitlines()[1:]
        width = max(len("a.very.long.metric.name.beyond.24"), 24)
        for line in lines:
            name = line[2:2 + width]
            rest = line[2 + width:]
            assert rest.startswith(" ")
            assert name.strip()  # name fits inside its column

    def test_short_names_keep_default_width(self):
        registry = MetricsRegistry()
        registry.count("short", 1)
        footer = registry.format_footer()
        assert f"  {'short':<24} " in footer

    def test_throughput_printed_with_tasks_and_timer(self):
        registry = MetricsRegistry()
        registry.count("parallel.tasks", 10)
        registry.add_time("parallel.pool", 2.0)
        assert registry.task_throughput() == 5.0
        assert "parallel.throughput" in registry.format_footer()
        assert "5.0 tasks/s" in registry.format_footer()

    def test_throughput_absent_without_timer(self):
        registry = MetricsRegistry()
        registry.count("parallel.tasks", 10)
        assert registry.task_throughput() is None
        assert "parallel.throughput" not in registry.format_footer()

    def test_throughput_sums_serial_and_pool_time(self):
        registry = MetricsRegistry()
        registry.count("parallel.tasks", 6)
        registry.add_time("parallel.pool", 1.0)
        registry.add_time("parallel.serial", 2.0)
        assert registry.task_throughput() == 2.0

    def test_extra_rows(self):
        registry = MetricsRegistry()
        footer = registry.format_footer(extra={"workers": 4})
        assert re.search(r"workers\s+4", footer)


class TestKernelThroughput:
    def test_none_before_any_batch(self):
        registry = MetricsRegistry()
        assert registry.kernel_throughput() is None
        assert "kernels.throughput" not in registry.format_footer()

    def test_lanes_per_second(self):
        registry = MetricsRegistry()
        registry.count("kernels.batch_size", 1000)
        registry.add_time("kernels.batch", 2.0)
        assert registry.kernel_throughput() == 500.0
        footer = registry.format_footer()
        assert "kernels.throughput" in footer
        assert "500.0 lanes/s" in footer

    def test_absent_without_timer(self):
        registry = MetricsRegistry()
        registry.count("kernels.batch_size", 1000)
        assert registry.kernel_throughput() is None
        assert "kernels.throughput" not in registry.format_footer()
