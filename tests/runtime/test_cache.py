"""The versioned persistent disk cache."""

import dataclasses
import json
from dataclasses import dataclass

import pytest

from repro import runtime
from repro.runtime import DiskCache, STATS, cache_dir, fingerprint


@dataclass(frozen=True)
class _Key:
    name: str
    value: float


class TestFingerprint:
    def test_stable(self):
        key = _Key("a", 1.5)
        assert fingerprint(key) == fingerprint(_Key("a", 1.5))

    def test_sensitive_to_every_field(self):
        base = _Key("a", 1.5)
        assert fingerprint(base) != fingerprint(_Key("b", 1.5))
        assert fingerprint(base) != fingerprint(_Key("a", 1.6))

    def test_technology_parameter_changes_key(self, tech90):
        tweaked = dataclasses.replace(tech90, vdd=tech90.vdd * 1.01)
        assert fingerprint(tech90) != fingerprint(tweaked)

    def test_dict_order_irrelevant(self):
        assert fingerprint({"a": 1, "b": 2}) \
            == fingerprint({"b": 2, "a": 1})

    def test_rejects_unfingerprintable(self):
        with pytest.raises(TypeError):
            fingerprint(object())


class TestCacheDir:
    def test_env_override_respected(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "here"))
        assert cache_dir() == tmp_path / "here"
        cache = DiskCache("ns")
        cache.put({"k": 1}, "payload")
        assert (tmp_path / "here" / "ns").is_dir()

    def test_nothing_created_before_first_put(self, tmp_path,
                                              monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "lazy"))
        DiskCache("ns").get({"k": 1})
        assert not (tmp_path / "lazy").exists()


class TestRoundTrip:
    def test_cold_miss_then_warm_hit(self):
        cache = DiskCache("designs")
        key = {"tech": "90nm", "length": 5}
        assert cache.get(key) is None
        cache.put(key, {"delay": 1.25e-10, "sizes": [4, 8]})
        assert cache.get(key) == {"delay": 1.25e-10, "sizes": [4, 8]}

    def test_hits_and_misses_counted(self):
        cache = DiskCache("designs")
        cache.get({"k": 1})
        cache.put({"k": 1}, 42)
        cache.get({"k": 1})
        assert STATS.counters["cache.miss"] == 1
        assert STATS.counters["cache.hit"] == 1
        assert STATS.cache_hit_rate() == 0.5

    def test_distinct_keys_do_not_collide(self):
        cache = DiskCache("designs")
        cache.put({"k": 1}, "one")
        cache.put({"k": 2}, "two")
        assert cache.get({"k": 1}) == "one"
        assert cache.get({"k": 2}) == "two"

    def test_namespaces_are_disjoint(self):
        DiskCache("a").put({"k": 1}, "from-a")
        assert DiskCache("b").get({"k": 1}) is None

    def test_namespace_validation(self):
        with pytest.raises(ValueError):
            DiskCache("")
        with pytest.raises(ValueError):
            DiskCache("a/b")


class TestRobustness:
    def test_corrupted_file_is_a_miss_and_rewritten(self):
        cache = DiskCache("ns")
        key = {"k": 1}
        cache.put(key, "good")
        cache.path_for(key).write_text("{ not json !")
        assert cache.get(key) is None
        cache.put(key, "rewritten")
        assert cache.get(key) == "rewritten"

    def test_truncated_envelope_is_a_miss(self):
        cache = DiskCache("ns")
        key = {"k": 1}
        cache.path_for(key).parent.mkdir(parents=True)
        cache.path_for(key).write_text(json.dumps({"version": 1}))
        assert cache.get(key) is None

    def test_version_mismatch_ignored_and_rewritten(self):
        old = DiskCache("ns", version=1)
        new = DiskCache("ns", version=2)
        key = {"k": 1}
        old.put(key, "v1-payload")
        assert new.get(key) is None
        new.put(key, "v2-payload")
        assert new.get(key) == "v2-payload"
        assert old.get(key) is None

    def test_key_collision_detected(self):
        """A hash collision (here: a forged file) must not serve the
        wrong payload."""
        cache = DiskCache("ns")
        forged = {"version": cache.version, "key": {"other": True},
                  "payload": "evil"}
        cache.path_for({"k": 1}).parent.mkdir(parents=True)
        cache.path_for({"k": 1}).write_text(json.dumps(forged))
        assert cache.get({"k": 1}) is None


class TestEnvironmentSalt:
    """Entries are salted with the numeric environment (numpy version)
    so a library upgrade that shifts ulps cannot serve stale floats."""

    def test_default_salt_carries_numpy_version(self):
        import numpy

        from repro.runtime.cache import environment_salt
        assert environment_salt()["numpy"] == numpy.__version__
        assert DiskCache("ns").salt == environment_salt()

    def test_salt_mismatch_is_a_miss(self):
        old = DiskCache("ns", salt={"numpy": "1.26.0"})
        new = DiskCache("ns", salt={"numpy": "2.1.0"})
        key = {"k": 1}
        old.put(key, "old-numpy-floats")
        assert new.get(key) is None
        new.put(key, "fresh")
        assert new.get(key) == "fresh"

    def test_same_salt_round_trips(self):
        a = DiskCache("ns", salt={"numpy": "2.1.0"})
        b = DiskCache("ns", salt={"numpy": "2.1.0"})
        a.put({"k": 2}, "shared")
        assert b.get({"k": 2}) == "shared"

    def test_pre_salt_envelope_is_a_miss(self):
        """Envelopes written before salting existed lack the field and
        must be treated as cold."""
        cache = DiskCache("ns")
        key = {"k": 3}
        cache.put(key, "value")
        envelope = json.loads(cache.path_for(key).read_text())
        del envelope["salt"]
        cache.path_for(key).write_text(json.dumps(envelope))
        assert cache.get(key) is None


class TestDisabling:
    def test_no_cache_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        cache = DiskCache("ns")
        cache.put({"k": 1}, "payload")
        assert cache.get({"k": 1}) is None
        assert not cache.directory.exists()

    def test_configure_disable(self):
        runtime.configure(cache_enabled=False)
        cache = DiskCache("ns")
        cache.put({"k": 1}, "payload")
        assert not cache.directory.exists()
        runtime.configure(cache_enabled=True)
        cache.put({"k": 1}, "payload")
        assert cache.get({"k": 1}) == "payload"


def _hammer_cache(writer_id: int) -> int:
    """One concurrent writer process: interleaved puts/gets on a small
    shared slot space (executed in a pool worker)."""
    import os

    from repro.runtime import DiskCache

    cache = DiskCache("stress")
    for step in range(25):
        slot = step % 8
        cache.put({"slot": slot},
                  {"writer": writer_id, "step": step,
                   "blob": [writer_id] * 16})
        value = cache.get({"slot": slot})
        # Whatever writer's payload won the race, it must be a whole,
        # well-formed payload — never a torn or mixed write.
        if value is not None:
            assert set(value) == {"writer", "step", "blob"}
            assert value["blob"] == [value["writer"]] * 16
    return os.getpid()


class TestConcurrentWriterProcesses:
    """The write-rename path under concurrent writer *processes*.

    Before per-pid/per-token temp names, two processes writing the
    same key could race on one temp file; the loser's rename then
    published a torn or foreign payload.  Distinct processes must now
    never share a temp path, every published entry must be a whole
    envelope, and no temp litter may survive."""

    def test_parallel_writers_never_corrupt(self):
        from concurrent.futures import ProcessPoolExecutor

        from repro.runtime import DiskCache

        try:
            with ProcessPoolExecutor(max_workers=4) as pool:
                pids = list(pool.map(_hammer_cache, range(4)))
        except (OSError, NotImplementedError):
            pytest.skip("process pools unavailable here")
        assert len(set(pids)) > 1, "expected distinct writer processes"

        cache = DiskCache("stress")
        for slot in range(8):
            value = cache.get({"slot": slot})
            assert value is not None
            assert value["blob"] == [value["writer"]] * 16
        # No temp litter, no quarantined envelopes.
        leftovers = list(cache.directory.glob("*.tmp"))
        assert leftovers == []
        assert list(cache.directory.glob("*.quarantine")) == []

    def test_same_process_temp_names_are_unique(self):
        import os

        from repro.runtime.cache import _TMP_TOKENS

        first = next(_TMP_TOKENS)
        second = next(_TMP_TOKENS)
        assert second == first + 1
        # The naming scheme embeds both the pid and the token, so two
        # writers can only collide if the OS reuses a pid *and* the
        # new process has drawn exactly as many tokens — and even then
        # O_EXCL turns the collision into a counted failed write, not
        # a corrupt one.
        assert os.getpid() != 0
