"""Chaos tests: injected faults must never change a result.

The fault-injection harness (:mod:`repro.runtime.faults`) triggers
worker crashes, straggler chunks and cache corruption at deterministic
sites; these tests pin down the recovery contract — bit-identical
results, quarantined corruption, cache-less degradation — plus the
bugfixes that ride along (temp-file cleanup, env parsing, the worker
trace-capture leak).
"""

import errno
import json
import os
import warnings

import pytest

from repro import runtime
from repro.runtime import (
    DiskCache,
    METRICS,
    TRACER,
    TaskError,
    cache as cache_module,
    faults,
    parallel_map,
)
from repro.runtime.faults import FaultSpec, parse_spec
from repro.runtime.parallel import _run_chunk, resolve_max_retries
from repro.runtime.trace import SpanCollector


def _square(value):
    return value * value


def _fail_on_three(value):
    if value == 3:
        raise ValueError("three is right out")
    return value


def _pool_was_unavailable():
    return METRICS.counters.get("parallel.pool_unavailable", 0) > 0


# ---------------------------------------------------------------------------
# Spec parsing and the inject() API
# ---------------------------------------------------------------------------


class TestSpecParsing:
    def test_single_entry_with_site(self):
        assert parse_spec("worker_crash@chunk=1") \
            == (FaultSpec("worker_crash", at=1),)

    def test_defaults(self):
        (spec,) = parse_spec("worker_crash")
        assert spec.at == 0

    def test_multiple_entries(self):
        specs = parse_spec("worker_crash@chunk=1; "
                           "slow_chunk@chunk=0,delay=0.25; "
                           "cache_corrupt@put=2")
        assert [spec.kind for spec in specs] \
            == ["worker_crash", "slow_chunk", "cache_corrupt"]
        assert specs[1].delay == 0.25
        assert specs[2].at == 2

    def test_empty_spec_is_no_faults(self):
        assert parse_spec("") == ()
        assert parse_spec(" ; ") == ()

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            parse_spec("cosmic_ray@chunk=1")

    def test_wrong_parameter_for_kind_rejected(self):
        with pytest.raises(ValueError):
            parse_spec("worker_crash@put=1")
        with pytest.raises(ValueError):
            parse_spec("worker_crash@delay=1")

    def test_non_integer_site_rejected(self):
        with pytest.raises(ValueError):
            parse_spec("worker_crash@chunk=soon")

    def test_env_spec_becomes_active(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "slow_chunk@chunk=3")
        assert faults.active_specs() \
            == (FaultSpec("slow_chunk", at=3),)

    def test_negative_site_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec("worker_crash", at=-1)

    def test_malformed_env_spec_is_loud_even_on_the_serial_path(
            self, monkeypatch):
        """A typo must never silently disable the chaos that was
        asked for — the spec parses on every dispatch."""
        monkeypatch.setenv("REPRO_FAULTS", "worker_crash@banana=1")
        with pytest.raises(ValueError):
            parallel_map(_square, [1], workers=1)


class TestInject:
    def test_inject_is_scoped_to_the_block(self):
        assert faults.active_specs() == ()
        with faults.inject("worker_crash", at=2) as spec:
            assert spec in faults.active_specs()
        assert faults.active_specs() == ()

    def test_worker_faults_excludes_cache_kinds(self):
        with faults.inject("cache_corrupt", at=0), \
                faults.inject("slow_chunk", at=1):
            kinds = [spec.kind for spec in faults.worker_faults()]
        assert kinds == ["slow_chunk"]


# ---------------------------------------------------------------------------
# Mid-run worker death
# ---------------------------------------------------------------------------


class TestWorkerCrashRecovery:
    def test_recovery_is_bit_identical(self):
        items = list(range(20))
        serial = parallel_map(_square, items, workers=1)
        METRICS.reset()
        with faults.inject("worker_crash", at=1):
            recovered = parallel_map(_square, items, workers=4,
                                     chunk=3)
        if _pool_was_unavailable():
            pytest.skip("no process pools in this environment")
        assert recovered == serial
        assert METRICS.counters["faults.worker_crash"] == 1
        assert METRICS.counters["faults.recovered_chunks"] >= 1
        assert METRICS.counters["faults.recovered_tasks"] >= 3

    def test_crash_on_first_chunk_recovers_everything(self):
        items = list(range(8))
        with faults.inject("worker_crash", at=0):
            recovered = parallel_map(_square, items, workers=2,
                                     chunk=4)
        if _pool_was_unavailable():
            pytest.skip("no process pools in this environment")
        assert recovered == [value * value for value in items]

    def test_retry_budget_rebuilds_the_pool(self):
        items = list(range(12))
        with faults.inject("worker_crash", at=0):
            recovered = parallel_map(_square, items, workers=3,
                                     chunk=2, max_retries=2)
        if _pool_was_unavailable():
            pytest.skip("no process pools in this environment")
        assert recovered == [value * value for value in items]
        # The injected fault re-fires on every pool attempt, so the
        # whole budget is consumed before the serial fallback wins.
        assert METRICS.counters["faults.pool_retry"] == 2
        assert METRICS.counters["faults.worker_crash"] == 3

    def test_env_spec_drives_the_crash(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "worker_crash@chunk=0")
        items = list(range(6))
        recovered = parallel_map(_square, items, workers=2, chunk=3)
        if _pool_was_unavailable():
            pytest.skip("no process pools in this environment")
        assert recovered == [value * value for value in items]
        assert METRICS.counters["faults.worker_crash"] == 1

    def test_serial_path_never_fires_worker_faults(self):
        # If the crash fired on the serial path it would kill this
        # very process — completing at all is the assertion.
        with faults.inject("worker_crash", at=0):
            assert parallel_map(_square, [1, 2, 3], workers=1) \
                == [1, 4, 9]

    def test_slow_chunk_changes_nothing_but_wall_time(self):
        items = list(range(6))
        serial = parallel_map(_square, items, workers=1)
        METRICS.reset()
        with faults.inject("slow_chunk", at=0, delay=0.01):
            delayed = parallel_map(_square, items, workers=2, chunk=3)
        if _pool_was_unavailable():
            pytest.skip("no process pools in this environment")
        assert delayed == serial
        # The worker counted the injection and the payload merged back.
        assert METRICS.counters["faults.injected.slow_chunk"] == 1


class TestTaskErrorContext:
    def test_serial_failure_names_item_and_path(self):
        with pytest.raises(TaskError) as info:
            parallel_map(_fail_on_three, [1, 2, 3, 4], workers=1,
                         label="sweep.draw")
        error = info.value
        assert error.label == "sweep.draw"
        assert error.item_index == 2
        assert error.chunk_index is None
        assert "serial path" in str(error)
        assert "ValueError: three is right out" in str(error)
        assert isinstance(error.__cause__, ValueError)

    def test_pool_failure_survives_pickling_with_context(self):
        with pytest.raises(TaskError) as info:
            parallel_map(_fail_on_three, [1, 2, 3, 4], workers=2,
                         chunk=2, label="sweep.draw")
        if _pool_was_unavailable():
            pytest.skip("no process pools in this environment")
        error = info.value
        assert error.item_index == 2
        assert error.chunk_index == 1
        assert "chunk 1" in str(error)
        assert "ValueError" in error.cause_summary

    def test_label_defaults_to_callable_name(self):
        with pytest.raises(TaskError) as info:
            parallel_map(_fail_on_three, [3], workers=1)
        assert "_fail_on_three" in info.value.label


class TestMaxRetriesResolution:
    def test_default_is_zero(self):
        assert resolve_max_retries() == 0

    def test_explicit_wins(self):
        assert resolve_max_retries(3) == 3

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            resolve_max_retries(-1)

    def test_configure_override(self):
        runtime.configure(max_retries=2)
        assert resolve_max_retries() == 2
        assert runtime.configured_max_retries() == 2

    def test_env_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_MAX_RETRIES", " 1 ")
        assert resolve_max_retries() == 1

    def test_env_must_be_a_non_negative_integer(self, monkeypatch):
        monkeypatch.setenv("REPRO_MAX_RETRIES", "-1")
        with pytest.raises(ValueError):
            resolve_max_retries()
        monkeypatch.setenv("REPRO_MAX_RETRIES", "lots")
        with pytest.raises(ValueError):
            resolve_max_retries()


# ---------------------------------------------------------------------------
# Cache corruption, quarantine and degradation
# ---------------------------------------------------------------------------


class TestCacheQuarantine:
    def test_garbage_bytes_are_quarantined_and_recomputed(self):
        cache = DiskCache("ns")
        key = {"k": 1}
        cache.put(key, "good")
        cache.path_for(key).write_bytes(b"\x00\xffnot json\x00")
        assert cache.get(key) is None
        quarantined = cache.path_for(key).with_suffix(".quarantine")
        assert quarantined.exists()
        assert not cache.path_for(key).exists()
        assert METRICS.counters["faults.cache_quarantined"] == 1
        assert METRICS.counters["faults.cache_quarantined.ns"] == 1
        cache.put(key, "recomputed")
        assert cache.get(key) == "recomputed"
        assert quarantined.exists()  # forensics survive the rewrite

    def test_non_envelope_document_is_quarantined(self):
        """A valid-JSON non-dict entry used to escape the miss
        handling as an AttributeError; now it quarantines."""
        cache = DiskCache("ns")
        key = {"k": 2}
        cache.path_for(key).parent.mkdir(parents=True)
        cache.path_for(key).write_text("[1, 2, 3]")
        assert cache.get(key) is None
        assert METRICS.counters["faults.cache_quarantined"] == 1

    def test_truncated_envelope_is_quarantined(self):
        cache = DiskCache("ns")
        key = {"k": 3}
        cache.put(key, "value")
        envelope = json.loads(cache.path_for(key).read_text())
        del envelope["payload"]
        cache.path_for(key).write_text(json.dumps(envelope))
        assert cache.get(key) is None
        assert METRICS.counters["faults.cache_quarantined"] == 1

    def test_schema_evolution_is_not_quarantined(self):
        """Version/salt mismatches are expected staleness, not
        corruption — no quarantine file, no faults counter."""
        old = DiskCache("ns", version=1)
        key = {"k": 4}
        old.put(key, "v1")
        assert DiskCache("ns", version=2).get(key) is None
        assert "faults.cache_quarantined" not in METRICS.counters
        assert old.path_for(key).exists()

    def test_injected_corruption_round_trip(self):
        cache = DiskCache("ns")
        key = {"k": 5}
        with faults.inject("cache_corrupt", at=0):
            cache.put(key, {"delay": 1.5e-10})
            assert METRICS.counters["faults.injected.cache_corrupt"] \
                == 1
            assert cache.get(key) is None  # quarantined, a miss
            cache.put(key, {"delay": 1.5e-10})  # put 1: untouched
            assert cache.get(key) == {"delay": 1.5e-10}
        assert METRICS.counters["faults.cache_quarantined"] == 1


class TestCacheDegradation:
    def _fill_disk(self, monkeypatch):
        def _no_space(*args, **kwargs):
            raise OSError(errno.ENOSPC, "No space left on device")
        monkeypatch.setattr(cache_module, "_create_exclusive",
                            _no_space)

    def test_disk_full_degrades_to_read_only_with_one_warning(
            self, monkeypatch):
        cache = DiskCache("ns")
        self._fill_disk(monkeypatch)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            cache.put({"k": 1}, "payload")
            cache.put({"k": 2}, "payload")  # short-circuits silently
        assert cache_module.writes_disabled()
        assert [w for w in caught
                if issubclass(w.category, RuntimeWarning)] \
            and len(caught) == 1
        assert METRICS.counters["faults.cache_degraded"] == 1
        assert METRICS.counters["cache.write_failed"] == 1

    def test_degraded_run_completes_cache_less(self, monkeypatch):
        cache = DiskCache("ns")
        self._fill_disk(monkeypatch)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            cache.put({"k": 1}, "payload")
        # Reads still work (miss), computation results are unaffected.
        assert cache.get({"k": 1}) is None
        assert parallel_map(_square, [1, 2, 3], workers=1) == [1, 4, 9]

    def test_transient_errors_do_not_degrade(self):
        """A per-entry failure (target occupied by a directory) counts
        a failed write but keeps the cache writable."""
        cache = DiskCache("ns")
        key = {"k": 1}
        cache.path_for(key).mkdir(parents=True)
        cache.put(key, "payload")
        assert not cache_module.writes_disabled()
        assert METRICS.counters["cache.write_failed"] == 1
        cache.put({"k": 2}, "other")
        assert cache.get({"k": 2}) == "other"


class TestTempFileCleanup:
    def test_failed_replace_leaves_no_tmp_litter(self):
        cache = DiskCache("ns")
        key = {"k": 1}
        cache.path_for(key).mkdir(parents=True)  # os.replace will fail
        cache.put(key, "payload")
        assert list(cache.directory.glob("*.tmp")) == []
        assert METRICS.counters["cache.write_failed"] == 1

    def test_unserializable_payload_stays_loud_but_clean(self):
        cache = DiskCache("ns")
        with pytest.raises(TypeError):
            cache.put({"k": 1}, object())
        assert list(cache.directory.glob("*.tmp")) == []


# ---------------------------------------------------------------------------
# Env parsing (REPRO_NO_CACHE and friends share one rule)
# ---------------------------------------------------------------------------


class TestEnvParsing:
    def test_no_cache_whitespace_zero_keeps_cache_enabled(
            self, monkeypatch):
        """The old rule treated "0 " (trailing space) as truthy and
        silently disabled the cache."""
        monkeypatch.setenv("REPRO_NO_CACHE", "0 ")
        assert runtime.cache_enabled()

    @pytest.mark.parametrize("value", ["1", " 1 ", "true", "YES", "on"])
    def test_no_cache_true_spellings(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_NO_CACHE", value)
        assert not runtime.cache_enabled()

    @pytest.mark.parametrize("value", ["0", "false", "No", "off", ""])
    def test_no_cache_false_spellings(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_NO_CACHE", value)
        assert runtime.cache_enabled()

    def test_no_cache_garbage_is_loud(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_CACHE", "maybe")
        with pytest.raises(ValueError):
            runtime.cache_enabled()

    def test_env_int_strips_and_validates(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", " 4 ")
        assert runtime.env_int("REPRO_WORKERS") == 4
        monkeypatch.setenv("REPRO_WORKERS", "  ")
        assert runtime.env_int("REPRO_WORKERS") is None
        monkeypatch.delenv("REPRO_WORKERS")
        assert runtime.env_int("REPRO_WORKERS") is None
        monkeypatch.setenv("REPRO_WORKERS", "many")
        with pytest.raises(ValueError):
            runtime.env_int("REPRO_WORKERS")

    def test_env_flag_default_applies_when_unset(self, monkeypatch):
        monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
        assert runtime.env_flag("REPRO_NO_CACHE", default=True)
        assert not runtime.env_flag("REPRO_NO_CACHE", default=False)


# ---------------------------------------------------------------------------
# Worker trace-capture leak
# ---------------------------------------------------------------------------


class TestWorkerCaptureLeak:
    """``_run_chunk`` runs in this process to stand in for a reused
    pool worker: a failing chunk must end its capture, or every later
    chunk on that worker records into a dead collector."""

    def _payload(self, fn, items, chunk_index, start):
        return (fn, items, True, chunk_index, start, "probe",
                faults.worker_faults())

    def test_failing_chunk_ends_capture(self):
        with pytest.raises(TaskError):
            _run_chunk(self._payload(_fail_on_three, [3], 0, 0))
        assert not TRACER.enabled  # capture mode did not leak

    def test_clean_chunk_after_failure_round_trips_spans(self):
        with pytest.raises(TaskError):
            _run_chunk(self._payload(_fail_on_three, [3], 0, 0))
        results, metrics_payload, events = _run_chunk(
            self._payload(_square, [2, 3], 1, 2))
        assert results == [4, 9]
        begins = [event for event in events if event["ph"] == "B"]
        ends = [event for event in events if event["ph"] == "E"]
        assert [event["name"] for event in begins] \
            == ["parallel.chunk"]
        assert len(ends) == 1
        # And the captured events splice cleanly into a parent tracer.
        collector = SpanCollector()
        TRACER.add_sink(collector)
        try:
            TRACER.splice_payload(events, parent_id=None)
        finally:
            TRACER.remove_sink(collector)
        assert len(collector.events) == 2

    def test_failing_chunk_still_returns_worker_guard(self):
        from repro.runtime import parallel
        with pytest.raises(TaskError):
            _run_chunk(self._payload(_fail_on_three, [3], 0, 0))
        assert parallel._IN_WORKER is False


# ---------------------------------------------------------------------------
# End-to-end: Monte-Carlo sweep survives a crash and a corrupt cache
# ---------------------------------------------------------------------------


class TestMonteCarloCrashEquivalence:
    @pytest.fixture()
    def line(self, tech90, swss90):
        from repro.signoff.extraction import extract_buffered_line
        from repro.units import mm
        return extract_buffered_line(tech90, swss90, mm(2), 2, 24.0)

    def test_crash_and_corruption_leave_results_bit_identical(
            self, line):
        from repro.signoff.variation import monte_carlo_line_delay
        from repro.units import ps
        clean = monte_carlo_line_delay(line, ps(100), samples=8,
                                       seed=77, workers=1)
        METRICS.reset()
        with faults.inject("worker_crash", at=0), \
                faults.inject("cache_corrupt", at=0):
            DiskCache("chaos").put({"probe": 1}, "doomed")
            assert DiskCache("chaos").get({"probe": 1}) is None
            survived = monte_carlo_line_delay(line, ps(100), samples=8,
                                              seed=77, workers=4)
        if _pool_was_unavailable():
            pytest.skip("no process pools in this environment")
        assert survived.samples == clean.samples
        assert survived.nominal_delay == clean.nominal_delay
        assert METRICS.counters["faults.worker_crash"] >= 1
        assert METRICS.counters["faults.cache_quarantined"] >= 1

    def test_importance_estimator_survives_crash_bit_identically(
            self, line, suite90):
        """The variance-reduction estimators inherit the recovery
        contract: an importance-sampled sweep whose pool dies mid-run
        re-runs the unfinished draws and lands on the very same
        samples, weights and corrected estimate."""
        from repro.signoff.variation import monte_carlo_line_delay
        from repro.units import ps
        kwargs = dict(samples=8, seed=77, engine="model",
                      model=suite90.proposed, estimator="importance",
                      prepass_samples=64)
        clean = monte_carlo_line_delay(line, ps(100), workers=1,
                                       **kwargs)
        METRICS.reset()
        with faults.inject("worker_crash", at=0):
            survived = monte_carlo_line_delay(line, ps(100),
                                              workers=4, **kwargs)
        if _pool_was_unavailable():
            pytest.skip("no process pools in this environment")
        assert survived.samples == clean.samples
        assert survived.weights == clean.weights
        assert survived.mean == clean.mean
        assert survived.report.ess == clean.report.ess
        assert METRICS.counters["faults.worker_crash"] >= 1

    def test_recovery_lands_in_stats_and_manifest(self, line):
        from repro.runtime import build_manifest
        from repro.signoff.variation import monte_carlo_line_delay
        from repro.units import ps
        with faults.inject("worker_crash", at=0):
            monte_carlo_line_delay(line, ps(100), samples=6, seed=5,
                                   workers=3)
        if _pool_was_unavailable():
            pytest.skip("no process pools in this environment")
        footer = METRICS.format_footer()
        assert "faults.worker_crash" in footer
        manifest = build_manifest(
            "probe", {"seed": 5}, workers=3, cache_enabled=True,
            wall_seconds=0.0, started_at="2026-01-01T00:00:00+00:00")
        assert manifest["faults"]["faults.worker_crash"] >= 1
        assert manifest["faults"]["faults.recovered_tasks"] >= 1
