"""Runtime-test fixtures: every test gets a pristine runtime."""

from __future__ import annotations

import pytest

from repro import runtime
from repro.runtime import STATS, TRACER, cache, faults


@pytest.fixture(autouse=True)
def _clean_runtime(tmp_path, monkeypatch):
    """Isolated cache directory, no overrides, zeroed stats/tracer,
    no armed faults, cache writes re-enabled."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.delenv("REPRO_WORKERS", raising=False)
    monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
    monkeypatch.delenv("REPRO_MAX_RETRIES", raising=False)
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    runtime.reset_configuration()
    STATS.reset()
    TRACER.clear()
    faults.clear()
    cache.reset_degradation()
    yield
    runtime.reset_configuration()
    STATS.reset()
    TRACER.clear()
    faults.clear()
    cache.reset_degradation()
