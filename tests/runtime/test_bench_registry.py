"""The benchmark registry: history records and the noise-aware diff."""

import json

import pytest

from repro import bench_registry
from repro.bench_registry import (
    BenchSample,
    append_record,
    baseline_samples,
    build_record,
    diff_latest,
    diff_samples,
    latest_record,
    load_history,
    previous_record,
    record_samples,
)


def _record(suite="kernels", values=(1.0, 2.0), env_key=None,
            generated_at="2026-01-01T00:00:00Z"):
    record = build_record(
        suite, node="90nm", quick=True,
        config={"node": "90nm", "quick": True},
        samples=[BenchSample(name=f"s{index}", value=value, se=0.01,
                             n=100)
                 for index, value in enumerate(values)],
        generated_at=generated_at)
    if env_key is not None:
        record["env_key"] = env_key
    return record


class TestHistory:
    def test_round_trip(self, tmp_path):
        history = tmp_path / "history.jsonl"
        path = append_record(_record(), history)
        append_record(_record(values=(1.1, 2.1)), history)
        assert path == history
        records = load_history(history)
        assert len(records) == 2
        assert records[0]["schema"] == bench_registry.REGISTRY_SCHEMA
        assert records[0]["env_key"]
        assert records[0]["config_hash"]
        samples = record_samples(records[0])
        assert samples[0] == BenchSample("s0", 1.0, 0.01, 100)

    def test_missing_file_is_empty(self, tmp_path):
        assert load_history(tmp_path / "absent.jsonl") == []

    def test_garbage_line_names_its_number(self, tmp_path):
        history = tmp_path / "history.jsonl"
        append_record(_record(), history)
        with open(history, "a", encoding="utf-8") as handle:
            handle.write("not json\n")
        with pytest.raises(ValueError, match=":2:"):
            load_history(history)

    def test_latest_and_previous(self, tmp_path):
        history = tmp_path / "history.jsonl"
        append_record(_record(values=(1.0,)), history)
        append_record(_record(suite="yield", values=(9.0,)), history)
        append_record(_record(values=(2.0,)), history)
        records = load_history(history)
        latest = latest_record(records, "kernels")
        assert record_samples(latest)[0].value == 2.0
        previous = previous_record(records, "kernels")
        assert record_samples(previous)[0].value == 1.0

    def test_previous_skips_other_environments(self, tmp_path):
        history = tmp_path / "history.jsonl"
        append_record(_record(values=(1.0,), env_key="other"),
                      history)
        append_record(_record(values=(2.0,)), history)
        records = load_history(history)
        assert previous_record(records, "kernels") is None


class TestDiffSamples:
    def test_unchanged_is_ok(self):
        current = [BenchSample("a", 1.0, 0.0, 10)]
        (entry,) = diff_samples(current, current)
        assert entry.verdict == "ok"

    def test_injected_slowdown_regresses(self):
        base = [BenchSample("a", 1.0, 0.001, 10)]
        slow = [BenchSample("a", 1.3, 0.001, 10)]
        (entry,) = diff_samples(slow, base)
        assert entry.verdict == "regression"
        assert entry.ratio == pytest.approx(1.3)

    def test_noisy_slowdown_is_not_signal(self):
        """A 30% slowdown inside 3 combined SEs stays ok."""
        base = [BenchSample("a", 1.0, 0.2, 10)]
        slow = [BenchSample("a", 1.3, 0.2, 10)]
        (entry,) = diff_samples(slow, base)
        assert entry.verdict == "ok"

    def test_improvement(self):
        base = [BenchSample("a", 1.0, 0.0, 10)]
        fast = [BenchSample("a", 0.5, 0.0, 10)]
        (entry,) = diff_samples(fast, base)
        assert entry.verdict == "improved"

    def test_workload_size_mismatch_skipped(self):
        base = [BenchSample("a", 1.0, 0.0, 10_000)]
        quick = [BenchSample("a", 9.9, 0.0, 2_000)]
        (entry,) = diff_samples(quick, base)
        assert entry.verdict == "skipped"
        assert "workload size" in entry.detail

    def test_missing_reference_skipped(self):
        (entry,) = diff_samples([BenchSample("new", 1.0)], [])
        assert entry.verdict == "skipped"

    def test_custom_threshold(self):
        base = [BenchSample("a", 1.0, 0.0, 10)]
        slow = [BenchSample("a", 1.1, 0.0, 10)]
        (entry,) = diff_samples(slow, base, rel_threshold=0.05)
        assert entry.verdict == "regression"


class TestBaselineSamples:
    def test_kernels_schema(self):
        report = {"results": [{
            "op": "monte_carlo", "n": 2000,
            "wall_s": {"scalar": 0.5, "kernel": 0.01},
            "wall_se": {"scalar": 0.02},
        }]}
        samples = {sample.name: sample
                   for sample in baseline_samples(report)}
        assert samples["monte_carlo.scalar"].value == 0.5
        assert samples["monte_carlo.scalar"].se == 0.02
        assert samples["monte_carlo.kernel"].se == 0.0
        assert samples["monte_carlo.kernel"].n == 2000

    def test_yield_schema(self):
        report = {"results": [{
            "estimator": "importance", "wall_s": 3.5, "draws": 64,
        }]}
        (sample,) = baseline_samples(report)
        assert sample.name == "importance.wall"
        assert sample.value == 3.5
        assert sample.n == 64


class TestDiffLatest:
    def test_against_baseline(self, tmp_path):
        history = tmp_path / "history.jsonl"
        record = build_record(
            "kernels", node="90nm", quick=True,
            config={},
            samples=[BenchSample("monte_carlo.scalar", 0.9, 0.0,
                                 2000)])
        append_record(record, history)
        baseline = tmp_path / "BENCH_kernels.json"
        baseline.write_text(json.dumps({"results": [{
            "op": "monte_carlo", "n": 2000,
            "wall_s": {"scalar": 0.5},
        }]}))
        report = diff_latest("kernels", history=history,
                             baseline=baseline)
        assert report is not None
        assert len(report.regressions) == 1
        assert "BENCH_kernels.json" in report.reference_label
        assert "regression" in report.format()

    def test_against_previous(self, tmp_path):
        history = tmp_path / "history.jsonl"
        append_record(_record(values=(1.0,)), history)
        append_record(_record(values=(1.0,)), history)
        report = diff_latest("kernels", history=history,
                             against="previous")
        assert report is not None
        assert report.regressions == []
        assert "previous record" in report.reference_label

    def test_missing_sides_return_none(self, tmp_path):
        history = tmp_path / "history.jsonl"
        assert diff_latest("kernels", history=history) is None
        append_record(_record(), history)
        assert diff_latest("kernels", history=history,
                           against="previous") is None
        assert diff_latest(
            "kernels", history=history,
            baseline=tmp_path / "absent.json") is None
