"""The deterministic parallel executor."""

import numpy as np
import pytest

from repro import runtime
from repro.runtime import (
    TaskError,
    parallel_map,
    resolve_workers,
    spawn_generators,
    spawn_seed_sequences,
)


def _square(value):
    return value * value


def _fail_on_three(value):
    if value == 3:
        raise ValueError("three is right out")
    return value


class TestResolveWorkers:
    def test_default_is_serial(self):
        assert resolve_workers() == 1

    def test_explicit_wins(self):
        assert resolve_workers(5) == 5

    def test_explicit_must_be_positive(self):
        with pytest.raises(ValueError):
            resolve_workers(0)

    def test_configure_override(self):
        runtime.configure(workers=3)
        assert resolve_workers() == 3
        assert resolve_workers(2) == 2

    def test_configure_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            runtime.configure(workers=0)

    def test_env_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "4")
        assert resolve_workers() == 4

    def test_env_must_be_integer(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "many")
        with pytest.raises(ValueError):
            resolve_workers()

    def test_env_must_be_positive(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "0")
        with pytest.raises(ValueError):
            resolve_workers()

    def test_configure_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "4")
        runtime.configure(workers=2)
        assert resolve_workers() == 2


class TestParallelMap:
    def test_serial_matches_builtin_map(self):
        items = list(range(10))
        assert parallel_map(_square, items, workers=1) \
            == [_square(x) for x in items]

    def test_parallel_matches_serial_in_order(self):
        items = list(range(17))
        serial = parallel_map(_square, items, workers=1)
        assert parallel_map(_square, items, workers=4) == serial
        assert parallel_map(_square, items, workers=4, chunk=3) \
            == serial

    def test_empty_items(self):
        assert parallel_map(_square, [], workers=4) == []

    def test_single_item_stays_serial(self):
        assert parallel_map(_square, [7], workers=4) == [49]

    def test_chunk_validation(self):
        with pytest.raises(ValueError):
            parallel_map(_square, [1, 2], workers=2, chunk=0)

    def test_worker_exception_propagates_with_context(self):
        """A failing item aborts the workload as a TaskError that
        names the item, with the original exception summarized."""
        with pytest.raises(TaskError) as info:
            parallel_map(_fail_on_three, [1, 2, 3, 4], workers=2)
        assert info.value.item_index == 2
        assert "ValueError" in str(info.value)

    def test_env_serial_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "1")
        items = list(range(6))
        assert parallel_map(_square, items) \
            == [_square(x) for x in items]


class TestSeedSpawning:
    def test_streams_are_deterministic(self):
        a = [np.random.default_rng(seq).normal()
             for seq in spawn_seed_sequences(11, 4)]
        b = [np.random.default_rng(seq).normal()
             for seq in spawn_seed_sequences(11, 4)]
        assert a == b

    def test_streams_are_independent(self):
        draws = [gen.normal() for gen in spawn_generators(11, 8)]
        assert len(set(draws)) == len(draws)

    def test_prefix_stability(self):
        """The first k children never depend on the total count —
        what lets a caller grow ``samples`` without reshuffling."""
        short = spawn_seed_sequences(5, 2)
        long_ = spawn_seed_sequences(5, 6)
        for a, b in zip(short, long_):
            assert np.random.default_rng(a).normal() \
                == np.random.default_rng(b).normal()

    def test_count_validation(self):
        with pytest.raises(ValueError):
            spawn_seed_sequences(1, -1)
