"""Run manifests: provenance records and the environment block."""

import json

import numpy

from repro.runtime.manifest import (
    build_manifest,
    environment_info,
    manifest_path_for,
    utc_timestamp,
    write_manifest,
)
from repro.runtime.metrics import MetricsRegistry


class TestEnvironmentInfo:
    def test_numpy_version_recorded(self):
        info = environment_info()
        assert info["numpy"] == numpy.__version__

    def test_blas_block_shape_when_present(self):
        info = environment_info()
        if "blas" in info:
            assert set(info["blas"]) == {"name", "version"}
            assert info["blas"]["name"]

    def test_json_serializable(self):
        json.dumps(environment_info())


class TestBuildManifest:
    def _manifest(self, config=None):
        return build_manifest("bench", config or {"seed": 2010},
                              workers=1, cache_enabled=True,
                              wall_seconds=1.5,
                              started_at=utc_timestamp(),
                              registry=MetricsRegistry())

    def test_environment_block_included(self):
        manifest = self._manifest()
        assert manifest["environment"]["numpy"] == numpy.__version__

    def test_seed_surfaced_from_config(self):
        assert self._manifest()["seed"] == 2010

    def test_config_hash_stable(self):
        a = self._manifest({"node": "90nm", "samples": 100})
        b = self._manifest({"samples": 100, "node": "90nm"})
        assert a["config_hash"] == b["config_hash"]

    def test_round_trip_through_disk(self, tmp_path):
        manifest = self._manifest()
        path = write_manifest(tmp_path / "manifest.json", manifest)
        assert json.loads(path.read_text()) == manifest

    def test_manifest_path_sits_next_to_trace(self, tmp_path):
        trace = tmp_path / "run" / "trace.jsonl"
        assert manifest_path_for(trace).parent == trace.parent
