"""Serial == parallel, cold == warm: the determinism contract.

Every parallelized workload must produce *identical* results for any
worker count (Monte-Carlo bit-equal via spawned seed sequences), and a
warm persistent cache must change nothing but the wall time.
"""

import pytest

from repro.experiments import scaling, table2
from repro.noc.link import LinkDesigner
from repro.noc.testcases import dual_vopd
from repro.noc.width_exploration import explore_widths
from repro.runtime import STATS
from repro.signoff.extraction import extract_buffered_line
from repro.signoff.variation import monte_carlo_line_delay
from repro.tech import DesignStyle
from repro.units import mm, ps


class TestMonteCarloEquivalence:
    @pytest.fixture(scope="class")
    def line(self, tech90, swss90):
        return extract_buffered_line(tech90, swss90, mm(2), 2, 24.0)

    def test_parallel_reproduces_serial_stream(self, line):
        serial = monte_carlo_line_delay(line, ps(100), samples=6,
                                        seed=77, workers=1)
        parallel = monte_carlo_line_delay(line, ps(100), samples=6,
                                          seed=77, workers=4)
        assert parallel.samples == serial.samples
        assert parallel.nominal_delay == serial.nominal_delay

    def test_chunking_does_not_reorder_streams(self, line):
        """Any chunk/worker split walks the same per-sample streams."""
        serial = monte_carlo_line_delay(line, ps(100), samples=5,
                                        seed=13, workers=1)
        parallel = monte_carlo_line_delay(line, ps(100), samples=5,
                                          seed=13, workers=3)
        assert parallel.samples == serial.samples

    def test_different_seeds_still_differ(self, line):
        a = monte_carlo_line_delay(line, ps(100), samples=4, seed=1,
                                   workers=2)
        b = monte_carlo_line_delay(line, ps(100), samples=4, seed=2,
                                   workers=2)
        assert a.samples != b.samples


class TestWidthExplorationEquivalence:
    def test_parallel_reproduces_serial_points(self, suite90):
        spec = dual_vopd(suite90.tech)
        serial = explore_widths(spec, suite90.proposed, suite90.tech,
                                widths=(64, 128), workers=1)
        parallel = explore_widths(spec, suite90.proposed, suite90.tech,
                                  widths=(64, 128), workers=2)
        assert parallel == serial
        assert parallel.best().width == serial.best().width


class TestScalingEquivalence:
    def test_parallel_reproduces_serial_rows(self):
        serial = scaling.run(nodes=("90nm", "65nm"), workers=1)
        parallel = scaling.run(nodes=("90nm", "65nm"), workers=2)
        assert parallel == serial


class TestTable2Equivalence:
    def test_parallel_reproduces_serial_cells(self):
        kwargs = dict(nodes=("90nm",), lengths=(mm(1), mm(3)),
                      styles=(DesignStyle.SWSS,))
        serial = table2.run(workers=1, **kwargs)
        parallel = table2.run(workers=2, **kwargs)
        # Runtime fields are wall-clock measurements and legitimately
        # differ; every physical quantity must match exactly.
        for row_s, row_p in zip(serial.rows, parallel.rows):
            assert row_p.node == row_s.node
            assert row_p.style == row_s.style
            assert row_p.length == row_s.length
            assert row_p.num_repeaters == row_s.num_repeaters
            assert row_p.repeater_size == row_s.repeater_size
            assert row_p.golden_delay == row_s.golden_delay
            assert row_p.errors == row_s.errors


class TestWorkerStatsEquivalence:
    """--stats totals are worker-count independent: counters recorded
    inside pool workers merge back into the parent registry."""

    def _counters_for(self, workers, tech90, swss90, tmp_path,
                      monkeypatch):
        from repro import runtime
        monkeypatch.setenv("REPRO_CACHE_DIR",
                           str(tmp_path / f"cache-w{workers}"))
        runtime.reset_configuration()
        STATS.reset()
        line = extract_buffered_line(tech90, swss90, mm(2), 2, 24.0)
        monte_carlo_line_delay(line, ps(100), samples=6, seed=77,
                               workers=workers)
        counters = dict(STATS.counters)
        # The fallback marker only appears where fork pools are
        # unsupported; it is an environment fact, not a workload one.
        counters.pop("parallel.pool_unavailable", None)
        return counters

    def test_counters_match_across_worker_counts(
            self, tech90, swss90, tmp_path, monkeypatch):
        serial = self._counters_for(1, tech90, swss90, tmp_path,
                                    monkeypatch)
        parallel = self._counters_for(2, tech90, swss90, tmp_path,
                                      monkeypatch)
        # Nominal delay is stream 0 of the same task, so 6 draws
        # record 7 evaluations.
        assert serial.get("variation.samples") == 7
        assert parallel == serial


class TestWarmCacheEquivalence:
    def test_second_designer_hits_disk_and_agrees(self, suite90):
        """A fresh designer (fresh process, conceptually) warm-starts
        from disk: hit rate > 0 and bit-identical designs."""
        lengths = (mm(1), mm(2), mm(3))
        cold = LinkDesigner(suite90.proposed, suite90.tech, 64)
        cold_designs = [cold.design(length) for length in lengths]
        cold_max = cold.max_length()

        STATS.reset()
        warm = LinkDesigner(suite90.proposed, suite90.tech, 64)
        warm_designs = [warm.design(length) for length in lengths]
        assert warm.max_length() == cold_max
        assert warm_designs == cold_designs
        assert STATS.counters.get("cache.hit", 0) > 0
        hit_rate = STATS.cache_hit_rate()
        assert hit_rate is not None and hit_rate > 0
