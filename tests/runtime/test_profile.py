"""Span-attributed profiling: path rollups, flamegraphs, tracemalloc.

The flamegraph invariant the docs promise: for a *serial* trace the
total collapsed-stack weight equals the root span's duration (self
time telescopes — every child's duration is subtracted exactly once
from its parent), up to integer-microsecond rounding per path.
"""

import time
import tracemalloc

import pytest

from repro.runtime import (
    SpanCollector,
    TRACER,
    build_profile,
    collapse_stacks,
    span,
    write_flamegraph,
)
from repro.runtime.profile import MemoryProfiler

#: A synthetic serial tree: root(10s) -> a(4s) -> leaf(1s), b(2s).
_TREE = [
    {"ph": "B", "name": "root", "span": 1, "parent": None, "ts": 0.0},
    {"ph": "B", "name": "a", "span": 2, "parent": 1, "ts": 1.0},
    {"ph": "B", "name": "leaf", "span": 3, "parent": 2, "ts": 2.0},
    {"ph": "E", "name": "leaf", "span": 3, "ts": 3.0},
    {"ph": "E", "name": "a", "span": 2, "ts": 5.0},
    {"ph": "B", "name": "b", "span": 4, "parent": 1, "ts": 6.0},
    {"ph": "E", "name": "b", "span": 4, "ts": 8.0},
    {"ph": "E", "name": "root", "span": 1, "ts": 10.0},
]


class TestBuildProfile:
    def test_self_and_total_per_path(self):
        report = build_profile(_TREE)
        by_path = {";".join(entry.path): entry
                   for entry in report.paths.values()}
        assert by_path["root"].total == pytest.approx(10.0)
        assert by_path["root"].self_seconds == pytest.approx(4.0)
        assert by_path["root;a"].total == pytest.approx(4.0)
        assert by_path["root;a"].self_seconds == pytest.approx(3.0)
        assert by_path["root;a;leaf"].self_seconds \
            == pytest.approx(1.0)
        assert by_path["root;b"].self_seconds == pytest.approx(2.0)
        # Self time telescopes to the root duration.
        assert report.total_self == pytest.approx(10.0)

    def test_same_path_accumulates_calls(self):
        events = []
        ts = 0.0
        for index in range(3):
            events.append({"ph": "B", "name": "op", "span": index,
                           "parent": None, "ts": ts})
            events.append({"ph": "E", "name": "op", "span": index,
                           "ts": ts + 1.0})
            ts += 2.0
        report = build_profile(events)
        (entry,) = report.paths.values()
        assert entry.calls == 3
        assert entry.total == pytest.approx(3.0)

    def test_structural_problems_are_skipped(self):
        events = [
            {"ph": "B", "name": "unclosed", "span": 1, "parent": None,
             "ts": 0.0},
            {"ph": "E", "name": "phantom", "span": 9, "ts": 1.0},
        ]
        assert build_profile(events).paths == {}

    def test_format_table(self):
        text = build_profile(_TREE).format()
        assert "-- profile (time) --" in text
        assert "root;a;leaf" in text
        assert "4 span paths" in text
        memory_text = build_profile(_TREE).format(memory=True)
        assert "-- profile (all) --" in memory_text
        assert "net KiB" in memory_text


class TestCollapseStacks:
    def test_serial_weights_telescope_to_root(self):
        lines = collapse_stacks(_TREE)
        total = sum(int(line.rsplit(" ", 1)[1]) for line in lines)
        root_us = 10.0 * 1e6
        assert abs(total - root_us) <= 0.01 * root_us

    def test_frame_sanitization(self):
        events = [
            {"ph": "B", "name": "has space;semi", "span": 1,
             "parent": None, "ts": 0.0},
            {"ph": "E", "name": "has space;semi", "span": 1,
             "ts": 1.0},
        ]
        (line,) = collapse_stacks(events)
        assert line == "has_space_semi 1000000"

    def test_zero_weight_paths_dropped(self):
        events = [
            {"ph": "B", "name": "instant", "span": 1, "parent": None,
             "ts": 0.0},
            {"ph": "E", "name": "instant", "span": 1, "ts": 0.0},
        ]
        assert collapse_stacks(events) == []

    def test_write_flamegraph(self, tmp_path):
        out = tmp_path / "flame.txt"
        count = write_flamegraph(_TREE, out)
        lines = out.read_text().splitlines()
        assert len(lines) == count == 4
        assert all(" " in line for line in lines)


class TestTracerIntegration:
    def test_live_trace_profile(self):
        collector = SpanCollector()
        TRACER.add_sink(collector)
        with span("outer"):
            with span("inner"):
                time.sleep(0.01)
        TRACER.remove_sink(collector)
        report = build_profile(collector.events)
        paths = {entry.path for entry in report.paths.values()}
        assert ("outer",) in paths
        assert ("outer", "inner") in paths

    def test_profiler_makes_spans_live_without_sinks(self):
        """--profile memory alone (no --trace) must still see spans."""
        assert not TRACER.enabled
        tracemalloc.start()
        try:
            TRACER.set_profiler(MemoryProfiler())
            collector = SpanCollector()
            TRACER.add_sink(collector)
            with span("alloc"):
                block = bytearray(256 * 1024)
            del block
            TRACER.remove_sink(collector)
            end = next(e for e in collector.events
                       if e["ph"] == "E" and e["name"] == "alloc")
            assert end["args"]["mem_peak_bytes"] >= 256 * 1024
        finally:
            TRACER.set_profiler(None)
            tracemalloc.stop()

    def test_child_peak_propagates_to_parent(self):
        tracemalloc.start()
        try:
            TRACER.set_profiler(MemoryProfiler())
            collector = SpanCollector()
            TRACER.add_sink(collector)
            with span("parent"):
                with span("child"):
                    block = bytearray(512 * 1024)
                    del block
            TRACER.remove_sink(collector)
            ends = {e["name"]: e for e in collector.events
                    if e["ph"] == "E"}
            child_peak = ends["child"]["args"]["mem_peak_bytes"]
            parent_peak = ends["parent"]["args"]["mem_peak_bytes"]
            assert child_peak >= 512 * 1024
            assert parent_peak >= child_peak
        finally:
            TRACER.set_profiler(None)
            tracemalloc.stop()

    def test_profiler_without_tracing_is_inert(self):
        TRACER.set_profiler(MemoryProfiler())
        try:
            with span("untracked"):
                pass
        finally:
            TRACER.set_profiler(None)
