"""Liberty-driven calibration: the paper's primary data path.

Characterize -> export Liberty text -> reparse -> calibrate, and check
the coefficients match a direct calibration on the in-memory data.
"""

import pytest

from repro.characterization import (
    RepeaterKind,
    characterize_library,
    liberty_to_library,
    library_to_liberty,
)
from repro.models.calibration import calibrate_from_library
from repro.tech import liberty


@pytest.fixture(scope="module")
def library(tech90, small_grid):
    return characterize_library(tech90, RepeaterKind.INVERTER,
                                small_grid)


@pytest.fixture(scope="module")
def reparsed(library, tech90):
    text = liberty.dumps(library_to_liberty(library))
    return liberty_to_library(liberty.loads(text), tech90)


class TestRoundtrip:
    def test_sizes_preserved(self, library, reparsed):
        assert reparsed.sizes() == library.sizes()

    def test_input_caps_preserved(self, library, reparsed):
        for size in library.sizes():
            assert reparsed.cell(size).input_capacitance == \
                pytest.approx(library.cell(size).input_capacitance,
                              rel=1e-4)

    def test_state_leakage_preserved(self, library, reparsed):
        for size in library.sizes():
            original = library.cell(size)
            restored = reparsed.cell(size)
            assert restored.leakage_output_high == pytest.approx(
                original.leakage_output_high, rel=1e-4)
            assert restored.leakage_output_low == pytest.approx(
                original.leakage_output_low, rel=1e-4)

    def test_delay_tables_preserved(self, library, reparsed):
        for size in library.sizes():
            original = library.cell(size).rise.delay
            restored = reparsed.cell(size).rise.delay
            for got_row, exp_row in zip(restored.values,
                                        original.values):
                for got, expected in zip(got_row, exp_row):
                    assert got == pytest.approx(expected, rel=1e-4)


class TestCalibrationEquivalence:
    def test_coefficients_match_direct_calibration(self, library,
                                                   reparsed):
        direct = calibrate_from_library(library)
        via_liberty = calibrate_from_library(reparsed)
        assert via_liberty.rise.intrinsic == pytest.approx(
            direct.rise.intrinsic, rel=1e-3)
        assert via_liberty.rise.drive == pytest.approx(
            direct.rise.drive, rel=1e-3)
        assert via_liberty.fall.slew == pytest.approx(
            direct.fall.slew, rel=1e-3)
        # The leakage intercept is essentially zero, so compare the
        # slope relatively and the intercept on the scale of a typical
        # cell's leakage (slope x 1 um of width).
        scale = abs(direct.leakage_n[1]) * 1e-6
        assert via_liberty.leakage_n[1] == pytest.approx(
            direct.leakage_n[1], rel=1e-3)
        assert via_liberty.leakage_n[0] == pytest.approx(
            direct.leakage_n[0], abs=1e-3 * scale)
        assert via_liberty.area == pytest.approx(direct.area, rel=1e-3)


class TestErrors:
    def test_empty_library_rejected(self, tech90):
        root = liberty.new_library("empty")
        with pytest.raises(ValueError, match="no INVD"):
            liberty_to_library(root, tech90)

    def test_buffer_prefix_filtering(self, library, tech90):
        text = liberty.dumps(library_to_liberty(library))
        with pytest.raises(ValueError, match="no BUFD"):
            liberty_to_library(liberty.loads(text), tech90,
                               RepeaterKind.BUFFER)
