"""Repeater cell construction."""

import pytest

from repro.characterization.cells import (
    BUFFER_STAGE_RATIO,
    RepeaterCell,
    RepeaterKind,
)
from repro.units import fF, ps


class TestGeometry:
    def test_inverter_widths(self, tech90):
        cell = RepeaterCell(tech90, RepeaterKind.INVERTER, 8.0)
        wn, wp = cell.output_stage_widths()
        assert wn == pytest.approx(8 * tech90.min_nmos_width)
        assert wp == pytest.approx(wn * tech90.pn_ratio)
        assert cell.input_stage_widths() == cell.output_stage_widths()

    def test_buffer_first_stage_smaller(self, tech90):
        cell = RepeaterCell(tech90, RepeaterKind.BUFFER, 16.0)
        wn_in, _ = cell.input_stage_widths()
        wn_out, _ = cell.output_stage_widths()
        assert wn_in == pytest.approx(wn_out / BUFFER_STAGE_RATIO)

    def test_buffer_first_stage_floors_at_one(self, tech90):
        cell = RepeaterCell(tech90, RepeaterKind.BUFFER, 2.0)
        wn_in, _ = cell.input_stage_widths()
        assert wn_in == pytest.approx(tech90.min_nmos_width)

    def test_size_validation(self, tech90):
        with pytest.raises(ValueError):
            RepeaterCell(tech90, RepeaterKind.INVERTER, 0.0)

    def test_total_device_width(self, tech90):
        inverter = RepeaterCell(tech90, RepeaterKind.INVERTER, 8.0)
        buffer_ = RepeaterCell(tech90, RepeaterKind.BUFFER, 8.0)
        assert buffer_.total_device_width() > \
            inverter.total_device_width()


class TestElectrical:
    def test_input_cap_proportional_to_size(self, tech90):
        small = RepeaterCell(tech90, RepeaterKind.INVERTER, 4.0)
        large = RepeaterCell(tech90, RepeaterKind.INVERTER, 16.0)
        assert large.input_capacitance() == pytest.approx(
            4 * small.input_capacitance())

    def test_buffer_input_cap_smaller_than_inverter(self, tech90):
        inverter = RepeaterCell(tech90, RepeaterKind.INVERTER, 16.0)
        buffer_ = RepeaterCell(tech90, RepeaterKind.BUFFER, 16.0)
        assert buffer_.input_capacitance() < inverter.input_capacitance()

    def test_leakage_power_positive_and_scales(self, tech90):
        small = RepeaterCell(tech90, RepeaterKind.INVERTER, 4.0)
        large = RepeaterCell(tech90, RepeaterKind.INVERTER, 16.0)
        assert small.leakage_power() > 0
        assert large.leakage_power() == pytest.approx(
            4 * small.leakage_power(), rel=1e-6)


class TestLayoutArea:
    def test_area_grows_with_size(self, tech90):
        areas = [RepeaterCell(tech90, RepeaterKind.INVERTER,
                              size).layout_area()
                 for size in (4.0, 16.0, 64.0)]
        assert areas[0] < areas[1] < areas[2]

    def test_area_roughly_linear_at_large_sizes(self, tech90):
        a32 = RepeaterCell(tech90, RepeaterKind.INVERTER,
                           32.0).layout_area()
        a64 = RepeaterCell(tech90, RepeaterKind.INVERTER,
                           64.0).layout_area()
        assert a64 / a32 == pytest.approx(2.0, rel=0.2)

    def test_minimum_one_finger(self, tech90):
        # Even a tiny cell occupies one finger plus pitch overhead.
        area = RepeaterCell(tech90, RepeaterKind.INVERTER,
                            1.0).layout_area()
        minimum = tech90.row_height * 2 * tech90.contact_pitch
        assert area >= minimum


class TestTestCircuits:
    def test_inverter_test_circuit_shape(self, tech90):
        cell = RepeaterCell(tech90, RepeaterKind.INVERTER, 8.0)
        circuit, stop_time = cell.build_test_circuit(
            ps(100), fF(20), rising_input=True)
        assert len(circuit.mosfets) == 2
        assert stop_time > ps(100)
        assert circuit.has_node("out")

    def test_buffer_test_circuit_has_two_stages(self, tech90):
        cell = RepeaterCell(tech90, RepeaterKind.BUFFER, 8.0)
        circuit, _ = cell.build_test_circuit(ps(100), fF(20), True)
        assert len(circuit.mosfets) == 4
        assert circuit.has_node("mid")

    def test_test_circuit_validation(self, tech90):
        cell = RepeaterCell(tech90, RepeaterKind.INVERTER, 8.0)
        with pytest.raises(ValueError):
            cell.build_test_circuit(0.0, fF(1), True)
        with pytest.raises(ValueError):
            cell.build_test_circuit(ps(10), -fF(1), True)

    def test_leakage_circuit(self, tech90):
        cell = RepeaterCell(tech90, RepeaterKind.INVERTER, 8.0)
        circuit = cell.build_leakage_circuit(input_high=True)
        assert len(circuit.voltage_sources) == 2
        assert len(circuit.mosfets) == 2
