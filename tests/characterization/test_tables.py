"""NLDM lookup tables."""

import pytest
from hypothesis import given, strategies as st

from repro.characterization.tables import NLDMTable


def make_table():
    # values[i][j] = 10*i + j for easy checking.
    return NLDMTable.from_arrays(
        [1.0, 2.0, 4.0],
        [10.0, 20.0],
        [[0.0, 1.0], [10.0, 11.0], [20.0, 21.0]],
    )


class TestConstruction:
    def test_shape_validation(self):
        with pytest.raises(ValueError):
            NLDMTable.from_arrays([1.0], [1.0, 2.0], [[1.0]])
        with pytest.raises(ValueError):
            NLDMTable.from_arrays([], [1.0], [])

    def test_axes_must_increase(self):
        with pytest.raises(ValueError, match="increasing"):
            NLDMTable.from_arrays([2.0, 1.0], [1.0], [[1.0], [2.0]])
        with pytest.raises(ValueError, match="increasing"):
            NLDMTable.from_arrays([1.0], [3.0, 3.0], [[1.0, 2.0]])

    def test_row_and_column_access(self):
        table = make_table()
        assert table.row(1) == [10.0, 11.0]
        assert table.column(1) == [1.0, 11.0, 21.0]


class TestLookup:
    def test_exact_grid_points(self):
        table = make_table()
        assert table.lookup(2.0, 20.0) == pytest.approx(11.0)
        assert table.lookup(1.0, 10.0) == pytest.approx(0.0)

    def test_interpolation_between_points(self):
        table = make_table()
        assert table.lookup(1.5, 10.0) == pytest.approx(5.0)
        assert table.lookup(1.0, 15.0) == pytest.approx(0.5)
        assert table.lookup(3.0, 15.0) == pytest.approx(15.5)

    def test_extrapolation_beyond_edges(self):
        table = make_table()
        # Linear continuation of the last segment.
        assert table.lookup(8.0, 10.0) == pytest.approx(40.0)
        assert table.lookup(1.0, 30.0) == pytest.approx(2.0)

    def test_single_row_table(self):
        table = NLDMTable.from_arrays([1.0], [10.0, 20.0],
                                      [[5.0, 7.0]])
        assert table.lookup(99.0, 15.0) == pytest.approx(6.0)

    def test_single_cell_table(self):
        table = NLDMTable.from_arrays([1.0], [10.0], [[5.0]])
        assert table.lookup(3.0, 30.0) == 5.0

    @given(st.floats(min_value=1.0, max_value=4.0),
           st.floats(min_value=10.0, max_value=20.0))
    def test_interpolation_bounded_by_corners(self, x, y):
        table = make_table()
        value = table.lookup(x, y)
        flat = [v for row in table.values for v in row]
        assert min(flat) - 1e-9 <= value <= max(flat) + 1e-9

    @given(st.floats(min_value=1.0, max_value=4.0))
    def test_monotonic_in_slew_axis(self, x):
        # This particular table grows along index_1.
        table = make_table()
        assert table.lookup(x, 15.0) <= table.lookup(
            min(x + 0.5, 4.0), 15.0) + 1e-9


class TestLookupModes:
    """The documented clamp-vs-extrapolate edge policy."""

    def test_exact_grid_hit_agrees_in_both_modes(self):
        table = make_table()
        for slew, load in ((1.0, 10.0), (2.0, 20.0), (4.0, 10.0)):
            extrapolated = table.lookup(slew, load)
            clamped = table.lookup(slew, load, mode="clamp")
            assert extrapolated == clamped
            i = list(table.index_1).index(slew)
            j = list(table.index_2).index(load)
            assert clamped == table.values[i][j]

    def test_axis_endpoints_agree_in_both_modes(self):
        table = make_table()
        for slew, load in ((1.0, 15.0), (4.0, 15.0),
                           (1.5, 10.0), (1.5, 20.0)):
            assert table.lookup(slew, load) == pytest.approx(
                table.lookup(slew, load, mode="clamp"))

    def test_clamp_pins_to_boundary_value(self):
        table = make_table()
        # Beyond the slew axis: clamp serves the edge row.
        assert table.lookup(8.0, 10.0, mode="clamp") \
            == pytest.approx(20.0)
        assert table.lookup(0.1, 10.0, mode="clamp") \
            == pytest.approx(0.0)
        # Beyond the load axis: clamp serves the edge column.
        assert table.lookup(1.0, 30.0, mode="clamp") \
            == pytest.approx(1.0)
        assert table.lookup(1.0, 1.0, mode="clamp") \
            == pytest.approx(0.0)

    def test_extrapolate_continues_edge_trend(self):
        table = make_table()
        assert table.lookup(8.0, 10.0) == pytest.approx(40.0)
        assert table.lookup(0.0, 10.0) == pytest.approx(-10.0)
        assert table.lookup(1.0, 40.0) == pytest.approx(3.0)

    def test_single_row_table_modes(self):
        table = NLDMTable.from_arrays([1.0], [10.0, 20.0],
                                      [[5.0, 7.0]])
        # One slew point: the slew query collapses in both modes;
        # the load axis still interpolates/extrapolates/clamps.
        assert table.lookup(99.0, 15.0) == pytest.approx(6.0)
        assert table.lookup(99.0, 15.0, mode="clamp") \
            == pytest.approx(6.0)
        assert table.lookup(1.0, 30.0) == pytest.approx(9.0)
        assert table.lookup(1.0, 30.0, mode="clamp") \
            == pytest.approx(7.0)

    def test_single_column_table_modes(self):
        table = NLDMTable.from_arrays([1.0, 2.0], [10.0],
                                      [[5.0], [9.0]])
        assert table.lookup(1.5, 99.0) == pytest.approx(7.0)
        assert table.lookup(3.0, 10.0) == pytest.approx(13.0)
        assert table.lookup(3.0, 10.0, mode="clamp") \
            == pytest.approx(9.0)
        assert table.lookup(0.0, 10.0, mode="clamp") \
            == pytest.approx(5.0)

    def test_beyond_both_axes(self):
        table = make_table()
        # Extrapolation continues both trends: corner cell slope 10/2
        # per slew unit and 1/10 per load unit from (4, 20) = 21.
        assert table.lookup(6.0, 30.0) == pytest.approx(32.0)
        # Clamp pins both coordinates to the far corner.
        assert table.lookup(6.0, 30.0, mode="clamp") \
            == pytest.approx(21.0)
        assert table.lookup(0.0, 0.0, mode="clamp") \
            == pytest.approx(0.0)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="mode"):
            make_table().lookup(1.0, 10.0, mode="wrap")
