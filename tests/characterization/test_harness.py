"""Characterization harness and Liberty export."""

import pytest

from repro.characterization import (
    CharacterizationGrid,
    RepeaterKind,
    characterize_library,
    library_to_liberty,
)
from repro.characterization.harness import (
    describe_library,
    liberty_to_tables,
)
from repro.tech import liberty
from repro.units import ps, to_ps


class TestGrid:
    def test_default_grid_nonempty(self):
        grid = CharacterizationGrid()
        assert len(grid.sizes) >= 3
        assert len(grid.input_slews) >= 3
        assert len(grid.load_factors) >= 3

    def test_empty_axes_rejected(self):
        with pytest.raises(ValueError):
            CharacterizationGrid(sizes=())

    def test_loads_scale_with_cell(self, tech90, small_grid):
        from repro.characterization.cells import RepeaterCell
        small = RepeaterCell(tech90, RepeaterKind.INVERTER, 4.0)
        large = RepeaterCell(tech90, RepeaterKind.INVERTER, 16.0)
        assert small_grid.loads_for(large)[0] == pytest.approx(
            4 * small_grid.loads_for(small)[0])


class TestCellCharacterization:
    def test_tables_have_grid_shape(self, cell_char90, small_grid):
        table = cell_char90.rise.delay
        assert len(table.index_1) == len(small_grid.input_slews)
        assert len(table.index_2) == len(small_grid.load_factors)

    def test_delay_increases_with_load(self, cell_char90):
        for slew_index in range(len(cell_char90.rise.delay.index_1)):
            row = cell_char90.rise.delay.row(slew_index)
            assert all(b > a for a, b in zip(row, row[1:]))

    def test_delay_increases_with_slew(self, cell_char90):
        for load_index in range(len(cell_char90.rise.delay.index_2)):
            column = cell_char90.rise.delay.column(load_index)
            assert all(b > a for a, b in zip(column, column[1:]))

    def test_output_slew_increases_with_load(self, cell_char90):
        row = cell_char90.fall.output_slew.row(0)
        assert all(b > a for a, b in zip(row, row[1:]))

    def test_leakage_states_recorded(self, cell_char90):
        assert cell_char90.leakage_output_high > 0
        assert cell_char90.leakage_output_low > 0
        assert cell_char90.leakage_power == pytest.approx(
            0.5 * (cell_char90.leakage_output_high
                   + cell_char90.leakage_output_low))

    def test_rise_and_fall_differ(self, cell_char90):
        # The pMOS is weaker per width; rise and fall delays are not
        # identical.
        rise = cell_char90.rise.delay.lookup(ps(160), 100e-15)
        fall = cell_char90.fall.delay.lookup(ps(160), 100e-15)
        assert rise != pytest.approx(fall, rel=0.01)


class TestLibrary:
    @pytest.fixture(scope="class")
    def library(self, tech90, small_grid):
        return characterize_library(tech90, RepeaterKind.INVERTER,
                                    small_grid)

    def test_all_sizes_characterized(self, library, small_grid):
        assert library.sizes() == tuple(sorted(small_grid.sizes))

    def test_cell_lookup(self, library):
        assert library.cell(8.0).cell.size == 8.0
        with pytest.raises(KeyError, match="not characterized"):
            library.cell(5.0)

    def test_describe(self, library):
        text = describe_library(library)
        assert "90nm" in text
        assert "x8" in text

    def test_liberty_roundtrip(self, library):
        root = library_to_liberty(library)
        text = liberty.dumps(root)
        parsed = liberty.loads(text)
        tables = liberty_to_tables(parsed, "INVD8")
        original = library.cell(8.0).rise.delay
        restored = tables["cell_rise"]
        assert len(restored.index_1) == len(original.index_1)
        for got, expected in zip(restored.index_1, original.index_1):
            assert to_ps(got) == pytest.approx(to_ps(expected),
                                               rel=1e-4)
        for got_row, exp_row in zip(restored.values, original.values):
            for got, expected in zip(got_row, exp_row):
                assert got == pytest.approx(expected, rel=1e-4)

    def test_liberty_has_cell_attributes(self, library):
        root = library_to_liberty(library)
        cell = root.require("cell", "INVD32")
        assert cell.attributes["area"] > 0
        assert cell.attributes["cell_leakage_power"] > 0
        pin = cell.require("pin", "A")
        assert pin.attributes["capacitance"] > 0
