"""Unit-conversion helpers."""

import math

import pytest

from hypothesis import given, strategies as st

from repro import units


def test_time_conversions_roundtrip():
    assert units.to_ps(units.ps(300.0)) == 300.0
    assert units.to_ns(units.ns(1.5)) == 1.5
    assert units.ps(1000.0) == units.ns(1.0)


def test_length_conversions():
    assert units.um(1.0) == 1e-6
    assert units.nm(90.0) == pytest.approx(90e-9, rel=1e-12)
    assert units.mm(15.0) == 0.015
    assert units.to_um(units.um(0.4)) == 0.4
    assert units.to_mm(units.mm(5.0)) == 5.0


def test_capacitance_conversions():
    assert units.fF(1000.0) == units.pF(1.0)
    assert units.to_fF(units.fF(12.5)) == 12.5


def test_frequency_and_power():
    assert units.ghz(1.5) == 1.5e9
    assert units.mhz(1500.0) == units.ghz(1.5)
    assert units.mw(1.0) == 1e-3
    assert units.to_mw(units.mw(2.5)) == 2.5
    assert units.to_uw(units.uw(7.0)) == 7.0
    assert units.nw(1e6) == units.mw(1.0)


def test_resistance():
    assert units.kohm(2.0) == 2000.0


def test_physical_constants():
    # Thermal voltage at room temperature is about 25.9 mV.
    assert 0.0250 < units.THERMAL_VOLTAGE_300K < 0.0265
    # Copper bulk resistivity is about 1.7-2.2 uohm-cm.
    assert 1.6e-8 < units.COPPER_BULK_RESISTIVITY < 2.3e-8
    assert units.COPPER_MEAN_FREE_PATH > 10e-9


class TestSuffixRegistry:
    """UNIT_SUFFIXES is the shared source of truth for runtime + lint."""

    def test_keys_match_entries_and_are_lowercase(self):
        for suffix, entry in units.UNIT_SUFFIXES.items():
            assert suffix == entry.suffix == entry.suffix.lower()
            assert entry.si_factor > 0
            assert entry.words, f"'{suffix}' has no docstring words"

    def test_every_dimension_has_a_base_unit_name(self):
        dimensions = {entry.dimension
                      for entry in units.UNIT_SUFFIXES.values()}
        assert dimensions <= set(units.SI_BASE_UNITS)

    def test_suffix_of_identifier(self):
        assert units.unit_suffix_of("total_cap_ff").suffix == "ff"
        assert units.unit_suffix_of("Delay_PS").suffix == "ps"
        assert units.unit_suffix_of("num_repeaters") is None
        assert units.unit_suffix_of("delay") is None
        # A bare suffix is not a suffixed name.
        assert units.unit_suffix_of("mm") is None

    def test_converters_are_generated_from_the_registry(self):
        assert units.ps(1.0) == units.UNIT_SUFFIXES["ps"].si_factor
        assert units.um(1.0) == units.UNIT_SUFFIXES["um"].si_factor
        assert units.kohm(1.0) == units.UNIT_SUFFIXES["kohm"].si_factor
        assert units.to_fF(1.0) \
            == 1.0 / units.UNIT_SUFFIXES["ff"].si_factor

    def test_generated_docstrings_name_both_units(self):
        assert "picoseconds" in units.ps.__doc__
        assert "seconds" in units.ps.__doc__
        assert units.ps.__name__ == "ps"


@given(st.floats(min_value=1e-6, max_value=1e6,
                 allow_nan=False, allow_infinity=False))
def test_roundtrips_are_inverse(value):
    assert math.isclose(units.to_ps(units.ps(value)), value,
                        rel_tol=1e-12)
    assert math.isclose(units.to_fF(units.fF(value)), value,
                        rel_tol=1e-12)
    assert math.isclose(units.to_um(units.um(value)), value,
                        rel_tol=1e-12)
    assert math.isclose(units.to_mw(units.mw(value)), value,
                        rel_tol=1e-12)
    assert math.isclose(units.to_ghz(units.ghz(value)), value,
                        rel_tol=1e-12)
