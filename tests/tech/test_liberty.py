"""Mini-Liberty parser/serializer."""

import pytest
from hypothesis import given, strategies as st

from repro.tech import liberty
from repro.tech.liberty import LibertyGroup, LibertyParseError


def test_new_library_has_units():
    root = liberty.new_library("test", voltage=1.1)
    assert root.kind == "library"
    assert root.name == "test"
    assert root.attributes["nom_voltage"] == 1.1
    assert "capacitive_load_unit" in root.complex_attributes


def test_roundtrip_simple_attributes():
    root = liberty.new_library("lib")
    cell = root.add_group("cell", "INVD4")
    cell.attributes["area"] = 7.056
    cell.attributes["cell_leakage_power"] = 725.7
    cell.attributes["comment"] = "a quoted string!"
    cell.attributes["flag"] = True

    parsed = liberty.loads(liberty.dumps(root))
    cell_back = parsed.require("cell", "INVD4")
    assert cell_back.attributes["area"] == pytest.approx(7.056)
    assert cell_back.attributes["comment"] == "a quoted string!"
    assert cell_back.attributes["flag"] is True


def test_roundtrip_nldm_table():
    root = liberty.new_library("lib")
    timing = root.add_group("cell", "X").add_group("timing", "")
    table = timing.add_group("cell_rise", "template")
    index_1 = [20.0, 60.0, 120.0]
    index_2 = [10.0, 40.0]
    values = [[1.0, 2.0], [3.0, 4.0], [5.0, 6.0]]
    table.set_table(index_1, index_2, values)

    parsed = liberty.loads(liberty.dumps(root))
    table_back = (parsed.require("cell", "X").require("timing")
                  .require("cell_rise"))
    i1, i2, vals = table_back.get_table()
    assert i1 == index_1
    assert i2 == index_2
    assert vals == values


def test_find_and_find_all():
    root = liberty.new_library("lib")
    root.add_group("cell", "A")
    root.add_group("cell", "B")
    assert root.find("cell", "B").name == "B"
    assert root.find("cell", "C") is None
    assert [g.name for g in root.find_all("cell")] == ["A", "B"]


def test_require_raises_on_missing():
    root = liberty.new_library("lib")
    with pytest.raises(KeyError, match="cell"):
        root.require("cell", "missing")


def test_comments_are_stripped():
    text = """
    library (demo) {
        /* a block comment
           spanning lines */
        nom_voltage : 1.0; // trailing comment
    }
    """
    parsed = liberty.loads(text)
    assert parsed.attributes["nom_voltage"] == 1.0


def test_parse_errors():
    with pytest.raises(LibertyParseError):
        liberty.loads("")
    with pytest.raises(LibertyParseError):
        liberty.loads("library (x) {")     # unterminated
    with pytest.raises(LibertyParseError):
        liberty.loads("library (x) { } extra (y) { }")  # trailing


def test_integer_and_float_coercion():
    parsed = liberty.loads(
        "library (x) { ports : 5; ratio : 2.5; name : abc; }")
    assert parsed.attributes["ports"] == 5
    assert isinstance(parsed.attributes["ports"], int)
    assert parsed.attributes["ratio"] == 2.5
    assert parsed.attributes["name"] == "abc"


@given(st.lists(st.floats(min_value=-1e6, max_value=1e6,
                          allow_nan=False), min_size=2, max_size=6),
       st.integers(min_value=2, max_value=5))
def test_table_roundtrip_property(row_values, n_rows):
    index_2 = [float(i) for i in range(len(row_values))]
    index_1 = [float(i) for i in range(n_rows)]
    values = [[v + i for v in row_values] for i in range(n_rows)]
    group = LibertyGroup(kind="cell_rise", args=("t",))
    group.set_table(index_1, index_2, values)
    i1, i2, vals = group.get_table()
    for got, expected in zip(i1, index_1):
        assert got == pytest.approx(expected, rel=1e-5, abs=1e-9)
    for got_row, expected_row in zip(vals, values):
        for got, expected in zip(got_row, expected_row):
            assert got == pytest.approx(expected, rel=1e-5, abs=1e-4)
