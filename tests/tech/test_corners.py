"""Process/voltage corner derating."""

import pytest

from repro.tech.corners import (
    ProcessCorner,
    STANDARD_CORNERS,
    apply_corner,
    corner_sweep,
    guard_band,
)


class TestApplyCorner:
    def test_typical_is_identity_except_name(self, tech90):
        typical = apply_corner(tech90, ProcessCorner.TYPICAL)
        assert typical.vdd == tech90.vdd
        assert typical.nmos.k_sat == tech90.nmos.k_sat
        assert typical.name == "90nm-tt"

    def test_slow_corner_weaker_and_lower_voltage(self, tech90):
        slow = apply_corner(tech90, ProcessCorner.SLOW)
        assert slow.vdd < tech90.vdd
        assert slow.nmos.k_sat < tech90.nmos.k_sat
        assert slow.nmos.vth > tech90.nmos.vth
        assert slow.nmos.i_leak < tech90.nmos.i_leak

    def test_fast_corner_stronger_and_leakier(self, tech90):
        fast = apply_corner(tech90, ProcessCorner.FAST)
        assert fast.vdd > tech90.vdd
        assert fast.nmos.k_sat > tech90.nmos.k_sat
        assert fast.nmos.vth < tech90.nmos.vth
        assert fast.nmos.i_leak > tech90.nmos.i_leak

    def test_metal_thickness_moves_with_process(self, tech90):
        slow = apply_corner(tech90, ProcessCorner.SLOW)
        fast = apply_corner(tech90, ProcessCorner.FAST)
        assert slow.global_layer.thickness < \
            tech90.global_layer.thickness < \
            fast.global_layer.thickness

    def test_wire_resistance_ordering(self, tech90):
        from repro.tech.design_styles import DesignStyle, \
            WireConfiguration

        def resistance(tech):
            config = WireConfiguration.for_style(tech.global_layer,
                                                 DesignStyle.SWSS)
            return config.resistance_per_meter()

        slow = apply_corner(tech90, ProcessCorner.SLOW)
        fast = apply_corner(tech90, ProcessCorner.FAST)
        assert resistance(slow) > resistance(tech90) > resistance(fast)

    def test_both_flavours_derated(self, tech90):
        slow = apply_corner(tech90, ProcessCorner.SLOW)
        assert slow.pmos.k_sat < tech90.pmos.k_sat


class TestSweepAndGuardBand:
    def test_sweep_covers_three_corners(self, tech90):
        sweep = corner_sweep(tech90)
        assert set(sweep) == set(ProcessCorner)

    def test_guard_band(self):
        assert guard_band(1.15, 1.0) == pytest.approx(0.15)
        with pytest.raises(ValueError):
            guard_band(1.0, 0.0)

    def test_standard_corner_table_consistency(self):
        typical = STANDARD_CORNERS[ProcessCorner.TYPICAL]
        assert typical.drive_shift == 0.0
        slow = STANDARD_CORNERS[ProcessCorner.SLOW]
        fast = STANDARD_CORNERS[ProcessCorner.FAST]
        assert slow.drive_shift < 0 < fast.drive_shift
        assert slow.vdd_shift < 0 < fast.vdd_shift


class TestCornerDelays:
    def test_inverter_delay_ordering_across_corners(self, tech90):
        """Gate delay must order fast < typical < slow in simulation."""
        from repro.characterization.cells import RepeaterCell, \
            RepeaterKind
        from repro.characterization.harness import _measure_point
        from repro.units import fF, ps

        delays = {}
        for corner in ProcessCorner:
            cornered = apply_corner(tech90, corner)
            cell = RepeaterCell(tech=cornered,
                                kind=RepeaterKind.INVERTER, size=8.0)
            delays[corner], _ = _measure_point(cell, ps(80), fF(40),
                                               rising_output=True)
        assert delays[ProcessCorner.FAST] < \
            delays[ProcessCorner.TYPICAL] < \
            delays[ProcessCorner.SLOW]
