"""Wire capacitance closed forms."""

import dataclasses

import pytest
from hypothesis import given, strategies as st

from repro.tech.capacitance import (
    coupling_capacitance_per_meter,
    ground_capacitance_per_meter,
    total_capacitance_per_meter,
    wire_capacitances,
)
from repro.tech.parameters import WireLayerGeometry
from repro.units import EPSILON_0, nm, um


def layer(width=0.4, spacing=0.4, thickness=0.85, height=0.65, k=3.3):
    return WireLayerGeometry(
        name="m", width=um(width), spacing=um(spacing),
        thickness=um(thickness), ild_thickness=um(height),
        dielectric_constant=k, barrier_thickness=nm(10))


def test_ground_cap_positive_and_scaling_with_k():
    low_k = ground_capacitance_per_meter(layer(k=2.2))
    high_k = ground_capacitance_per_meter(layer(k=3.3))
    assert low_k > 0
    assert high_k == pytest.approx(low_k * 3.3 / 2.2)


def test_ground_cap_grows_with_width():
    assert (ground_capacitance_per_meter(layer(width=0.8))
            > ground_capacitance_per_meter(layer(width=0.4)))


def test_coupling_cap_shrinks_with_spacing():
    tight = coupling_capacitance_per_meter(layer(spacing=0.2))
    loose = coupling_capacitance_per_meter(layer(spacing=0.8))
    assert tight > loose


def test_coupling_cap_grows_with_thickness():
    thin = coupling_capacitance_per_meter(layer(thickness=0.4))
    thick = coupling_capacitance_per_meter(layer(thickness=1.0))
    assert thick > thin


def test_wire_capacitances_composition():
    geometry = layer()
    ground, coupling = wire_capacitances(geometry)
    assert ground == pytest.approx(
        ground_capacitance_per_meter(geometry))
    assert coupling == pytest.approx(
        2.0 * coupling_capacitance_per_meter(geometry))


def test_total_capacitance_miller_factor():
    geometry = layer()
    ground, coupling = wire_capacitances(geometry)
    assert total_capacitance_per_meter(geometry, 0.0) == \
        pytest.approx(ground)
    assert total_capacitance_per_meter(geometry, 2.0) == \
        pytest.approx(ground + 2.0 * coupling)
    with pytest.raises(ValueError):
        total_capacitance_per_meter(geometry, -0.5)


def test_minimum_pitch_wire_is_coupling_dominated():
    # At aspect ratio > 2 and equal width/spacing, lateral capacitance
    # dominates ground capacitance — the regime the paper's coupling
    # corrections matter in.
    geometry = layer()
    ground, coupling = wire_capacitances(geometry)
    assert coupling > ground


@given(st.floats(min_value=0.05, max_value=1.0),
       st.floats(min_value=0.05, max_value=1.0))
def test_capacitances_always_positive(width, spacing):
    geometry = layer(width=width, spacing=spacing)
    ground, coupling = wire_capacitances(geometry)
    assert ground > 0
    assert coupling > 0


@given(st.floats(min_value=1.5, max_value=4.0))
def test_plate_term_dominates_for_wide_wires(k):
    geometry = layer(width=10.0, height=0.2, k=k)
    ground = ground_capacitance_per_meter(geometry)
    plate = 2 * k * EPSILON_0 * geometry.width / geometry.ild_thickness
    # Fringe correction should be small relative to the plate term here.
    assert ground == pytest.approx(plate, rel=0.2)
