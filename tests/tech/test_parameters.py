"""TechnologyParameters / DeviceParameters / WireLayerGeometry."""

import dataclasses

import pytest

from repro.tech.parameters import (
    DeviceParameters,
    TechnologyParameters,
    WireLayerGeometry,
    validate_monotonic_scaling,
)
from repro.tech.nodes import TECHNOLOGY_NODES, get_technology
from repro.units import nm, um


def make_device(**overrides):
    base = dict(
        polarity=+1, vth=0.3, alpha=1.3, k_sat=1000.0, k_lin=0.45,
        channel_length_modulation=0.15, c_gate=1e-9, c_drain=0.5e-9,
        i_leak=0.1, i_gate_leak=0.05,
    )
    base.update(overrides)
    return DeviceParameters(**base)


class TestDeviceParameters:
    def test_polarity_validation(self):
        with pytest.raises(ValueError, match="polarity"):
            make_device(polarity=0)

    def test_vth_must_be_positive_magnitude(self):
        with pytest.raises(ValueError, match="vth"):
            make_device(vth=-0.3)

    def test_alpha_range(self):
        with pytest.raises(ValueError, match="alpha"):
            make_device(alpha=2.5)
        with pytest.raises(ValueError, match="alpha"):
            make_device(alpha=0.9)

    def test_positive_parameters(self):
        for name in ("k_sat", "k_lin", "c_gate", "c_drain"):
            with pytest.raises(ValueError, match=name):
                make_device(**{name: 0.0})

    def test_is_nmos(self):
        assert make_device(polarity=+1).is_nmos
        assert not make_device(polarity=-1).is_nmos

    def test_saturation_current_scales_with_width(self):
        device = make_device()
        i1 = device.saturation_current(um(1), 0.7)
        i2 = device.saturation_current(um(2), 0.7)
        assert i2 == pytest.approx(2 * i1)

    def test_saturation_current_zero_below_threshold(self):
        assert make_device().saturation_current(um(1), -0.1) == 0.0

    def test_leakage_power_linear_in_width(self):
        device = make_device()
        assert device.leakage_power(um(2), 1.0) == pytest.approx(
            2 * device.leakage_power(um(1), 1.0))


class TestWireLayerGeometry:
    def make(self, **overrides):
        base = dict(name="global", width=um(0.4), spacing=um(0.4),
                    thickness=um(0.85), ild_thickness=um(0.65),
                    dielectric_constant=3.3, barrier_thickness=nm(12))
        base.update(overrides)
        return WireLayerGeometry(**base)

    def test_pitch_and_aspect_ratio(self):
        layer = self.make()
        assert layer.pitch == pytest.approx(um(0.8))
        assert layer.aspect_ratio == pytest.approx(0.85 / 0.4)

    def test_positive_dimensions_required(self):
        with pytest.raises(ValueError):
            self.make(width=0.0)
        with pytest.raises(ValueError):
            self.make(dielectric_constant=-1.0)

    def test_barrier_cannot_consume_wire(self):
        with pytest.raises(ValueError, match="barrier"):
            self.make(width=nm(20), barrier_thickness=nm(10))

    def test_scaled_copies_geometry(self):
        layer = self.make()
        wide = layer.scaled(width_multiple=2.0, spacing_multiple=3.0)
        assert wide.width == pytest.approx(2 * layer.width)
        assert wide.spacing == pytest.approx(3 * layer.spacing)
        assert wide.thickness == layer.thickness


class TestTechnologyParameters:
    def test_requires_global_layer(self, tech90):
        with pytest.raises(ValueError, match="global"):
            dataclasses.replace(tech90, wire_layers={})

    def test_flavours_must_not_be_swapped(self, tech90):
        with pytest.raises(ValueError, match="swapped"):
            dataclasses.replace(tech90, nmos=tech90.pmos,
                                pmos=tech90.nmos)

    def test_inverter_widths_respect_pn_ratio(self, tech90):
        wn, wp = tech90.inverter_widths(4.0)
        assert wp == pytest.approx(wn * tech90.pn_ratio)
        assert wn == pytest.approx(4.0 * tech90.min_nmos_width)

    def test_inverter_widths_reject_nonpositive_size(self, tech90):
        with pytest.raises(ValueError):
            tech90.inverter_widths(0.0)

    def test_clock_period(self, tech90):
        assert tech90.clock_period() == pytest.approx(
            1.0 / tech90.clock_frequency)

    def test_uncalibrated_variant_is_optimistic(self, tech90):
        variant = tech90.uncalibrated_variant()
        assert not variant.calibrated
        assert "uncalibrated" in variant.name
        original = tech90.global_layer
        changed = variant.global_layer
        assert changed.dielectric_constant < original.dielectric_constant
        assert changed.barrier_thickness == 0.0


class TestMonotonicScaling:
    def test_detects_ordering(self):
        nodes = [get_technology(n) for n in ("90nm", "65nm", "45nm")]
        assert validate_monotonic_scaling(nodes, "feature_size") is None

    def test_reports_violation(self):
        nodes = [get_technology(n) for n in ("45nm", "90nm")]
        message = validate_monotonic_scaling(nodes, "feature_size")
        assert message is not None
        assert "feature_size" in message

    def test_increasing_direction(self):
        nodes = [get_technology(n) for n in ("90nm", "65nm")]
        assert validate_monotonic_scaling(
            nodes, "feature_size", decreasing=False) is not None
