"""Mini-LEF reader/writer."""

import pytest

from repro.tech import lef
from repro.tech.lef import LefParseError
from repro.units import um


def test_from_technology_exports_all_layers(tech90):
    library = lef.from_technology(tech90)
    assert set(library.layers) == set(tech90.wire_layers)
    assert "core" in library.sites


def test_roundtrip_preserves_geometry(tech90):
    library = lef.from_technology(tech90)
    back = lef.roundtrip(library)
    for name, layer in library.layers.items():
        parsed = back.layers[name]
        assert parsed.width == pytest.approx(layer.width, rel=1e-5)
        assert parsed.spacing == pytest.approx(layer.spacing, rel=1e-5)
        assert parsed.thickness == pytest.approx(layer.thickness,
                                                 rel=1e-5)
        assert parsed.ild_thickness == pytest.approx(
            layer.ild_thickness, rel=1e-5)
        assert parsed.dielectric_constant == pytest.approx(
            layer.dielectric_constant, rel=1e-5)
        assert parsed.barrier_thickness == pytest.approx(
            layer.barrier_thickness, rel=1e-4, abs=1e-12)


def test_site_dimensions(tech90):
    library = lef.roundtrip(lef.from_technology(tech90))
    pitch, height = lef.site_dimensions(library)
    assert pitch == pytest.approx(tech90.contact_pitch, rel=1e-5)
    assert height == pytest.approx(tech90.row_height, rel=1e-5)


def test_site_dimensions_missing_site(tech90):
    library = lef.from_technology(tech90)
    with pytest.raises(KeyError):
        lef.site_dimensions(library, "nonexistent")


def test_routing_layer_lookup(tech90):
    library = lef.from_technology(tech90)
    assert library.routing_layer("global").name == "global"
    with pytest.raises(KeyError, match="known layers"):
        library.routing_layer("metal9")


def test_parse_rejects_non_routing_layer():
    text = """VERSION 5.7 ;
LAYER poly
  TYPE MASTERSLICE ;
END poly
END LIBRARY
"""
    with pytest.raises(LefParseError, match="ROUTING"):
        lef.loads(text)


def test_parse_rejects_incomplete_layer():
    text = """VERSION 5.7 ;
LAYER m1
  TYPE ROUTING ;
  WIDTH 0.4 ;
END m1
END LIBRARY
"""
    with pytest.raises(LefParseError, match="missing"):
        lef.loads(text)


def test_parse_rejects_unknown_statement():
    with pytest.raises(LefParseError, match="unsupported"):
        lef.loads("GARBAGE 42 ;\n")


def test_site_requires_size():
    text = """SITE core
END core
END LIBRARY
"""
    with pytest.raises(LefParseError, match="SIZE"):
        lef.loads(text)


def test_dumps_units_are_microns(tech90):
    text = lef.dumps(lef.from_technology(tech90))
    # 90 nm global wires are 0.4 um wide.
    assert "WIDTH 0.4 ;" in text
