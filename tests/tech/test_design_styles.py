"""Design styles and wire configurations."""

import pytest

from repro.tech import DesignStyle, WireConfiguration
from repro.tech.design_styles import WORST_CASE_MILLER


class TestDesignStyle:
    def test_descriptions(self):
        for style in DesignStyle:
            assert style.description


class TestWireConfiguration:
    def test_swss_uses_worst_case_miller(self, tech90):
        config = WireConfiguration.for_style(tech90.global_layer,
                                             DesignStyle.SWSS)
        assert config.delay_miller == pytest.approx(WORST_CASE_MILLER)
        assert config.power_miller == pytest.approx(1.0)

    def test_shielded_miller_is_one(self, tech90):
        config = WireConfiguration.for_style(tech90.global_layer,
                                             DesignStyle.SHIELDED)
        assert config.delay_miller == pytest.approx(1.0)

    def test_shielding_is_deterministic_and_slower_than_staggered(
            self, tech90):
        shielded = WireConfiguration.for_style(tech90.global_layer,
                                               DesignStyle.SHIELDED)
        swss = WireConfiguration.for_style(tech90.global_layer,
                                           DesignStyle.SWSS)
        assert shielded.delay_miller < swss.delay_miller

    def test_double_spacing_reduces_coupling(self, tech90):
        swss = WireConfiguration.for_style(tech90.global_layer,
                                           DesignStyle.SWSS)
        double = WireConfiguration.for_style(tech90.global_layer,
                                             DesignStyle.DOUBLE_SPACING)
        assert (double.coupling_capacitance_per_meter()
                < swss.coupling_capacitance_per_meter())

    def test_shielded_pitch_doubles(self, tech90):
        swss = WireConfiguration.for_style(tech90.global_layer,
                                           DesignStyle.SWSS)
        shielded = WireConfiguration.for_style(tech90.global_layer,
                                               DesignStyle.SHIELDED)
        assert shielded.signal_pitch() == pytest.approx(
            2 * swss.signal_pitch())

    def test_staggered_zeroes_delay_miller_only(self, swss90):
        staggered = swss90.staggered()
        assert staggered.delay_miller == 0.0
        assert staggered.power_miller == swss90.power_miller
        assert (staggered.switched_capacitance_per_meter()
                == pytest.approx(swss90.switched_capacitance_per_meter()))

    def test_switched_capacitance_composition(self, swss90):
        expected = (swss90.ground_capacitance_per_meter()
                    + swss90.power_miller
                    * swss90.coupling_capacitance_per_meter())
        assert swss90.switched_capacitance_per_meter() == \
            pytest.approx(expected)

    def test_resistance_honors_correction_flags(self, tech90):
        full = WireConfiguration.for_style(tech90.global_layer,
                                           DesignStyle.SWSS)
        optimistic = WireConfiguration(
            layer=tech90.global_layer, include_scattering=False,
            include_barrier=False)
        assert full.resistance_per_meter() > \
            optimistic.resistance_per_meter()
