"""Width-dependent resistivity: scattering and barrier effects."""

import dataclasses

import pytest
from hypothesis import given, strategies as st

from repro.tech.resistivity import (
    barrier_adjusted_area_fraction,
    effective_resistivity,
    scattering_resistivity,
    wire_resistance_per_meter,
)
from repro.tech.parameters import WireLayerGeometry
from repro.units import COPPER_BULK_RESISTIVITY, nm, um


def layer(width_um=0.4, barrier_nm=12.0):
    return WireLayerGeometry(
        name="global", width=um(width_um), spacing=um(width_um),
        thickness=um(2.1 * width_um), ild_thickness=um(1.6 * width_um),
        dielectric_constant=3.0, barrier_thickness=nm(barrier_nm))


class TestScattering:
    def test_always_above_bulk(self):
        rho = scattering_resistivity(um(0.4), um(0.85))
        assert rho > COPPER_BULK_RESISTIVITY

    def test_approaches_bulk_for_wide_wires(self):
        rho = scattering_resistivity(um(100), um(100))
        assert rho == pytest.approx(COPPER_BULK_RESISTIVITY, rel=0.02)

    def test_narrow_wires_much_worse(self):
        narrow = scattering_resistivity(nm(40), nm(80))
        wide = scattering_resistivity(um(1), um(2))
        assert narrow > 1.5 * wide

    def test_input_validation(self):
        with pytest.raises(ValueError):
            scattering_resistivity(0.0, um(1))
        with pytest.raises(ValueError):
            scattering_resistivity(um(1), um(1), specularity=1.5)
        with pytest.raises(ValueError):
            scattering_resistivity(um(1), um(1), grain_reflectivity=0.0)

    @given(st.floats(min_value=30e-9, max_value=2e-6),
           st.floats(min_value=60e-9, max_value=4e-6))
    def test_monotonic_in_width(self, width, thickness):
        rho_narrow = scattering_resistivity(width, thickness)
        rho_wider = scattering_resistivity(width * 1.5, thickness)
        assert rho_wider < rho_narrow


class TestBarrier:
    def test_area_fraction_below_one(self):
        fraction = barrier_adjusted_area_fraction(layer())
        assert 0.0 < fraction < 1.0

    def test_zero_barrier_fraction_is_one(self):
        fraction = barrier_adjusted_area_fraction(layer(barrier_nm=0.0))
        assert fraction == pytest.approx(1.0)

    def test_relative_impact_grows_for_narrow_wires(self):
        wide = barrier_adjusted_area_fraction(layer(width_um=0.4))
        narrow = barrier_adjusted_area_fraction(layer(width_um=0.1))
        assert narrow < wide


class TestEffectiveResistivity:
    def test_corrections_stack(self):
        both = effective_resistivity(layer())
        no_scatter = effective_resistivity(layer(),
                                           include_scattering=False)
        no_barrier = effective_resistivity(layer(),
                                           include_barrier=False)
        neither = effective_resistivity(layer(),
                                        include_scattering=False,
                                        include_barrier=False)
        assert neither == pytest.approx(COPPER_BULK_RESISTIVITY)
        assert both > no_scatter > neither
        assert both > no_barrier > neither

    def test_resistance_per_meter_uses_drawn_geometry(self):
        geometry = layer()
        r = wire_resistance_per_meter(geometry, include_scattering=False,
                                      include_barrier=False)
        expected = COPPER_BULK_RESISTIVITY / (geometry.width
                                              * geometry.thickness)
        assert r == pytest.approx(expected)

    def test_plausible_90nm_global_resistance(self):
        # 50-100 ohm/mm is the canonical 90 nm global-wire range.
        r_per_mm = wire_resistance_per_meter(layer()) * 1e-3
        assert 40 < r_per_mm < 120
