"""Built-in technology nodes: presence, scaling trends, sanity."""

import pytest

from repro.tech import (
    available_nodes,
    get_technology,
    TECHNOLOGY_NODES,
    WireConfiguration,
    DesignStyle,
)
from repro.tech.parameters import validate_monotonic_scaling
from repro.units import nm


EXPECTED_NODES = ["90nm", "65nm", "45nm", "32nm", "22nm", "16nm"]


def test_six_nodes_available():
    assert available_nodes() == EXPECTED_NODES


def test_get_technology_unknown_name():
    with pytest.raises(KeyError, match="known nodes"):
        get_technology("7nm")


def test_feature_sizes_match_names():
    for name in EXPECTED_NODES:
        tech = get_technology(name)
        expected = nm(float(name.replace("nm", "")))
        assert tech.feature_size == pytest.approx(expected)


def test_feature_size_strictly_decreasing():
    nodes = [get_technology(n) for n in available_nodes()]
    assert validate_monotonic_scaling(nodes, "feature_size") is None


def test_supply_voltage_step_from_65_to_45():
    # The paper explicitly calls out the 1.0 V -> 1.1 V supply increase
    # between the 65 nm and 45 nm library files.
    assert get_technology("65nm").vdd == pytest.approx(1.0)
    assert get_technology("45nm").vdd == pytest.approx(1.1)


def test_clock_frequencies_match_paper():
    # Table III uses 1.5 / 2.25 / 3.0 GHz for 90 / 65 / 45 nm.
    assert get_technology("90nm").clock_frequency == pytest.approx(1.5e9)
    assert get_technology("65nm").clock_frequency == pytest.approx(2.25e9)
    assert get_technology("45nm").clock_frequency == pytest.approx(3.0e9)


def test_wire_resistance_grows_as_nodes_shrink():
    resistances = []
    for name in EXPECTED_NODES:
        tech = get_technology(name)
        config = WireConfiguration.for_style(tech.global_layer,
                                             DesignStyle.SWSS)
        resistances.append(config.resistance_per_meter())
    assert all(b > a for a, b in zip(resistances, resistances[1:]))


def test_device_leakage_grows_as_nodes_shrink():
    leakages = [get_technology(n).nmos.i_leak for n in EXPECTED_NODES]
    assert all(b > a for a, b in zip(leakages, leakages[1:]))


def test_every_node_has_both_layers():
    for tech in TECHNOLOGY_NODES.values():
        assert "global" in tech.wire_layers
        assert "intermediate" in tech.wire_layers
        globl = tech.wire_layers["global"]
        inter = tech.wire_layers["intermediate"]
        assert inter.width < globl.width
        assert inter.thickness < globl.thickness


def test_capacitance_per_meter_is_physically_plausible():
    # Total wire capacitance should sit in the canonical
    # 0.1-0.4 fF/um band for every node.
    for name in EXPECTED_NODES:
        tech = get_technology(name)
        config = WireConfiguration.for_style(tech.global_layer,
                                             DesignStyle.SWSS)
        total = (config.ground_capacitance_per_meter()
                 + config.coupling_capacitance_per_meter())
        assert 0.1e-9 < total < 0.4e-9, name


def test_predictive_area_inputs_present():
    for tech in TECHNOLOGY_NODES.values():
        assert tech.row_height > 4 * tech.contact_pitch
        assert tech.min_nmos_width > 0


def test_drive_current_definition_consistency():
    # k_sat was derived from a target Idsat: reconstruct it.
    tech = get_technology("90nm")
    overdrive = tech.vdd - tech.nmos.vth
    idsat = tech.nmos.k_sat * overdrive**tech.nmos.alpha
    # 600 uA/um = 0.6 A/m of width.
    assert idsat == pytest.approx(600e-6 / 1e-6, rel=1e-6)
