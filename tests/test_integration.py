"""Cross-module integration checks.

These tests tie independent implementations against each other: the
closed-form models against the transient simulator, the AWE engine
against both, and the full characterize -> calibrate -> predict loop
against fresh measurements it never saw.
"""

import pytest

from repro.characterization.cells import RepeaterCell, RepeaterKind
from repro.characterization.harness import _measure_point
from repro.signoff import (
    RCTree,
    evaluate_buffered_line,
    extract_buffered_line,
    rc_tree_moments,
    two_pole_delay,
)
from repro.units import fF, mm, ps, um


class TestModelVsFreshMeasurement:
    """The calibrated repeater model must predict grid points it was
    never fitted on."""

    @pytest.mark.parametrize("size,slew_ps,load_ff", [
        (12.0, 80.0, 60.0),
        (24.0, 200.0, 150.0),
        (48.0, 350.0, 400.0),
    ])
    def test_offgrid_delay_prediction(self, suite90, size, slew_ps,
                                      load_ff):
        cell = RepeaterCell(suite90.tech, RepeaterKind.INVERTER, size)
        measured, _ = _measure_point(cell, ps(slew_ps), fF(load_ff),
                                     rising_output=True)
        repeater = suite90.proposed.repeater_model()
        predicted = repeater.delay(size, ps(slew_ps), fF(load_ff),
                                   rising_output=True)
        assert predicted == pytest.approx(measured, rel=0.25)

    def test_offgrid_slew_prediction(self, suite90):
        cell = RepeaterCell(suite90.tech, RepeaterKind.INVERTER, 24.0)
        _, measured = _measure_point(cell, ps(150), fF(200),
                                     rising_output=False)
        repeater = suite90.proposed.repeater_model()
        predicted = repeater.output_slew(24.0, ps(150), fF(200),
                                         rising_output=False)
        assert predicted == pytest.approx(measured, rel=0.4)


class TestAweVsGoldenWire:
    def test_wire_dominated_stage_matches_awe(self, suite90):
        """For a weak driver on a long wire, the two-pole AWE delay of
        the RC network matches the nonlinear simulation reasonably."""
        config = suite90.config
        length = mm(4)
        r = config.resistance_per_meter() * length
        c = (config.ground_capacitance_per_meter()
             + 1.9 * config.coupling_capacitance_per_meter()) * length

        from repro.signoff.golden import simulate_stage
        size = 64.0
        load = fF(10)
        timing = simulate_stage(suite90.tech, size, r, c, load,
                                ps(20), rising_input=True)

        repeater = suite90.proposed.repeater_model()
        driver_resistance = repeater.drive_resistance(size, ps(20),
                                                      True)
        segments = 8
        caps = [c / segments] * (segments - 1) + [c / (2 * segments)]
        tree = RCTree.chain([r / segments] * segments, caps)
        tree.add_cap(segments, load)
        m1, m2 = rc_tree_moments(tree,
                                 driver_resistance=driver_resistance)
        awe_delay = two_pole_delay(float(m1[segments]),
                                   float(m2[segments]))
        # The AWE path has no intrinsic gate delay, so compare at a
        # loose tolerance; agreement within ~35% on a wire-dominated
        # stage confirms the two engines describe the same physics.
        assert awe_delay == pytest.approx(timing.delay, rel=0.35)


class TestEndToEndAccuracyAllNodes:
    @pytest.mark.parametrize("node", ["90nm", "65nm", "45nm"])
    def test_proposed_tracks_golden_across_nodes(self, node):
        from repro.experiments.suite import ModelSuite
        suite = ModelSuite.for_node(node)
        length = mm(3)
        line = extract_buffered_line(suite.tech, suite.config, length,
                                     4, 24.0)
        golden = evaluate_buffered_line(line, ps(300))
        estimate = suite.proposed.evaluate(length, 4, 24.0, ps(300))
        error = abs(estimate.delay - golden.total_delay) \
            / golden.total_delay
        assert error < 0.18, f"{node}: {error:.1%}"


class TestScalingTrends:
    def test_same_line_slower_in_older_nodes_is_not_assumed(self):
        """Wire delay per mm *worsens* with scaling (thinner wires),
        one of the motivating trends of the paper's introduction."""
        from repro.experiments.suite import ModelSuite
        delays = []
        for node in ("90nm", "45nm", "22nm"):
            suite = ModelSuite.for_node(node)
            estimate = suite.proposed.evaluate(mm(2), 2, 24.0, ps(100))
            delays.append(estimate.delay)
        assert delays[0] < delays[-1]
