"""Experiment drivers (reduced configurations for test speed)."""

import pytest

from repro.experiments import ModelSuite
from repro.experiments import fig1, leakage_area, runtime, staggering, \
    table1, table2, table3
from repro.tech import DesignStyle
from repro.units import mm, ps


class TestSuite:
    def test_for_node_builds_all_models(self):
        suite = ModelSuite.for_node("65nm")
        assert suite.tech.name == "65nm"
        assert set(suite.models()) == {"bakoglu", "pamunuwa",
                                       "proposed"}

    def test_shielded_style(self):
        suite = ModelSuite.for_node("90nm", style=DesignStyle.SHIELDED)
        assert suite.config.delay_miller == 1.0


class TestTable1:
    def test_loads_all_six_nodes(self):
        result = table1.run()
        assert len(result.calibrations) == 6
        text = result.format()
        for node in ("90nm", "65nm", "45nm", "32nm", "22nm", "16nm"):
            assert node in text

    def test_fit_quality_summary(self):
        result = table1.run(nodes=("90nm",))
        quality = result.fit_quality_summary()["90nm"]
        assert quality["intrinsic_rise"] > 0.9
        assert quality["drive_rise"] > 0.95
        assert quality["leakage"] > 0.99
        assert quality["area"] > 0.99


class TestFig1:
    @pytest.fixture(scope="class")
    def result(self):
        return fig1.run(
            node="90nm",
            sizes=(8.0, 32.0),
            slews=(ps(40), ps(160), ps(320)),
            load_factors=(2.0, 6.0),
        )

    def test_quadratic_in_slew(self, result):
        assert result.quadratic_r2 > 0.9

    def test_nearly_size_independent(self, result):
        # "Practically independent of repeater size": the spread across
        # a 4x size range stays small relative to the value.
        assert result.size_spread < 0.25

    def test_intrinsic_grows_with_slew(self, result):
        for size in result.sizes:
            values = [result.intrinsic[size][slew]
                      for slew in result.slews]
            assert values[0] < values[-1]

    def test_format(self, result):
        text = result.format()
        assert "quadratic" in text
        assert "90nm" in text


class TestTable2:
    @pytest.fixture(scope="class")
    def result(self):
        return table2.run(nodes=("90nm",), lengths=(mm(1), mm(5)),
                          styles=(DesignStyle.SWSS,))

    def test_proposed_within_paper_bound(self, result):
        assert result.max_abs_error("proposed") < 0.15

    def test_baselines_much_worse(self, result):
        assert result.max_abs_error("bakoglu") > \
            2 * result.max_abs_error("proposed")

    def test_model_is_much_faster_than_golden(self, result):
        assert all(row.runtime_ratio > 10 for row in result.rows)

    def test_format(self, result):
        text = result.format()
        assert "Prop %" in text
        assert "90nm" in text


class TestTable3:
    @pytest.fixture(scope="class")
    def result(self):
        return table3.run_quick("90nm")

    def test_dynamic_power_ratio_significant(self, result):
        # The original model underestimates dynamic power strongly
        # (the paper reports up to ~3x).
        assert result.max_dynamic_ratio() > 1.5

    def test_reports_have_all_flows(self, result):
        case = result.cases[0]
        assert case.original_self.num_routers > 0
        assert case.proposed_self.num_routers > 0

    def test_format(self, result):
        text = result.format()
        assert "DVOPD" in text
        assert "original/accurate" in text


class TestStaggering:
    def test_reproduces_tradeoff(self):
        result = staggering.run(nodes=("90nm",), lengths=(mm(5),))
        assert 0.05 < result.mean_saving() < 0.40
        assert result.mean_penalty() <= 0.025 + 1e-6
        assert "paper" in result.format()


class TestRuntime:
    def test_model_much_faster(self):
        result = runtime.run(node="90nm", length=mm(3), trials=10,
                             golden_trials=1)
        assert result.speedup > 2.1  # the paper's bound, easily beaten
        assert "faster" in result.format()


class TestLeakageArea:
    @pytest.fixture(scope="class")
    def result(self):
        return leakage_area.run("90nm", sizes=(4.0, 8.0, 16.0))

    def test_within_paper_bounds(self, result):
        assert result.max_leakage_error() < 0.11
        assert result.max_area_error() < 0.08

    def test_format(self, result):
        assert "paper" in result.format()
