"""Technology-scaling experiment."""

import pytest

from repro.experiments import scaling


@pytest.fixture(scope="module")
def result():
    return scaling.run(nodes=("90nm", "45nm", "16nm"))


class TestScalingTrends:
    def test_resistance_explodes(self, result):
        trend = result.resistance_trend()
        assert trend[-1] > 10 * trend[0]

    def test_delay_per_mm_worsens(self, result):
        trend = result.delay_trend()
        assert all(b > a for a, b in zip(trend, trend[1:]))

    def test_feasible_length_collapses(self, result):
        trend = result.feasible_trend()
        assert all(b < a for a, b in zip(trend, trend[1:]))
        # By 16 nm a link spanning a real die edge is infeasible in one
        # clock — the motivation for NoCs.
        assert trend[-1] < 3e-3

    def test_repeater_density_rises(self, result):
        densities = [row.repeaters_per_mm for row in result.rows]
        assert densities[-1] > densities[0]

    def test_format(self, result):
        text = result.format()
        assert "feasible" in text
        assert "90nm" in text and "16nm" in text
