"""Decision-sensitivity experiment."""

import pytest

from repro.experiments import sensitivity
from repro.experiments.sensitivity import (
    perturb_calibration,
    perturb_wire_view,
)
from repro.units import mm


class TestPerturbations:
    def test_wire_view_scales_parasitics(self, swss90):
        optimistic = perturb_wire_view(swss90, 0.5)
        assert optimistic.resistance_per_meter() == pytest.approx(
            0.5 * swss90.resistance_per_meter())
        assert optimistic.ground_capacitance_per_meter() == \
            pytest.approx(0.5 * swss90.ground_capacitance_per_meter())
        assert optimistic.coupling_capacitance_per_meter() == \
            pytest.approx(0.5 * swss90.coupling_capacitance_per_meter())

    def test_unit_scale_is_identity(self, swss90):
        same = perturb_wire_view(swss90, 1.0)
        assert same.resistance_per_meter() == pytest.approx(
            swss90.resistance_per_meter())

    def test_wire_view_validation(self, swss90):
        with pytest.raises(ValueError):
            perturb_wire_view(swss90, 0.0)

    def test_calibration_perturbation(self, calibration90):
        from repro.units import ps, um
        doubled = perturb_calibration(calibration90, 2.0)
        assert doubled.rise.drive_resistance(ps(100), um(4)) == \
            pytest.approx(
                2 * calibration90.rise.drive_resistance(ps(100), um(4)))
        with pytest.raises(ValueError):
            perturb_calibration(calibration90, -1.0)

    def test_optimistic_model_predicts_less_delay(self, suite90):
        import dataclasses
        from repro.models.interconnect import BufferedInterconnectModel
        from repro.units import ps
        optimistic = BufferedInterconnectModel(
            tech=suite90.tech, calibration=suite90.calibration,
            config=perturb_wire_view(suite90.config, 0.5))
        accurate = suite90.proposed
        assert optimistic.evaluate(mm(5), 5, 16.0, ps(100)).delay < \
            accurate.evaluate(mm(5), 5, 16.0, ps(100)).delay


class TestSensitivitySweep:
    @pytest.fixture(scope="class")
    def result(self):
        return sensitivity.run(node="90nm",
                               scales=(0.5, 1.0, 1.5))

    def test_unit_scale_has_zero_regret(self, result):
        baseline = result.baseline_row()
        assert baseline.regret == pytest.approx(0.0, abs=1e-9)
        assert baseline.topology_similarity == pytest.approx(1.0)
        assert baseline.estimation_error == pytest.approx(0.0,
                                                          abs=1e-9)

    def test_regret_never_negative(self, result):
        # No perturbed model can beat the accurate model's architecture
        # *as costed by the accurate model* (it optimizes that metric).
        for row in result.rows:
            assert row.regret >= -1e-6, row.scale

    def test_optimistic_model_underestimates_itself(self, result):
        optimistic = result.rows[0]
        assert optimistic.scale < 1.0
        assert optimistic.estimation_error < 0.0

    def test_pessimistic_model_overestimates_itself(self, result):
        pessimistic = result.rows[-1]
        assert pessimistic.scale > 1.0
        assert pessimistic.estimation_error > 0.0

    def test_format(self, result):
        text = result.format()
        assert "regret" in text
        assert "90nm" in text
