"""Corner-sensitivity experiment."""

import pytest

from repro.experiments import corners
from repro.tech.corners import ProcessCorner
from repro.units import mm


@pytest.fixture(scope="module")
def result():
    return corners.run(node="90nm", length=mm(3))


class TestCornerExperiment:
    def test_delay_ordering(self, result):
        rows = result.rows
        assert rows[ProcessCorner.FAST].delay < \
            rows[ProcessCorner.TYPICAL].delay < \
            rows[ProcessCorner.SLOW].delay

    def test_guard_band_is_meaningful(self, result):
        # +/-10% supply and drive should produce a double-digit margin.
        assert 0.05 < result.delay_guard_band() < 0.40

    def test_leakage_spread(self, result):
        assert result.leakage_ratio() > 1.5

    def test_format(self, result):
        text = result.format()
        assert "guard band" in text
        assert "ss" in text and "ff" in text
