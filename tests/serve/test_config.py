"""Knob resolution: CLI flags vs ``REPRO_SERVE_*`` environment."""

import pytest

from repro.serve.config import (
    DEFAULTS,
    ServeConfigError,
    resolve_config,
)

_ENV_NAMES = ("REPRO_SERVE_HOST", "REPRO_SERVE_PORT",
              "REPRO_SERVE_SOCKET", "REPRO_SERVE_SHARDS",
              "REPRO_SERVE_WINDOW_MS", "REPRO_SERVE_MAX_BATCH",
              "REPRO_SERVE_MEMO_ENTRIES")


@pytest.fixture(autouse=True)
def _clean_env(monkeypatch):
    for name in _ENV_NAMES:
        monkeypatch.delenv(name, raising=False)


class TestResolution:
    def test_defaults(self):
        config = resolve_config()
        assert config.host == DEFAULTS["host"]
        assert config.port == DEFAULTS["port"]
        assert config.socket is None
        assert config.shards == DEFAULTS["shards"]
        assert config.window_ms == DEFAULTS["window_ms"]
        assert config.max_batch == DEFAULTS["max_batch"]
        assert config.memo_entries == DEFAULTS["memo_entries"]

    def test_flag_wins_when_env_unset(self):
        assert resolve_config(port=9999).port == 9999

    def test_env_wins_when_flag_unset(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVE_PORT", "9001")
        monkeypatch.setenv("REPRO_SERVE_SHARDS", " 3 ")
        config = resolve_config()
        assert config.port == 9001
        assert config.shards == 3

    def test_agreeing_sources_are_fine(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVE_PORT", "9001")
        assert resolve_config(port=9001).port == 9001

    def test_conflict_is_fatal(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVE_PORT", "9001")
        with pytest.raises(ServeConfigError, match="conflicting"):
            resolve_config(port=8000)

    def test_string_knob_conflict(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVE_HOST", "0.0.0.0")
        with pytest.raises(ServeConfigError, match="host"):
            resolve_config(host="127.0.0.1")

    def test_unparseable_env_is_fatal(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVE_WINDOW_MS", "soon")
        with pytest.raises(ServeConfigError, match="WINDOW_MS"):
            resolve_config()

    def test_whitespace_env_means_unset(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVE_HOST", "   ")
        assert resolve_config().host == DEFAULTS["host"]

    def test_window_seconds(self):
        assert resolve_config(window_ms=250).window_seconds == 0.25


class TestValidation:
    @pytest.mark.parametrize("kwargs", [
        {"port": -1}, {"port": 65536}, {"shards": -1},
        {"window_ms": -1}, {"max_batch": 0}, {"memo_entries": 0},
    ])
    def test_out_of_range_rejected(self, kwargs):
        with pytest.raises(ServeConfigError):
            resolve_config(**kwargs)

    def test_zero_port_and_zero_shards_allowed(self):
        config = resolve_config(port=0, shards=0)
        assert config.port == 0
        assert config.shards == 0


class TestCliExitCode:
    def test_conflict_exits_2(self, monkeypatch, capsys):
        from repro.cli import main
        monkeypatch.setenv("REPRO_SERVE_PORT", "9001")
        status = main(["serve", "--port", "8000"])
        assert status == 2
        assert "conflicting" in capsys.readouterr().err

    def test_invalid_env_exits_2(self, monkeypatch, capsys):
        from repro.cli import main
        monkeypatch.setenv("REPRO_SERVE_SHARDS", "many")
        status = main(["serve"])
        assert status == 2
        assert "REPRO_SERVE_SHARDS" in capsys.readouterr().err
