"""End-to-end service tests: bit-equality, coalescing, crash recovery.

Every test hosts a real :class:`ReproServer` on an ephemeral TCP port
(or a Unix socket) inside ``asyncio.run`` and talks to it over real
connections.  The load they generate is tiny; the assertions are
exact — a served result must compare *equal* to the direct
:func:`repro.serve.core.execute_query` call, which for JSON-carried
floats means bit-identical doubles.
"""

import asyncio
import json

import pytest

from repro.runtime import METRICS, faults
from repro.serve import ReproServer, resolve_config
from repro.serve.core import execute_query
from repro.serve.loadgen import (
    _open,
    _roundtrip,
    run_load,
    tcp_endpoint,
    unix_endpoint,
)
from repro.serve.protocol import parse_query

#: One short design plus the other three ops — every op the wire
#: schema knows, kept tiny so worker-side compute stays fast.
DOCUMENTS = (
    {"op": "design", "length_mm": 1.0},
    {"op": "design", "length_mm": 2.05},
    {"op": "design_batch", "lengths_mm": [1.0, 2.5, 250.0]},
    {"op": "max_feasible_length"},
    {"op": "mc", "length_mm": 2.0, "samples": 16, "seed": 2010,
     "engine": "kernel"},
)


async def _serve_and_ask(config, documents):
    """Host a server, send ``documents`` on one connection, close."""
    server = ReproServer(config)
    await server.start()
    try:
        if config.host:
            endpoint = tcp_endpoint(config.host, server.port)
        else:
            endpoint = unix_endpoint(config.socket)
        reader, writer = await _open(endpoint)
        try:
            responses = []
            for document in documents:
                responses.append(await _roundtrip(reader, writer,
                                                  document))
            return responses
        finally:
            writer.close()
    finally:
        await server.close()


def _assert_bit_identical(documents, responses):
    for document, response in zip(documents, responses):
        assert response["_status"] == 200
        assert response["ok"] is True
        direct = execute_query(parse_query(document))
        assert response["result"] == direct, document


class TestBitEquality:
    def test_sharded_answers_match_direct_calls(self, suite90):
        """Worker-process answers are bit-identical to in-process."""
        config = resolve_config(port=0, shards=1, window_ms=1)
        responses = asyncio.run(_serve_and_ask(config, DOCUMENTS))
        _assert_bit_identical(DOCUMENTS, responses)

    def test_inline_mode_answers_match_direct_calls(self, suite90):
        """``shards=0`` computes in-process; same bit-exact answers."""
        config = resolve_config(port=0, shards=0, window_ms=0)
        responses = asyncio.run(_serve_and_ask(config, DOCUMENTS))
        _assert_bit_identical(DOCUMENTS, responses)

    def test_unix_socket_transport(self, suite90, tmp_path):
        config = resolve_config(host="", port=0, shards=0,
                                socket=str(tmp_path / "serve.sock"))
        documents = DOCUMENTS[:2]
        responses = asyncio.run(_serve_and_ask(config, documents))
        _assert_bit_identical(documents, responses)
        # close() removed the socket file.
        assert not (tmp_path / "serve.sock").exists()


class TestCrashRecovery:
    def test_injected_worker_crash_does_not_drop_requests(self,
                                                          suite90):
        """The first job's worker dies; both answers still arrive,
        bit-identical, and the shard is rebuilt behind them."""
        config = resolve_config(port=0, shards=1, window_ms=1)
        documents = ({"op": "design", "length_mm": 1.5},
                     {"op": "design", "length_mm": 3.0})
        before = dict(METRICS.counters)
        with faults.inject("worker_crash", at=0):
            responses = asyncio.run(_serve_and_ask(config, documents))
        _assert_bit_identical(documents, responses)
        delta = {name: METRICS.counters.get(name, 0)
                 - before.get(name, 0)
                 for name in ("faults.worker_crash",
                              "serve.worker_restart")}
        assert delta["faults.worker_crash"] == 1
        assert delta["serve.worker_restart"] == 1

    def test_mc_across_worker_crash_is_bit_identical(self, suite90):
        config = resolve_config(port=0, shards=1, window_ms=1)
        documents = ({"op": "mc", "length_mm": 2.0, "samples": 16,
                      "seed": 2010, "engine": "kernel"},)
        with faults.inject("worker_crash", at=0):
            responses = asyncio.run(_serve_and_ask(config, documents))
        _assert_bit_identical(documents, responses)


class TestCoalescing:
    def test_concurrent_designs_share_jobs(self, suite90):
        """Concurrent clients' design queries merge into fewer jobs."""
        before_batches = METRICS.counters.get("serve.batches", 0)
        before_requests = METRICS.counters.get("serve.requests", 0)

        async def scenario():
            config = resolve_config(port=0, shards=0, window_ms=25,
                                    max_batch=64)
            server = ReproServer(config)
            await server.start()
            try:
                return await run_load(
                    tcp_endpoint(config.host, server.port),
                    clients=6, requests_per_client=2, seed=11)
            finally:
                await server.close()

        report = asyncio.run(scenario())
        assert report.failures == 0
        requests = METRICS.counters["serve.requests"] \
            - before_requests
        batches = METRICS.counters["serve.batches"] - before_batches
        assert requests == 12
        assert batches < requests


class TestHttpSurface:
    def test_routes_and_errors(self, suite90):
        async def scenario():
            config = resolve_config(port=0, shards=0, window_ms=0)
            server = ReproServer(config)
            await server.start()
            try:
                endpoint = tcp_endpoint(config.host, server.port)
                reader, writer = await _open(endpoint)
                try:
                    bad_op = await _roundtrip(
                        reader, writer, {"op": "teleport"})
                    missing = await _roundtrip(
                        reader, writer, {"op": "design"})
                finally:
                    writer.close()

                reader, writer = await _open(endpoint)
                try:
                    writer.write(b"GET /healthz HTTP/1.1\r\n"
                                 b"Host: repro\r\n\r\n")
                    await writer.drain()
                    health = await _read_simple(reader)
                    writer.write(b"GET /metrics HTTP/1.1\r\n"
                                 b"Host: repro\r\n\r\n")
                    await writer.drain()
                    metrics = await _read_simple(reader)
                    writer.write(b"GET /nowhere HTTP/1.1\r\n"
                                 b"Host: repro\r\n\r\n")
                    await writer.drain()
                    nowhere = await _read_simple(reader)
                finally:
                    writer.close()
                return bad_op, missing, health, metrics, nowhere
            finally:
                await server.close()

        bad_op, missing, health, metrics, nowhere = \
            asyncio.run(scenario())
        assert bad_op["_status"] == 400 and bad_op["ok"] is False
        assert "op" in bad_op["error"]
        assert missing["_status"] == 400 and missing["ok"] is False
        assert health[0] == 200
        assert json.loads(health[1])["ok"] is True
        assert metrics[0] == 200
        assert "serve_requests_total" in metrics[1].decode("utf-8")
        assert nowhere[0] == 404


async def _read_simple(reader):
    """Read one (status, body) HTTP response off a stream."""
    status_line = await reader.readline()
    status = int(status_line.split()[1])
    length = 0
    while True:
        raw = await reader.readline()
        if raw in (b"\r\n", b"\n"):
            break
        name, _, value = raw.decode("latin-1").partition(":")
        if name.strip().lower() == "content-length":
            length = int(value.strip())
    return status, await reader.readexactly(length)
