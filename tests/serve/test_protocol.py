"""Query parsing and the wire schema."""

import pytest

from repro.serve.protocol import (
    ContextSpec,
    QueryError,
    error_response,
    ok_response,
    parse_query,
)


class TestParseDesign:
    def test_minimal_design_query(self):
        query = parse_query({"op": "design", "length_mm": 2.0})
        assert query.op == "design"
        assert query.lengths_mm == (2.0,)
        assert query.context == ContextSpec()

    def test_context_fields_flow_through(self):
        query = parse_query({"op": "design", "length_mm": 1.0,
                             "node": "65nm", "bus_width": 128,
                             "utilization": 0.5})
        assert query.context == ContextSpec(node="65nm",
                                            bus_width=128,
                                            utilization=0.5)

    def test_missing_length_rejected(self):
        with pytest.raises(QueryError, match="length_mm"):
            parse_query({"op": "design"})

    def test_non_positive_length_rejected(self):
        with pytest.raises(QueryError):
            parse_query({"op": "design", "length_mm": 0.0})
        with pytest.raises(QueryError):
            parse_query({"op": "design", "length_mm": -1.0})

    def test_boolean_is_not_a_number(self):
        with pytest.raises(QueryError):
            parse_query({"op": "design", "length_mm": True})


class TestParseBatch:
    def test_batch_query(self):
        query = parse_query({"op": "design_batch",
                             "lengths_mm": [1.0, 2, 3.5]})
        assert query.lengths_mm == (1.0, 2.0, 3.5)

    def test_empty_batch_rejected(self):
        with pytest.raises(QueryError):
            parse_query({"op": "design_batch", "lengths_mm": []})

    def test_non_list_rejected(self):
        with pytest.raises(QueryError):
            parse_query({"op": "design_batch", "lengths_mm": 2.0})

    def test_bad_entry_rejected(self):
        with pytest.raises(QueryError):
            parse_query({"op": "design_batch",
                         "lengths_mm": [1.0, "two"]})


class TestParseMc:
    def test_defaults_mirror_the_cli(self):
        query = parse_query({"op": "mc"})
        assert query.lengths_mm == (2.0,)
        assert query.repeaters == 2
        assert query.size == 24.0
        assert query.slew_ps == 100.0
        assert query.samples == 64
        assert query.seed == 2010
        assert query.engine == "kernel"
        assert query.estimator == "plain"
        assert query.critical_ps is None

    def test_unknown_engine_rejected(self):
        with pytest.raises(QueryError, match="engine"):
            parse_query({"op": "mc", "engine": "spice"})

    def test_unknown_estimator_rejected(self):
        with pytest.raises(QueryError, match="estimator"):
            parse_query({"op": "mc", "estimator": "magic"})

    def test_sample_floor(self):
        with pytest.raises(QueryError, match="samples"):
            parse_query({"op": "mc", "samples": 1})


class TestParseErrors:
    def test_non_object_rejected(self):
        with pytest.raises(QueryError):
            parse_query([1, 2, 3])

    def test_unknown_op_rejected(self):
        with pytest.raises(QueryError, match="op"):
            parse_query({"op": "teleport"})

    def test_bad_utilization_rejected(self):
        with pytest.raises(QueryError):
            parse_query({"op": "max_feasible_length",
                         "utilization": 1.5})
        with pytest.raises(QueryError):
            parse_query({"op": "max_feasible_length",
                         "utilization": 0.0})

    def test_bad_bus_width_rejected(self):
        with pytest.raises(QueryError):
            parse_query({"op": "design", "length_mm": 1.0,
                         "bus_width": 0})


class TestContextSpec:
    def test_hashable_for_shard_routing(self):
        assert hash(ContextSpec()) == hash(ContextSpec())
        assert ContextSpec() != ContextSpec(node="65nm")


class TestResponses:
    def test_shapes(self):
        assert ok_response({"x": 1}) == {"ok": True,
                                         "result": {"x": 1}}
        assert error_response("nope") == {"ok": False,
                                          "error": "nope"}
