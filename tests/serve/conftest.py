"""Serve-test fixtures: no armed faults leak between tests.

Warm contexts (``repro.serve.core._CONTEXTS``) are deliberately left
alive across tests — they memoize the same suite/designer pair every
test would rebuild, and sharing them is exactly the production
behaviour of a long-running server process.
"""

from __future__ import annotations

import pytest

from repro.runtime import faults


@pytest.fixture(autouse=True)
def _no_armed_faults(monkeypatch):
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    faults.clear()
    yield
    faults.clear()
