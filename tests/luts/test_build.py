"""Builder invariants: contract, gating, determinism."""

from __future__ import annotations

import numpy as np

from repro.luts.artifact import GENERATOR_VERSION
from repro.luts.build import build_artifact
from repro.luts.grid import COARSE_GRID


class TestBuiltArtifact:
    def test_contract_is_validated(self, artifact90):
        assert artifact90.measured_rel_error \
            <= artifact90.spec.max_rel_error

    def test_header_fields(self, suite90, artifact90):
        assert artifact90.node == "90nm"
        assert artifact90.model_class \
            == type(suite90.proposed).__name__
        assert artifact90.generator_version == GENERATOR_VERSION
        assert artifact90.spec == COARSE_GRID

    def test_tables_cover_the_grid(self, artifact90):
        spec = artifact90.spec
        shape = (len(spec.sizes), len(spec.lengths),
                 len(spec.counts))
        for table in artifact90.tables.values():
            assert table.shape == shape

    def test_accuracy_gating_happened(self, artifact90):
        """The coarse grid cannot serve everything — the validity
        mask must carry real holes (slew non-convergence and
        contract-missing cells), or gating silently stopped."""
        valid = artifact90.tables["valid"]
        fraction = float(valid.mean())
        assert 0.5 < fraction < 1.0

    def test_build_is_deterministic_across_workers(self, suite90,
                                                   artifact90):
        """Bit-identical tables regardless of worker count — the
        reproducibility contract the MC lane leans on."""
        serial = build_artifact(suite90.proposed, "90nm",
                                COARSE_GRID, workers=1)
        assert serial.content_hash == artifact90.content_hash
        for name, table in artifact90.tables.items():
            assert np.array_equal(serial.tables[name], table)
