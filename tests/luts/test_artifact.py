"""Artifact round trips, refusal paths and the fallback counter."""

from __future__ import annotations

import dataclasses
import json

import numpy as np
import pytest

from repro.luts.artifact import (
    ARTIFACT_SCHEMA,
    GENERATOR_VERSION,
    load_artifact,
    load_artifact_file,
    save_artifact_file,
    store_artifact,
)
from repro.luts.model import LUTInterconnectModel, serve
from repro.runtime.cache import DiskCache
from repro.runtime.metrics import METRICS


class TestFileRoundTrip:
    def test_export_reload_is_lossless(self, artifact90, tmp_path):
        path = save_artifact_file(artifact90, tmp_path / "a.json")
        reloaded = load_artifact_file(path)
        assert reloaded is not None
        assert reloaded.content_hash == artifact90.content_hash
        for name, table in artifact90.tables.items():
            assert np.array_equal(reloaded.tables[name],
                                  table)
        assert reloaded.spec == artifact90.spec

    def test_reloaded_artifact_serves_identically(self, suite90,
                                                  artifact90,
                                                  tmp_path):
        path = save_artifact_file(artifact90, tmp_path / "a.json")
        spec = artifact90.spec
        lut = serve(suite90.proposed, artifact90)
        reloaded = serve(suite90.proposed, load_artifact_file(path))
        size = spec.sizes[len(spec.sizes) // 2]
        length = spec.lengths[len(spec.lengths) // 2]
        count = spec.counts[len(spec.counts) // 2]
        first = lut.evaluate(length, count, size, spec.input_slew)
        second = reloaded.evaluate(length, count, size,
                                   spec.input_slew)
        assert first.delay == second.delay
        assert first.output_slew == second.output_slew

    def test_grid_points_reproduce_closed_form(self, suite90,
                                               artifact90):
        """Served values at exact grid points match the closed form.

        The log-value round trip (tables store raw seconds, serving
        goes ``exp(interp(log(...)))``) costs a few ULP; the
        closed-form reference itself is the batch kernel, equivalent
        to the scalar model within 1e-9.
        """
        model = suite90.proposed
        lut = serve(model, artifact90)
        spec = artifact90.spec
        valid = artifact90.tables["valid"]
        checked = 0
        for i in range(0, len(spec.sizes), 3):
            for j in range(0, len(spec.lengths), 4):
                for k in range(0, len(spec.counts), 8):
                    size = spec.sizes[i]
                    length = spec.lengths[j]
                    count = spec.counts[k]
                    if valid[i, j, k] != 1.0 or not lut.serves(
                            length, count, size, spec.input_slew):
                        continue
                    served = lut.evaluate(length, count, size,
                                          spec.input_slew)
                    table_value = artifact90.tables["delay"][i, j, k]
                    assert served.delay == pytest.approx(
                        table_value, rel=1e-12)
                    exact = model.evaluate(length, count, size,
                                           spec.input_slew)
                    assert served.delay == pytest.approx(exact.delay,
                                                         rel=1e-8)
                    assert served.output_slew == pytest.approx(
                        exact.output_slew, rel=1e-8)
                    checked += 1
        assert checked >= 10

    def test_corrupt_json_counts_fallback(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json", encoding="utf-8")
        before = METRICS.counters.get("faults.lut_fallback", 0)
        assert load_artifact_file(path) is None
        assert METRICS.counters["faults.lut_fallback"] == before + 1

    def test_generator_version_mismatch_counts_fallback(
            self, artifact90, tmp_path):
        path = save_artifact_file(artifact90, tmp_path / "a.json")
        payload = json.loads(path.read_text(encoding="utf-8"))
        payload["generator_version"] = GENERATOR_VERSION + 1
        path.write_text(json.dumps(payload), encoding="utf-8")
        before = METRICS.counters.get("faults.lut_fallback", 0)
        assert load_artifact_file(path) is None
        assert METRICS.counters["faults.lut_fallback"] == before + 1

    def test_schema_mismatch_counts_fallback(self, artifact90,
                                             tmp_path):
        path = save_artifact_file(artifact90, tmp_path / "a.json")
        payload = json.loads(path.read_text(encoding="utf-8"))
        payload["schema"] = ARTIFACT_SCHEMA + 1
        path.write_text(json.dumps(payload), encoding="utf-8")
        assert load_artifact_file(path) is None

    def test_tampered_tables_refused(self, artifact90, tmp_path):
        path = save_artifact_file(artifact90, tmp_path / "a.json")
        payload = json.loads(path.read_text(encoding="utf-8"))
        payload["tables"]["delay"][0][0][0] *= 1.5
        path.write_text(json.dumps(payload), encoding="utf-8")
        before = METRICS.counters.get("faults.lut_fallback", 0)
        assert load_artifact_file(path) is None
        assert METRICS.counters["faults.lut_fallback"] == before + 1


class TestCacheRoundTrip:
    def test_store_load(self, suite90, artifact90, tmp_path):
        cache = DiskCache("luts-test", directory=tmp_path)
        store_artifact(artifact90, suite90.proposed, cache=cache)
        loaded = load_artifact("90nm", suite90.proposed,
                               artifact90.spec, cache=cache)
        assert loaded is not None
        assert loaded.content_hash == artifact90.content_hash

    def test_empty_slot_returns_none(self, suite90, artifact90,
                                     tmp_path):
        cache = DiskCache("luts-test", directory=tmp_path)
        assert load_artifact("90nm", suite90.proposed,
                             artifact90.spec, cache=cache) is None


class TestServeBinding:
    def test_serve_without_artifact_is_base(self, suite90):
        assert serve(suite90.proposed, None) is suite90.proposed

    def test_wrong_calibration_refused(self, artifact90):
        from repro.experiments.suite import ModelSuite
        other = ModelSuite.for_node("65nm").proposed
        with pytest.raises(ValueError, match="calibration hash"):
            LUTInterconnectModel(other, artifact90)

    def test_wrong_model_class_refused(self, suite90, artifact90):
        bad = dataclasses.replace(artifact90,
                                  model_class="SomethingElse")
        with pytest.raises(ValueError, match="characterizes"):
            LUTInterconnectModel(suite90.proposed, bad)
