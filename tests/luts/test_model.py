"""LUT-served model: API compatibility, serving rules, fallback."""

from __future__ import annotations

import dataclasses
import math

import numpy as np

from repro.models.interconnect import InterconnectEstimate
from repro.runtime.metrics import METRICS
from repro.signoff.extraction import extract_buffered_line
from repro.units import mm, ps


def _midpoint_query(spec):
    """A query at the geometric midpoint of an interior cell (exact
    count hit — counts always are)."""
    i = len(spec.sizes) // 2
    j = len(spec.lengths) // 2
    size = math.sqrt(spec.sizes[i] * spec.sizes[i + 1])
    length = math.sqrt(spec.lengths[j] * spec.lengths[j + 1])
    count = spec.counts[len(spec.counts) // 2]
    return length, count, size


class TestServing:
    def test_serves_interior_query(self, lut90):
        spec = lut90.artifact.spec
        length, count, size = _midpoint_query(spec)
        assert lut90.serves(length, count, size, spec.input_slew)

    def test_refuses_uncovered_queries(self, lut90):
        spec = lut90.artifact.spec
        length, count, size = _midpoint_query(spec)
        slew = spec.input_slew
        assert not lut90.serves(length, count, size, slew,
                                receiver_cap=1e-15)
        assert not lut90.serves(length, count, size, 2.0 * slew)
        assert not lut90.serves(length, count,
                                2.0 * spec.sizes[-1], slew)
        assert not lut90.serves(0.5 * spec.lengths[0], count, size,
                                slew)
        assert not lut90.serves(length, spec.counts[-1] + 1, size,
                                slew)

    def test_served_estimate_is_api_compatible(self, suite90, lut90):
        spec = lut90.artifact.spec
        length, count, size = _midpoint_query(spec)
        served = lut90.evaluate(length, count, size, spec.input_slew)
        exact = suite90.proposed.evaluate(length, count, size,
                                          spec.input_slew)
        assert isinstance(served, InterconnectEstimate)
        assert dataclasses.fields(served) == dataclasses.fields(exact)
        assert served.num_repeaters == exact.num_repeaters
        assert served.repeater_size == exact.repeater_size
        assert len(served.stage_delays) == count

    def test_served_timing_meets_contract(self, suite90, lut90):
        """Delay/slew error at served cell midpoints stays within the
        grid's validated interpolation-error contract."""
        model = suite90.proposed
        spec = lut90.artifact.spec
        contract = spec.max_rel_error
        checked = 0
        for i in range(0, len(spec.sizes) - 1, 2):
            for j in range(0, len(spec.lengths) - 1, 3):
                size = math.sqrt(spec.sizes[i] * spec.sizes[i + 1])
                length = math.sqrt(spec.lengths[j]
                                   * spec.lengths[j + 1])
                for count in spec.counts[::10]:
                    if not lut90.serves(length, count, size,
                                        spec.input_slew):
                        continue
                    served = lut90.evaluate(length, count, size,
                                            spec.input_slew)
                    exact = model.evaluate(length, count, size,
                                           spec.input_slew)
                    assert abs(served.delay - exact.delay) \
                        <= contract * exact.delay
                    assert abs(served.output_slew
                               - exact.output_slew) \
                        <= contract * exact.output_slew
                    checked += 1
        assert checked >= 5

    def test_power_and_area_are_exact(self, suite90, lut90):
        spec = lut90.artifact.spec
        length, count, size = _midpoint_query(spec)
        served = lut90.evaluate(length, count, size, spec.input_slew,
                                bus_width=16)
        exact = suite90.proposed.evaluate(length, count, size,
                                          spec.input_slew,
                                          bus_width=16)
        assert served.dynamic_power == exact.dynamic_power
        assert served.leakage_power == exact.leakage_power
        assert served.repeater_area == exact.repeater_area
        assert served.wire_area == exact.wire_area

    def test_lookup_counters(self, lut90):
        spec = lut90.artifact.spec
        length, count, size = _midpoint_query(spec)
        before = METRICS.counters.get("luts.lookups", 0)
        lut90.evaluate(length, count, size, spec.input_slew)
        assert METRICS.counters["luts.lookups"] == before + 1


class TestFallback:
    def test_out_of_grid_equals_closed_form(self, suite90, lut90):
        spec = lut90.artifact.spec
        length = 2.0 * spec.lengths[-1]
        before = METRICS.counters.get("luts.fallback", 0)
        served = lut90.evaluate(length, 8, 24.0, spec.input_slew)
        exact = suite90.proposed.evaluate(length, 8, 24.0,
                                          spec.input_slew)
        assert served == exact
        assert METRICS.counters["luts.fallback"] == before + 1

    def test_receiver_cap_query_equals_closed_form(self, suite90,
                                                   lut90):
        spec = lut90.artifact.spec
        length, count, size = _midpoint_query(spec)
        served = lut90.evaluate(length, count, size, spec.input_slew,
                                receiver_cap=2e-15)
        exact = suite90.proposed.evaluate(length, count, size,
                                          spec.input_slew,
                                          receiver_cap=2e-15)
        assert served == exact

    def test_uncharacterized_slew_equals_closed_form(self, suite90,
                                                     lut90):
        spec = lut90.artifact.spec
        length, count, size = _midpoint_query(spec)
        slew = 1.5 * spec.input_slew
        assert lut90.evaluate(length, count, size, slew) \
            == suite90.proposed.evaluate(length, count, size, slew)


class TestCacheKey:
    def test_cache_key_pins_artifact_hash(self, suite90, lut90):
        key = lut90.cache_key()
        assert key["artifact"] == lut90.artifact.content_hash
        assert key["base"] is suite90.proposed


class TestMcResponse:
    def test_serves_extraction_style_line(self, suite90, lut90):
        spec = lut90.artifact.spec
        line = extract_buffered_line(suite90.proposed.tech,
                                     suite90.proposed.config,
                                     mm(5.0), 12, 24.0)
        response = lut90.mc_response(line, spec.input_slew)
        assert response is not None
        nominal, weights = response
        assert nominal > 0.0
        assert weights.shape == (12, 4)
        assert np.all(np.isfinite(weights))

    def test_refuses_uncharacterized_slew(self, suite90, lut90):
        line = extract_buffered_line(suite90.proposed.tech,
                                     suite90.proposed.config,
                                     mm(5.0), 12, 24.0)
        assert lut90.mc_response(line, ps(250.0)) is None

    def test_refuses_out_of_grid_line(self, suite90, lut90):
        spec = lut90.artifact.spec
        line = extract_buffered_line(suite90.proposed.tech,
                                     suite90.proposed.config,
                                     mm(5.0), 12,
                                     4.0 * spec.sizes[-1])
        assert lut90.mc_response(line, spec.input_slew) is None
