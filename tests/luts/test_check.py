"""Drift check: clean on a matching model, loud on any change."""

from __future__ import annotations

import dataclasses

from repro.experiments.suite import ModelSuite
from repro.luts.check import check_drift


class TestDriftCheck:
    def test_matching_model_has_zero_drift(self, suite90,
                                           artifact90):
        report = check_drift(suite90.proposed, artifact90, workers=2)
        assert report.calibration_matches
        assert report.max_drift == 0.0
        assert report.within_threshold
        block = report.manifest_block()
        assert block["within_threshold"] is True
        assert block["artifact"] == artifact90.content_hash
        assert set(block["tables"]) == set(artifact90.tables)
        assert "within threshold" in report.format()

    def test_tampered_tables_drift(self, suite90, artifact90):
        tables = dict(artifact90.tables)
        tables["delay"] = tables["delay"] * 1.05
        tampered = dataclasses.replace(artifact90, tables=tables)
        report = check_drift(suite90.proposed, tampered, workers=2)
        assert report.calibration_matches
        assert not report.within_threshold
        assert report.max_drift > 1e-3
        assert "DRIFT EXCEEDS THRESHOLD" in report.format()

    def test_recalibrated_model_mismatches(self, artifact90):
        other = ModelSuite.for_node("65nm").proposed
        report = check_drift(other, artifact90, workers=2)
        assert not report.calibration_matches
        assert not report.within_threshold
