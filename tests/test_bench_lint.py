"""The cold/warm lint bench: record shape and replay identity."""

import json

from repro.bench_lint import run_lint_bench
from repro.bench_registry import load_history


class TestLintBench:
    def test_quick_run_records_cold_and_warm_samples(self, tmp_path):
        output = tmp_path / "BENCH_lint.json"
        history = tmp_path / "history.jsonl"
        status, report = run_lint_bench(
            quick=True, paths=("src/repro/analysis",),
            output=str(output), history=str(history))

        assert report["replay_identical"]
        assert report["cache"]["warm_misses"] == 0
        assert report["cache"]["warm_hits"] \
            == report["cache"]["cold_misses"] > 0
        assert report["warm_wall_s"] < report["cold_wall_s"]
        assert (status == 0) == report["passed"]

        snapshot = json.loads(output.read_text())
        assert snapshot["schema"] == 1
        assert snapshot["files_scanned"] == report["files_scanned"]

        (record,) = load_history(history)
        assert record["suite"] == "lint"
        names = {sample["name"] for sample in record["samples"]}
        assert names == {"lint.cold.wall", "lint.warm.wall"}
