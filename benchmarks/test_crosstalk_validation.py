"""Crosstalk ablation: explicit aggressors vs the Miller abstraction.

Every delay number in this reproduction rests on folding lateral
capacitance into Miller-scaled grounded capacitors.  This benchmark
validates that abstraction against the stronger three-coupled-line
simulation and records the effective Miller factors the explicit
scenarios correspond to.
"""

import pytest

from repro.signoff.crosstalk import (
    crosstalk_delay_bracket,
    effective_miller_factor,
    simulate_coupled_stage,
    AggressorActivity,
)
from repro.signoff.golden import simulate_stage
from repro.units import fF, mm, ps, to_ps


@pytest.fixture(scope="module")
def bracket(suite90):
    length = mm(1.5)
    config = suite90.config
    return dict(
        params=dict(
            tech=suite90.tech,
            driver_size=24.0,
            wire_resistance=config.resistance_per_meter() * length,
            ground_cap=config.ground_capacitance_per_meter() * length,
            coupling_cap=(config.coupling_capacitance_per_meter()
                          * length),
            load_cap=fF(20),
            input_slew=ps(100),
        ),
    )


def test_crosstalk_validation(benchmark, bracket, save_artifact,
                              suite90):
    params = bracket["params"]
    best, quiet, worst = crosstalk_delay_bracket(**params)

    approx_worst = simulate_stage(
        params["tech"], params["driver_size"],
        params["wire_resistance"],
        params["ground_cap"] + 1.9 * params["coupling_cap"],
        params["load_cap"], params["input_slew"], True)
    approx_quiet = simulate_stage(
        params["tech"], params["driver_size"],
        params["wire_resistance"],
        params["ground_cap"] + params["coupling_cap"],
        params["load_cap"], params["input_slew"], True)

    best_factor = effective_miller_factor(quiet.delay, best.delay,
                                          worst.delay)
    lines = [
        "Crosstalk validation: explicit 3-line simulation vs Miller "
        "abstraction (90nm, 1.5mm stage)",
        f"  explicit same-direction : {to_ps(best.delay):7.1f} ps "
        f"(effective Miller {best_factor:+.2f})",
        f"  explicit quiet          : {to_ps(quiet.delay):7.1f} ps "
        f"(Miller 1 by definition)",
        f"  explicit opposite       : {to_ps(worst.delay):7.1f} ps "
        f"(Miller 2 by definition)",
        f"  Miller-1.9 approximation: {to_ps(approx_worst.delay):7.1f} "
        f"ps ({(approx_worst.delay / worst.delay - 1) * 100:+.1f}% vs "
        f"explicit worst)",
        f"  Miller-1.0 approximation: {to_ps(approx_quiet.delay):7.1f} "
        f"ps ({(approx_quiet.delay / quiet.delay - 1) * 100:+.1f}% vs "
        f"explicit quiet)",
    ]
    save_artifact("crosstalk_validation", "\n".join(lines))

    assert best.delay < quiet.delay < worst.delay
    assert approx_worst.delay == pytest.approx(worst.delay, rel=0.12)
    assert approx_quiet.delay == pytest.approx(quiet.delay, rel=0.12)
    # Staggering's Miller-0 assumption: same-direction switching sits
    # well below the quiet case.
    assert best_factor < 0.5

    benchmark.pedantic(
        simulate_coupled_stage,
        kwargs=dict(params, rising_input=True,
                    activity=AggressorActivity.OPPOSITE),
        rounds=1, iterations=1)
