"""Table II: delay-model accuracy vs the golden sign-off flow.

The full paper sweep: lengths {1, 3, 5, 10, 15} mm x nodes
{90, 65, 45} nm x design styles {SWSS, shielded}, with a 300 ps input
transition.  Asserts the paper's accuracy shape: the proposed model
within ~12-15%, the classic models far outside, and the closed-form
evaluation orders of magnitude faster than sign-off.
"""

import pytest

from repro.experiments import table2
from repro.units import mm, ps


@pytest.fixture(scope="module")
def table2_result():
    return table2.run()


def test_table2_accuracy(benchmark, table2_result, save_artifact,
                         suite90):
    save_artifact("table2_accuracy", table2_result.format())

    # The proposed model tracks sign-off within the paper's band.
    assert table2_result.max_abs_error("proposed") < 0.15

    # The classic models show much larger errors somewhere in the
    # sweep (the paper reports a -7%..106% band; sign conventions
    # depend on geometry, magnitude is the claim).
    assert table2_result.max_abs_error("bakoglu") > 0.40
    assert table2_result.max_abs_error("pamunuwa") > 0.15

    # Proposed is the best model on (almost) every row; allow no row
    # where a baseline beats it by more than a small margin.
    for row in table2_result.rows:
        proposed = abs(row.errors["proposed"])
        best_baseline = min(abs(row.errors["bakoglu"]),
                            abs(row.errors["pamunuwa"]))
        assert proposed <= best_baseline + 0.05, row

    # Model evaluation is far faster than the golden flow (the paper's
    # >= 2.1x vs PrimeTime is easily exceeded against simulation).
    assert min(row.runtime_ratio for row in table2_result.rows) > 10

    # Benchmark the proposed model's full-line evaluation kernel.
    benchmark(suite90.proposed.evaluate, mm(10), 12, 32.0, ps(300))
