"""Statistical (within-die) variation vs corner margins.

Corner analysis shifts every device together; within-die variation
perturbs each repeater independently and averages out along the chain.
This benchmark measures both bounds on the same line: the statistical
3-sigma delay sits well inside the slow-corner delay, quantifying how
much margin corner-only signoff wastes on long repeated wires.
"""

import pytest

from repro.buffering.optimizer import optimize_buffering
from repro.experiments.suite import ModelSuite
from repro.signoff.extraction import extract_buffered_line
from repro.signoff.golden import evaluate_buffered_line
from repro.signoff.variation import (
    VariationModel,
    monte_carlo_line_delay,
)
from repro.tech.corners import ProcessCorner, apply_corner
from repro.tech.design_styles import WireConfiguration
from repro.units import mm, ps, to_ps


@pytest.fixture(scope="module")
def study(suite90):
    length = mm(5)
    solution = optimize_buffering(suite90.proposed, length,
                                  delay_weight=0.5)
    count, size = solution.num_repeaters, solution.repeater_size
    line = extract_buffered_line(suite90.tech, suite90.config, length,
                                 count, size)
    nominal = evaluate_buffered_line(line, ps(100)).total_delay

    slow_tech = apply_corner(suite90.tech, ProcessCorner.SLOW)
    slow_config = WireConfiguration.for_style(slow_tech.global_layer,
                                              suite90.config.style)
    slow_line = extract_buffered_line(slow_tech, slow_config, length,
                                      count, size)
    slow = evaluate_buffered_line(slow_line, ps(100)).total_delay

    statistical = monte_carlo_line_delay(
        line, ps(100), samples=24, variation=VariationModel(),
        seed=2010)
    return nominal, slow, statistical


def test_variation_vs_corners(benchmark, study, save_artifact,
                              suite90):
    nominal, slow, statistical = study
    lines = [
        "Within-die variation vs corner margin (90nm, 5mm line)",
        f"  nominal delay          : {to_ps(nominal):7.1f} ps",
        f"  statistical            : {statistical.format()}",
        f"  3-sigma bound          : "
        f"{to_ps(statistical.three_sigma_delay()):7.1f} ps "
        f"({(statistical.three_sigma_delay() / nominal - 1) * 100:+.1f}%"
        f" vs nominal)",
        f"  slow-corner bound      : {to_ps(slow):7.1f} ps "
        f"({(slow / nominal - 1) * 100:+.1f}% vs nominal)",
        "",
        "Corner margin covers die-to-die shifts; within-die variation "
        "averages out over the repeater chain, so the statistical "
        "bound sits well inside the corner bound.",
    ]
    save_artifact("variation_vs_corners", "\n".join(lines))

    # Within-die averaging: the 3-sigma statistical bound is tighter
    # than the slow corner.
    assert statistical.three_sigma_delay() < slow
    assert statistical.sigma_over_mean < 0.05
    assert statistical.mean == pytest.approx(nominal, rel=0.1)

    rng_model = VariationModel()
    import numpy as np
    benchmark(rng_model.perturb_technology, suite90.tech,
              np.random.default_rng(1))
