"""Technology-scaling study across all six Table I nodes.

Not a single paper table, but the trend that motivates the whole paper:
global wires get worse as devices get better.  The benchmark regenerates
the six-node scaling table and asserts the canonical trends.
"""

import pytest

from repro.experiments import scaling
from repro.experiments.suite import ModelSuite
from repro.buffering.optimizer import optimize_buffering
from repro.units import mm


@pytest.fixture(scope="module")
def result():
    return scaling.run()


def test_scaling_study(benchmark, result, save_artifact):
    save_artifact("scaling_study", result.format())

    resistance = result.resistance_trend()
    assert all(b > a for a, b in zip(resistance, resistance[1:]))
    assert resistance[-1] > 20 * resistance[0]

    delay = result.delay_trend()
    assert all(b > a for a, b in zip(delay, delay[1:]))

    feasible = result.feasible_trend()
    assert all(b < a for a, b in zip(feasible, feasible[1:]))
    assert feasible[0] > 10e-3
    assert feasible[-1] < 2e-3

    densities = [row.repeaters_per_mm for row in result.rows]
    assert densities[-1] > 3 * densities[0]

    suite = ModelSuite.for_node("16nm")
    benchmark(optimize_buffering, suite.proposed, mm(5),
              delay_weight=0.8)
