"""Wire sizing with the scattering-aware resistivity model.

Demonstrates the Shi-Pan payoff the paper's wire model enables:
resistance falls superlinearly with width, so co-optimizing wire
geometry with buffering beats buffering alone — with the routing-pitch
cost made explicit.
"""

import pytest

from repro.buffering.optimizer import optimize_buffering
from repro.buffering.wire_sizing import (
    optimize_wire_sizing,
    sizing_frontier,
)
from repro.units import mm, to_ps


@pytest.fixture(scope="module")
def study(suite90):
    length = mm(10)
    frontier = sizing_frontier(suite90.tech, suite90.calibration,
                               suite90.config, length,
                               width_multiples=(1.0, 1.5, 2.0, 3.0))
    base = optimize_buffering(suite90.proposed, length,
                              delay_weight=0.9)
    sized = optimize_wire_sizing(suite90.tech, suite90.calibration,
                                 suite90.config, length,
                                 delay_weight=0.9)
    capped = optimize_wire_sizing(suite90.tech, suite90.calibration,
                                  suite90.config, length,
                                  delay_weight=0.9,
                                  max_pitch_multiple=1.5)
    return length, frontier, base, sized, capped


def test_wire_sizing(benchmark, study, save_artifact, suite90):
    length, frontier, base, sized, capped = study
    lines = [
        f"Wire sizing study ({suite90.tech.name}, "
        f"{length * 1e3:.0f} mm line, delay weight 0.9)",
        f"{'width x':>8} {'R ohm/mm':>9} {'delay ps':>9}",
    ]
    for width_multiple, delay, resistance in frontier:
        lines.append(f"{width_multiple:8.1f} {resistance * 1e-3:9.1f} "
                     f"{to_ps(delay):9.1f}")
    lines.append("")
    lines.append(f"buffering only     : delay {to_ps(base.delay):.0f} ps, "
                 f"power {base.power * 1e3:.3f} mW")
    lines.append(f"with wire sizing   : {sized.describe()}")
    lines.append(f"pitch capped x1.5  : {capped.describe()}")
    save_artifact("wire_sizing", "\n".join(lines))

    # Superlinear resistance payoff.
    r_by_width = {w: r for w, _, r in frontier}
    assert r_by_width[2.0] < 0.5 * r_by_width[1.0]
    # Co-optimization is never worse and picks a wider wire here.
    assert sized.buffering.objective <= base.objective * (1 + 1e-9)
    assert sized.width_multiple > 1.0
    assert capped.pitch_multiple <= 1.5 + 1e-9

    benchmark(optimize_wire_sizing, suite90.tech, suite90.calibration,
              suite90.config, mm(5), 0.9, (1.0, 2.0), (1.0,))
