"""Section IV runtime claim: model vs sign-off evaluation speed.

The paper measures its models at >= 2.1x faster than PrimeTime's delay
calculation over 50 trials.  Our golden reference is a nonlinear
transient simulation, so the measured gap is far larger; the benchmark
records the model-evaluation kernel's absolute speed.
"""

from repro.experiments import runtime
from repro.units import mm, ps


def test_runtime_ratio(benchmark, save_artifact, suite90):
    result = runtime.run(node="90nm", length=mm(5), trials=50,
                         golden_trials=2)
    save_artifact("runtime_ratio", result.format())

    # Paper's bound, and our expected much larger margin.
    assert result.speedup > 2.1
    assert result.speedup > 100

    benchmark(suite90.proposed.evaluate, mm(5), 6, 32.0, ps(300))
