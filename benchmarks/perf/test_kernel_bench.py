"""Scalar-vs-kernel micro-benchmarks with equivalence asserts.

Each benchmark times one vectorized hot path and first checks the
kernel agrees with the scalar reference (≤ 1e-9 relative — in
practice bit-exact), so a perf regression hunt can never silently
trade away correctness.  The ``repro bench`` CLI covers the same
ground end-to-end; these isolate the kernel calls for
pytest-benchmark's statistics.
"""

import numpy as np
import pytest

from repro.bench import EQUIVALENCE_RTOL
from repro.units import mm, ps

SAMPLES = 2000


@pytest.fixture(scope="module")
def line90(suite90):
    from repro.signoff.extraction import extract_buffered_line
    model = suite90.proposed
    return extract_buffered_line(model.tech, model.config, mm(10), 20,
                                 40.0)


def test_line_batch_matches_scalar(benchmark, suite90):
    """One batched call over a size sweep == per-size scalar calls."""
    from repro.kernels import evaluate_line_batch
    model = suite90.proposed
    sizes = np.linspace(4.0, 96.0, 512)
    batch = evaluate_line_batch(model, mm(5), 8, sizes, ps(100))
    scalar = np.array([model.evaluate(mm(5), 8, size, ps(100)).delay
                       for size in sizes])
    np.testing.assert_allclose(batch.delay, scalar,
                               rtol=EQUIVALENCE_RTOL)

    benchmark(evaluate_line_batch, model, mm(5), 8, sizes, ps(100))


def test_monte_carlo_kernel_engine(benchmark, suite90, line90,
                                   save_artifact):
    """Kernel MC engine: bit-equal to the scalar model engine."""
    from repro.signoff.variation import monte_carlo_line_delay
    model = suite90.proposed

    def kernel_mc():
        return monte_carlo_line_delay(line90, ps(100), samples=SAMPLES,
                                      seed=2010, workers=1,
                                      engine="kernel", model=model)

    scalar = monte_carlo_line_delay(line90, ps(100), samples=SAMPLES,
                                    seed=2010, workers=1,
                                    engine="model", model=model)
    kernel = kernel_mc()
    np.testing.assert_allclose(np.array(kernel.samples),
                               np.array(scalar.samples),
                               rtol=EQUIVALENCE_RTOL)
    save_artifact("kernel_monte_carlo", kernel.format())

    benchmark(kernel_mc)


def test_batched_power_search(benchmark, suite90):
    """Batched min-power search returns the scalar optimizer's answer."""
    from repro.buffering.optimizer import minimize_power_under_delay
    model = suite90.proposed
    max_delay = suite90.tech.clock_period()
    scalar = minimize_power_under_delay(model, mm(5), max_delay,
                                        use_kernels=False)
    kernel = minimize_power_under_delay(model, mm(5), max_delay,
                                        use_kernels=True)
    assert scalar == kernel

    benchmark(minimize_power_under_delay, model, mm(5), max_delay,
              use_kernels=True)
