"""Micro-benchmarks for the vectorized kernel layer.

Unlike the table/figure benchmarks one level up, these time the
``repro.kernels`` batch paths against their scalar golden references
and assert equivalence while doing so.  Run with::

    pytest benchmarks/perf/ --benchmark-only
"""
