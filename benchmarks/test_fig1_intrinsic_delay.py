"""Fig. 1: intrinsic delay vs input slew and inverter size.

Regenerates the figure's data series and verifies both claims: near
size-independence and near-quadratic slew dependence.  The benchmarked
kernel is one characterization point (a transient simulation).
"""

from repro.characterization.cells import RepeaterCell, RepeaterKind
from repro.characterization.harness import _measure_point
from repro.experiments import fig1
from repro.tech import get_technology
from repro.units import fF, ps


def test_fig1_intrinsic_delay(benchmark, save_artifact):
    result = fig1.run(
        node="90nm",
        sizes=(4.0, 8.0, 16.0, 32.0, 64.0),
        slews=(ps(20), ps(60), ps(120), ps(240), ps(400)),
        load_factors=(2.0, 6.0, 12.0),
    )
    save_artifact("fig1_intrinsic_delay", result.format())

    # Claim 1: intrinsic delay practically independent of size.
    assert result.size_spread < 0.30
    # Claim 2: near-quadratic dependence on input slew.
    assert result.quadratic_r2 > 0.95

    cell = RepeaterCell(get_technology("90nm"), RepeaterKind.INVERTER,
                        16.0)
    benchmark(_measure_point, cell, ps(100), fF(50), True)
