"""Table III: interconnect-model impact on NoC synthesis.

Full paper sweep: {VPROC, DVOPD} x {90, 65, 45} nm at
{1.5, 2.25, 3.0} GHz, synthesized under the original (Bakoglu) and the
proposed models, with cross-evaluation of the original architecture
under the accurate model.
"""

import pytest

from repro.experiments import table3
from repro.noc.synthesis import synthesize
from repro.noc.testcases import dual_vopd


@pytest.fixture(scope="module")
def table3_result():
    return table3.run()


def test_table3_noc_synthesis(benchmark, table3_result, save_artifact,
                              suite90):
    save_artifact("table3_noc_synthesis", table3_result.format())

    # Headline claims of Section IV:
    # 1. Dynamic power underestimated by the original model, up to ~3x.
    assert table3_result.max_dynamic_ratio() > 2.0
    for case in table3_result.cases:
        assert case.dynamic_power_ratio > 1.3, (case.design, case.node)

    # 2. The original model admits excessively long (non-implementable)
    #    wires somewhere in the sweep.
    assert table3_result.total_infeasible_links() > 0

    # 3. Area is underestimated by the original model everywhere.
    for case in table3_result.cases:
        assert (case.original_accurate.repeater_area
                > 1.5 * case.original_self.repeater_area)

    # 4. The proposed-model architecture never contains links its own
    #    model calls infeasible.
    for case in table3_result.cases:
        assert case.proposed_self.infeasible_links == 0

    # Benchmark kernel: one DVOPD synthesis at 90 nm.
    spec = dual_vopd(suite90.tech)
    benchmark.pedantic(
        synthesize, args=(spec, suite90.proposed, suite90.tech),
        rounds=1, iterations=1)
