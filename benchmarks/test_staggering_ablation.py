"""Section III-D ablation: staggered repeater insertion.

Reproduces the "~20% power for just above 2% delay" trade across
nodes and line lengths, and benchmarks the staggering comparison.
"""

import pytest

from repro.buffering.staggering import compare_staggering
from repro.experiments import staggering
from repro.units import mm


@pytest.fixture(scope="module")
def staggering_result():
    return staggering.run()


def test_staggering_ablation(benchmark, staggering_result,
                             save_artifact, suite90):
    save_artifact("staggering_ablation", staggering_result.format())

    # Power falls noticeably at a delay penalty bounded by the budget.
    assert 0.08 < staggering_result.mean_saving() < 0.40
    assert staggering_result.mean_penalty() <= 0.025 + 1e-9
    for row in staggering_result.rows:
        assert row.comparison.power_saving > 0, (row.node, row.length)

    benchmark(compare_staggering, suite90.proposed, mm(5))
