"""Corner sensitivity: the guard-band experiment.

The paper's introduction: accurate early models exist to "reduce design
guard band".  This benchmark measures the guard band directly — a link
designed at the typical corner is re-simulated (golden flow) at the
slow and fast corners — and benchmarks the corner-derating kernel.
"""

import pytest

from repro.experiments import corners
from repro.tech.corners import ProcessCorner, apply_corner
from repro.units import mm


@pytest.fixture(scope="module")
def results():
    return {node: corners.run(node=node, length=mm(5))
            for node in ("90nm", "45nm")}


def test_corner_guard_band(benchmark, results, save_artifact, suite90):
    artifact = "\n\n".join(results[node].format()
                           for node in ("90nm", "45nm"))
    save_artifact("corner_guard_band", artifact)

    for node, result in results.items():
        rows = result.rows
        assert rows[ProcessCorner.FAST].delay < \
            rows[ProcessCorner.TYPICAL].delay < \
            rows[ProcessCorner.SLOW].delay, node
        assert 0.05 < result.delay_guard_band() < 0.40, node
        assert result.leakage_ratio() > 1.5, node

    benchmark(apply_corner, suite90.tech, ProcessCorner.SLOW)
