"""Benchmark harness plumbing.

Every benchmark regenerates one of the paper's tables or figures,
asserts its qualitative claims, writes the full artifact to
``benchmarks/results/<name>.txt``, and times a representative kernel
with pytest-benchmark.  Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).resolve().parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def save_artifact(results_dir):
    """Writer: persist a rendered table/figure and echo it."""
    def writer(name: str, text: str) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n===== {name} (saved to {path}) =====")
        print(text)
    return writer


@pytest.fixture(scope="session")
def suite90():
    from repro.experiments.suite import ModelSuite
    return ModelSuite.for_node("90nm")
