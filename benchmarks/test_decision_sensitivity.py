"""Decision sensitivity: the study the paper says was missing.

"There has not been any study of the sensitivity of system-level
decisions to the accuracy of these models" (Section I).  This benchmark
runs that study: the accurate model's wire-parasitic view is scaled
from strongly optimistic (the Bakoglu direction) to pessimistic, the
NoC is re-synthesized at each point, and every architecture is costed
by the unperturbed model.  The regret curve quantifies how much model
error actually costs at the system level — and where the cliff is
(feasibility violations).
"""

import pytest

from repro.experiments import sensitivity
from repro.noc.testcases import vproc


@pytest.fixture(scope="module")
def study():
    return sensitivity.run(node="45nm", spec_factory=vproc,
                           scales=(0.4, 0.6, 0.8, 1.0, 1.3))


def test_decision_sensitivity(benchmark, study, save_artifact, suite90):
    save_artifact("decision_sensitivity", study.format())

    baseline = study.baseline_row()
    assert baseline.regret == pytest.approx(0.0, abs=1e-9)

    # The strongly optimistic model (Bakoglu-magnitude error) pays:
    worst = study.rows[0]
    assert worst.scale == 0.4
    assert worst.estimation_error < -0.15   # believes it's much cheaper
    assert worst.regret > 0.05              # its architecture costs more
    assert worst.actual.infeasible_links > 0  # and is unbuildable
    assert worst.topology_similarity < 1.0

    # Mild errors are absorbed by the synthesis: regret stays small.
    for row in study.rows:
        if 0.6 <= row.scale <= 1.3:
            assert row.regret < 0.05, row.scale

    benchmark(sensitivity.perturb_wire_view, suite90.config, 0.5)
