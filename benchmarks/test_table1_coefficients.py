"""Table I: fitting coefficients for six technologies.

Regenerates the coefficient table for all six nodes (both repeater
kinds for the default slew form) and benchmarks the calibration kernel
— the regression fit on an already-characterized library.
"""

import pytest

from repro.characterization import (
    CharacterizationGrid,
    RepeaterKind,
    characterize_library,
)
from repro.experiments import table1
from repro.models.calibration import calibrate_from_library
from repro.tech import get_technology
from repro.units import ps


@pytest.fixture(scope="module")
def table1_result():
    return table1.run()


def test_table1_coefficients(benchmark, table1_result, save_artifact,
                             suite90):
    buffers = table1.run(kind=RepeaterKind.BUFFER)
    artifact = (table1_result.format() + "\n" + buffers.format())
    save_artifact("table1_coefficients", artifact)

    # Shape claims: the fitted functional forms hold on every node.
    for node, quality in table1_result.fit_quality_summary().items():
        assert quality["intrinsic_rise"] > 0.85, node
        assert quality["drive_rise"] > 0.95, node
        assert quality["leakage"] > 0.99, node
        assert quality["area"] > 0.99, node

    # Drive resistance must fall as nodes scale (stronger devices per
    # micron), while intrinsic a0 falls with faster devices.
    b0_values = [table1_result.calibrations[n].fall.drive[0]
                 for n in ("90nm", "45nm", "16nm")]
    assert b0_values[0] > b0_values[-1]

    # Benchmark: the regression step on a small characterized library.
    grid = CharacterizationGrid(sizes=(8.0, 32.0),
                                input_slews=(ps(40), ps(160), ps(320)),
                                load_factors=(2.0, 8.0, 24.0))
    library = characterize_library(get_technology("90nm"),
                                   RepeaterKind.INVERTER, grid)
    benchmark(calibrate_from_library, library)
