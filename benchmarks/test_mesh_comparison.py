"""Custom-synthesized NoC vs the standard 2D mesh.

The comparison COSI-style synthesis is traditionally judged by:
application-specific topologies should beat the regular mesh on
interconnect power and average hops for these irregular workloads.
"""

import pytest

from repro.experiments.suite import ModelSuite
from repro.noc.evaluation import NocReport, evaluate_topology
from repro.noc.mesh import build_mesh
from repro.noc.synthesis import synthesize
from repro.noc.testcases import dual_vopd, vproc


@pytest.fixture(scope="module")
def comparison():
    suite = ModelSuite.for_node("90nm")
    rows = []
    for name, factory in (("DVOPD", dual_vopd), ("VPROC", vproc)):
        spec = factory(suite.tech)
        custom = synthesize(spec, suite.proposed, suite.tech)
        mesh = build_mesh(spec)
        rows.append((
            name,
            evaluate_topology(custom, suite.proposed, suite.tech,
                              label=f"{name}/custom"),
            evaluate_topology(mesh, suite.proposed, suite.tech,
                              label=f"{name}/mesh"),
        ))
    return rows


def test_mesh_comparison(benchmark, comparison, save_artifact, suite90):
    lines = ["Custom-synthesized topology vs standard 2D mesh (90nm)",
             "", NocReport.header()]
    for name, custom, mesh in comparison:
        lines.append(custom.row())
        lines.append(mesh.row())
        ratio = mesh.total_power / custom.total_power
        lines.append(f"  mesh costs {ratio:.2f}x the power of the "
                     f"synthesized topology")
        lines.append("")
    save_artifact("mesh_comparison", "\n".join(lines))

    for name, custom, mesh in comparison:
        assert custom.total_power < mesh.total_power, name
        assert custom.avg_hops <= mesh.avg_hops, name
        # The mesh's XY routes must still be feasible links.
        assert mesh.infeasible_links == 0, name

    spec = dual_vopd(suite90.tech)
    benchmark(build_mesh, spec)
