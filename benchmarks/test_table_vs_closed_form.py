"""Closed forms vs raw NLDM table lookup.

The paper's pitch is that *simple* closed forms lose little against
detailed references.  This ablation quantifies "little" against the
strongest practical alternative: bilinear interpolation of the full
characterized tables (what a production timer does).  Also measures the
compression: a Table I coefficient set vs the full NLDM data volume.
"""

import pytest

from repro.characterization import CharacterizationGrid, RepeaterKind, \
    characterize_library
from repro.models.table_model import TableInterconnectModel
from repro.signoff import evaluate_buffered_line, extract_buffered_line
from repro.units import mm, ps, to_ps


@pytest.fixture(scope="module")
def comparison(suite90):
    grid = CharacterizationGrid(
        sizes=(8.0, 16.0, 32.0, 64.0),
        input_slews=(ps(30), ps(80), ps(160), ps(320)),
        load_factors=(2.0, 4.0, 8.0, 16.0, 32.0),
    )
    library = characterize_library(suite90.tech,
                                   RepeaterKind.INVERTER, grid)
    table_model = TableInterconnectModel(library=library,
                                         config=suite90.config)
    rows = []
    for length_mm, count in ((1, 2), (5, 5), (10, 10)):
        length = mm(length_mm)
        line = extract_buffered_line(suite90.tech, suite90.config,
                                     length, count, 32.0)
        golden = evaluate_buffered_line(line, ps(300)).total_delay
        table_delay = table_model.evaluate(length, count, 32.0,
                                           ps(300)).delay
        closed_delay = suite90.proposed.evaluate(length, count, 32.0,
                                                 ps(300)).delay
        rows.append((length_mm, golden, table_delay, closed_delay))

    table_points = sum(
        2 * 2 * len(grid.input_slews) * len(grid.load_factors)
        for _ in grid.sizes)   # 2 tables x 2 directions per cell
    closed_coefficients = 2 * (3 + 2 + 3) + 1 + 4 + 2  # Table I set
    return table_model, rows, table_points, closed_coefficients


def test_table_vs_closed_form(benchmark, comparison, save_artifact,
                              suite90):
    table_model, rows, table_points, closed_coefficients = comparison
    lines = [
        "NLDM table lookup vs Table I closed forms (90nm, size 32, "
        "300 ps input)",
        f"{'L mm':>5} {'golden ps':>10} {'table %':>8} {'closed %':>9}",
    ]
    for length_mm, golden, table_delay, closed_delay in rows:
        table_error = (table_delay - golden) / golden
        closed_error = (closed_delay - golden) / golden
        lines.append(f"{length_mm:5d} {to_ps(golden):10.1f} "
                     f"{table_error * 100:+8.1f} "
                     f"{closed_error * 100:+9.1f}")
    lines.append("")
    lines.append(f"data volume: {table_points} NLDM table points vs "
                 f"{closed_coefficients} closed-form coefficients "
                 f"({table_points / closed_coefficients:.0f}x "
                 f"compression)")
    save_artifact("table_vs_closed_form", "\n".join(lines))

    for length_mm, golden, table_delay, closed_delay in rows:
        assert abs(table_delay - golden) / golden < 0.15
        assert abs(closed_delay - golden) / golden < 0.15

    benchmark(table_model.evaluate, mm(5), 5, 32.0, ps(300))
