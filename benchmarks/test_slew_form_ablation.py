"""Designed ablation: the published output-slew form vs size-scaled.

The paper states the load slope of the output-slew model is
independent of repeater size.  On our characterization data that form
fits poorly (low R^2) while the size-scaled variant fits well; both,
however, keep the end-to-end delay model inside the paper's accuracy
band.  This ablation quantifies the difference.
"""

import pytest

from repro.experiments.suite import ModelSuite
from repro.models.calibration import OutputSlewForm
from repro.signoff import evaluate_buffered_line, extract_buffered_line
from repro.tech import DesignStyle
from repro.units import mm, ps


@pytest.fixture(scope="module")
def ablation():
    lengths = (mm(1), mm(5), mm(15))
    rows = []
    goldens = {}
    for form in (OutputSlewForm.PAPER, OutputSlewForm.SIZE_SCALED):
        suite = ModelSuite.for_node("90nm", slew_form=form)
        for length in lengths:
            count = max(2, round(length / mm(1)))
            size = 32.0
            key = length
            if key not in goldens:
                line = extract_buffered_line(
                    suite.tech, suite.config, length, count, size)
                goldens[key] = evaluate_buffered_line(
                    line, ps(300)).total_delay
            estimate = suite.proposed.evaluate(length, count, size,
                                               ps(300))
            error = (estimate.delay - goldens[key]) / goldens[key]
            rows.append((form, length, error,
                         suite.calibration.rise.slew_r2))
    return rows


def test_slew_form_ablation(benchmark, ablation, save_artifact):
    lines = [
        "Ablation — output-slew model form (90nm, size 32, 300 ps)",
        f"{'form':<13} {'L mm':>5} {'delay err %':>12} {'slew R2':>9}",
    ]
    for form, length, error, r2 in ablation:
        lines.append(f"{form.value:<13} {length * 1e3:5.0f} "
                     f"{error * 100:+12.1f} {r2:9.4f}")
    save_artifact("slew_form_ablation", "\n".join(lines))

    paper_rows = [r for r in ablation if r[0] is OutputSlewForm.PAPER]
    scaled_rows = [r for r in ablation
                   if r[0] is OutputSlewForm.SIZE_SCALED]
    # The size-scaled form fits the slew data far better...
    assert scaled_rows[0][3] > paper_rows[0][3] + 0.2
    # ...and both keep the delay model inside the paper's band.
    assert max(abs(r[2]) for r in ablation) < 0.15
    # The size-scaled variant is at least as accurate end-to-end.
    assert (max(abs(r[2]) for r in scaled_rows)
            <= max(abs(r[2]) for r in paper_rows) + 0.01)

    suite = ModelSuite.for_node("90nm",
                                slew_form=OutputSlewForm.SIZE_SCALED)
    benchmark(suite.proposed.evaluate, mm(5), 6, 32.0, ps(300))
