"""Section IV: leakage (<11%) and area (<8%) model accuracy.

Checks the calibrated linear leakage and area models against freshly
characterized references on the paper's INVD4..INVD20 size set, for
the three nodes with "industry" libraries in the paper.
"""

import pytest

from repro.experiments import leakage_area
from repro.models.power import repeater_leakage_power


@pytest.fixture(scope="module")
def results():
    return {node: leakage_area.run(node)
            for node in ("90nm", "65nm", "45nm")}


def test_leakage_area_accuracy(benchmark, results, save_artifact,
                               suite90):
    artifact = "\n\n".join(results[node].format()
                           for node in ("90nm", "65nm", "45nm"))
    save_artifact("leakage_area_accuracy", artifact)

    for node, result in results.items():
        assert result.max_leakage_error() < 0.11, node
        assert result.max_area_error() < 0.08, node

    benchmark(repeater_leakage_power, suite90.tech,
              suite90.calibration, 16.0)
