#!/usr/bin/env python
"""Regenerate src/repro/models/_fitted_data.py.

Runs the full characterization + calibration pipeline for every
built-in technology node, both repeater kinds, and both output-slew
forms, then writes the coefficient dictionaries into the generated
module.  Takes several minutes (hundreds of transient simulations per
node).
"""

from __future__ import annotations

import pprint
import sys
import time
from pathlib import Path

from repro.characterization import RepeaterKind, characterize_library
from repro.models.calibration import OutputSlewForm, calibrate_from_library
from repro.tech import available_nodes, get_technology

OUTPUT = Path(__file__).resolve().parents[1] / "src" / "repro" / \
    "models" / "_fitted_data.py"

HEADER = '''"""Pre-fitted calibration coefficients for the built-in technologies.

GENERATED FILE — regenerate with::

    python scripts/generate_fitted_coefficients.py

Keys are ``(technology name, repeater kind, output-slew form)``; values
are :meth:`repro.models.calibration.CalibratedTechnology.to_dict`
payloads.  An empty mapping simply means calibration runs from scratch
(slower but identical results); tests verify that regenerating a node
reproduces the cached values.
"""

FITTED = '''


def main() -> int:
    fitted = {}
    for node in available_nodes():
        tech = get_technology(node)
        for kind in (RepeaterKind.INVERTER, RepeaterKind.BUFFER):
            started = time.perf_counter()
            library = characterize_library(tech, kind)
            for form in (OutputSlewForm.PAPER, OutputSlewForm.SIZE_SCALED):
                calibration = calibrate_from_library(library,
                                                     slew_form=form)
                key = (node, kind.value, form.value)
                fitted[key] = calibration.to_dict()
            print(f"{node} {kind.value}: "
                  f"{time.perf_counter() - started:.0f}s",
                  flush=True)

    body = pprint.pformat(fitted, width=78, sort_dicts=True)
    OUTPUT.write_text(HEADER + body + "\n")
    print(f"wrote {OUTPUT} ({len(fitted)} entries)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
