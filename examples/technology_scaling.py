#!/usr/bin/env python
"""Technology scaling of global interconnect, 90 nm to 16 nm.

Prints the scaling table (wire resistance, optimally buffered delay,
repeater density, energy, feasible one-cycle link length) across all
six Table I nodes — the trend that motivates both the paper's accurate
models and the move to NoCs.

Run:  python examples/technology_scaling.py [length_mm]
"""

import sys

from repro.experiments import scaling
from repro.units import mm


def main() -> None:
    length = mm(float(sys.argv[1])) if len(sys.argv) > 1 else mm(5)
    result = scaling.run(length=length)
    print(result.format())

    feasible = result.feasible_trend()
    shrink = feasible[0] / feasible[-1]
    print(f"\nThe one-cycle-feasible link length shrinks {shrink:.0f}x "
          f"from 90 nm to 16 nm — long transfers must be packetized "
          f"over routers, and admitting an infeasible wire (as the "
          f"optimistic classic models do) produces unbuildable designs.")


if __name__ == "__main__":
    main()
