#!/usr/bin/env python
"""NoC synthesis for a SoC: the COSI-OCC experiment (Table III).

Synthesizes the on-chip network for the dual-VOPD (26 cores) or VPROC
(42 cores) test case under both the original (Bakoglu) and the
proposed interconnect models, then cross-evaluates the original
architecture under the accurate model — revealing the underestimated
power and the non-implementable long wires.

Run:  python examples/noc_synthesis.py [vproc|dvopd] [node]
"""

import sys

from repro.experiments.suite import ModelSuite
from repro.noc import dual_vopd, evaluate_topology, synthesize, vproc
from repro.noc.evaluation import NocReport


def main() -> None:
    design = sys.argv[1] if len(sys.argv) > 1 else "dvopd"
    node = sys.argv[2] if len(sys.argv) > 2 else "90nm"
    factory = vproc if design.lower() == "vproc" else dual_vopd

    suite = ModelSuite.for_node(node)
    spec = factory(suite.tech)
    print(f"=== {spec.name} @ {node}: {spec.num_cores} cores, "
          f"{len(spec.flows)} flows, "
          f"{spec.total_bandwidth() / 8e9:.1f} GB/s total ===\n")

    print("synthesizing with the original (Bakoglu) model ...")
    original = synthesize(spec, suite.bakoglu, suite.tech)
    print("  " + original.summary())
    print("synthesizing with the proposed model ...")
    proposed = synthesize(spec, suite.proposed, suite.tech)
    print("  " + proposed.summary())

    print("\n" + NocReport.header())
    original_self = evaluate_topology(original, suite.bakoglu,
                                      suite.tech,
                                      label="original/self")
    original_accurate = evaluate_topology(original, suite.proposed,
                                          suite.tech,
                                          label="original/accurate")
    proposed_self = evaluate_topology(proposed, suite.proposed,
                                      suite.tech,
                                      label="proposed/self")
    for report in (original_self, original_accurate, proposed_self):
        print(report.row())

    ratio = (original_accurate.dynamic_power
             / original_self.dynamic_power)
    print(f"\nThe original model underestimates dynamic power "
          f"{ratio:.2f}x; {original_accurate.infeasible_links} of its "
          f"links are too long to implement at this clock.")


if __name__ == "__main__":
    main()
