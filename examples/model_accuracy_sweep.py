#!/usr/bin/env python
"""Model-accuracy sweep: a compact Table II on one node.

For each wire length, builds the placed buffered line, runs the golden
sign-off evaluation, and prints the relative error of all three
closed-form models (Bakoglu / Pamunuwa / proposed) — the paper's
validation experiment in miniature.

Run:  python examples/model_accuracy_sweep.py [node]
"""

import sys

from repro.experiments import table2
from repro.tech import DesignStyle
from repro.units import mm


def main() -> None:
    node = sys.argv[1] if len(sys.argv) > 1 else "90nm"
    result = table2.run(
        nodes=(node,),
        lengths=(mm(1), mm(3), mm(5), mm(10), mm(15)),
        styles=(DesignStyle.SWSS,),
    )
    print(result.format())
    print()
    low, high = result.error_range("proposed")
    print(f"Proposed model error band on {node}: "
          f"{low * 100:+.1f}% .. {high * 100:+.1f}% "
          f"(paper claims within ~12% of sign-off).")


if __name__ == "__main__":
    main()
