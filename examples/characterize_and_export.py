#!/usr/bin/env python
"""Characterize a repeater library and export industry-format files.

The paper's Section III-E flow end to end: sweep the circuit simulator
over a (size x slew x load) grid, fit the Table I coefficients by
regression, and write the artifacts a real flow would exchange —
a Liberty timing library, a LEF technology file, and the SPEF
parasitics of an extracted buffered line.

Run:  python examples/characterize_and_export.py [node] [outdir]
(The default reduced grid keeps the run under a minute.)
"""

import sys
from pathlib import Path

from repro.characterization import (
    CharacterizationGrid,
    RepeaterKind,
    characterize_library,
    library_to_liberty,
)
from repro.characterization.harness import describe_library
from repro.models.calibration import (
    calibrate_from_library,
    describe_coefficients,
)
from repro.signoff.extraction import extract_buffered_line
from repro.signoff.spef import dumps_spef, line_to_spef
from repro.tech import DesignStyle, WireConfiguration, get_technology
from repro.tech import lef, liberty
from repro.units import mm, ps


def main() -> None:
    node = sys.argv[1] if len(sys.argv) > 1 else "90nm"
    outdir = Path(sys.argv[2] if len(sys.argv) > 2 else "build/export")
    outdir.mkdir(parents=True, exist_ok=True)
    tech = get_technology(node)

    # 1. Characterize a small inverter library (reduced grid).
    grid = CharacterizationGrid(
        sizes=(4.0, 8.0, 16.0, 32.0),
        input_slews=(ps(30), ps(100), ps(300)),
        load_factors=(2.0, 8.0, 24.0),
    )
    print(f"characterizing {len(grid.sizes)} cells at {node} ...")
    library = characterize_library(tech, RepeaterKind.INVERTER, grid)
    print(describe_library(library))

    # 2. Fit the predictive-model coefficients (Table I).
    calibration = calibrate_from_library(library)
    print("\n" + describe_coefficients(calibration))

    # 3. Export Liberty, LEF and SPEF.
    liberty_path = outdir / f"repeaters_{node}.lib"
    liberty_path.write_text(liberty.dumps(library_to_liberty(library)))
    lef_path = outdir / f"{node}.lef"
    lef_path.write_text(lef.dumps(lef.from_technology(tech)))
    config = WireConfiguration.for_style(tech.global_layer,
                                         DesignStyle.SWSS)
    line = extract_buffered_line(tech, config, mm(5), 5, 16.0)
    spef_path = outdir / f"line5mm_{node}.spef"
    spef_path.write_text(dumps_spef(line_to_spef(line)))

    print(f"\nwrote {liberty_path}\nwrote {lef_path}\nwrote {spef_path}")


if __name__ == "__main__":
    main()
