#!/usr/bin/env python
"""Link design exploration: delay/power trade-offs and staggering.

Walks the buffering design space of a 10 mm global link the way a
system-level designer would (Section III-D of the paper):

1. sweep the delay-power weighting from delay-optimal to power-lean;
2. compare against the classic closed-form delay-optimal prescription
   (and see why its sizes are "never used in practice");
3. apply staggered insertion and harvest the Miller slack as power.

Run:  python examples/link_design_explorer.py [node] [length_mm]
"""

import sys

from repro.buffering import (
    compare_staggering,
    delay_optimal_buffering,
    optimize_buffering,
)
from repro.experiments.suite import ModelSuite
from repro.units import mm, to_mw, to_ps


def main() -> None:
    node = sys.argv[1] if len(sys.argv) > 1 else "90nm"
    length = mm(float(sys.argv[2])) if len(sys.argv) > 2 else mm(10)
    suite = ModelSuite.for_node(node)
    print(f"=== {length * 1e3:.0f} mm global link @ {node} "
          f"(clock {suite.tech.clock_frequency / 1e9:.2f} GHz) ===\n")

    # 1. The weighted delay-power frontier.
    print("weight   n   size   delay ps   power mW   (delay^w*power^(1-w))")
    for weight in (1.0, 0.8, 0.6, 0.4, 0.2):
        solution = optimize_buffering(suite.proposed, length,
                                      delay_weight=weight)
        print(f"  {weight:4.1f}  {solution.num_repeaters:3d} "
              f"{solution.repeater_size:6.1f} "
              f"{to_ps(solution.delay):9.1f} "
              f"{to_mw(solution.power):9.3f}")

    # 2. Classic closed-form delay-optimal buffering.
    closed = delay_optimal_buffering(suite.tech, suite.calibration,
                                     suite.config, length)
    print(f"\nclosed-form delay-optimal: {closed.num_repeaters} "
          f"repeaters of size x{closed.repeater_size:.0f} — "
          f"sizes this large are never used in practice, which is why "
          f"the search-based optimizer exists.")

    # 3. Staggered insertion (Miller factor -> 0 for delay).
    comparison = compare_staggering(suite.proposed, length)
    print(f"\nstaggered insertion: {comparison.power_saving * 100:.1f}% "
          f"power saved at {comparison.delay_penalty * 100:+.2f}% delay "
          f"(paper: ~20% for just above 2%)")
    normal, staggered = comparison.normal, comparison.staggered
    print(f"  normal   : n={normal.num_repeaters} "
          f"size=x{normal.repeater_size:.0f} "
          f"delay={to_ps(normal.delay):.0f} ps "
          f"power={to_mw(normal.power):.3f} mW")
    print(f"  staggered: n={staggered.num_repeaters} "
          f"size=x{staggered.repeater_size:.0f} "
          f"delay={to_ps(staggered.delay):.0f} ps "
          f"power={to_mw(staggered.power):.3f} mW")


if __name__ == "__main__":
    main()
