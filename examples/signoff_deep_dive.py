#!/usr/bin/env python
"""Sign-off deep dive: five delay engines on one buffered line.

A tour of the verification stack under the models.  One 5 mm buffered
line is evaluated by every engine in the repository, from cheapest to
most detailed, with crosstalk and process variation on top:

1. the proposed closed-form model (microseconds);
2. AWE two-pole moment matching of the RC network;
3. the stage-based golden simulation (what Table II trusts);
4. the monolithic whole-line simulation (no stage abstraction at all);
5. explicit three-coupled-line crosstalk simulation of one stage;
6. Monte-Carlo within-die variation of the whole line.

Run:  python examples/signoff_deep_dive.py [node]
"""

import sys

from repro.buffering import optimize_buffering
from repro.experiments.suite import ModelSuite
from repro.signoff import (
    RCTree,
    evaluate_buffered_line,
    extract_buffered_line,
    rc_tree_moments,
    two_pole_delay,
)
from repro.signoff.crosstalk import crosstalk_delay_bracket
from repro.signoff.fullline import evaluate_full_line
from repro.signoff.variation import monte_carlo_line_delay
from repro.units import mm, ps, to_ps


def main() -> None:
    node = sys.argv[1] if len(sys.argv) > 1 else "90nm"
    suite = ModelSuite.for_node(node)
    length, input_slew = mm(5), ps(100)

    buffering = optimize_buffering(suite.proposed, length,
                                   delay_weight=0.5)
    count, size = buffering.num_repeaters, buffering.repeater_size
    line = extract_buffered_line(suite.tech, suite.config, length,
                                 count, size)
    print(f"{length * 1e3:.0f} mm line @ {node}: {count} repeaters "
          f"x{size:.0f}\n")

    # 1. Closed-form model.
    model_delay = suite.proposed.evaluate(length, count, size,
                                          input_slew).delay
    print(f"1. closed-form model      : {to_ps(model_delay):7.1f} ps")

    # 2. AWE on the wire network of one stage, plus the model's gate
    #    parts — a cheap sanity screen.
    repeater = suite.proposed.repeater_model()
    segment = line.stages[0].wire
    caps = [segment.total_cap(suite.config.delay_miller) / 8] * 7 \
        + [segment.total_cap(suite.config.delay_miller) / 16]
    tree = RCTree.chain([segment.resistance / 8] * 8, caps)
    tree.add_cap(8, line.stage_load_cap(0))
    m1, m2 = rc_tree_moments(
        tree, driver_resistance=repeater.drive_resistance(size,
                                                          input_slew))
    awe_stage = two_pole_delay(float(m1[8]), float(m2[8]))
    print(f"2. AWE (per-stage RC)     : {to_ps(awe_stage):7.1f} ps "
          f"x {count} stages ~ {to_ps(awe_stage * count):7.1f} ps")

    # 3. Stage-based golden simulation.
    golden = evaluate_buffered_line(line, input_slew)
    print(f"3. golden (stage-based)   : "
          f"{to_ps(golden.total_delay):7.1f} ps")

    # 4. Monolithic whole-line simulation.
    monolithic = evaluate_full_line(line, input_slew)
    print(f"4. monolithic simulation  : "
          f"{to_ps(monolithic.total_delay):7.1f} ps "
          f"({monolithic.node_count} nodes in one circuit)")

    # 5. Explicit crosstalk bracket on the first stage.
    best, quiet, worst = crosstalk_delay_bracket(
        suite.tech, size, segment.resistance, segment.ground_cap,
        segment.coupling_cap, line.stage_load_cap(0), input_slew)
    print(f"5. stage crosstalk bracket: same {to_ps(best.delay):6.1f} "
          f"/ quiet {to_ps(quiet.delay):6.1f} "
          f"/ opposite {to_ps(worst.delay):6.1f} ps")

    # 6. Within-die variation.
    variation = monte_carlo_line_delay(line, input_slew, samples=16)
    print(f"6. within-die Monte-Carlo : {variation.format()}")

    error = (model_delay - golden.total_delay) / golden.total_delay
    print(f"\nclosed form vs golden: {error * 100:+.1f}% — the paper's "
          f"Table II agreement, with the entire evidence chain above "
          f"it.")


if __name__ == "__main__":
    main()
