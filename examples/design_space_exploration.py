#!/usr/bin/env python
"""Full NoC design-space exploration for one SoC.

Combines the system-level facilities into a single architect's session:

1. sketch the floorplan,
2. synthesize a custom topology and render it,
3. compare against the standard 2D mesh,
4. sweep the flit width for the cheapest feasible design point.

Run:  python examples/design_space_exploration.py [node]
"""

import sys

from repro.experiments.suite import ModelSuite
from repro.noc import (
    build_mesh,
    dual_vopd,
    evaluate_topology,
    explore_widths,
    synthesize,
)
from repro.noc.evaluation import NocReport
from repro.noc.visualization import render_floorplan, render_topology


def main() -> None:
    node = sys.argv[1] if len(sys.argv) > 1 else "90nm"
    suite = ModelSuite.for_node(node)
    spec = dual_vopd(suite.tech)

    # 1. The floorplan we are synthesizing for.
    print(render_floorplan(spec))

    # 2. Custom constraint-driven topology.
    custom = synthesize(spec, suite.proposed, suite.tech)
    print("\n--- synthesized topology ---")
    print(render_topology(custom, max_links=12))

    # 3. Mesh baseline.
    mesh = build_mesh(spec)
    custom_report = evaluate_topology(custom, suite.proposed,
                                      suite.tech, label="custom")
    mesh_report = evaluate_topology(mesh, suite.proposed, suite.tech,
                                    label="mesh")
    print("\n--- custom vs 2D mesh ---")
    print(NocReport.header())
    print(custom_report.row())
    print(mesh_report.row())
    ratio = mesh_report.total_power / custom_report.total_power
    print(f"mesh costs {ratio:.2f}x the synthesized topology's power")

    # 4. Flit-width sweep.
    print("\n--- flit-width exploration ---")
    exploration = explore_widths(spec, suite.proposed, suite.tech,
                                 widths=(32, 64, 128, 256))
    print(exploration.format())


if __name__ == "__main__":
    main()
