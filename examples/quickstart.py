#!/usr/bin/env python
"""Quickstart: model one global buffered interconnect.

Builds the proposed predictive model for the 65 nm node, evaluates a
5 mm global bus link, compares against the classic Bakoglu estimate,
and verifies the prediction against the golden sign-off flow (the
nonlinear transient simulation) — the core loop of the paper in ~40
lines of API.

Run:  python examples/quickstart.py
"""

from repro.experiments.suite import ModelSuite
from repro.buffering import optimize_buffering
from repro.signoff import evaluate_buffered_line, extract_buffered_line
from repro.units import mm, ps, to_mw, to_ps


def main() -> None:
    # One call loads the technology node, its calibrated model
    # coefficients (Table I) and all three interconnect models.
    suite = ModelSuite.for_node("65nm")
    length = mm(5)

    # 1. Pick a practical buffering: weighted delay-power optimum.
    buffering = optimize_buffering(suite.proposed, length,
                                   delay_weight=0.5)
    count, size = buffering.num_repeaters, buffering.repeater_size
    print(f"5 mm link @ 65nm: {count} repeaters of size x{size:.0f}")

    # 2. Evaluate it with the proposed model and the classic baseline.
    proposed = suite.proposed.evaluate(length, count, size, ps(300))
    bakoglu = suite.bakoglu.evaluate(length, count, size, ps(300))
    print(f"proposed model : delay {to_ps(proposed.delay):7.1f} ps, "
          f"power {to_mw(proposed.total_power):6.3f} mW")
    print(f"bakoglu model  : delay {to_ps(bakoglu.delay):7.1f} ps, "
          f"power {to_mw(bakoglu.total_power):6.3f} mW")

    # 3. Check against sign-off: extract the placed line and simulate.
    line = extract_buffered_line(suite.tech, suite.config, length,
                                 count, size)
    golden = evaluate_buffered_line(line, ps(300))
    print(f"golden sign-off: delay {to_ps(golden.total_delay):7.1f} ps "
          f"({golden.num_stages} stages simulated)")

    error = (proposed.delay - golden.total_delay) / golden.total_delay
    classic_error = (bakoglu.delay - golden.total_delay) \
        / golden.total_delay
    print(f"\nproposed error {error * 100:+.1f}% vs classic "
          f"{classic_error * 100:+.1f}% — the paper's Table II in one "
          f"line.")


if __name__ == "__main__":
    main()
