"""Post-synthesis improvement: rip-up and re-route.

The greedy constructive synthesis routes flows in bandwidth order, so
early flows commit links without knowing what later flows will need.
The classic remedy is an improvement loop: repeatedly remove one flow
from the network, re-route it against the *final* residual network
(where sharing opportunities are now visible), and keep the change if
the total cost dropped.

The loop is deterministic (flows are revisited in a fixed order),
monotone (a pass never increases the evaluated power), and terminates
when a full pass makes no improvement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.noc.evaluation import evaluate_topology
from repro.noc.link import LinkDesigner
from repro.noc.router import RouterParameters
from repro.noc.spec import CommunicationSpec
from repro.noc.synthesis import (
    SynthesisConfig,
    _candidate_edges,
    _commit_path,
    _hop_budget,
    _route_one_flow,
)
from repro.noc.topology import NocTopology, NodeId
from repro.runtime import METRICS, span
from repro.tech.parameters import TechnologyParameters


@dataclass(frozen=True)
class ImprovementResult:
    """Outcome of the rip-up-and-re-route loop."""

    topology: NocTopology
    initial_power: float
    final_power: float
    passes: int
    reroutes: int

    @property
    def improvement(self) -> float:
        """Fractional power reduction achieved (0.03 = 3%)."""
        if self.initial_power <= 0:
            return 0.0
        return 1.0 - self.final_power / self.initial_power


def _rebuild_without_flow(topology: NocTopology, skip_index: int
                          ) -> NocTopology:
    """A copy of the topology with one flow's route (and its load)
    removed; links that become unused are pruned."""
    spec = topology.spec
    rebuilt = NocTopology(spec=spec)
    for index, path in topology.routes.items():
        if index == skip_index:
            continue
        for node in path:
            if node[0] == "core":
                rebuilt.add_core_node(node[1])
            else:
                x = topology.graph.nodes[node]["x"]
                y = topology.graph.nodes[node]["y"]
                rebuilt.add_router(node[1], x, y)
        for a, b in zip(path, path[1:]):
            rebuilt.add_link(a, b, topology.edge_length(a, b))
    for index, path in topology.routes.items():
        if index != skip_index:
            rebuilt.route_flow(index, path)
    return rebuilt


def improve_topology(
    topology: NocTopology,
    model,
    tech: TechnologyParameters,
    router_params: Optional[RouterParameters] = None,
    config: Optional[SynthesisConfig] = None,
    max_passes: int = 3,
) -> ImprovementResult:
    """Rip-up-and-re-route until a full pass yields no improvement.

    Each candidate change is accepted only if the *evaluated* total
    power (same metric as :func:`~repro.noc.evaluation.evaluate_topology`)
    strictly decreases, so the result is never worse than the input.
    """
    spec = topology.spec
    if config is None:
        config = SynthesisConfig()
    if router_params is None:
        router_params = RouterParameters.for_technology(
            tech, flit_width=spec.data_width)

    designer = LinkDesigner(model, tech, spec.data_width,
                            utilization=config.utilization)
    capacity = designer.capacity()
    adjacency = _candidate_edges(spec, config, designer.max_length())

    def power_of(candidate: NocTopology) -> float:
        return evaluate_topology(candidate, model, tech,
                                 router_params=router_params,
                                 utilization=config.utilization
                                 ).total_power

    current = topology
    initial_power = power_of(current)
    current_power = initial_power

    with span("noc.improve", design=spec.name,
              flows=len(current.routes)) as improving, \
            METRICS.timer("noc.improve"):
        passes, reroutes, current, current_power = _improvement_passes(
            spec, adjacency, designer, router_params, capacity, config,
            tech, power_of, current, current_power, max_passes)
        improving.annotate(passes=passes, reroutes=reroutes)

    return ImprovementResult(
        topology=current,
        initial_power=initial_power,
        final_power=current_power,
        passes=passes,
        reroutes=reroutes,
    )


def _improvement_passes(spec, adjacency, designer, router_params,
                        capacity, config, tech, power_of, current,
                        current_power, max_passes):
    """The rip-up/re-route pass loop; returns the final state."""
    reroutes = 0
    passes = 0
    for _pass in range(max_passes):
        passes += 1
        improved_this_pass = False
        for index in sorted(current.routes):
            flow = spec.flows[index]
            stripped = _rebuild_without_flow(current, index)
            hop_budget = _hop_budget(flow.max_hops,
                                     config.max_flow_hops)
            routed = _route_one_flow(
                flow.source, flow.dest, flow.bandwidth, adjacency,
                stripped, designer, router_params, capacity, config,
                tech, hop_budget=hop_budget)
            if routed is None:
                continue
            path, _marginal_power = routed
            if path == current.routes[index]:
                continue
            _commit_path(stripped, spec, path, adjacency)
            stripped.route_flow(index, path)
            candidate_power = power_of(stripped)
            if candidate_power < current_power * (1.0 - 1e-9):
                current = stripped
                current_power = candidate_power
                reroutes += 1
                improved_this_pass = True
        if not improved_this_pass:
            break

    return passes, reroutes, current, current_power
