"""Router cost model.

A wormhole router's power and area scale with its port count and flit
width; its latency is a fixed pipeline depth.  The constants below are
representative of published router implementations (a 5-port, 128-bit
router at 90 nm costs a few tenths of a square millimeter and about a
picojoule per bit per traversal) and scale across technology nodes with
feature size and supply voltage, which is all the Table III comparison
needs — both models see the *same* router costs, so only the
interconnect-model differences show up in the deltas.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.tech.parameters import TechnologyParameters
from repro.units import nm, um

#: Reference node for the scaling rules below.
_REFERENCE_FEATURE = nm(90)
_REFERENCE_VDD = 1.0


@dataclass(frozen=True)
class RouterParameters:
    """Router cost model bound to one technology node.

    Attributes
    ----------
    energy_per_bit:
        Switching energy per bit per router traversal, joules.
    leakage_per_port:
        Static power per instantiated port, watts.
    area_per_port:
        Silicon area per port, m^2 (already includes the crossbar and
        buffer share of one port at the configured flit width).
    pipeline_cycles:
        Router pipeline depth in clock cycles.
    max_ports:
        Maximum router degree the synthesis may create.
    """

    energy_per_bit: float
    leakage_per_port: float
    area_per_port: float
    pipeline_cycles: int = 3
    max_ports: int = 8

    def __post_init__(self) -> None:
        if self.energy_per_bit < 0 or self.leakage_per_port < 0:
            raise ValueError("router power parameters must be non-negative")
        if self.area_per_port <= 0:
            raise ValueError("area_per_port must be positive")
        if self.pipeline_cycles < 1:
            raise ValueError("pipeline_cycles must be at least 1")
        if self.max_ports < 2:
            raise ValueError("a router needs at least 2 ports")

    # -- scaling -----------------------------------------------------------

    @classmethod
    def for_technology(cls, tech: TechnologyParameters,
                       flit_width: int = 128) -> "RouterParameters":
        """Representative router costs for a node and flit width.

        Reference values (90 nm, 128-bit): 1.0 pJ/bit, 0.4 mW/port
        leakage, 0.06 mm^2/port.  Energy scales with ``vdd^2`` and
        feature size; leakage grows as feature size shrinks (mirroring
        the device-leakage trend); area scales with feature size squared.
        All scale linearly with flit width.
        """
        feature_ratio = tech.feature_size / _REFERENCE_FEATURE
        vdd_ratio = tech.vdd / _REFERENCE_VDD
        width_ratio = flit_width / 128.0
        # Leakage per unit width grows as devices shrink; total port
        # leakage stays roughly flat-to-growing across nodes.
        leakage_growth = (tech.nmos.i_leak
                          / 0.1)  # 0.1 A/m = the 90 nm reference
        return cls(
            energy_per_bit=(1.0e-12 * feature_ratio * vdd_ratio**2),
            leakage_per_port=(0.4e-3 * width_ratio
                              * leakage_growth * feature_ratio),
            area_per_port=(0.06e-6 * feature_ratio**2 * width_ratio),
            pipeline_cycles=3,
            max_ports=8,
        )

    # -- cost queries -----------------------------------------------------

    def traversal_energy(self, bits: float) -> float:
        """Energy (J) to move ``bits`` bits through the router once."""
        return self.energy_per_bit * bits

    def dynamic_power(self, bandwidth: float) -> float:
        """Dynamic power (W) of ``bandwidth`` bits/s through the router."""
        return self.energy_per_bit * bandwidth

    def leakage_power(self, ports: int) -> float:
        """Static power (W) of a router with ``ports`` ports."""
        return self.leakage_per_port * ports

    def area(self, ports: int) -> float:
        """Area (m^2) of a router with ``ports`` ports."""
        return self.area_per_port * ports

    def latency(self, clock_period: float) -> float:
        """Traversal latency in seconds."""
        return self.pipeline_cycles * clock_period
