"""Communication specification: cores, floorplan, flows.

A :class:`CommunicationSpec` is the input to NoC synthesis: a set of
cores with floorplan positions, the point-to-point flows between them
with sustained bandwidth requirements, and the bus data width.  This is
the same abstraction COSI-OCC consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple


@dataclass(frozen=True)
class Core:
    """A SoC core: a name and a floorplan position in meters."""

    name: str
    x: float
    y: float

    def distance_to(self, other: "Core") -> float:
        """Manhattan (routed) distance to another core, meters."""
        return abs(self.x - other.x) + abs(self.y - other.y)


@dataclass(frozen=True)
class Flow:
    """A directed communication requirement between two cores.

    ``bandwidth`` is the sustained requirement in bits per second.
    ``max_hops`` optionally bounds the number of router traversals the
    synthesized route may take (a latency constraint); ``None`` leaves
    the flow unconstrained.
    """

    source: str
    dest: str
    bandwidth: float
    max_hops: "int | None" = None

    def __post_init__(self) -> None:
        if self.source == self.dest:
            raise ValueError(f"flow {self.source!r} -> itself is invalid")
        if self.bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        if self.max_hops is not None and self.max_hops < 2:
            raise ValueError(
                "max_hops must be at least 2 (ingress + egress router)")


@dataclass
class CommunicationSpec:
    """The full synthesis input for one SoC."""

    name: str
    cores: Dict[str, Core] = field(default_factory=dict)
    flows: List[Flow] = field(default_factory=list)
    data_width: int = 128

    # -- construction ------------------------------------------------------

    def add_core(self, name: str, x: float, y: float) -> Core:
        """Register a core placed at ``(x, y)`` meters on the die."""
        if name in self.cores:
            raise ValueError(f"core {name!r} already exists")
        core = Core(name=name, x=x, y=y)
        self.cores[name] = core
        return core

    def add_flow(self, source: str, dest: str, bandwidth: float,
                 max_hops: "int | None" = None) -> Flow:
        """Register a flow of ``bandwidth`` bits/s between two cores."""
        flow = Flow(source=source, dest=dest, bandwidth=bandwidth,
                    max_hops=max_hops)
        for endpoint in (source, dest):
            if endpoint not in self.cores:
                raise KeyError(f"flow endpoint {endpoint!r} is not a core")
        self.flows.append(flow)
        return flow

    # -- validation ----------------------------------------------------------

    def validate(self) -> None:
        """Raise ``ValueError`` on an inconsistent specification."""
        if not self.cores:
            raise ValueError("specification has no cores")
        if not self.flows:
            raise ValueError("specification has no flows")
        if self.data_width < 1:
            raise ValueError("data_width must be at least 1 bit")
        for flow in self.flows:
            for endpoint in (flow.source, flow.dest):
                if endpoint not in self.cores:
                    raise ValueError(
                        f"flow references unknown core {endpoint!r}")

    # -- summaries ----------------------------------------------------------

    @property
    def num_cores(self) -> int:
        return len(self.cores)

    def total_bandwidth(self) -> float:
        """Sum of all flow bandwidths, bits/s."""
        return sum(flow.bandwidth for flow in self.flows)

    def bounding_box(self) -> Tuple[float, float]:
        """(width, height) of the floorplan in meters."""
        xs = [core.x for core in self.cores.values()]
        ys = [core.y for core in self.cores.values()]
        return max(xs) - min(xs), max(ys) - min(ys)

    def flow_distance(self, flow: Flow) -> float:
        """Manhattan distance between a flow's endpoints, meters."""
        return self.cores[flow.source].distance_to(self.cores[flow.dest])

    def scaled(self, factor: float, name_suffix: str = "") -> \
            "CommunicationSpec":
        """A copy with all floorplan positions scaled by ``factor``.

        Used to shrink the same application's floorplan for smaller
        technology nodes, as die area scales.
        """
        if factor <= 0:
            raise ValueError("factor must be positive")
        scaled = CommunicationSpec(
            name=self.name + name_suffix, data_width=self.data_width)
        for core in self.cores.values():
            scaled.add_core(core.name, core.x * factor, core.y * factor)
        for flow in self.flows:
            scaled.add_flow(flow.source, flow.dest, flow.bandwidth,
                            max_hops=flow.max_hops)
        return scaled


def flows_by_bandwidth(flows: Iterable[Flow]) -> List[Flow]:
    """Deterministic processing order: descending bandwidth, then names."""
    return sorted(flows, key=lambda f: (-f.bandwidth, f.source, f.dest))
