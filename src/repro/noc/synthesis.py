"""Constraint-driven NoC synthesis (the COSI-OCC algorithm substitute).

The synthesis problem: given a communication specification, build a
network of routers and buffered links that routes every flow, respects
link capacity, router degree and wire-length feasibility constraints,
and minimizes total interconnect power.

The algorithm is the greedy incremental-cost formulation used by
constraint-driven synthesis tools:

1. One candidate router site per core (at the core's position); cores
   attach to their own router through a short access link.
2. Candidate router-router channels exist between every pair of sites
   whose Manhattan distance is *feasible* — i.e., an optimally buffered
   bus of that length can traverse it in one clock period under the
   active interconnect model.  This is where model accuracy bites: an
   optimistic model admits longer candidate links.
3. Flows are routed one at a time in decreasing bandwidth order, each
   along its minimum *marginal power* path (Dijkstra): reusing an
   installed link costs only the added dynamic power, while installing
   a new link pays its leakage and the new router ports too.
4. Installing a path commits its links, loads and routers.

The output topology depends on the interconnect model through the
candidate-edge feasibility and every edge weight — exactly the
mechanism by which Table III's "original" and "proposed" columns end up
with different architectures.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.noc.link import LinkDesigner
from repro.noc.router import RouterParameters
from repro.noc.spec import CommunicationSpec, flows_by_bandwidth
from repro.noc.topology import NocTopology, NodeId, core_node, router_node
from repro.runtime import METRICS, span
from repro.tech.parameters import TechnologyParameters
from repro.units import um


@dataclass(frozen=True)
class SynthesisConfig:
    """Synthesis knobs.

    ``access_length`` is the physical core-to-router (network
    interface) wire length.  ``utilization`` derates raw link bandwidth
    to usable payload capacity.  ``max_flow_hops`` is a global latency
    constraint (maximum router traversals per flow); individual flows
    can tighten it further via ``Flow.max_hops``.
    """

    access_length: float = um(200)
    utilization: float = 0.75
    max_ports: int = 8
    max_flow_hops: Optional[int] = None

    def __post_init__(self) -> None:
        if self.access_length <= 0:
            raise ValueError("access_length must be positive")
        if not 0.0 < self.utilization <= 1.0:
            raise ValueError("utilization must lie in (0, 1]")
        if self.max_flow_hops is not None and self.max_flow_hops < 2:
            raise ValueError("max_flow_hops must be at least 2")


class SynthesisError(RuntimeError):
    """Raised when a flow cannot be routed under the constraints."""


@dataclass
class _Candidate:
    """A candidate directed edge in the synthesis search graph."""

    source: NodeId
    dest: NodeId
    length: float


def _candidate_edges(spec: CommunicationSpec, config: SynthesisConfig,
                     max_link_length: float) -> Dict[NodeId,
                                                     List[_Candidate]]:
    """Adjacency of the candidate graph keyed by source node."""
    adjacency: Dict[NodeId, List[_Candidate]] = {}

    def add(source: NodeId, dest: NodeId, length: float) -> None:
        adjacency.setdefault(source, []).append(
            _Candidate(source=source, dest=dest, length=length))

    names = sorted(spec.cores)
    for name in names:
        add(core_node(name), router_node(name), config.access_length)
        add(router_node(name), core_node(name), config.access_length)
    for a in names:
        core_a = spec.cores[a]
        for b in names:
            if a == b:
                continue
            distance = core_a.distance_to(spec.cores[b])
            length = max(distance, config.access_length)
            if length <= max_link_length:
                add(router_node(a), router_node(b), length)
    return adjacency


def synthesize(
    spec: CommunicationSpec,
    model,
    tech: TechnologyParameters,
    router_params: Optional[RouterParameters] = None,
    config: Optional[SynthesisConfig] = None,
) -> NocTopology:
    """Synthesize a NoC for ``spec`` under the given interconnect model.

    ``model`` is any object with the ``evaluate(...)`` interconnect
    interface (proposed or baseline).  Raises :class:`SynthesisError`
    if some flow cannot be routed within the constraints.
    """
    spec.validate()
    if config is None:
        config = SynthesisConfig()
    if router_params is None:
        router_params = RouterParameters.for_technology(
            tech, flit_width=spec.data_width)

    with span("noc.synthesize", design=spec.name, node=tech.name,
              width=spec.data_width, flows=len(spec.flows)) as synth, \
            METRICS.timer("noc.synthesize"):
        designer = LinkDesigner(model, tech, spec.data_width,
                                utilization=config.utilization)
        capacity = designer.capacity()
        max_length = designer.max_length()
        adjacency = _candidate_edges(spec, config, max_length)

        # Pre-warm the designer with every distinct candidate length in
        # one batch, so Dijkstra's lazy per-edge lookups below all hit
        # the memo instead of triggering scalar searches mid-routing.
        lengths = sorted({candidate.length
                          for candidates in adjacency.values()
                          for candidate in candidates})
        designer.design_batch(lengths)

        topology = NocTopology(spec=spec)
        flow_order = flows_by_bandwidth(spec.flows)
        index_of = {id(flow): i for i, flow in enumerate(spec.flows)}

        for flow in flow_order:
            hop_budget = _hop_budget(flow.max_hops,
                                     config.max_flow_hops)
            with span("noc.route_flow", source=flow.source,
                      dest=flow.dest,
                      bandwidth=flow.bandwidth) as routing:
                routed = _route_one_flow(
                    flow.source, flow.dest, flow.bandwidth, adjacency,
                    topology, designer, router_params, capacity,
                    config, tech, hop_budget=hop_budget)
                if routed is None:
                    routing.annotate(routed=False)
                    constraint = (f" within {hop_budget} hops"
                                  if hop_budget is not None else "")
                    raise SynthesisError(
                        f"flow {flow.source} -> {flow.dest} "
                        f"({flow.bandwidth:.3g} b/s) cannot be routed"
                        f"{constraint}")
                path, marginal_power = routed
                routing.annotate(routed=True, hops=len(path) - 1,
                                 marginal_power=marginal_power)
                METRICS.count("synth.flows_routed")
                _commit_path(topology, spec, path, adjacency)
                topology.route_flow(index_of[id(flow)], path)
        synth.annotate(routers=len(topology.routers()),
                       links=topology.graph.number_of_edges())
    return topology


def _hop_budget(flow_limit: Optional[int],
                global_limit: Optional[int]) -> Optional[int]:
    """The binding hop constraint for one flow, or ``None``."""
    limits = [limit for limit in (flow_limit, global_limit)
              if limit is not None]
    return min(limits) if limits else None


def _edge_weight(candidate: _Candidate, bandwidth: float,
                 topology: NocTopology, designer: LinkDesigner,
                 router_params: RouterParameters, capacity: float,
                 config: SynthesisConfig,
                 tech: TechnologyParameters) -> Optional[float]:
    """Marginal power (W) of pushing ``bandwidth`` over a candidate edge.

    Returns ``None`` for inadmissible edges (capacity exhausted, degree
    limit, infeasible length); each rejection reason is counted under
    ``synth.reject.*`` so a trace/stats footer explains *why* candidate
    links were discarded.
    """
    METRICS.count("synth.edges_evaluated")
    graph = topology.graph
    installed = (candidate.source in graph and candidate.dest in graph
                 and graph.has_edge(candidate.source, candidate.dest))
    if installed:
        load = topology.edge_load(candidate.source, candidate.dest)
        if load + bandwidth > capacity:
            METRICS.count("synth.reject.capacity")
            return None
    design = designer.design(candidate.length)
    if design is None:
        METRICS.count("synth.reject.infeasible_length")
        return None

    weight = design.dynamic_power(bandwidth, tech.vdd,
                                  tech.clock_frequency)
    # Router traversal energy at the edge head (if it is a router).
    if candidate.dest[0] == "router":
        weight += router_params.dynamic_power(bandwidth)

    if not installed:
        weight += design.leakage_power
        # New ports: each endpoint router gains a neighbour unless the
        # reverse direction already exists.
        for this, other in ((candidate.source, candidate.dest),
                            (candidate.dest, candidate.source)):
            if this[0] != "router":
                continue
            already_neighbours = (
                this in graph and other in graph
                and (graph.has_edge(this, other)
                     or graph.has_edge(other, this)))
            if already_neighbours:
                continue
            degree = (topology.router_degree(this)
                      if this in graph else 0)
            if degree + 1 > router_params.max_ports:
                METRICS.count("synth.reject.ports")
                return None
            weight += router_params.leakage_per_port
    return weight


def _route_one_flow(source: str, dest: str, bandwidth: float,
                    adjacency: Dict[NodeId, List[_Candidate]],
                    topology: NocTopology, designer: LinkDesigner,
                    router_params: RouterParameters, capacity: float,
                    config: SynthesisConfig,
                    tech: TechnologyParameters,
                    hop_budget: Optional[int] = None,
                    ) -> Optional[Tuple[List[NodeId], float]]:
    """Dijkstra over the candidate graph with marginal-power weights.

    Returns the path together with its total marginal power (W), or
    ``None`` when no admissible path exists.  With a hop budget the
    search runs over (node, hops-used) states, so a node may be
    revisited with fewer hops spent — the standard
    resource-constrained shortest-path relaxation.
    """
    start = core_node(source)
    goal = core_node(dest)
    State = Tuple[NodeId, int]
    start_state: State = (start, 0)
    best: Dict[State, float] = {start_state: 0.0}
    parent: Dict[State, State] = {}
    heap: List[Tuple[float, State]] = [(0.0, start_state)]
    visited = set()

    while heap:
        cost, state = heapq.heappop(heap)
        if state in visited:
            continue
        visited.add(state)
        node, hops = state
        if node == goal:
            path = [node]
            cursor = state
            while cursor != start_state:
                cursor = parent[cursor]
                path.append(cursor[0])
            return list(reversed(path)), cost
        for candidate in adjacency.get(node, ()):  # sorted construction
            next_hops = hops + (1 if candidate.dest[0] == "router"
                                else 0)
            if hop_budget is not None and next_hops > hop_budget:
                continue
            weight = _edge_weight(candidate, bandwidth, topology,
                                  designer, router_params, capacity,
                                  config, tech)
            if weight is None:
                continue
            next_state: State = (candidate.dest,
                                 next_hops if hop_budget is not None
                                 else 0)
            new_cost = cost + weight
            if new_cost < best.get(next_state, float("inf")):
                best[next_state] = new_cost
                parent[next_state] = state
                heapq.heappush(heap, (new_cost, next_state))
    return None


def _commit_path(topology: NocTopology, spec: CommunicationSpec,
                 path: List[NodeId],
                 adjacency: Dict[NodeId, List[_Candidate]]) -> None:
    """Install the path's nodes and links into the topology."""
    lengths = {}
    for candidates in adjacency.values():
        for candidate in candidates:
            lengths[(candidate.source, candidate.dest)] = candidate.length

    for node in path:
        if node[0] == "core":
            topology.add_core_node(node[1])
        else:
            core = spec.cores[node[1]]
            topology.add_router(node[1], core.x, core.y)
    for a, b in zip(path, path[1:]):
        topology.add_link(a, b, lengths[(a, b)])
