"""NoC evaluation: the numbers reported in Table III.

Given a synthesized topology and an interconnect model, recompute every
link's buffering and cost under that model and aggregate:

* interconnect dynamic power (links at their routed loads),
* leakage power (link repeaters + router ports),
* router dynamic power (traversal energy times traffic),
* area (repeaters + wires + routers),
* hop statistics and worst link delay,
* the number of links that are *infeasible* under the evaluating model
  (nonzero when a topology synthesized with an optimistic model is
  re-evaluated under an accurate one — the paper's "excessively long
  wires" observation).

Because the evaluating model can differ from the model used during
synthesis, this module supports the cross-evaluation experiments: what
does the accurate model say about the optimistic model's architecture?
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.buffering.optimizer import optimize_buffering
from repro.noc.link import LINK_INPUT_SLEW, LinkDesigner
from repro.noc.router import RouterParameters
from repro.noc.topology import NocTopology
from repro.tech.parameters import TechnologyParameters
from repro.units import to_mm, to_mw, to_ns


@dataclass(frozen=True)
class NocReport:
    """Aggregated metrics of one (topology, model) evaluation."""

    name: str
    tech_name: str
    num_routers: int
    num_links: int
    dynamic_power: float          # W: link switching at routed loads
    leakage_power: float          # W: link repeaters + router ports
    router_dynamic_power: float   # W: router traversal energy
    repeater_area: float          # m^2
    wire_area: float              # m^2
    router_area: float            # m^2
    avg_hops: float
    max_hops: int
    max_link_delay: float         # s (feasible links only)
    max_link_length: float        # m
    infeasible_links: int

    @property
    def total_power(self) -> float:
        """Link plus router power, in watts."""
        return (self.dynamic_power + self.leakage_power
                + self.router_dynamic_power)

    @property
    def total_area(self) -> float:
        """Repeater, wire and router area, in square meters."""
        return self.repeater_area + self.wire_area + self.router_area

    def row(self) -> str:
        """One Table III-style row."""
        return (f"{self.name:<22} {to_mw(self.dynamic_power):8.2f} "
                f"{to_mw(self.leakage_power):8.2f} "
                f"{to_mw(self.router_dynamic_power):8.2f} "
                f"{self.total_area * 1e6:8.3f} "
                f"{self.avg_hops:6.2f} {self.max_hops:4d} "
                f"{to_ns(self.max_link_delay):7.3f} "
                f"{to_mm(self.max_link_length):6.2f} "
                f"{self.infeasible_links:5d}")

    @staticmethod
    def header() -> str:
        return (f"{'configuration':<22} {'dyn mW':>8} {'leak mW':>8} "
                f"{'rtr mW':>8} {'area mm2':>8} {'hops':>6} {'max':>4} "
                f"{'dly ns':>7} {'Lmax':>6} {'infs':>5}")


def evaluate_topology(
    topology: NocTopology,
    model,
    tech: TechnologyParameters,
    router_params: Optional[RouterParameters] = None,
    utilization: float = 0.75,
    label: Optional[str] = None,
) -> NocReport:
    """Evaluate a topology's cost under an interconnect model.

    Every directed link is (re)designed under ``model``.  Links longer
    than the model's feasible maximum are counted as infeasible; their
    power/area are still estimated from the delay-optimal buffering so
    the totals remain comparable.
    """
    spec = topology.spec
    if router_params is None:
        router_params = RouterParameters.for_technology(
            tech, flit_width=spec.data_width)
    designer = LinkDesigner(model, tech, spec.data_width,
                            utilization=utilization)
    # Pre-warm the designer's caches with every distinct link length in
    # one batch (the batched kernel scorer, when the model supports it).
    designer.design_batch(sorted({data["length"]
                                  for _, _, data in topology.links()}))

    dynamic = 0.0
    leakage = 0.0
    repeater_area = 0.0
    wire_area = 0.0
    max_delay = 0.0
    max_length = 0.0
    infeasible = 0

    for a, b, data in topology.links():
        length = data["length"]
        load = data["load"]
        max_length = max(max_length, length)
        design = designer.design(length)
        if design is None:
            infeasible += 1
            # Estimate with the fastest practical buffering so the
            # aggregate cost still reflects this link.
            solution = optimize_buffering(
                model, length, delay_weight=1.0,
                input_slew=LINK_INPUT_SLEW)
            estimate = model.evaluate(
                length, solution.num_repeaters, solution.repeater_size,
                LINK_INPUT_SLEW, bus_width=spec.data_width)
            activity_ref = getattr(model, "activity_factor", 0.15)
            switched = estimate.dynamic_power / (
                activity_ref * tech.vdd**2 * tech.clock_frequency)
            activity = load / (spec.data_width * tech.clock_frequency)
            dynamic += (activity * switched * tech.vdd**2
                        * tech.clock_frequency)
            leakage += estimate.leakage_power
            repeater_area += estimate.repeater_area
            wire_area += estimate.wire_area
        else:
            dynamic += design.dynamic_power(load, tech.vdd,
                                            tech.clock_frequency)
            leakage += design.leakage_power
            repeater_area += design.repeater_area
            wire_area += design.wire_area
            max_delay = max(max_delay, design.delay)

    router_area = 0.0
    router_dynamic = 0.0
    for router in topology.routers():
        ports = topology.router_degree(router)
        leakage += router_params.leakage_power(ports)
        router_area += router_params.area(ports)
    for index in topology.routes:
        bandwidth = spec.flows[index].bandwidth
        hops = topology.hop_count(index)
        router_dynamic += hops * router_params.dynamic_power(bandwidth)

    avg_hops, max_hops = topology.hop_statistics()
    return NocReport(
        name=label or spec.name,
        tech_name=tech.name,
        num_routers=len(topology.routers()),
        num_links=topology.graph.number_of_edges(),
        dynamic_power=dynamic,
        leakage_power=leakage,
        router_dynamic_power=router_dynamic,
        repeater_area=repeater_area,
        wire_area=wire_area,
        router_area=router_area,
        avg_hops=avg_hops,
        max_hops=max_hops,
        max_link_delay=max_delay,
        max_link_length=max_length,
        infeasible_links=infeasible,
    )
