"""Flow-level timing analysis of a synthesized NoC.

Links are registered at the routers and designed to traverse their
length within one clock period, so a flow's zero-load latency is a pure
cycle count: one cycle per link plus the router pipeline depth per hop.
This module computes per-flow latency reports — the static-timing view
of the network — and checks them against optional latency requirements.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.noc.router import RouterParameters
from repro.noc.topology import NocTopology
from repro.tech.parameters import TechnologyParameters
from repro.units import to_ns


@dataclass(frozen=True)
class FlowTiming:
    """Zero-load latency breakdown of one routed flow."""

    flow_index: int
    source: str
    dest: str
    hops: int
    link_cycles: int
    router_cycles: int
    latency_seconds: float

    @property
    def total_cycles(self) -> int:
        return self.link_cycles + self.router_cycles


@dataclass(frozen=True)
class TimingReport:
    """Per-flow latencies plus aggregate statistics."""

    flows: Tuple[FlowTiming, ...]
    clock_period: float

    def worst(self) -> FlowTiming:
        return max(self.flows, key=lambda f: f.total_cycles)

    def average_cycles(self) -> float:
        """Mean end-to-end latency across flows, a cycle count."""
        return (sum(f.total_cycles for f in self.flows)
                / len(self.flows))

    def format(self, limit: int = 12) -> str:
        ordered = sorted(self.flows, key=lambda f: -f.total_cycles)
        lines = [
            f"{'flow':<30} {'hops':>5} {'links':>6} {'rtr cyc':>8} "
            f"{'total':>6} {'ns':>7}",
        ]
        for timing in ordered[:limit]:
            label = f"{timing.source}->{timing.dest}"
            lines.append(
                f"{label:<30} {timing.hops:5d} {timing.link_cycles:6d} "
                f"{timing.router_cycles:8d} {timing.total_cycles:6d} "
                f"{to_ns(timing.latency_seconds):7.3f}")
        if len(ordered) > limit:
            lines.append(f"  ... {len(ordered) - limit} more flows")
        worst = self.worst()
        lines.append(
            f"worst latency: {worst.total_cycles} cycles "
            f"({to_ns(worst.latency_seconds):.3f} ns) on "
            f"{worst.source}->{worst.dest}; average "
            f"{self.average_cycles():.2f} cycles")
        return "\n".join(lines)


def analyze_timing(
    topology: NocTopology,
    tech: TechnologyParameters,
    router_params: Optional[RouterParameters] = None,
) -> TimingReport:
    """Zero-load latency of every routed flow."""
    if router_params is None:
        router_params = RouterParameters.for_technology(
            tech, flit_width=topology.spec.data_width)
    period = tech.clock_period()

    flows: List[FlowTiming] = []
    for index, path in sorted(topology.routes.items()):
        flow = topology.spec.flows[index]
        hops = sum(1 for node in path if node[0] == "router")
        link_cycles = len(path) - 1
        router_cycles = hops * router_params.pipeline_cycles
        latency = (link_cycles + router_cycles) * period
        flows.append(FlowTiming(
            flow_index=index,
            source=flow.source,
            dest=flow.dest,
            hops=hops,
            link_cycles=link_cycles,
            router_cycles=router_cycles,
            latency_seconds=latency,
        ))
    if not flows:
        raise ValueError("topology has no routed flows to analyze")
    return TimingReport(flows=tuple(flows), clock_period=period)


def check_latency_requirements(
    report: TimingReport,
    requirements: Dict[Tuple[str, str], float],
) -> List[str]:
    """Violations of per-flow latency requirements (seconds).

    ``requirements`` maps (source, dest) to a maximum latency; flows
    without an entry are unconstrained.  Returns human-readable
    violation messages (empty when all met).
    """
    violations = []
    for timing in report.flows:
        limit = requirements.get((timing.source, timing.dest))
        if limit is not None and timing.latency_seconds > limit:
            violations.append(
                f"{timing.source}->{timing.dest}: "
                f"{to_ns(timing.latency_seconds):.3f} ns exceeds "
                f"{to_ns(limit):.3f} ns")
    return violations
