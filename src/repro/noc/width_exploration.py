"""Flit-width exploration: a COSI-OCC design-space axis.

The data width of a NoC trades link area and repeater cost against
serialization: a narrower bus needs fewer wires (less lateral-coupling
capacitance and routing area) but runs at higher utilization and pays
more router energy per transported byte (more flits per packet).

:func:`explore_widths` synthesizes the same specification at several
candidate widths, re-expressing each flow's bandwidth at the candidate
width's serialization overhead, and reports the full cost of each
design point — the sweep a system architect runs before committing to
a flit width.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.noc.evaluation import NocReport, evaluate_topology
from repro.noc.spec import CommunicationSpec
from repro.noc.synthesis import SynthesisConfig, SynthesisError, \
    synthesize
from repro.runtime import parallel_map, span
from repro.tech.parameters import TechnologyParameters

#: Packet header (routing/addressing) bits, paid once per packet.
HEADER_BITS = 32

#: Payload bits per packet used for the serialization model.
PACKET_PAYLOAD_BITS = 512

#: Sideband control bits each flit carries (type/VC), lost to payload.
FLIT_CONTROL_BITS = 2


@dataclass(frozen=True)
class WidthDesignPoint:
    """Outcome of synthesizing at one candidate width."""

    width: int
    report: Optional[NocReport]
    feasible: bool
    serialization_overhead: float   # > 1: flits per payload ratio

    @property
    def total_power(self) -> float:
        """Total NoC power in watts (inf when infeasible)."""
        if self.report is None:
            return float("inf")
        return self.report.total_power


@dataclass(frozen=True)
class WidthExploration:
    points: Tuple[WidthDesignPoint, ...]

    def best(self) -> WidthDesignPoint:
        feasible = [p for p in self.points if p.feasible]
        if not feasible:
            raise ValueError("no feasible width in the exploration")
        return min(feasible, key=lambda p: p.total_power)

    def format(self) -> str:
        lines = [
            "Flit-width exploration",
            f"{'width':>6} {'ser.ovh':>8} {'total mW':>9} "
            f"{'dyn mW':>8} {'area mm2':>9} {'hops':>6}",
        ]
        for point in self.points:
            if not point.feasible or point.report is None:
                lines.append(f"{point.width:6d} "
                             f"{point.serialization_overhead:8.3f} "
                             f"{'infeasible':>9}")
                continue
            report = point.report
            lines.append(
                f"{point.width:6d} {point.serialization_overhead:8.3f} "
                f"{report.total_power * 1e3:9.2f} "
                f"{report.dynamic_power * 1e3:8.2f} "
                f"{report.total_area * 1e6:9.3f} "
                f"{report.avg_hops:6.2f}")
        best = self.best()
        lines.append(f"best width: {best.width} bits "
                     f"({best.total_power * 1e3:.2f} mW)")
        return "\n".join(lines)


def serialization_overhead(width: int) -> float:
    """Raw-bits-per-payload-bit inflation at a given flit width.

    Two opposing effects create a sweet spot: narrow flits repeat the
    per-flit control bits many times per packet, wide flits waste bits
    to internal fragmentation (the last flit and the padded header).
    """
    import math
    if width <= FLIT_CONTROL_BITS:
        raise ValueError(
            f"width must exceed the {FLIT_CONTROL_BITS} control bits")
    effective = width - FLIT_CONTROL_BITS
    flits = math.ceil((PACKET_PAYLOAD_BITS + HEADER_BITS) / effective)
    return flits * width / PACKET_PAYLOAD_BITS


def respecify_width(spec: CommunicationSpec,
                    width: int) -> CommunicationSpec:
    """The same traffic demanded at a different flit width.

    Bandwidths inflate by the serialization overhead: narrower flits
    carry proportionally more header beats per payload.
    """
    overhead = serialization_overhead(width)
    adjusted = CommunicationSpec(
        name=f"{spec.name}@w{width}", data_width=width)
    for core in spec.cores.values():
        adjusted.add_core(core.name, core.x, core.y)
    for flow in spec.flows:
        adjusted.add_flow(flow.source, flow.dest,
                          flow.bandwidth * overhead,
                          max_hops=flow.max_hops)
    return adjusted


def _explore_one(task: "Tuple[CommunicationSpec, object, "
                 "TechnologyParameters, int, Optional[SynthesisConfig]]"
                 ) -> WidthDesignPoint:
    """Synthesize and cost one candidate width (pool-safe)."""
    spec, model, tech, width, config = task
    overhead = serialization_overhead(width)
    adjusted = respecify_width(spec, width)
    with span("widths.point", width=width, design=spec.name) as sp:
        try:
            topology = synthesize(adjusted, model, tech, config=config)
        except SynthesisError:
            sp.annotate(feasible=False)
            return WidthDesignPoint(
                width=width, report=None, feasible=False,
                serialization_overhead=overhead)
        report = evaluate_topology(topology, model, tech,
                                   label=f"w{width}")
        sp.annotate(feasible=True, total_power=report.total_power)
    return WidthDesignPoint(
        width=width, report=report, feasible=True,
        serialization_overhead=overhead)


def explore_widths(
    spec: CommunicationSpec,
    model,
    tech: TechnologyParameters,
    widths: Sequence[int] = (32, 64, 128, 256),
    config: Optional[SynthesisConfig] = None,
    workers: Optional[int] = None,
) -> WidthExploration:
    """Synthesize and cost the specification at each candidate width.

    Each width is an independent synthesis problem, so the sweep
    parallelizes per width without changing any design point.  Within
    each point, synthesis and evaluation pre-warm their link designers
    through the batched kernel scorer
    (:meth:`repro.noc.link.LinkDesigner.design_batch`) whenever the
    model supports it, so every width runs on vectorized candidate
    scoring.
    """
    tasks = [(spec, model, tech, width, config) for width in widths]
    with span("experiment.widths", design=spec.name,
              widths=len(widths)):
        points: List[WidthDesignPoint] = parallel_map(
            _explore_one, tasks, workers=workers, chunk=1,
            label="noc.width_point")
    return WidthExploration(points=tuple(points))
