"""Standard 2D-mesh NoC baseline with dimension-ordered (XY) routing.

Constraint-driven synthesis is conventionally judged against the
regular 2D mesh: routers on a grid, every core attached to its nearest
router, flows routed X-first-then-Y.  This module builds that baseline
for any :class:`~repro.noc.spec.CommunicationSpec`, producing the same
:class:`~repro.noc.topology.NocTopology` the synthesizer emits, so the
same :func:`~repro.noc.evaluation.evaluate_topology` applies and the
custom-vs-mesh comparison is apples to apples.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

from repro.noc.spec import CommunicationSpec
from repro.noc.topology import NocTopology, NodeId, core_node, \
    router_node
from repro.units import um

#: Physical length of the core-to-router attachment, meters.
MESH_ACCESS_LENGTH = um(200)


def _grid_shape(num_cores: int) -> Tuple[int, int]:
    """(columns, rows) of the smallest near-square grid covering all
    cores."""
    columns = max(2, math.ceil(math.sqrt(num_cores)))
    rows = max(2, math.ceil(num_cores / columns))
    return columns, rows


def _router_name(col: int, row: int) -> str:
    return f"mesh_{col}_{row}"


class MeshPlacement:
    """Geometry of a mesh over a floorplan bounding box."""

    def __init__(self, spec: CommunicationSpec,
                 columns: Optional[int] = None,
                 rows: Optional[int] = None):
        xs = [core.x for core in spec.cores.values()]
        ys = [core.y for core in spec.cores.values()]
        self.x0, self.y0 = min(xs), min(ys)
        width = max(xs) - self.x0
        height = max(ys) - self.y0
        if columns is None or rows is None:
            columns, rows = _grid_shape(spec.num_cores)
        self.columns, self.rows = columns, rows
        self.pitch_x = width / max(columns - 1, 1)
        self.pitch_y = height / max(rows - 1, 1)
        # Degenerate (collinear) floorplans still need a finite pitch.
        if self.pitch_x == 0.0:
            self.pitch_x = max(self.pitch_y, MESH_ACCESS_LENGTH)
        if self.pitch_y == 0.0:
            self.pitch_y = max(self.pitch_x, MESH_ACCESS_LENGTH)

    def position(self, col: int, row: int) -> Tuple[float, float]:
        return (self.x0 + col * self.pitch_x,
                self.y0 + row * self.pitch_y)

    def nearest(self, x: float, y: float) -> Tuple[int, int]:
        """Grid cell closest to the point ``(x, y)`` in meters."""
        col = min(max(round((x - self.x0) / self.pitch_x), 0),
                  self.columns - 1)
        row = min(max(round((y - self.y0) / self.pitch_y), 0),
                  self.rows - 1)
        return int(col), int(row)


def xy_route(source: Tuple[int, int],
             dest: Tuple[int, int]) -> List[Tuple[int, int]]:
    """Dimension-ordered route: X first, then Y (inclusive of ends)."""
    col, row = source
    path = [(col, row)]
    step = 1 if dest[0] > col else -1
    while col != dest[0]:
        col += step
        path.append((col, row))
    step = 1 if dest[1] > row else -1
    while row != dest[1]:
        row += step
        path.append((col, row))
    return path


def build_mesh(
    spec: CommunicationSpec,
    columns: Optional[int] = None,
    rows: Optional[int] = None,
) -> NocTopology:
    """Build the mesh topology and XY-route every flow.

    Only mesh links actually used by some flow are installed (idle mesh
    channels would be clock-gated away; counting them would only make
    the mesh look worse in the comparison).
    """
    spec.validate()
    placement = MeshPlacement(spec, columns, rows)
    topology = NocTopology(spec=spec)

    # Routers and core attachments.
    attachment: Dict[str, Tuple[int, int]] = {}
    for name, core in spec.cores.items():
        col, row = placement.nearest(core.x, core.y)
        attachment[name] = (col, row)
        topology.add_core_node(name)
        x, y = placement.position(col, row)
        topology.add_router(_router_name(col, row), x, y)
        topology.add_link(core_node(name),
                          router_node(_router_name(col, row)),
                          MESH_ACCESS_LENGTH)
        topology.add_link(router_node(_router_name(col, row)),
                          core_node(name), MESH_ACCESS_LENGTH)

    def link_length(a: Tuple[int, int], b: Tuple[int, int]) -> float:
        (x0, y0), (x1, y1) = placement.position(*a), \
            placement.position(*b)
        return abs(x1 - x0) + abs(y1 - y0)

    for index, flow in enumerate(spec.flows):
        grid_path = xy_route(attachment[flow.source],
                             attachment[flow.dest])
        nodes: List[NodeId] = [core_node(flow.source)]
        for grid in grid_path:
            col, row = grid
            name = _router_name(col, row)
            x, y = placement.position(col, row)
            topology.add_router(name, x, y)
            nodes.append(router_node(name))
        nodes.append(core_node(flow.dest))
        for a, b in zip(nodes, nodes[1:]):
            if a[0] == "router" and b[0] == "router":
                length = link_length(
                    _grid_of(a[1]), _grid_of(b[1]))
                topology.add_link(a, b, length)
        topology.route_flow(index, nodes)
    return topology


def _grid_of(router_name: str) -> Tuple[int, int]:
    """Grid coordinates encoded in a mesh router's name."""
    parts = router_name.split("_")
    return int(parts[-2]), int(parts[-1])


def mesh_hop_bound(spec: CommunicationSpec) -> int:
    """Worst-case router hops of the mesh for this spec's shape."""
    columns, rows = _grid_shape(spec.num_cores)
    return columns + rows
