"""COSI-OCC-style constraint-driven NoC synthesis.

Section IV of the paper integrates the interconnect models into
COSI-OCC, a tool that synthesizes an on-chip network (routers + buffered
point-to-point links) for a SoC's communication specification, and shows
that model accuracy changes the synthesized architectures (Table III).
This package reimplements that synthesis flow:

* :mod:`repro.noc.spec` — cores, floorplan positions, flows.
* :mod:`repro.noc.router` — router power/area/latency cost model.
* :mod:`repro.noc.link` — link design/feasibility via any interconnect
  model.
* :mod:`repro.noc.topology` — the synthesized network graph.
* :mod:`repro.noc.synthesis` — greedy constraint-driven synthesis
  (minimum marginal power routing over a candidate graph).
* :mod:`repro.noc.evaluation` — power/area/hop reporting, including
  cross-evaluation of one model's topology under another model.
* :mod:`repro.noc.testcases` — the VPROC and dual-VOPD test cases.
"""

from repro.noc.spec import CommunicationSpec, Core, Flow
from repro.noc.router import RouterParameters
from repro.noc.link import LinkDesigner, LinkDesign
from repro.noc.topology import NocTopology
from repro.noc.synthesis import SynthesisConfig, synthesize
from repro.noc.evaluation import NocReport, evaluate_topology
from repro.noc.mesh import build_mesh
from repro.noc.testcases import dual_vopd, vproc
from repro.noc.visualization import render_report
from repro.noc.width_exploration import explore_widths
from repro.noc.improvement import improve_topology
from repro.noc.timing import analyze_timing
from repro.noc.deadlock import analyze_deadlock

__all__ = [
    "CommunicationSpec",
    "Core",
    "Flow",
    "RouterParameters",
    "LinkDesigner",
    "LinkDesign",
    "NocTopology",
    "SynthesisConfig",
    "synthesize",
    "NocReport",
    "evaluate_topology",
    "build_mesh",
    "dual_vopd",
    "vproc",
    "render_report",
    "explore_widths",
    "improve_topology",
    "analyze_timing",
    "analyze_deadlock",
]
