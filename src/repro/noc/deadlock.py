"""Deadlock analysis of routed NoCs.

Wormhole networks deadlock when the channel dependency graph (CDG) has
a cycle: a packet holding channel A while waiting for channel B creates
a dependency A -> B, and a cyclic chain of such dependencies can stall
forever.  The classical result (Dally & Seitz): a routing function is
deadlock-free iff its CDG is acyclic.

This module builds the CDG induced by a topology's *actual routes* (the
dependencies real traffic can create, not all that the topology could
express) and checks it for cycles.  XY mesh routing is provably acyclic;
the greedy synthesizer's routes must be verified, and the checker also
reports the offending cycles so a designer can add virtual channels or
re-route.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import networkx as nx

from repro.noc.topology import NocTopology, NodeId

Channel = Tuple[NodeId, NodeId]


@dataclass(frozen=True)
class DeadlockReport:
    """Outcome of a channel-dependency analysis."""

    channel_count: int
    dependency_count: int
    cycles: Tuple[Tuple[Channel, ...], ...]

    @property
    def deadlock_free(self) -> bool:
        return not self.cycles

    def summary(self) -> str:
        verdict = ("deadlock-free" if self.deadlock_free
                   else f"{len(self.cycles)} dependency cycle(s)")
        return (f"{self.channel_count} channels, "
                f"{self.dependency_count} dependencies: {verdict}")


def channel_dependency_graph(topology: NocTopology) -> nx.DiGraph:
    """CDG induced by the routed flows.

    Nodes are directed channels (links); an edge A -> B exists when
    some routed flow traverses channel A immediately before channel B.
    """
    cdg = nx.DiGraph()
    for a, b, _data in topology.links():
        cdg.add_node((a, b))
    for path in topology.routes.values():
        channels = list(zip(path, path[1:]))
        for held, wanted in zip(channels, channels[1:]):
            cdg.add_edge(held, wanted)
    return cdg


def analyze_deadlock(topology: NocTopology,
                     max_cycles: int = 10) -> DeadlockReport:
    """Check the routed topology for potential wormhole deadlock."""
    cdg = channel_dependency_graph(topology)
    cycles: List[Tuple[Channel, ...]] = []
    try:
        for cycle in nx.simple_cycles(cdg):
            cycles.append(tuple(cycle))
            if len(cycles) >= max_cycles:
                break
    except nx.NetworkXNoCycle:  # pragma: no cover - version-dependent
        pass
    return DeadlockReport(
        channel_count=cdg.number_of_nodes(),
        dependency_count=cdg.number_of_edges(),
        cycles=tuple(cycles),
    )


def assert_deadlock_free(topology: NocTopology) -> None:
    """Raise ``RuntimeError`` with the offending cycle when unsafe."""
    report = analyze_deadlock(topology, max_cycles=1)
    if not report.deadlock_free:
        cycle = report.cycles[0]
        pretty = " -> ".join(f"{a[1]}>{b[1]}" for a, b in cycle)
        raise RuntimeError(f"channel dependency cycle: {pretty}")
