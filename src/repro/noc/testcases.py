"""The two SoC test cases of Table III.

* **VPROC** — a 42-core video processor with 128-bit data paths: four
  parallel processing pipelines with line memories, motion estimation,
  a DSP cluster, scaler/deinterlacer back end and control.  The paper
  describes it only as "a video processor with 42 cores and 128-b data
  widths"; the structure here is a representative video pipeline at
  that scale.
* **DVOPD** — a dual video object plane decoder: two parallel instances
  of the published VOPD task graph (13 cores each including the stream
  input), 26 cores total, 128-bit data widths.  The per-edge bandwidths
  follow the VOPD numbers used throughout the NoC synthesis literature.

Floorplans are defined at the 90 nm node and scale linearly with
feature size for smaller nodes (die area shrinks with the technology),
so each node's synthesis sees wire lengths consistent with its era.
"""

from __future__ import annotations

from typing import Optional

from repro.noc.spec import CommunicationSpec
from repro.tech.parameters import TechnologyParameters
from repro.units import mm, nm

#: Megabytes per second -> bits per second.
MBPS = 8.0e6

#: Floorplans below are drawn for this node and scaled elsewhere.
_BASE_FEATURE = nm(90)


def _scale_for(tech: Optional[TechnologyParameters]) -> float:
    if tech is None:
        return 1.0
    return tech.feature_size / _BASE_FEATURE


# ---------------------------------------------------------------------------
# Dual VOPD
# ---------------------------------------------------------------------------

#: The VOPD task graph: (source, dest, bandwidth MB/s).
_VOPD_FLOWS = (
    ("in_stream", "vld", 70),
    ("vld", "run_le_dec", 70),
    ("run_le_dec", "inv_scan", 362),
    ("inv_scan", "acdc_pred", 362),
    ("acdc_pred", "iquant", 362),
    ("acdc_pred", "stripe_mem", 49),
    ("stripe_mem", "acdc_pred", 27),
    ("iquant", "idct", 357),
    ("idct", "up_samp", 353),
    ("arm", "idct", 16),
    ("idct", "arm", 16),
    ("up_samp", "vop_rec", 300),
    ("vop_rec", "pad", 313),
    ("pad", "vop_mem", 313),
    ("vop_mem", "pad", 94),
)

#: Per-instance placement (grid columns/rows), chosen so the decode
#: pipeline snakes through the region.
_VOPD_PLACEMENT = {
    "in_stream": (0, 0),
    "vld": (1, 0),
    "run_le_dec": (2, 0),
    "inv_scan": (3, 0),
    "acdc_pred": (3, 1),
    "stripe_mem": (2, 1),
    "iquant": (3, 2),
    "idct": (2, 2),
    "arm": (1, 1),
    "up_samp": (1, 2),
    "vop_rec": (0, 2),
    "pad": (0, 1),
    "vop_mem": (1, 3),
}


def dual_vopd(tech: Optional[TechnologyParameters] = None,
              core_pitch: float = mm(1.4)) -> CommunicationSpec:
    """The 26-core dual video object plane decoder specification.

    Two VOPD instances decode independent streams in parallel; the
    instances sit side by side on the die, ``core_pitch`` meters
    apart.
    """
    scale = _scale_for(tech)
    pitch = core_pitch * scale
    spec = CommunicationSpec(name="DVOPD", data_width=128)
    instance_offset_columns = 5
    for instance in range(2):
        prefix = f"d{instance}_"
        x_offset = instance * instance_offset_columns
        for name, (col, row) in _VOPD_PLACEMENT.items():
            spec.add_core(prefix + name, (col + x_offset) * pitch,
                          row * pitch)
        for source, dest, mbps in _VOPD_FLOWS:
            spec.add_flow(prefix + source, prefix + dest, mbps * MBPS)
    spec.validate()
    return spec


# ---------------------------------------------------------------------------
# VPROC
# ---------------------------------------------------------------------------

def vproc(tech: Optional[TechnologyParameters] = None,
          core_pitch: float = mm(1.6)) -> CommunicationSpec:
    """The 42-core video processor specification.

    Cores sit ``core_pitch`` meters apart.  Structure: stream input
    feeds a demux that fans out to four
    parallel processing pipelines of five stages, each pipeline backed
    by a line memory; a motion-estimation pair and a four-core DSP
    cluster assist; results merge into a scaler + deinterlacer back end
    before the stream output; a CPU and DMA engine provide control.
    """
    scale = _scale_for(tech)
    pitch = core_pitch * scale
    spec = CommunicationSpec(name="VPROC", data_width=128)

    def place(name: str, col: float, row: float) -> None:
        spec.add_core(name, col * pitch, row * pitch)

    # Front end (left column) and back end (right column).
    place("vin", 0, 2)
    place("demux", 1, 2)
    place("mux", 5, 2)
    place("scaler", 6, 2)
    place("deint", 6, 1)
    place("vout", 6, 0)

    # Four pipelines of five stages (rows 0..3, columns 1.5..4.5 area),
    # each with a line memory beside stage 2.
    for k in range(4):
        for j in range(5):
            place(f"pe{k}_s{j}", 1.8 + 0.8 * j, k + 0.0 if k < 2
                  else k + 0.5)
        place(f"mem{k}", 1.8 + 0.8 * 5, k + 0.0 if k < 2 else k + 0.5)

    # Motion estimation, DSP cluster, control, audio path.
    place("me_coarse", 0, 4)
    place("me_fine", 1, 4)
    place("dsp0", 3, 5)
    place("dsp1", 4, 5)
    place("dsp2", 5, 5)
    place("dsp3", 6, 5)
    place("cpu", 0, 5)
    place("dma", 1, 5)
    place("aud_in", 0, 0)
    place("aud_proc", 0, 1)
    place("aud_out", 0, 3)
    place("vpp", 5, 4)

    assert spec.num_cores == 42, spec.num_cores

    def flow(source: str, dest: str, mbps: float) -> None:
        spec.add_flow(source, dest, mbps * MBPS)

    # Main video stream.
    flow("vin", "demux", 2000)
    for k in range(4):
        flow("demux", f"pe{k}_s0", 500)
        for j in range(4):
            flow(f"pe{k}_s{j}", f"pe{k}_s{j + 1}", 500)
        flow(f"pe{k}_s4", "mux", 500)
        flow(f"pe{k}_s2", f"mem{k}", 400)
        flow(f"mem{k}", f"pe{k}_s3", 400)
    flow("mux", "vpp", 2000)
    flow("vpp", "scaler", 2000)
    flow("scaler", "deint", 2000)
    flow("deint", "vout", 2000)

    # Motion estimation taps the input and informs the pipelines.
    flow("demux", "me_coarse", 600)
    flow("me_coarse", "me_fine", 300)
    for k in range(4):
        flow("me_fine", f"pe{k}_s1", 150)

    # DSP cluster post-processing assistance.
    flow("vpp", "dsp0", 250)
    flow("dsp0", "dsp1", 250)
    flow("dsp1", "dsp2", 250)
    flow("dsp2", "dsp3", 250)
    flow("dsp3", "vpp", 250)

    # Control and DMA.
    for k in range(4):
        flow("dma", f"mem{k}", 100)
    flow("cpu", "dma", 50)
    flow("cpu", "demux", 20)
    flow("cpu", "mux", 20)

    # Audio path.
    flow("aud_in", "aud_proc", 25)
    flow("aud_proc", "aud_out", 25)
    flow("cpu", "aud_proc", 10)

    spec.validate()
    return spec
