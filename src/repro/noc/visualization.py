"""Text rendering of floorplans and synthesized topologies.

System-level tools live or die by how inspectable their outputs are.
This module renders a :class:`~repro.noc.topology.NocTopology` as an
ASCII floorplan (cores and routers placed on a character grid, link
endpoints annotated) plus a link table — enough to eyeball why the
synthesizer chose the architecture it did, with no plotting stack.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.noc.spec import CommunicationSpec
from repro.noc.topology import NocTopology
from repro.units import to_mm

#: Character-grid resolution of the floorplan sketch.
GRID_COLUMNS = 72
GRID_ROWS = 24


def render_floorplan(spec: CommunicationSpec,
                     columns: int = GRID_COLUMNS,
                     rows: int = GRID_ROWS) -> str:
    """ASCII sketch of core positions on the die."""
    xs = [core.x for core in spec.cores.values()]
    ys = [core.y for core in spec.cores.values()]
    x0, x1 = min(xs), max(xs)
    y0, y1 = min(ys), max(ys)
    span_x = max(x1 - x0, 1e-9)
    span_y = max(y1 - y0, 1e-9)

    grid = [[" "] * columns for _ in range(rows)]
    labels: List[Tuple[int, int, str]] = []
    for name, core in sorted(spec.cores.items()):
        col = round((core.x - x0) / span_x * (columns - 1))
        row = round((core.y - y0) / span_y * (rows - 1))
        labels.append((row, col, name))
    for row, col, name in labels:
        marker = name[:8]
        for offset, char in enumerate(marker):
            position = col + offset
            if position < columns:
                grid[row][position] = char

    width_mm = to_mm(x1 - x0)
    height_mm = to_mm(y1 - y0)
    header = (f"{spec.name}: {spec.num_cores} cores on "
              f"{width_mm:.1f} x {height_mm:.1f} mm")
    border = "+" + "-" * columns + "+"
    body = ["|" + "".join(line) + "|" for line in grid]
    return "\n".join([header, border] + body + [border])


def render_topology(topology: NocTopology,
                    max_links: int = 40) -> str:
    """Link table of a synthesized NoC, heaviest links first."""
    spec = topology.spec
    rows: List[Tuple[float, str]] = []
    for a, b, data in topology.links():
        if a[0] != "router" or b[0] != "router":
            continue
        load_gbps = data["load"] / 1e9
        rows.append((
            data["load"],
            f"  {a[1]:<14} -> {b[1]:<14} "
            f"{to_mm(data['length']):6.2f} mm  {load_gbps:8.2f} Gb/s",
        ))
    rows.sort(key=lambda item: -item[0])

    avg_hops, max_hops = topology.hop_statistics()
    lines = [
        topology.summary(),
        f"router-router links (top {min(max_links, len(rows))} "
        f"of {len(rows)} by load):",
    ]
    lines.extend(text for _, text in rows[:max_links])
    if len(rows) > max_links:
        lines.append(f"  ... {len(rows) - max_links} more")

    lines.append("per-flow routes:")
    shown = 0
    for index in sorted(topology.routes):
        if shown >= 10:
            lines.append(f"  ... {len(topology.routes) - shown} more "
                         f"flows")
            break
        flow = spec.flows[index]
        hops = topology.hop_count(index)
        lines.append(f"  {flow.source:<14} -> {flow.dest:<14} "
                     f"{flow.bandwidth / 8e6:7.0f} MB/s  {hops} hops")
        shown += 1
    return "\n".join(lines)


def render_report(topology: NocTopology,
                  spec: CommunicationSpec) -> str:
    """Floorplan + topology in one printable block."""
    return (render_floorplan(spec) + "\n\n"
            + render_topology(topology))


def router_utilization(topology: NocTopology) -> Dict[str, int]:
    """Router name -> port count, for quick hot-spot inspection."""
    return {router[1]: topology.router_degree(router)
            for router in topology.routers()}
