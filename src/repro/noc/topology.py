"""The synthesized network: routers, links, and flow routes.

Nodes are ``("core", name)`` or ``("router", name)``; edges are
directed links carrying a physical length.  A bidirectional physical
channel is represented as two directed links, the standard NoC
convention.  Router degree counts *distinct neighbours* (one physical
port serves both directions of a channel).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

import networkx as nx

from repro.noc.spec import CommunicationSpec, Flow

NodeId = Tuple[str, str]


def core_node(name: str) -> NodeId:
    return ("core", name)


def router_node(name: str) -> NodeId:
    return ("router", name)


@dataclass
class NocTopology:
    """A synthesized NoC: graph + per-flow routes + link loads."""

    spec: CommunicationSpec
    graph: nx.DiGraph = field(default_factory=nx.DiGraph)
    routes: Dict[int, List[NodeId]] = field(default_factory=dict)

    # -- construction ------------------------------------------------------

    def add_router(self, name: str, x: float, y: float) -> NodeId:
        """Add a router placed at ``(x, y)`` meters (idempotent)."""
        node = router_node(name)
        if node not in self.graph:
            self.graph.add_node(node, x=x, y=y)
        return node

    def add_core_node(self, name: str) -> NodeId:
        core = self.spec.cores[name]
        node = core_node(name)
        if node not in self.graph:
            self.graph.add_node(node, x=core.x, y=core.y)
        return node

    def add_link(self, source: NodeId, dest: NodeId,
                 length: float) -> None:
        """Install a directed link of ``length`` meters (idempotent)."""
        if source not in self.graph or dest not in self.graph:
            raise KeyError("both link endpoints must exist")
        if not self.graph.has_edge(source, dest):
            self.graph.add_edge(source, dest, length=length, load=0.0)

    def route_flow(self, flow_index: int, path: List[NodeId]) -> None:
        """Record a flow's path and add its load to every edge."""
        if flow_index in self.routes:
            raise ValueError(f"flow {flow_index} is already routed")
        flow = self.spec.flows[flow_index]
        if path[0] != core_node(flow.source):
            raise ValueError("path must start at the flow's source core")
        if path[-1] != core_node(flow.dest):
            raise ValueError("path must end at the flow's dest core")
        for a, b in zip(path, path[1:]):
            if not self.graph.has_edge(a, b):
                raise KeyError(f"path uses uninstalled link {a} -> {b}")
        for a, b in zip(path, path[1:]):
            self.graph.edges[a, b]["load"] += flow.bandwidth
        self.routes[flow_index] = list(path)

    # -- queries -----------------------------------------------------------

    def routers(self) -> List[NodeId]:
        return [node for node in self.graph.nodes if node[0] == "router"]

    def links(self) -> Iterable[Tuple[NodeId, NodeId, Dict]]:
        return self.graph.edges(data=True)

    def router_degree(self, node: NodeId) -> int:
        """Distinct physical neighbours (ports) of a router."""
        neighbours = set(self.graph.predecessors(node))
        neighbours.update(self.graph.successors(node))
        return len(neighbours)

    def edge_load(self, source: NodeId, dest: NodeId) -> float:
        """Routed traffic on one link, bits/s."""
        return self.graph.edges[source, dest]["load"]

    def edge_length(self, source: NodeId, dest: NodeId) -> float:
        """Physical length of one link, in meters."""
        return self.graph.edges[source, dest]["length"]

    def hop_count(self, flow_index: int) -> int:
        """Router traversals of one routed flow."""
        path = self.routes[flow_index]
        return sum(1 for node in path if node[0] == "router")

    def hop_statistics(self) -> Tuple[float, int]:
        """(average, maximum) router hops over all routed flows."""
        if not self.routes:
            return 0.0, 0
        hops = [self.hop_count(index) for index in self.routes]
        return sum(hops) / len(hops), max(hops)

    def max_link_length(self) -> float:
        """Longest link in meters (0.0 when there are no links)."""
        lengths = [data["length"] for _, _, data in self.links()]
        return max(lengths) if lengths else 0.0

    def router_link_count(self) -> int:
        """Number of directed router-to-router links."""
        return sum(1 for a, b, _ in self.links()
                   if a[0] == "router" and b[0] == "router")

    # -- validation ----------------------------------------------------------

    def validate(self, capacity: float,
                 max_ports: Optional[int] = None) -> List[str]:
        """Structural and constraint checks against a per-link
        ``capacity`` in bits/s; returns human-readable violations
        (empty list when clean)."""
        problems: List[str] = []
        for index, _flow in enumerate(self.spec.flows):
            if index not in self.routes:
                problems.append(f"flow {index} is unrouted")
        for a, b, data in self.links():
            if data["load"] > capacity * (1.0 + 1e-9):
                problems.append(
                    f"link {a} -> {b} overloaded: "
                    f"{data['load']:.3g} > {capacity:.3g} bits/s")
        if max_ports is not None:
            for router in self.routers():
                degree = self.router_degree(router)
                if degree > max_ports:
                    problems.append(
                        f"router {router[1]} has {degree} ports "
                        f"(max {max_ports})")
        # Loads must equal the sum of routed flows per edge.
        recomputed: Dict[Tuple[NodeId, NodeId], float] = {}
        for index, path in self.routes.items():
            bandwidth = self.spec.flows[index].bandwidth
            for a, b in zip(path, path[1:]):
                recomputed[(a, b)] = recomputed.get((a, b), 0.0) + bandwidth
        for a, b, data in self.links():
            expected = recomputed.get((a, b), 0.0)
            if abs(expected - data["load"]) > 1e-6 * max(expected, 1.0):
                problems.append(
                    f"link {a} -> {b} load {data['load']:.6g} does not "
                    f"match routed flows {expected:.6g}")
        return problems

    # -- rendering ----------------------------------------------------------

    def summary(self) -> str:
        avg_hops, max_hops = self.hop_statistics()
        return (f"{self.spec.name}: {len(self.routers())} routers, "
                f"{self.graph.number_of_edges()} links "
                f"({self.router_link_count()} router-router), "
                f"hops avg {avg_hops:.2f} max {max_hops}, "
                f"longest link {self.max_link_length() * 1e3:.2f} mm")
