"""Link design: buffered-bus cost and feasibility under a given model.

A NoC link is a ``data_width``-bit buffered bus that must traverse its
length within one clock period (links are registered at routers).  The
:class:`LinkDesigner` answers, for whatever interconnect model it is
given:

* is a link of length L feasible at this clock?
* what is the cheapest buffering that meets the period?
* what are its power (at the actual traffic load), area and delay?

Because the designer is model-agnostic, swapping the proposed model for
the Bakoglu baseline reproduces the original-vs-proposed COSI-OCC
comparison of Table III — including the original model's optimistic
maximum link length.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.buffering.optimizer import (
    BufferingSolution,
    max_feasible_length,
    minimize_power_under_delay,
)
from repro.models.interconnect import InterconnectEstimate
from repro.runtime import DiskCache, METRICS, fingerprint, span
from repro.tech.parameters import TechnologyParameters
from repro.units import ps

#: Fraction of raw link bandwidth usable for payload traffic.
DEFAULT_UTILIZATION = 0.75

#: Input slew assumed at link entry (driven by a router output stage).
LINK_INPUT_SLEW = ps(100)

#: Length quantum for the link-design cache, meters.  Candidate edges
#: whose lengths round to the same quantum share one buffering design.
_LENGTH_QUANTUM = 0.05e-3

#: Default bound on the per-instance link-design memo (entries).  A
#: synthesis run touches a few hundred distinct quanta; a long-running
#: server would otherwise grow the memo without limit.
DEFAULT_MEMO_ENTRIES = 4096


def quantize_length(length: float, max_length: float) -> int:
    """The memo/disk key (quantum index) for a requested length.

    Both ``length`` and ``max_length`` are in meters.  Rounding to the
    nearest quantum is the cache-friendly default; when that rounding
    would push a feasible request past the feasibility edge, the key
    falls back to the quantum at or below the request so the link is
    not spuriously reported undesignable.  ``design()`` and
    ``design_batch()`` share this one function, which is what makes
    their memo and disk-cache keys identical by construction.
    """
    key = max(1, round(length / _LENGTH_QUANTUM))
    if key * _LENGTH_QUANTUM > max_length:
        key = max(1, int(length / _LENGTH_QUANTUM))
    return key


class _LRUMemo:
    """A bounded least-recently-used memo of quantum -> design.

    ``None`` values (infeasible lengths) are first-class entries, so
    lookups distinguish "memoized as infeasible" from "never seen" via
    the ``_MISS`` sentinel.  Evictions are counted under
    ``link.memo_evicted`` so a server whose working set exceeds the
    bound is visible in ``--stats``.
    """

    __slots__ = ("entries", "_data")

    def __init__(self, entries: int):
        if entries < 1:
            raise ValueError("memo_entries must be >= 1")
        self.entries = entries
        self._data: "OrderedDict[int, Optional[LinkDesign]]" \
            = OrderedDict()

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: int) -> bool:
        return key in self._data

    def lookup(self, key: int):
        """The memoized design, or the :data:`_MISS` sentinel."""
        if key not in self._data:
            return _MISS
        self._data.move_to_end(key)
        return self._data[key]

    def store(self, key: int,
              design: "Optional[LinkDesign]") -> None:
        self._data[key] = design
        self._data.move_to_end(key)
        while len(self._data) > self.entries:
            self._data.popitem(last=False)
            METRICS.count("link.memo_evicted")


#: Sentinel distinguishing a memo miss from a memoized ``None``
#: (infeasible length).
_MISS = object()


@dataclass(frozen=True)
class LinkDesign:
    """A designed link: buffering choice plus cost breakdown (per bus)."""

    length: float
    bus_width: int
    solution: BufferingSolution
    leakage_power: float          # W, whole bus
    switched_capacitance: float   # F, whole bus, per transition
    repeater_area: float          # m^2, whole bus
    wire_area: float              # m^2

    @property
    def delay(self) -> float:
        """End-to-end link delay, in seconds."""
        return self.solution.delay

    def dynamic_power(self, bandwidth: float, vdd: float,
                      clock_frequency: float) -> float:
        """Dynamic power (W) at an actual traffic load.

        ``bandwidth`` is the payload bits/s carried; the activity factor
        of each wire is ``bandwidth / (bus_width * f)`` under random
        data, and the energy per transition is ``C vdd^2``.
        """
        if bandwidth < 0:
            raise ValueError("bandwidth must be non-negative")
        activity = bandwidth / (self.bus_width * clock_frequency)
        return activity * self.switched_capacitance * vdd * vdd \
            * clock_frequency

    @property
    def total_area(self) -> float:
        """Repeater plus wire area, in square meters."""
        return self.repeater_area + self.wire_area

    # -- persistent-cache serialization -----------------------------------

    def to_payload(self) -> Dict:
        """JSON-serializable rendering for the persistent cache."""
        estimate = self.solution.estimate
        return {
            "length": self.length,
            "bus_width": self.bus_width,
            "solution": {
                "num_repeaters": self.solution.num_repeaters,
                "repeater_size": self.solution.repeater_size,
                "objective": self.solution.objective,
                "estimate": {
                    "delay": estimate.delay,
                    "output_slew": estimate.output_slew,
                    "stage_delays": list(estimate.stage_delays),
                    "dynamic_power": estimate.dynamic_power,
                    "leakage_power": estimate.leakage_power,
                    "repeater_area": estimate.repeater_area,
                    "wire_area": estimate.wire_area,
                    "num_repeaters": estimate.num_repeaters,
                    "repeater_size": estimate.repeater_size,
                    "length": estimate.length,
                    "bus_width": estimate.bus_width,
                },
            },
            "leakage_power": self.leakage_power,
            "switched_capacitance": self.switched_capacitance,
            "repeater_area": self.repeater_area,
            "wire_area": self.wire_area,
        }

    @classmethod
    def from_payload(cls, payload: Dict) -> "LinkDesign":
        entry = payload["solution"]
        estimate_entry = dict(entry["estimate"])
        estimate_entry["stage_delays"] = tuple(
            estimate_entry["stage_delays"])
        estimate = InterconnectEstimate(**estimate_entry)
        solution = BufferingSolution(
            num_repeaters=entry["num_repeaters"],
            repeater_size=entry["repeater_size"],
            estimate=estimate,
            objective=entry["objective"],
        )
        return cls(
            length=payload["length"],
            bus_width=payload["bus_width"],
            solution=solution,
            leakage_power=payload["leakage_power"],
            switched_capacitance=payload["switched_capacitance"],
            repeater_area=payload["repeater_area"],
            wire_area=payload["wire_area"],
        )


def design_link(model, tech: TechnologyParameters, bus_width: int,
                length: float) -> Optional[LinkDesign]:
    """The stateless link-design core: one length, no caches.

    Finds the cheapest buffering of a ``length``-meter link (or
    ``None`` when timing cannot close) for a (model, technology,
    bus-width) context, exactly as :meth:`LinkDesigner.design` would —
    the designer's memo and disk-cache levels both bottom out here.
    Being a module-level pure function of its arguments, any process
    (a pool worker, a ``repro serve`` shard) can evaluate any query
    and the answers are interchangeable.
    """
    with span("link.design", length_mm=length * 1e3,
              bus_width=bus_width, node=tech.name) as sp, \
            METRICS.timer("link.design"):
        METRICS.count("link.design_attempts")
        solution = minimize_power_under_delay(
            model, length, tech.clock_period(),
            input_slew=LINK_INPUT_SLEW)
        sp.annotate(feasible=solution is not None)
        if solution is not None:
            sp.annotate(num_repeaters=solution.num_repeaters,
                        repeater_size=solution.repeater_size)
    if solution is None:
        return None
    estimate = model.evaluate(
        length, solution.num_repeaters, solution.repeater_size,
        LINK_INPUT_SLEW, bus_width=bus_width)
    # Recover the switched capacitance from the estimate's dynamic
    # power: p = af * C * vdd^2 * f  =>  C = p / (af vdd^2 f).
    activity = getattr(model, "activity_factor", 0.15)
    switched = estimate.dynamic_power / (
        activity * tech.vdd**2 * tech.clock_frequency)
    return LinkDesign(
        length=length,
        bus_width=bus_width,
        solution=solution,
        leakage_power=estimate.leakage_power,
        switched_capacitance=switched,
        repeater_area=estimate.repeater_area,
        wire_area=estimate.wire_area,
    )


class LinkDesigner:
    """Designs and caches links for one (model, clock) context.

    Two cache levels: a per-instance LRU memo keyed on the length
    quantum (bounded by ``memo_entries`` so a long-running server
    cannot grow it without limit), and (when the runtime cache is
    enabled) the persistent :class:`repro.runtime.DiskCache`, so
    repeated CLI invocations, pool workers and serve shards warm-start
    each other's link designs.  The computation itself lives in the
    stateless :func:`design_link` core.
    """

    def __init__(self, model, tech: TechnologyParameters,
                 bus_width: int,
                 utilization: float = DEFAULT_UTILIZATION,
                 use_disk_cache: bool = True,
                 memo_entries: int = DEFAULT_MEMO_ENTRIES):
        if not 0.0 < utilization <= 1.0:
            raise ValueError("utilization must lie in (0, 1]")
        self.model = model
        self.tech = tech
        self.bus_width = bus_width
        self.utilization = utilization
        self._memo = _LRUMemo(memo_entries)
        self._max_length: Optional[float] = None
        self._disk: Optional[DiskCache] = None
        self._context_hash: Optional[str] = None
        if use_disk_cache:
            try:
                # One hash covers everything a design depends on: the
                # full technology, the model (class plus every fitted
                # coefficient), clocking and the bus geometry.  Models
                # may override what identifies them — the LUT-served
                # wrapper hashes its base model *plus* the artifact
                # content hash, so a rebuilt grid invalidates designs.
                model_key = (model.cache_key()
                             if hasattr(model, "cache_key") else model)
                self._context_hash = fingerprint({
                    "model": model_key,
                    "tech": tech,
                    "bus_width": bus_width,
                    "utilization": utilization,
                })
                self._disk = DiskCache("links")
            except TypeError:
                # Models that are not canonicalizable (ad-hoc fakes)
                # simply skip the persistent level.
                self._context_hash = None

    # -- capacity ---------------------------------------------------------

    def capacity(self) -> float:
        """Usable payload bandwidth of one link, bits/s."""
        return (self.bus_width * self.tech.clock_frequency
                * self.utilization)

    # -- feasibility -----------------------------------------------------

    def max_length(self) -> float:
        """Longest feasible link at one clock period, meters (cached)."""
        if self._max_length is None:
            payload = self._disk_get({"kind": "max_length"})
            if payload is not None:
                self._max_length = float(payload["max_length"])
            else:
                self._max_length = max_feasible_length(
                    self.model, self.tech.clock_period(),
                    input_slew=LINK_INPUT_SLEW)
                self._disk_put({"kind": "max_length"},
                               {"max_length": self._max_length})
        return self._max_length

    def is_feasible(self, length: float) -> bool:
        """Whether a link of ``length`` meters closes timing."""
        return length <= self.max_length()

    # -- design -----------------------------------------------------------

    def design(self, length: float) -> Optional[LinkDesign]:
        """Cheapest feasible link of ``length`` meters, or ``None``.

        Designs are cached on a length quantum since synthesis evaluates
        many candidate edges of nearly identical lengths.  Feasibility
        is decided on the *requested* length, consistently with
        :meth:`is_feasible`: when rounding to the quantum grid would
        push a feasible length past the feasibility edge, the design
        falls back to the quantum at or below the request instead of
        spuriously reporting the link undesignable.
        """
        if length <= 0:
            raise ValueError("length must be positive")
        if not self.is_feasible(length):
            return None
        key = quantize_length(length, self.max_length())
        memoized = self._memo.lookup(key)
        if memoized is not _MISS:
            METRICS.count("link.memo_hit")
            return memoized
        design = self._design_cached_on_disk(key)
        self._memo.store(key, design)
        return design

    def design_batch(self, lengths: "list[float]"
                     ) -> "list[Optional[LinkDesign]]":
        """Designs for many lengths, warming every cache level.

        Each design runs on the batched kernel scorer when the model
        supports it (all repeater-count candidates searched as lanes of
        one lockstep search), so pre-warming a synthesis run's distinct
        candidate lengths through this entry point replaces thousands
        of scalar model calls with a few dozen array calls.
        """
        with span("link.design_batch", n=len(lengths),
                  bus_width=self.bus_width):
            return [self.design(length) for length in lengths]

    def _disk_get(self, key_tail: Dict) -> Optional[Dict]:
        if self._disk is None or self._context_hash is None:
            return None
        return self._disk.get({"context": self._context_hash,
                               **key_tail}, kind=key_tail["kind"])

    def _disk_put(self, key_tail: Dict, payload: Dict) -> None:
        if self._disk is None or self._context_hash is None:
            return
        self._disk.put({"context": self._context_hash, **key_tail},
                       payload, kind=key_tail["kind"])

    def _design_cached_on_disk(self, key: int) -> Optional[LinkDesign]:
        key_tail = {"kind": "design", "quantum_index": key,
                    "quantum": _LENGTH_QUANTUM}
        payload = self._disk_get(key_tail)
        if payload is not None:
            if not payload.get("feasible", False):
                return None
            return LinkDesign.from_payload(payload["design"])
        design = self._design_uncached(key * _LENGTH_QUANTUM)
        if design is None:
            self._disk_put(key_tail, {"feasible": False})
        else:
            self._disk_put(key_tail, {"feasible": True,
                                      "design": design.to_payload()})
        return design

    def _design_uncached(self, length: float) -> Optional[LinkDesign]:
        if not self.is_feasible(length):
            return None
        return design_link(self.model, self.tech, self.bus_width,
                           length)


class LayerAwareLinkDesigner:
    """Link design with per-link routing-layer assignment.

    Real flows route short links on cheap intermediate metal and
    reserve the thick global layers for spans that need them.  This
    designer holds one :class:`LinkDesigner` per candidate layer and,
    for each length, picks the *cheapest feasible* option — so layer
    assignment falls out of the same min-power objective as everything
    else.  It is a drop-in replacement for :class:`LinkDesigner` in the
    synthesizer and evaluator.
    """

    def __init__(self, layer_models: "dict[str, object]",
                 tech: TechnologyParameters, bus_width: int,
                 utilization: float = DEFAULT_UTILIZATION):
        if not layer_models:
            raise ValueError("need at least one layer model")
        self.tech = tech
        self.bus_width = bus_width
        self.utilization = utilization
        self._designers = {
            name: LinkDesigner(model, tech, bus_width,
                               utilization=utilization)
            for name, model in layer_models.items()
        }

    def capacity(self) -> float:
        """Usable payload bandwidth of one link, bits/s."""
        return (self.bus_width * self.tech.clock_frequency
                * self.utilization)

    def max_length(self) -> float:
        """Longest feasible link in meters: the most capable layer."""
        return max(designer.max_length()
                   for designer in self._designers.values())

    def is_feasible(self, length: float) -> bool:
        """Whether a link of ``length`` meters closes timing."""
        return length <= self.max_length()

    def _reference_cost(self, design: LinkDesign) -> float:
        """Total power at a reference 15% activity — the layer-choice
        metric (actual loads are unknown at design time)."""
        return design.leakage_power + design.dynamic_power(
            0.15 * self.bus_width * self.tech.clock_frequency,
            self.tech.vdd, self.tech.clock_frequency)

    def _best(self, length: float
              ) -> "Tuple[Optional[str], Optional[LinkDesign]]":
        best_name: Optional[str] = None
        best: Optional[LinkDesign] = None
        for name, designer in self._designers.items():
            candidate = designer.design(length)
            if candidate is None:
                continue
            if best is None or (self._reference_cost(candidate)
                                < self._reference_cost(best)):
                best = candidate
                best_name = name
        return best_name, best

    def design(self, length: float) -> Optional[LinkDesign]:
        """Cheapest feasible design of ``length`` meters, if any."""
        return self._best(length)[1]

    def design_batch(self, lengths: "list[float]"
                     ) -> "list[Optional[LinkDesign]]":
        """Designs for many lengths, warming every layer's caches."""
        with span("link.design_batch", n=len(lengths),
                  bus_width=self.bus_width):
            return [self.design(length) for length in lengths]

    def layer_choice(self, length: float) -> Optional[str]:
        """Which layer the cheapest feasible design of ``length``
        meters uses, by name."""
        return self._best(length)[0]
