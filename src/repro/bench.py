"""Scalar-vs-kernel benchmarks: the repo's tracked perf trajectory.

``repro bench`` times the two hot paths that the vectorized kernels
accelerate — Monte-Carlo variation analysis and link-design sweeps —
once on the scalar reference path and once on the batched kernels,
checks the results agree (≤ :data:`EQUIVALENCE_RTOL` relative), and
writes ``BENCH_kernels.json``:

.. code-block:: json

    {
      "schema": 1,
      "generated_at": "...",
      "node": "90nm",
      "quick": false,
      "env": {"python": "...", "platform": "...", "numpy": "..."},
      "results": [
        {"op": "monte_carlo", "n": 10000,
         "wall_s": {"scalar": 12.3, "kernel": 0.4},
         "speedup": 30.7, "max_rel_diff": 0.0, "equivalent": true}
      ]
    }

This file seeds the perf baseline later PRs are judged against; the
CI ``bench-smoke`` job runs the ``--quick`` variant and fails when
kernel/scalar equivalence drifts.

Timing uses ``time.perf_counter`` (a duration, not a wall clock) and
runs the scalar path at ``workers=1``, so the recorded speedup is the
single-process algorithmic win, not parallelism.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.units import mm, ps

#: Bump when the BENCH_kernels.json layout changes incompatibly.
BENCH_SCHEMA = 1

#: Maximum allowed scalar-vs-kernel relative difference.
EQUIVALENCE_RTOL = 1e-9

#: Monte-Carlo sample counts (full / --quick).
DEFAULT_SAMPLES = 10_000
QUICK_SAMPLES = 2_000

#: Link-sweep lengths in millimeters (full / --quick).
SWEEP_LENGTHS_MM = (1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0)
QUICK_SWEEP_LENGTHS_MM = (1.0, 3.0, 5.0)


@dataclass(frozen=True)
class BenchResult:
    """One scalar-vs-kernel timing comparison.

    With ``reps > 1`` the wall times are means over the repetitions
    and the ``*_wall_se`` fields carry the standard error of those
    means (from the per-rep timing histograms), which is what makes
    ``repro bench diff``'s noise gate meaningful.
    """

    op: str
    n: int
    scalar_wall_s: float
    kernel_wall_s: float
    max_rel_diff: float
    scalar_wall_se: float = 0.0
    kernel_wall_se: float = 0.0
    reps: int = 1

    @property
    def speedup(self) -> float:
        """Scalar wall time over kernel wall time (dimensionless)."""
        return self.scalar_wall_s / self.kernel_wall_s

    @property
    def equivalent(self) -> bool:
        """Whether the two paths agreed within the tolerance."""
        return self.max_rel_diff <= EQUIVALENCE_RTOL

    def to_payload(self) -> Dict[str, Any]:
        return {
            "op": self.op,
            "n": self.n,
            "wall_s": {"scalar": self.scalar_wall_s,
                       "kernel": self.kernel_wall_s},
            "wall_se": {"scalar": self.scalar_wall_se,
                        "kernel": self.kernel_wall_se},
            "reps": self.reps,
            "speedup": self.speedup,
            "max_rel_diff": self.max_rel_diff,
            "equivalent": self.equivalent,
        }

    def format(self) -> str:
        verdict = "ok" if self.equivalent else "DRIFT"
        return (f"{self.op:<14} n={self.n:<6d} "
                f"scalar {self.scalar_wall_s:8.3f} s   "
                f"kernel {self.kernel_wall_s:8.3f} s   "
                f"{self.speedup:7.1f}x   "
                f"max rel diff {self.max_rel_diff:.2e} [{verdict}]")


def _max_rel_diff(reference: np.ndarray, candidate: np.ndarray) -> float:
    reference = np.asarray(reference, dtype=float)
    candidate = np.asarray(candidate, dtype=float)
    scale = np.maximum(np.abs(reference), 1e-300)
    return float(np.max(np.abs(candidate - reference) / scale))


def run_monte_carlo_bench(node: str = "90nm",
                          samples: int = DEFAULT_SAMPLES,
                          seed: int = 2010,
                          reps: int = 1) -> BenchResult:
    """Time the closed-form Monte-Carlo at ``workers=1``, both paths.

    The scalar path is the ``"model"`` engine (one Python stage chain
    per draw); the kernel path evaluates the same factor matrix in one
    batched call.  Both walk identical RNG streams, so the sample
    vectors must match bit-for-bit — any drift beyond
    :data:`EQUIVALENCE_RTOL` is a correctness failure.  ``reps``
    repeats each timing; means and standard errors come from the
    per-rep histograms.
    """
    from repro.experiments.suite import ModelSuite
    from repro.runtime.metrics import METRICS, Histogram
    from repro.signoff.extraction import extract_buffered_line
    from repro.signoff.variation import monte_carlo_line_delay

    suite = ModelSuite.for_node(node)
    model = suite.proposed
    # A 10 mm global link (20 repeaters) — the long-wire end of the
    # paper's studied range, where per-draw scalar evaluation hurts.
    line = extract_buffered_line(model.tech, model.config, mm(10), 20,
                                 40.0)

    scalar_walls = Histogram()
    kernel_walls = Histogram()
    scalar = kernel = None
    for _ in range(max(1, reps)):
        started = time.perf_counter()
        scalar = monte_carlo_line_delay(line, ps(100), samples=samples,
                                        seed=seed, workers=1,
                                        engine="model", model=model)
        elapsed = time.perf_counter() - started
        scalar_walls.observe(elapsed)
        METRICS.observe("bench.monte_carlo.scalar_seconds", elapsed)

        started = time.perf_counter()
        kernel = monte_carlo_line_delay(line, ps(100), samples=samples,
                                        seed=seed, workers=1,
                                        engine="kernel", model=model)
        elapsed = time.perf_counter() - started
        kernel_walls.observe(elapsed)
        METRICS.observe("bench.monte_carlo.kernel_seconds", elapsed)

    diff = _max_rel_diff(np.array(scalar.samples),
                         np.array(kernel.samples))
    diff = max(diff, _max_rel_diff(scalar.nominal_delay,
                                   kernel.nominal_delay))
    return BenchResult(op="monte_carlo", n=samples,
                       scalar_wall_s=scalar_walls.mean,
                       kernel_wall_s=kernel_walls.mean,
                       max_rel_diff=diff,
                       scalar_wall_se=scalar_walls.standard_error(),
                       kernel_wall_se=kernel_walls.standard_error(),
                       reps=scalar_walls.count)


def run_link_sweep_bench(node: str = "90nm",
                         lengths_mm: Tuple[float, ...] = SWEEP_LENGTHS_MM,
                         reps: int = 1) -> BenchResult:
    """Time the min-power link design sweep, scalar vs kernel search.

    Both paths follow the same search trajectory by construction, so
    the chosen (count, size) and the resulting delay/power must agree
    exactly; the recorded difference covers delay and total power of
    every design.
    """
    from repro.buffering.optimizer import minimize_power_under_delay
    from repro.experiments.suite import ModelSuite
    from repro.runtime.metrics import METRICS, Histogram

    suite = ModelSuite.for_node(node)
    model = suite.proposed
    max_delay = suite.tech.clock_period()

    scalar_walls = Histogram()
    kernel_walls = Histogram()
    scalar = kernel = None
    for _ in range(max(1, reps)):
        started = time.perf_counter()
        scalar = [minimize_power_under_delay(model, mm(length),
                                             max_delay,
                                             use_kernels=False)
                  for length in lengths_mm]
        elapsed = time.perf_counter() - started
        scalar_walls.observe(elapsed)
        METRICS.observe("bench.link_sweep.scalar_seconds", elapsed)

        started = time.perf_counter()
        kernel = [minimize_power_under_delay(model, mm(length),
                                             max_delay,
                                             use_kernels=True)
                  for length in lengths_mm]
        elapsed = time.perf_counter() - started
        kernel_walls.observe(elapsed)
        METRICS.observe("bench.link_sweep.kernel_seconds", elapsed)

    diff = 0.0
    for reference, candidate in zip(scalar, kernel):
        if (reference is None) != (candidate is None):
            diff = max(diff, float("inf"))
            continue
        if reference is None:
            continue
        if (reference.num_repeaters != candidate.num_repeaters
                or reference.repeater_size != candidate.repeater_size):
            diff = max(diff, float("inf"))
            continue
        diff = max(diff, _max_rel_diff(reference.delay, candidate.delay))
        diff = max(diff, _max_rel_diff(reference.power, candidate.power))
    return BenchResult(op="link_sweep", n=len(lengths_mm),
                       scalar_wall_s=scalar_walls.mean,
                       kernel_wall_s=kernel_walls.mean,
                       max_rel_diff=diff,
                       scalar_wall_se=scalar_walls.standard_error(),
                       kernel_wall_se=kernel_walls.standard_error(),
                       reps=scalar_walls.count)


def run_bench(node: str = "90nm", quick: bool = False,
              samples: Optional[int] = None,
              output: str = "BENCH_kernels.json",
              reps: int = 1,
              history: Optional[str] = None
              ) -> "Tuple[int, Dict[str, Any]]":
    """Run every benchmark, write ``output``, return (status, report).

    Status is 0 when every comparison stayed within
    :data:`EQUIVALENCE_RTOL` and 1 on drift — the bench doubles as the
    CI equivalence gate.  Besides the snapshot ``output``, the run
    appends one record to the benchmark registry history (``history``
    overrides the default ``benchmarks/results/history.jsonl``) for
    ``repro bench diff`` to gate on.
    """
    from repro import bench_registry
    from repro.runtime.manifest import run_environment, utc_timestamp

    if samples is None:
        samples = QUICK_SAMPLES if quick else DEFAULT_SAMPLES
    lengths = QUICK_SWEEP_LENGTHS_MM if quick else SWEEP_LENGTHS_MM

    results: List[BenchResult] = [
        run_monte_carlo_bench(node, samples=samples, reps=reps),
        run_link_sweep_bench(node, lengths_mm=lengths, reps=reps),
    ]
    report: Dict[str, Any] = {
        "schema": BENCH_SCHEMA,
        "generated_at": utc_timestamp(),
        "node": node,
        "quick": quick,
        "env": run_environment(),
        "results": [result.to_payload() for result in results],
    }
    with open(output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    record = bench_registry.build_record(
        "kernels", node=node, quick=quick,
        config={"node": node, "quick": quick, "samples": samples,
                "lengths_mm": list(lengths), "reps": reps},
        samples=[bench_registry.BenchSample(
            name=f"{result.op}.{variant}",
            value=wall, se=se, n=result.n)
            for result in results
            for variant, wall, se in (
                ("scalar", result.scalar_wall_s,
                 result.scalar_wall_se),
                ("kernel", result.kernel_wall_s,
                 result.kernel_wall_se))],
        generated_at=report["generated_at"])
    history_path = bench_registry.append_record(record, history)
    # Human-readable lines for the CLI; not part of the JSON artifact.
    report["formatted"] = [result.format() for result in results]
    report["history_path"] = str(history_path)
    status = 0 if all(result.equivalent for result in results) else 1
    return status, report
