"""The stateless evaluate core every serve worker runs.

A worker process serves queries through exactly two pieces of state,
both reconstructible from the query itself:

* a per-process **warm context** — the :class:`ModelSuite` and
  :class:`repro.noc.link.LinkDesigner` for one
  :class:`~repro.serve.protocol.ContextSpec`, memoized in
  :data:`_CONTEXTS` so repeated queries skip model construction; and
* the **shared memo** — the persistent ``DiskCache("links")`` the
  designer consults before computing, which any process (shard,
  worker, CLI run) can read and write interchangeably.

Because of that, *any* worker can serve *any* query and the answer is
bit-identical to the direct in-process call: :func:`execute_query` is
the single evaluation path both sides run.

:func:`run_job` is the worker-side entry (picklable, module-level):
it resets the worker's metrics registry, fires any armed
fault-injection specs addressed to this job's ordinal, evaluates the
job's queries — coalesced ``design`` queries go through
``LinkDesigner.design_batch`` so the kernel batch layer sees one
array call — and ships the results back with the worker's metrics
payload.  :func:`run_job_inline` is the parent-side twin used for
in-process compute and crash recovery; it never fires injected
faults, which is what makes crash-then-recover terminate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Sequence, Tuple

from repro.noc.link import DEFAULT_MEMO_ENTRIES, LinkDesigner
from repro.runtime import METRICS, faults, span
from repro.serve.protocol import Query, design_payload
from repro.units import mm, ps


@dataclass
class ServeContext:
    """One warm serving context (model suite + link designer)."""

    suite: Any
    designer: LinkDesigner


#: Per-process warm contexts, keyed on (spec, memo_entries).
_CONTEXTS: Dict[Tuple[Any, int], ServeContext] = {}


def reset_contexts() -> None:
    """Drop every warm context (tests; workers keep theirs for life)."""
    _CONTEXTS.clear()


def get_context(spec, memo_entries: int = DEFAULT_MEMO_ENTRIES
                ) -> ServeContext:
    """The warm context for ``spec``, built on first use."""
    key = (spec, memo_entries)
    context = _CONTEXTS.get(key)
    if context is None:
        from repro.experiments.suite import ModelSuite
        with span("serve.context_build", node=spec.node,
                  bus_width=spec.bus_width):
            METRICS.count("serve.context_build")
            suite = ModelSuite.for_node(spec.node)
            designer = LinkDesigner(suite.proposed, suite.tech,
                                    spec.bus_width,
                                    utilization=spec.utilization,
                                    memo_entries=memo_entries)
        context = _CONTEXTS[key] = ServeContext(suite=suite,
                                                designer=designer)
    return context


def _mc_result(query: Query, context: ServeContext) -> Dict[str, Any]:
    """Evaluate one ``mc`` tail-yield query (fixed seed, exact)."""
    from repro.signoff.extraction import extract_buffered_line
    from repro.signoff.variation import monte_carlo_line_delay

    model = context.suite.proposed
    line = extract_buffered_line(
        context.suite.tech, model.config, mm(query.lengths_mm[0]),
        query.repeaters, query.size)
    critical = (ps(query.critical_ps)
                if query.critical_ps is not None else None)
    result = monte_carlo_line_delay(
        line, ps(query.slew_ps), samples=query.samples,
        seed=query.seed, engine=query.engine, model=model,
        estimator=query.estimator, critical_delay=critical)
    threshold = critical
    if threshold is None and result.report is not None \
            and result.report.critical_delay:
        threshold = result.report.critical_delay
    if threshold is None:
        threshold = result.mean + 3.0 * result.sigma
    tail = result.tail_probability(threshold)
    payload: Dict[str, Any] = {
        "mean": result.mean,
        "sigma": result.sigma,
        "nominal_delay": result.nominal_delay,
        "samples": [float(sample) for sample in result.samples],
        "tail": {
            "threshold": tail.threshold,
            "probability": tail.probability,
            "standard_error": tail.standard_error,
            "draws": tail.draws,
            "golden_evals": tail.golden_evals,
        },
    }
    if result.report is not None:
        report = result.report
        payload["report"] = {
            "estimator": report.estimator,
            "standard_error": report.standard_error,
            "ess": report.ess,
            "golden_evals": report.golden_evals,
            "model_evals": report.model_evals,
        }
    return payload


def execute_query(query: Query,
                  memo_entries: int = DEFAULT_MEMO_ENTRIES) -> Any:
    """Evaluate one query; the single path server and workers share."""
    context = get_context(query.context, memo_entries)
    METRICS.count(f"serve.op.{query.op}")
    if query.op == "design":
        design = context.designer.design(mm(query.lengths_mm[0]))
        return {"feasible": design is not None,
                "design": design_payload(design)}
    if query.op == "design_batch":
        designs = context.designer.design_batch(
            [mm(length) for length in query.lengths_mm])
        return {"designs": [design_payload(design)
                            for design in designs]}
    if query.op == "max_feasible_length":
        return {"max_length": context.designer.max_length()}
    return _mc_result(query, context)


def _execute_batch(queries: Sequence[Query],
                   memo_entries: int) -> List[Any]:
    """Evaluate a job's queries, batching coalesced designs.

    When every query is a single-length ``design`` for one shared
    context — the shape the coalescer produces — the lengths go
    through ``LinkDesigner.design_batch`` in one call, so the kernel
    layer scores all repeater-count candidates of all lengths as
    array lanes.  ``design_batch`` consults and fills the same memo
    with the same quantization keys as scalar ``design``, so the
    results (and the cache-counter attribution) are identical either
    way; anything else falls back to query-by-query evaluation.
    """
    if len(queries) > 1 \
            and all(q.op == "design" for q in queries) \
            and len({q.context for q in queries}) == 1:
        context = get_context(queries[0].context, memo_entries)
        METRICS.count("serve.op.design", len(queries))
        designs = context.designer.design_batch(
            [mm(q.lengths_mm[0]) for q in queries])
        return [{"feasible": design is not None,
                 "design": design_payload(design)}
                for design in designs]
    return [execute_query(query, memo_entries) for query in queries]


#: (job ordinal, memo bound, queries, armed worker fault specs)
JobPayload = Tuple[int, int, Tuple[Query, ...],
                   Tuple[faults.FaultSpec, ...]]


def run_job(payload: JobPayload
            ) -> Tuple[List[Any], Dict[str, Any]]:
    """Worker-side job body: evaluate queries, return results+metrics.

    Mirrors ``parallel_map``'s chunk body: the worker registry is
    reset first (warm workers are reused across jobs and, under
    ``fork``, inherit the parent's totals), so the returned metrics
    payload is exactly this job's contribution; armed ``worker_crash``
    / ``slow_chunk`` faults fire when their site ordinal matches the
    job ordinal, and nested ``parallel_map`` calls collapse to the
    serial path.
    """
    from repro.runtime import parallel

    ordinal, memo_entries, queries, specs = payload
    parallel._IN_WORKER = True
    METRICS.reset()
    try:
        faults.fire_chunk_faults(specs, ordinal)
        with span("serve.job", queries=len(queries), job=ordinal):
            results = _execute_batch(queries, memo_entries)
    finally:
        parallel._IN_WORKER = False
    return results, METRICS.to_payload()


def run_job_inline(payload: JobPayload) -> List[Any]:
    """Parent-side job body: in-process compute and crash recovery.

    Records straight into the parent registry and never fires
    injected faults — re-running a job whose worker was crashed by an
    armed ``worker_crash`` spec must not crash the parent too.  The
    evaluation path is byte-for-byte the same ``_execute_batch``, so
    recovered responses are bit-identical to undisturbed ones.
    """
    ordinal, memo_entries, queries, _specs = payload
    with span("serve.job", queries=len(queries), job=ordinal,
              inline=True):
        return _execute_batch(queries, memo_entries)


def ping() -> int:
    """Prewarm probe: proves a worker is importable and answering."""
    import os
    return os.getpid()
