"""The ``repro serve`` wire schema: queries in, payloads out.

A query is one JSON object.  Common fields:

* ``op`` — ``"design"``, ``"design_batch"``, ``"max_feasible_length"``
  or ``"mc"``;
* ``node`` — technology node name (default ``"90nm"``);
* ``bus_width`` — link bus width in bits (default 32);
* ``utilization`` — usable payload fraction in (0, 1] (default 0.75).

Those three identify the *context* (model + technology + bus
geometry) the query runs in; queries sharing a context share one warm
:class:`repro.noc.link.LinkDesigner` in whichever shard serves them.
Op-specific fields:

* ``design`` — ``length_mm`` (link length, millimeters);
* ``design_batch`` — ``lengths_mm`` (list of lengths, millimeters);
* ``max_feasible_length`` — nothing further;
* ``mc`` — ``length_mm``, ``repeaters``, ``size``, ``slew_ps``,
  ``samples``, ``seed``, ``engine``, ``estimator``, optional
  ``critical_ps``; defaults mirror the ``repro mc`` CLI.

Responses are ``{"ok": true, "result": ...}`` or ``{"ok": false,
"error": "..."}``.  All floats ride through ``json`` with Python's
shortest-round-trip ``repr``, so a served number parses back to the
*bit-identical* double the in-process call returns — the property the
bit-equality gate in ``repro bench serve`` checks end to end.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple

#: Ops the service understands.
OPS = ("design", "design_batch", "max_feasible_length", "mc")

#: Engines/estimators ``mc`` queries may request (mirrors ``repro mc``).
MC_ENGINES = ("golden", "model", "kernel")
MC_ESTIMATORS = ("plain", "importance", "importance-sn", "qmc",
                 "control-variate")


class QueryError(ValueError):
    """A malformed query document (client error, HTTP 400)."""


@dataclass(frozen=True)
class ContextSpec:
    """What identifies a warm serving context.

    One context is one (technology node, bus width, utilization)
    triple — the constructor arguments of the
    :class:`repro.noc.link.LinkDesigner` that serves it.  The spec is
    hashable (shard routing) and canonicalizable (cache keys).
    """

    node: str = "90nm"
    bus_width: int = 32
    utilization: float = 0.75


@dataclass(frozen=True)
class Query:
    """One parsed, validated query.

    ``lengths_mm`` holds the single length for ``design`` (one entry)
    and the full list for ``design_batch``; millimeters throughout.
    The ``mc`` fields mirror the ``repro mc`` CLI (``slew_ps`` and
    ``critical_ps`` in picoseconds, ``size`` a multiple of the minimum
    repeater width).
    """

    op: str
    context: ContextSpec
    lengths_mm: Tuple[float, ...] = ()
    repeaters: int = 2
    size: float = 24.0
    slew_ps: float = 100.0
    samples: int = 64
    seed: int = 2010
    engine: str = "kernel"
    estimator: str = "plain"
    critical_ps: Optional[float] = None
    extra: Mapping[str, Any] = field(default_factory=dict)


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise QueryError(message)


def _number(obj: Mapping[str, Any], name: str, default=None,
            minimum: Optional[float] = None) -> Optional[float]:
    value = obj.get(name, default)
    if value is None:
        return None
    _require(isinstance(value, (int, float))
             and not isinstance(value, bool),
             f"{name!r} must be a number")
    value = float(value)
    if minimum is not None:
        _require(value > minimum, f"{name!r} must be > {minimum:g}")
    return value


def _integer(obj: Mapping[str, Any], name: str, default: int,
             minimum: int) -> int:
    value = obj.get(name, default)
    _require(isinstance(value, int) and not isinstance(value, bool),
             f"{name!r} must be an integer")
    _require(value >= minimum, f"{name!r} must be >= {minimum}")
    return value


def parse_context(obj: Mapping[str, Any]) -> ContextSpec:
    """The :class:`ContextSpec` named by a query document."""
    node = obj.get("node", "90nm")
    _require(isinstance(node, str) and bool(node),
             "'node' must be a non-empty string")
    bus_width = _integer(obj, "bus_width", 32, 1)
    utilization = _number(obj, "utilization", 0.75, minimum=0.0)
    _require(utilization <= 1.0, "'utilization' must lie in (0, 1]")
    return ContextSpec(node=node, bus_width=bus_width,
                       utilization=utilization)


def parse_query(obj: Any) -> Query:
    """Validate one decoded JSON document into a :class:`Query`.

    Raises :class:`QueryError` (a client error, never a server fault)
    on anything malformed: unknown op, missing or mistyped fields,
    out-of-range values.
    """
    _require(isinstance(obj, dict), "query must be a JSON object")
    op = obj.get("op")
    _require(op in OPS,
             f"'op' must be one of {', '.join(OPS)}; got {op!r}")
    context = parse_context(obj)

    if op == "design":
        length = _number(obj, "length_mm", minimum=0.0)
        _require(length is not None, "'design' needs 'length_mm'")
        return Query(op=op, context=context, lengths_mm=(length,))

    if op == "design_batch":
        lengths = obj.get("lengths_mm")
        _require(isinstance(lengths, list) and len(lengths) > 0,
                 "'design_batch' needs a non-empty 'lengths_mm' list")
        parsed = []
        for entry in lengths:
            _require(isinstance(entry, (int, float))
                     and not isinstance(entry, bool)
                     and float(entry) > 0.0,
                     "'lengths_mm' entries must be positive numbers")
            parsed.append(float(entry))
        return Query(op=op, context=context,
                     lengths_mm=tuple(parsed))

    if op == "max_feasible_length":
        return Query(op=op, context=context)

    # op == "mc"
    length = _number(obj, "length_mm", 2.0, minimum=0.0)
    engine = obj.get("engine", "kernel")
    _require(engine in MC_ENGINES,
             f"'engine' must be one of {', '.join(MC_ENGINES)}")
    estimator = obj.get("estimator", "plain")
    _require(estimator in MC_ESTIMATORS,
             f"'estimator' must be one of {', '.join(MC_ESTIMATORS)}")
    return Query(
        op=op, context=context, lengths_mm=(length,),
        repeaters=_integer(obj, "repeaters", 2, 1),
        size=_number(obj, "size", 24.0, minimum=0.0),
        slew_ps=_number(obj, "slew_ps", 100.0, minimum=0.0),
        samples=_integer(obj, "samples", 64, 2),
        seed=_integer(obj, "seed", 2010, 0),
        engine=engine, estimator=estimator,
        critical_ps=_number(obj, "critical_ps", None, minimum=0.0),
    )


def design_payload(design) -> Optional[Dict[str, Any]]:
    """A :class:`repro.noc.link.LinkDesign` as a response fragment."""
    if design is None:
        return None
    return design.to_payload()


def ok_response(result: Any) -> Dict[str, Any]:
    return {"ok": True, "result": result}


def error_response(message: str) -> Dict[str, Any]:
    return {"ok": False, "error": message}
