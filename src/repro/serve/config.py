"""Serve configuration: CLI flags vs ``REPRO_SERVE_*`` environment.

Every knob resolves the same way: an explicitly passed CLI flag and a
set environment variable that *disagree* are a configuration error
(the CLI exits 2) — the service must never silently prefer one source
over the other, because a deployment that exports
``REPRO_SERVE_PORT=9000`` while its unit file says ``--port 8000``
has two sources of truth and whichever we picked would surprise
someone.  Agreeing sources are fine; a single source wins outright;
neither source means the default.

All environment parsing goes through :func:`repro.runtime.env_int` /
:func:`repro.runtime.env_flag` / :func:`repro.runtime.env_str`, so
the ``"0 "``-style whitespace misparses PR 5 eliminated stay
eliminated here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional

from repro import runtime
from repro.noc.link import DEFAULT_MEMO_ENTRIES


class ServeConfigError(ValueError):
    """Conflicting or invalid serve configuration (CLI exit 2)."""


#: Knob defaults, in one place so docs/tests cite a single source.
DEFAULTS: Dict[str, Any] = {
    "host": "127.0.0.1",
    "port": 8787,
    "socket": None,
    "shards": 2,
    "window_ms": 2,
    "max_batch": 64,
    "memo_entries": DEFAULT_MEMO_ENTRIES,
}


@dataclass(frozen=True)
class ServeConfig:
    """Resolved service configuration.

    ``window_ms`` is the coalescing window in milliseconds;
    ``shards`` counts warm worker processes (0 = compute in-process);
    ``memo_entries`` bounds each context's link-design LRU memo.
    """

    host: str
    port: int
    socket: Optional[str]
    shards: int
    window_ms: int
    max_batch: int
    memo_entries: int

    @property
    def window_seconds(self) -> float:
        """The coalescing window converted to seconds."""
        return self.window_ms / 1000.0


def _resolve(name: str, flag_value, env_name: str,
             reader: Callable[[str], Any], default):
    """One knob: flag vs environment vs default, conflicts fatal."""
    try:
        env_value = reader(env_name)
    except ValueError as exc:
        raise ServeConfigError(str(exc)) from exc
    if flag_value is not None and env_value is not None \
            and flag_value != env_value:
        raise ServeConfigError(
            f"conflicting settings for {name}: --{name.replace('_', '-')}"
            f"={flag_value!r} but {env_name}={env_value!r}; drop one "
            f"(they may also agree)")
    if flag_value is not None:
        return flag_value
    if env_value is not None:
        return env_value
    return default


def resolve_config(*, host: Optional[str] = None,
                   port: Optional[int] = None,
                   socket: Optional[str] = None,
                   shards: Optional[int] = None,
                   window_ms: Optional[int] = None,
                   max_batch: Optional[int] = None,
                   memo_entries: Optional[int] = None) -> ServeConfig:
    """Resolve every knob; raise :class:`ServeConfigError` on conflict.

    Arguments are the explicit CLI flag values (``None`` = not
    passed); the environment side is ``REPRO_SERVE_HOST``, ``_PORT``,
    ``_SOCKET``, ``_SHARDS``, ``_WINDOW_MS``, ``_MAX_BATCH`` and
    ``_MEMO_ENTRIES``.
    """
    config = ServeConfig(
        host=_resolve("host", host, "REPRO_SERVE_HOST",
                      runtime.env_str, DEFAULTS["host"]),
        port=_resolve("port", port, "REPRO_SERVE_PORT",
                      runtime.env_int, DEFAULTS["port"]),
        socket=_resolve("socket", socket, "REPRO_SERVE_SOCKET",
                        runtime.env_str, DEFAULTS["socket"]),
        shards=_resolve("shards", shards, "REPRO_SERVE_SHARDS",
                        runtime.env_int, DEFAULTS["shards"]),
        window_ms=_resolve("window_ms", window_ms,
                           "REPRO_SERVE_WINDOW_MS", runtime.env_int,
                           DEFAULTS["window_ms"]),
        max_batch=_resolve("max_batch", max_batch,
                           "REPRO_SERVE_MAX_BATCH", runtime.env_int,
                           DEFAULTS["max_batch"]),
        memo_entries=_resolve("memo_entries", memo_entries,
                              "REPRO_SERVE_MEMO_ENTRIES",
                              runtime.env_int,
                              DEFAULTS["memo_entries"]),
    )
    if config.port < 0 or config.port > 65535:
        raise ServeConfigError("port must lie in [0, 65535] "
                               "(0 = ephemeral)")
    if config.shards < 0:
        raise ServeConfigError("shards must be >= 0 "
                               "(0 = in-process compute)")
    if config.window_ms < 0:
        raise ServeConfigError("window_ms must be >= 0")
    if config.max_batch < 1:
        raise ServeConfigError("max_batch must be >= 1")
    if config.memo_entries < 1:
        raise ServeConfigError("memo_entries must be >= 1")
    return config
