"""Batch coalescing: window concurrent requests into kernel batches.

The kernel layer prices a batch of link designs far below the sum of
its scalar calls — candidate repeater counts for *all* lengths score
as array lanes in one vectorized evaluation.  The coalescer exploits
that: the first ``design`` query for a context opens a short window
(``window_ms``); every further ``design`` query for the same context
arriving inside the window joins the same job; when the window closes
(or the batch hits ``max_batch`` first) the whole bucket ships to the
context's shard as one ``LinkDesigner.design_batch`` call.

Only single-length ``design`` queries coalesce — ``design_batch``
already *is* a batch, and ``max_feasible_length`` / ``mc`` answers
don't batch — those dispatch immediately as singleton jobs.

Coalescing is a latency/throughput trade the operator tunes:
``window_ms=0`` flushes on the next event-loop turn (still merging
whatever queued in the same turn), larger windows trade a bounded
latency floor for bigger batches.  ``serve.batch_size`` (a histogram;
its p50 is the acceptance gate for "coalescing demonstrably engaged")
and ``serve.batches`` record what actually happened.

``serve.batch_size`` is **request-weighted**: every request records
the size of the batch it rode in, so the p50 answers "how many peers
did the median *request* share its kernel batch with".  A per-batch
histogram would let the steady trickle of uncoalescable singleton
jobs (``mc``, ``max_feasible_length``) mask heavily batched design
traffic; ``serve.batches`` still counts jobs for the per-batch view
(requests / batches = mean batch size).
"""

from __future__ import annotations

import asyncio
from typing import Any, Dict, List, Set, Tuple

from repro.runtime import METRICS
from repro.serve.pool import ShardedPool
from repro.serve.protocol import ContextSpec, Query

#: (query, future-to-resolve) pairs awaiting a window flush.
_Bucket = List[Tuple[Query, "asyncio.Future[Any]"]]


class Coalescer:
    """Windows concurrent ``design`` queries into per-context batches."""

    def __init__(self, pool: ShardedPool, window_seconds: float,
                 max_batch: int) -> None:
        self._pool = pool
        self._window = window_seconds
        self._max_batch = max(1, max_batch)
        self._pending: Dict[ContextSpec, _Bucket] = {}
        self._timers: Dict[ContextSpec, asyncio.TimerHandle] = {}
        self._inflight: Set["asyncio.Task[None]"] = set()

    async def submit(self, query: Query) -> Any:
        """Answer one query, possibly batched with concurrent peers."""
        if query.op != "design":
            METRICS.observe("serve.batch_size", 1.0)
            METRICS.count("serve.batches")
            results = await self._pool.run([query])
            return results[0]
        loop = asyncio.get_running_loop()
        future: "asyncio.Future[Any]" = loop.create_future()
        bucket = self._pending.setdefault(query.context, [])
        bucket.append((query, future))
        if len(bucket) >= self._max_batch:
            self._flush(query.context)
        elif len(bucket) == 1:
            self._timers[query.context] = loop.call_later(
                self._window, self._flush, query.context)
        return await future

    def _flush(self, context: ContextSpec) -> None:
        """Close a context's window and ship its bucket as one job."""
        timer = self._timers.pop(context, None)
        if timer is not None:
            timer.cancel()
        bucket = self._pending.pop(context, None)
        if not bucket:
            return
        task = asyncio.get_running_loop().create_task(
            self._run_batch(bucket))
        self._inflight.add(task)
        task.add_done_callback(self._inflight.discard)

    async def _run_batch(self, bucket: _Bucket) -> None:
        for _ in bucket:
            METRICS.observe("serve.batch_size", float(len(bucket)))
        METRICS.count("serve.batches")
        try:
            results = await self._pool.run(
                [query for query, _ in bucket])
        except Exception as exc:  # pragma: no cover - pool never raises
            for _, future in bucket:
                if not future.done():
                    future.set_exception(exc)
            return
        for (_, future), result in zip(bucket, results):
            if not future.done():
                future.set_result(result)

    async def drain(self) -> None:
        """Flush every open window and wait for in-flight batches."""
        for context in list(self._pending):
            self._flush(context)
        while self._inflight:
            await asyncio.gather(*list(self._inflight),
                                 return_exceptions=True)
