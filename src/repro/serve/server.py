"""The asyncio front-end: JSON over HTTP on TCP and/or a Unix socket.

Deliberately dependency-free: a minimal HTTP/1.1 implementation over
``asyncio`` streams (keep-alive, ``Content-Length`` framing, no
chunked encoding) is all the service needs, and the stdlib is the
project's only floor.  Routes:

* ``POST /query`` — one JSON query document per request
  (:mod:`repro.serve.protocol`); the response is
  ``{"ok": true, "result": ...}`` or ``{"ok": false, "error": ...}``;
* ``GET /metrics`` — the process-wide registry rendered as
  OpenMetrics, including counters merged back from worker shards;
* ``GET /healthz`` — liveness (``{"ok": true}``).

Per-request accounting: ``serve.requests`` (plus ``serve.errors`` for
400/500s) and the ``serve.latency_seconds`` histogram, measured with
the monotonic clock from first byte parsed to response flushed.
"""

from __future__ import annotations

import asyncio
import json
import time
from typing import Any, Dict, Optional, Tuple

from repro.runtime import METRICS, span
from repro.serve.coalescer import Coalescer
from repro.serve.config import ServeConfig
from repro.serve.pool import ShardedPool
from repro.serve.protocol import (
    QueryError,
    error_response,
    ok_response,
    parse_query,
)

#: (method, path, headers, body) of one parsed HTTP request.
_Request = Tuple[str, str, Dict[str, str], bytes]

_JSON_TYPE = "application/json"
_METRICS_TYPE = ("application/openmetrics-text; version=1.0.0; "
                 "charset=utf-8")
_MAX_BODY = 4 * 1024 * 1024


class _BadRequest(Exception):
    """An unparseable HTTP request (connection is closed after 400)."""


async def _read_request(reader: asyncio.StreamReader
                        ) -> Optional[_Request]:
    """Parse one HTTP/1.1 request; ``None`` on clean EOF."""
    try:
        line = await reader.readline()
    except (ConnectionError, asyncio.IncompleteReadError):
        return None
    if not line:
        return None
    parts = line.decode("latin-1").strip().split()
    if len(parts) != 3:
        raise _BadRequest("malformed request line")
    method, path, _version = parts
    headers: Dict[str, str] = {}
    while True:
        raw = await reader.readline()
        if raw in (b"\r\n", b"\n"):
            break
        if not raw:
            raise _BadRequest("truncated headers")
        name, sep, value = raw.decode("latin-1").partition(":")
        if not sep:
            raise _BadRequest("malformed header")
        headers[name.strip().lower()] = value.strip()
    try:
        length = int(headers.get("content-length", "0") or "0")
    except ValueError as exc:
        raise _BadRequest("bad Content-Length") from exc
    if length < 0 or length > _MAX_BODY:
        raise _BadRequest("unacceptable Content-Length")
    body = b""
    if length:
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError as exc:
            raise _BadRequest("truncated body") from exc
    return method, path, headers, body


def _encode_response(status: int, reason: str, body: bytes,
                     content_type: str, keep_alive: bool) -> bytes:
    connection = "keep-alive" if keep_alive else "close"
    head = (f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {connection}\r\n\r\n")
    return head.encode("latin-1") + body


class ReproServer:
    """The ``repro serve`` service object.

    Owns the sharded pool and the coalescer; binds TCP and/or Unix
    listeners per its :class:`~repro.serve.config.ServeConfig`.  After
    :meth:`start`, :attr:`port` holds the actually bound TCP port
    (useful with ``port=0``).
    """

    def __init__(self, config: ServeConfig) -> None:
        self.config = config
        self.pool = ShardedPool(config.shards,
                                memo_entries=config.memo_entries)
        self.coalescer = Coalescer(self.pool, config.window_seconds,
                                   config.max_batch)
        self.port: Optional[int] = None
        self._servers: list = []
        self._closing = asyncio.Event()

    # -- lifecycle --------------------------------------------------

    async def start(self) -> None:
        """Bind listeners and prewarm the worker shards."""
        with span("serve.start", shards=self.config.shards):
            if self.config.host:
                server = await asyncio.start_server(
                    self._handle, self.config.host, self.config.port)
                self.port = server.sockets[0].getsockname()[1]
                self._servers.append(server)
            if self.config.socket:
                server = await asyncio.start_unix_server(
                    self._handle, path=self.config.socket)
                self._servers.append(server)
            if not self._servers:
                raise ValueError(
                    "nothing to bind: need a host or a socket path")
            await self.pool.warm()

    async def close(self) -> None:
        """Stop accepting, drain in-flight batches, stop the pool."""
        for server in self._servers:
            server.close()
        for server in self._servers:
            await server.wait_closed()
        self._servers = []
        await self.coalescer.drain()
        self.pool.close()
        if self.config.socket:
            import os
            try:
                os.unlink(self.config.socket)
            except OSError:
                pass
        self._closing.set()

    async def serve_forever(self) -> None:
        """Block until :meth:`close` (or cancellation)."""
        await self._closing.wait()

    # -- request handling -------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        METRICS.count("serve.connections")
        try:
            while True:
                try:
                    request = await _read_request(reader)
                except _BadRequest as exc:
                    body = json.dumps(
                        error_response(str(exc))).encode("utf-8")
                    writer.write(_encode_response(
                        400, "Bad Request", body, _JSON_TYPE, False))
                    await writer.drain()
                    break
                if request is None:
                    break
                started = time.perf_counter()
                status, reason, body, ctype = await self._route(
                    *request)
                keep_alive = request[2].get(
                    "connection", "keep-alive").lower() != "close"
                writer.write(_encode_response(
                    status, reason, body, ctype, keep_alive))
                await writer.drain()
                METRICS.observe("serve.latency_seconds",
                                time.perf_counter() - started)
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            # The handler task may itself be getting cancelled
            # (server shutdown); the close must not re-raise out of
            # this finally or asyncio logs a spurious traceback.
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError,
                    asyncio.CancelledError):
                pass

    async def _route(self, method: str, path: str,
                     headers: Dict[str, str], body: bytes
                     ) -> Tuple[int, str, bytes, str]:
        """Dispatch one request; always returns a complete response."""
        if method == "POST" and path == "/query":
            return await self._handle_query(body)
        if method == "GET" and path == "/metrics":
            text = METRICS.to_openmetrics()
            return 200, "OK", text.encode("utf-8"), _METRICS_TYPE
        if method == "GET" and path == "/healthz":
            payload: Dict[str, Any] = {"ok": True,
                                       "shards": self.config.shards}
            return (200, "OK", json.dumps(payload).encode("utf-8"),
                    _JSON_TYPE)
        body_out = json.dumps(error_response(
            f"no route for {method} {path}")).encode("utf-8")
        return 404, "Not Found", body_out, _JSON_TYPE

    async def _handle_query(self, body: bytes
                            ) -> Tuple[int, str, bytes, str]:
        METRICS.count("serve.requests")
        try:
            document = json.loads(body.decode("utf-8"))
            query = parse_query(document)
        except (UnicodeDecodeError, json.JSONDecodeError,
                QueryError) as exc:
            METRICS.count("serve.errors")
            payload = json.dumps(error_response(str(exc)))
            return 400, "Bad Request", payload.encode("utf-8"), \
                _JSON_TYPE
        try:
            result = await self.coalescer.submit(query)
        except Exception as exc:  # noqa: BLE001 - one bad query must
            # never take the service down with it.
            METRICS.count("serve.errors")
            payload = json.dumps(error_response(
                f"{type(exc).__name__}: {exc}"))
            return (500, "Internal Server Error",
                    payload.encode("utf-8"), _JSON_TYPE)
        payload = json.dumps(ok_response(result))
        return 200, "OK", payload.encode("utf-8"), _JSON_TYPE
