"""The sharded pool of warm worker processes behind ``repro serve``.

Each shard is a single-worker :class:`ProcessPoolExecutor` built by
:func:`repro.runtime.new_pool` — one long-lived process that keeps its
:class:`~repro.serve.core.ServeContext` (model suite, link designer,
LRU memo) warm across jobs.  A query routes to its shard by the CRC-32
of its context fingerprint, so every query for one context lands on
the same warm process and its memo actually accumulates; CRC-32 is
process-stable, unlike the salted builtin ``hash``, so routing is
reproducible run to run.

Crash recovery mirrors ``parallel_map``: a job whose worker dies
(surfacing as :class:`BrokenProcessPool`) is re-run in the server
process via :func:`repro.serve.core.run_job_inline`, where injected
faults never fire, and the shard's pool is rebuilt behind it — the
request is answered, bit-identically, and the next job finds a fresh
warm worker.  Environments where pools cannot start at all (no fork,
no /dev/shm) degrade every shard to the same inline path.

Worker metrics ride back with each job result and merge into the
parent registry, exactly as ``parallel_map`` chunks do, so
``/metrics`` totals include worker-side cache and kernel counters.
"""

from __future__ import annotations

import asyncio
import zlib
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, List, Optional, Sequence

from repro.noc.link import DEFAULT_MEMO_ENTRIES
from repro.runtime import METRICS, faults, fingerprint, new_pool
from repro.serve.core import ping, run_job, run_job_inline
from repro.serve.protocol import ContextSpec, Query


def shard_index(context: ContextSpec, shards: int) -> int:
    """The shard a context routes to (CRC-32, process-stable)."""
    if shards <= 0:
        return 0
    return zlib.crc32(fingerprint(context).encode("ascii")) % shards


class ShardedPool:
    """Warm worker processes, sharded by context, crash-recovering.

    ``shards=0`` (or a pool-hostile environment) computes every job
    in-process on the event loop's default thread executor — the same
    evaluate core, just without process isolation.
    """

    def __init__(self, shards: int,
                 memo_entries: int = DEFAULT_MEMO_ENTRIES) -> None:
        self.shards = max(0, shards)
        self.memo_entries = memo_entries
        self._executors: List[Optional[ProcessPoolExecutor]] = []
        self._ordinal = 0
        for _ in range(self.shards):
            self._executors.append(new_pool(1))

    # -- lifecycle --------------------------------------------------

    async def warm(self) -> List[int]:
        """Ping every shard; returns live worker pids (spawns them)."""
        pids: List[int] = []
        loop = asyncio.get_running_loop()
        for index, executor in enumerate(self._executors):
            if executor is None:
                continue
            try:
                pid = await asyncio.wrap_future(executor.submit(ping))
            except BrokenProcessPool:
                self._rebuild(index)
                continue
            pids.append(pid)
        del loop
        return pids

    def close(self) -> None:
        """Shut every shard down (workers exit; queued jobs cancel)."""
        for executor in self._executors:
            if executor is not None:
                executor.shutdown(wait=False, cancel_futures=True)
        self._executors = [None] * self.shards

    # -- job dispatch -----------------------------------------------

    def _rebuild(self, index: int) -> None:
        """Replace a broken shard pool with a fresh warm worker."""
        broken = self._executors[index]
        if broken is not None:
            broken.shutdown(wait=False, cancel_futures=True)
        METRICS.count("serve.worker_restart")
        self._executors[index] = new_pool(1)

    async def run(self, queries: Sequence[Query]) -> List[Any]:
        """Evaluate one job (queries sharing a context) somewhere warm.

        Never raises on worker death: a crashed shard is rebuilt and
        the job re-runs in-process, so the caller always gets answers
        in query order.
        """
        ordinal = self._ordinal
        self._ordinal += 1
        payload = (ordinal, self.memo_entries, tuple(queries),
                   faults.worker_faults())
        index = shard_index(queries[0].context, self.shards)
        executor = (self._executors[index]
                    if index < len(self._executors) else None)
        loop = asyncio.get_running_loop()
        if executor is not None:
            try:
                results, metrics = await asyncio.wrap_future(
                    executor.submit(run_job, payload))
                METRICS.merge_payload(metrics)
                return results
            except BrokenProcessPool:
                METRICS.count("faults.worker_crash")
                self._rebuild(index)
        return await loop.run_in_executor(None, run_job_inline,
                                          payload)
