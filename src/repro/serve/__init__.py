"""Interconnect-model-as-a-service: the ``repro serve`` layer.

The paper's end-game is model-in-the-loop NoC synthesis: the
closed-form models matter because a tool can query them millions of
times interactively.  This package turns the reproduction into that
tool — a long-running query service over the kernel batch layer and
the LUT tier:

* :mod:`repro.serve.protocol` — the JSON query/response schema
  (``design``, ``design_batch``, ``max_feasible_length``, ``mc``);
* :mod:`repro.serve.config` — ``REPRO_SERVE_*`` knobs resolved
  against CLI flags (conflicts are a hard error, exit 2);
* :mod:`repro.serve.core` — the stateless evaluate core every worker
  process runs: per-process warm contexts over the shared
  :class:`repro.runtime.DiskCache` memo;
* :mod:`repro.serve.coalescer` — windows concurrent requests into
  kernel-layer batches (``LinkDesigner.design_batch``);
* :mod:`repro.serve.pool` — the sharded pool of warm worker
  processes, with crash recovery riding on the fault-tolerance layer;
* :mod:`repro.serve.server` — the asyncio front-end (JSON over HTTP
  on TCP and/or a local Unix socket, OpenMetrics on ``/metrics``);
* :mod:`repro.serve.loadgen` — the load generator behind
  ``repro bench serve``.

Every served answer is bit-identical to the direct in-process call —
the same contract the kernel and LUT tiers honour — and a worker
crash mid-request is recovered without dropping the request.
"""

from repro.serve.config import (
    DEFAULTS,
    ServeConfig,
    ServeConfigError,
    resolve_config,
)
from repro.serve.coalescer import Coalescer
from repro.serve.core import execute_query, reset_contexts
from repro.serve.pool import ShardedPool
from repro.serve.protocol import (
    ContextSpec,
    Query,
    QueryError,
    parse_query,
)
from repro.serve.server import ReproServer

__all__ = [
    "Coalescer",
    "ContextSpec",
    "DEFAULTS",
    "Query",
    "QueryError",
    "ReproServer",
    "ServeConfig",
    "ServeConfigError",
    "ShardedPool",
    "execute_query",
    "parse_query",
    "reset_contexts",
    "resolve_config",
]
