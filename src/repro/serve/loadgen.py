"""Seeded async load generator for ``repro serve``.

Drives N concurrent keep-alive clients against a running server, each
issuing a seeded stream of queries, and reports per-request latencies
plus every (query document, response) pair so callers can replay the
documents through :func:`repro.serve.core.execute_query` and assert
bit-equality — the contract ``repro bench serve`` gates on.

The query stream is deterministic (``numpy`` Generator seeded per
client from one root seed): lengths are drawn from a short grid of
millimeter values so the server's memo and the coalescer both see the
repeat-heavy traffic a synthesis loop actually generates, with an
occasional ``max_feasible_length`` probe mixed in.

Also runnable standalone (CI smoke job)::

    python -m repro.serve.loadgen --port 8787 --clients 8 --requests 4
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

#: ("tcp", host, port) or ("unix", path, 0).
Endpoint = Tuple[str, str, int]


def tcp_endpoint(host: str, port: int) -> Endpoint:
    return ("tcp", host, port)


def unix_endpoint(path: str) -> Endpoint:
    return ("unix", path, 0)


#: The length grid (mm) clients draw from — short enough that traffic
#: repeats (memo + coalescer exercise), long enough to span the
#: feasible range at 90 nm.
LENGTH_GRID_MM = tuple(0.5 + 0.25 * step for step in range(16))


@dataclass
class LoadReport:
    """What one load run observed, client-side."""

    latencies: List[float] = field(default_factory=list)
    exchanges: List[Tuple[Dict[str, Any], Dict[str, Any]]] = \
        field(default_factory=list)
    wall_seconds: float = 0.0
    clients: int = 0
    failures: int = 0

    @property
    def requests(self) -> int:
        return len(self.latencies)

    @property
    def throughput(self) -> float:
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.requests / self.wall_seconds

    def latency_quantile(self, q: float) -> float:
        if not self.latencies:
            return 0.0
        return float(np.quantile(np.asarray(self.latencies), q))


async def _open(endpoint: Endpoint
                ) -> Tuple[asyncio.StreamReader, asyncio.StreamWriter]:
    kind, target, port = endpoint
    if kind == "unix":
        return await asyncio.open_unix_connection(target)
    return await asyncio.open_connection(target, port)


async def _roundtrip(reader: asyncio.StreamReader,
                     writer: asyncio.StreamWriter,
                     document: Dict[str, Any]) -> Dict[str, Any]:
    """One keep-alive POST /query exchange."""
    body = json.dumps(document).encode("utf-8")
    head = (f"POST /query HTTP/1.1\r\nHost: repro\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n\r\n")
    writer.write(head.encode("latin-1") + body)
    await writer.drain()
    status_line = await reader.readline()
    if not status_line:
        raise ConnectionError("server closed mid-exchange")
    status = int(status_line.split()[1])
    length = 0
    while True:
        raw = await reader.readline()
        if raw in (b"\r\n", b"\n"):
            break
        name, _, value = raw.decode("latin-1").partition(":")
        if name.strip().lower() == "content-length":
            length = int(value.strip())
    payload = json.loads(await reader.readexactly(length))
    payload["_status"] = status
    return payload


def client_documents(rng: np.random.Generator, count: int,
                     node: str, bus_width: int
                     ) -> List[Dict[str, Any]]:
    """One client's seeded query stream (mostly designs)."""
    documents: List[Dict[str, Any]] = []
    for _ in range(count):
        if rng.random() < 0.1:
            documents.append({"op": "max_feasible_length",
                              "node": node, "bus_width": bus_width})
        else:
            length = LENGTH_GRID_MM[
                int(rng.integers(len(LENGTH_GRID_MM)))]
            documents.append({"op": "design", "node": node,
                              "bus_width": bus_width,
                              "length_mm": length})
    return documents


async def _client(endpoint: Endpoint,
                  documents: Sequence[Dict[str, Any]],
                  report: LoadReport) -> None:
    reader, writer = await _open(endpoint)
    try:
        for document in documents:
            started = time.perf_counter()
            try:
                response = await _roundtrip(reader, writer, document)
            except (ConnectionError, asyncio.IncompleteReadError):
                report.failures += 1
                reader, writer = await _open(endpoint)
                continue
            report.latencies.append(time.perf_counter() - started)
            if response.get("ok"):
                report.exchanges.append((document, response))
            else:
                report.failures += 1
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


async def run_load(endpoint: Endpoint, *, clients: int = 32,
                   requests_per_client: int = 8, seed: int = 2010,
                   node: str = "90nm", bus_width: int = 32
                   ) -> LoadReport:
    """Drive the server with ``clients`` concurrent seeded streams."""
    report = LoadReport(clients=clients)
    root = np.random.SeedSequence(seed)
    streams = [np.random.default_rng(child)
               for child in root.spawn(clients)]
    started = time.perf_counter()
    await asyncio.gather(*(
        _client(endpoint,
                client_documents(rng, requests_per_client, node,
                                 bus_width),
                report)
        for rng in streams))
    report.wall_seconds = time.perf_counter() - started
    return report


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI shim for CI smoke runs: drive a server, print a summary."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.serve.loadgen",
        description="Seeded load generator for repro serve.")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8787)
    parser.add_argument("--socket", default=None,
                        help="Unix socket path (overrides host/port)")
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument("--requests", type=int, default=4,
                        help="requests per client")
    parser.add_argument("--seed", type=int, default=2010)
    parser.add_argument("--node", default="90nm")
    parser.add_argument("--bus-width", type=int, default=32)
    args = parser.parse_args(argv)

    endpoint = (unix_endpoint(args.socket) if args.socket
                else tcp_endpoint(args.host, args.port))
    report = asyncio.run(run_load(
        endpoint, clients=args.clients,
        requests_per_client=args.requests, seed=args.seed,
        node=args.node, bus_width=args.bus_width))
    print(json.dumps({
        "requests": report.requests,
        "failures": report.failures,
        "throughput_rps": report.throughput,
        "latency_p50_ms": report.latency_quantile(0.5) * 1e3,
        "latency_p99_ms": report.latency_quantile(0.99) * 1e3,
    }, indent=2))
    return 1 if report.failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
