"""Library characterization: the data the regressions are fit to.

Section III-E: *"For repeater-delay calculation, delay and slew values
for a set of input-slew and load-capacitance values, along with
input-capacitance values, are required for a few repeaters."*  This
package produces exactly that data set by sweeping the transient
simulator over (repeater size x input slew x load capacitance) grids,
measuring leakage with DC analysis, and deriving cell areas from the
finger-based layout model — then exporting everything as a mini-Liberty
library, mirroring the industry flow.
"""

from repro.characterization.cells import RepeaterCell, RepeaterKind
from repro.characterization.tables import NLDMTable
from repro.characterization.harness import (
    CellCharacterization,
    CharacterizationGrid,
    LibraryCharacterization,
    characterize_cell,
    characterize_library,
    liberty_to_library,
    library_to_liberty,
)

__all__ = [
    "RepeaterCell",
    "RepeaterKind",
    "NLDMTable",
    "CellCharacterization",
    "CharacterizationGrid",
    "LibraryCharacterization",
    "characterize_cell",
    "characterize_library",
    "liberty_to_library",
    "library_to_liberty",
]
