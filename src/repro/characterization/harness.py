"""Characterization sweeps over (size x input slew x load) grids.

The output of this module is the "required data set" of Section III-E:
delay and output-slew tables per repeater, input capacitances, leakage
power and cell area — either consumed directly by the calibration
pipeline or exported as a mini-Liberty library first.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

from repro.characterization.cells import RepeaterCell, RepeaterKind
from repro.characterization.tables import NLDMTable
from repro.spice.dc import supply_current
from repro.spice.transient import simulate_transient
from repro.tech.liberty import LibertyGroup, new_library
from repro.tech.parameters import TechnologyParameters
from repro.units import fF, ps, to_fF, to_ps, to_um

#: Transient resolution for characterization runs.  900 points keeps
#: measurement noise well below the regression residuals while staying
#: fast enough for full-grid sweeps.
CHARACTERIZATION_STEPS = 900


@dataclass(frozen=True)
class CharacterizationGrid:
    """Sweep definition for one library characterization.

    ``load_factors`` are multiples of each cell's input capacitance, so
    every size is characterized over a comparable fanout range (this is
    how industry characterization picks per-cell load axes).
    """

    sizes: Tuple[float, ...] = (4.0, 8.0, 16.0, 32.0, 64.0)
    input_slews: Tuple[float, ...] = (
        ps(20), ps(60), ps(120), ps(240), ps(400))
    load_factors: Tuple[float, ...] = (2.0, 4.0, 8.0, 16.0, 32.0)

    def __post_init__(self) -> None:
        if not self.sizes or not self.input_slews or not self.load_factors:
            raise ValueError("grid axes must be non-empty")

    def loads_for(self, cell: RepeaterCell) -> Tuple[float, ...]:
        """Absolute load capacitances (F) for one cell."""
        c_in = cell.input_capacitance()
        return tuple(factor * c_in for factor in self.load_factors)


@dataclass(frozen=True)
class TransitionTables:
    """Delay + output slew tables for one transition direction."""

    delay: NLDMTable
    output_slew: NLDMTable


@dataclass(frozen=True)
class CellCharacterization:
    """Everything measured for one repeater cell.

    ``leakage_output_high`` is the static power with the output high
    (the nMOS stack leaking); ``leakage_output_low`` with the output
    low (pMOS leaking).  ``leakage_power`` is their average — the
    ``p_s`` of Section III-C.
    """

    cell: RepeaterCell
    rise: TransitionTables     # rising *output* transition
    fall: TransitionTables     # falling *output* transition
    input_capacitance: float
    leakage_power: float
    leakage_output_high: float
    leakage_output_low: float
    area: float

    def tables(self, rising_output: bool) -> TransitionTables:
        return self.rise if rising_output else self.fall


@dataclass
class LibraryCharacterization:
    """A characterized repeater library for one technology node."""

    tech: TechnologyParameters
    kind: RepeaterKind
    grid: CharacterizationGrid
    cells: Dict[float, CellCharacterization] = field(default_factory=dict)

    def sizes(self) -> Tuple[float, ...]:
        return tuple(sorted(self.cells))

    def cell(self, size: float) -> CellCharacterization:
        try:
            return self.cells[size]
        except KeyError:
            known = ", ".join(f"{s:g}" for s in self.sizes())
            raise KeyError(f"size {size:g} not characterized; have {known}")


def _measure_point(cell: RepeaterCell, input_slew: float, load_cap: float,
                   rising_output: bool) -> Tuple[float, float]:
    """(delay, output slew) at one grid point.

    ``rising_output`` selects the *output* transition direction; the
    required input direction follows from the cell polarity.
    """
    rising_input = (rising_output if not cell.kind.inverting
                    else not rising_output)
    circuit, stop_time = cell.build_test_circuit(
        input_slew, load_cap, rising_input)
    vdd = cell.tech.vdd
    target = vdd if rising_output else 0.0

    for _attempt in range(4):
        result = simulate_transient(
            circuit, stop_time,
            time_step=stop_time / CHARACTERIZATION_STEPS,
            record=["in", "out"])
        out_wave = result.waveform("out")
        if out_wave.settled(target, 0.02 * vdd):
            break
        stop_time *= 2.0
    else:  # pragma: no cover - defensive
        raise RuntimeError(
            f"characterization point never settled: {circuit.name}")

    in_wave = result.waveform("in")
    delay = (out_wave.midpoint_time(0.0, vdd)
             - in_wave.midpoint_time(0.0, vdd))
    output_slew = out_wave.slew(0.0, vdd)
    return delay, output_slew


def _measure_leakage(cell: RepeaterCell) -> Tuple[float, float]:
    """(output-high, output-low) static power in watts, via DC analysis.

    With the input low the output sits high and the off nMOS stack
    leaks; with the input high the off pMOS leaks.  Gate-tunneling
    leakage — not part of the channel DC solution — is added from the
    device data, split between the states the same way library
    characterization attributes measured gate current.
    """
    vdd = cell.tech.vdd
    state_power = []
    for input_high in (False, True):
        circuit = cell.build_leakage_circuit(input_high)
        current = supply_current(circuit, "vdd")
        state_power.append(abs(current) * vdd)

    gate_n = 0.0
    gate_p = 0.0
    for wn, wp in cell._stage_width_list():
        gate_n += cell.tech.nmos.i_gate_leak * wn * vdd
        gate_p += cell.tech.pmos.i_gate_leak * wp * vdd
    output_high = state_power[0] + gate_n
    output_low = state_power[1] + gate_p
    return output_high, output_low


def characterize_cell(
    tech: TechnologyParameters,
    kind: RepeaterKind,
    size: float,
    grid: CharacterizationGrid,
) -> CellCharacterization:
    """Fully characterize one repeater cell over the grid."""
    cell = RepeaterCell(tech=tech, kind=kind, size=size)
    loads = grid.loads_for(cell)

    tables: Dict[bool, TransitionTables] = {}
    for rising_output in (True, False):
        delay_rows = []
        slew_rows = []
        for input_slew in grid.input_slews:
            delay_row = []
            slew_row = []
            for load_cap in loads:
                delay, output_slew = _measure_point(
                    cell, input_slew, load_cap, rising_output)
                delay_row.append(delay)
                slew_row.append(output_slew)
            delay_rows.append(delay_row)
            slew_rows.append(slew_row)
        tables[rising_output] = TransitionTables(
            delay=NLDMTable.from_arrays(grid.input_slews, loads,
                                        delay_rows),
            output_slew=NLDMTable.from_arrays(grid.input_slews, loads,
                                              slew_rows),
        )

    leak_high, leak_low = _measure_leakage(cell)
    return CellCharacterization(
        cell=cell,
        rise=tables[True],
        fall=tables[False],
        input_capacitance=cell.input_capacitance(),
        leakage_power=0.5 * (leak_high + leak_low),
        leakage_output_high=leak_high,
        leakage_output_low=leak_low,
        area=cell.layout_area(),
    )


def characterize_library(
    tech: TechnologyParameters,
    kind: RepeaterKind = RepeaterKind.INVERTER,
    grid: Optional[CharacterizationGrid] = None,
) -> LibraryCharacterization:
    """Characterize a full repeater library for one technology node."""
    if grid is None:
        grid = CharacterizationGrid()
    library = LibraryCharacterization(tech=tech, kind=kind, grid=grid)
    for size in grid.sizes:
        library.cells[size] = characterize_cell(tech, kind, size, grid)
    return library


# ---------------------------------------------------------------------------
# Liberty export
# ---------------------------------------------------------------------------

def library_to_liberty(library: LibraryCharacterization) -> LibertyGroup:
    """Export a characterized library as a mini-Liberty document.

    Units follow the header written by
    :func:`repro.tech.liberty.new_library`: time in ps, capacitance in
    fF, leakage in nW, area in um^2.
    """
    tech = library.tech
    root = new_library(f"repeaters_{tech.name}", voltage=tech.vdd)
    prefix = "INVD" if library.kind is RepeaterKind.INVERTER else "BUFD"

    for size in library.sizes():
        data = library.cell(size)
        cell_group = root.add_group("cell", f"{prefix}{size:g}")
        cell_group.attributes["area"] = data.area / 1e-12  # um^2
        cell_group.attributes["cell_leakage_power"] = (
            data.leakage_power / 1e-9)  # nW
        cell_group.attributes["drive_strength"] = size
        # State-dependent leakage, Liberty-style "when" groups: with the
        # input low the output is high and the nMOS stack leaks.
        for condition, value in (("!A", data.leakage_output_high),
                                 ("A", data.leakage_output_low)):
            leak_group = cell_group.add_group("leakage_power", "")
            leak_group.attributes["when"] = condition
            leak_group.attributes["value"] = value / 1e-9  # nW

        pin_in = cell_group.add_group("pin", "A")
        pin_in.attributes["direction"] = "input"
        pin_in.attributes["capacitance"] = to_fF(data.input_capacitance)

        pin_out = cell_group.add_group("pin", "Z")
        pin_out.attributes["direction"] = "output"
        timing = pin_out.add_group("timing", "")
        timing.attributes["related_pin"] = "A"
        for label, transition in (("rise", data.rise), ("fall", data.fall)):
            for table_kind, table in (
                    (f"cell_{label}", transition.delay),
                    (f"{label}_transition", transition.output_slew)):
                group = timing.add_group(table_kind, "delay_template")
                group.set_table(
                    [to_ps(x) for x in table.index_1],
                    [to_fF(x) for x in table.index_2],
                    [[to_ps(v) for v in row] for row in table.values],
                )
    return root


def liberty_to_tables(
    root: LibertyGroup, cell_name: str
) -> Dict[str, NLDMTable]:
    """Read the four NLDM tables of one cell back from Liberty.

    Returns a mapping with keys ``cell_rise``, ``cell_fall``,
    ``rise_transition`` and ``fall_transition``; values converted back
    to SI units.
    """
    cell_group = root.require("cell", cell_name)
    timing = cell_group.require("pin", "Z").require("timing")
    tables: Dict[str, NLDMTable] = {}
    for kind in ("cell_rise", "cell_fall",
                 "rise_transition", "fall_transition"):
        group = timing.require(kind)
        index_1, index_2, values = group.get_table()
        tables[kind] = NLDMTable.from_arrays(
            [ps(x) for x in index_1],
            [fF(x) for x in index_2],
            [[ps(v) for v in row] for row in values],
        )
    return tables


def liberty_to_library(
    root: LibertyGroup,
    tech: TechnologyParameters,
    kind: RepeaterKind = RepeaterKind.INVERTER,
) -> LibraryCharacterization:
    """Rebuild a characterized library from a mini-Liberty document.

    This is the paper's primary data path (Section III-E: coefficients
    "can be computed from the Liberty library files"): everything
    calibration needs — delay/slew tables, input capacitances,
    state-dependent leakage, areas — is read back from the Liberty
    text, so :func:`~repro.models.calibration.calibrate_from_library`
    works on libraries that never touched this process's simulator.
    """
    prefix = "INVD" if kind is RepeaterKind.INVERTER else "BUFD"
    cells: Dict[float, CellCharacterization] = {}
    grid: Optional[CharacterizationGrid] = None

    for cell_group in root.find_all("cell"):
        if not cell_group.name.startswith(prefix):
            continue
        size = float(cell_group.attributes["drive_strength"])
        cell = RepeaterCell(tech=tech, kind=kind, size=size)
        pin_in = cell_group.require("pin", "A")
        input_cap = fF(float(pin_in.attributes["capacitance"]))
        area = float(cell_group.attributes["area"]) * 1e-12

        leak_high = leak_low = None
        for leak_group in cell_group.find_all("leakage_power"):
            value = float(leak_group.attributes["value"]) * 1e-9
            if leak_group.attributes["when"] == "!A":
                leak_high = value
            else:
                leak_low = value
        if leak_high is None or leak_low is None:
            average = float(
                cell_group.attributes["cell_leakage_power"]) * 1e-9
            leak_high = leak_low = average

        timing = cell_group.require("pin", "Z").require("timing")
        tables = {}
        for table_kind in ("cell_rise", "cell_fall",
                           "rise_transition", "fall_transition"):
            group = timing.require(table_kind)
            index_1, index_2, values = group.get_table()
            tables[table_kind] = NLDMTable.from_arrays(
                [ps(x) for x in index_1],
                [fF(x) for x in index_2],
                [[ps(v) for v in row] for row in values])

        cells[size] = CellCharacterization(
            cell=cell,
            rise=TransitionTables(delay=tables["cell_rise"],
                                  output_slew=tables["rise_transition"]),
            fall=TransitionTables(delay=tables["cell_fall"],
                                  output_slew=tables["fall_transition"]),
            input_capacitance=input_cap,
            leakage_power=0.5 * (leak_high + leak_low),
            leakage_output_high=leak_high,
            leakage_output_low=leak_low,
            area=area,
        )
        if grid is None:
            slews = tuple(tables["cell_rise"].index_1)
            loads = tuple(tables["cell_rise"].index_2)
            factors = tuple(load / input_cap for load in loads)
            grid = CharacterizationGrid(sizes=(size,),
                                        input_slews=slews,
                                        load_factors=factors)

    if not cells or grid is None:
        raise ValueError(
            f"Liberty document contains no {prefix}* cells")
    grid = CharacterizationGrid(sizes=tuple(sorted(cells)),
                                input_slews=grid.input_slews,
                                load_factors=grid.load_factors)
    return LibraryCharacterization(tech=tech, kind=kind, grid=grid,
                                   cells=cells)


def describe_library(library: LibraryCharacterization) -> str:
    """Human-readable summary used by examples and debugging."""
    tech = library.tech
    lines = [f"{library.kind.value} library @ {tech.name} "
             f"(vdd={tech.vdd} V)"]
    for size in library.sizes():
        data = library.cell(size)
        lines.append(
            f"  x{size:<5g} cin={to_fF(data.input_capacitance):6.2f} fF  "
            f"leak={data.leakage_power * 1e9:8.1f} nW  "
            f"area={data.area / 1e-12:7.2f} um^2  "
            f"(w_cell={to_um(data.area / tech.row_height):.2f} um)")
    return "\n".join(lines)
