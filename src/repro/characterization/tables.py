"""NLDM-style 2-D lookup tables (input slew x load capacitance)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np


@dataclass(frozen=True)
class NLDMTable:
    """A Liberty-style nonlinear delay-model table.

    ``index_1`` is the input slew axis (seconds), ``index_2`` the load
    capacitance axis (farads), and ``values[i][j]`` the measured
    quantity (delay or output slew, seconds) at
    ``(index_1[i], index_2[j])``.
    """

    index_1: "tuple[float, ...]"
    index_2: "tuple[float, ...]"
    values: "tuple[tuple[float, ...], ...]"

    def __post_init__(self) -> None:
        rows, cols = len(self.index_1), len(self.index_2)
        if rows < 1 or cols < 1:
            raise ValueError("table axes must be non-empty")
        if len(self.values) != rows:
            raise ValueError("values row count must match index_1")
        if any(len(row) != cols for row in self.values):
            raise ValueError("values column count must match index_2")
        for axis_name, axis in (("index_1", self.index_1),
                                ("index_2", self.index_2)):
            if any(b <= a for a, b in zip(axis, axis[1:])):
                raise ValueError(f"{axis_name} must be strictly increasing")

    @classmethod
    def from_arrays(cls, index_1: Sequence[float], index_2: Sequence[float],
                    values: Sequence[Sequence[float]]) -> "NLDMTable":
        return cls(
            index_1=tuple(float(x) for x in index_1),
            index_2=tuple(float(x) for x in index_2),
            values=tuple(tuple(float(v) for v in row) for row in values),
        )

    def as_array(self) -> np.ndarray:
        return np.asarray(self.values)

    def lookup(self, slew: float, load: float,
               mode: str = "extrapolate") -> float:
        """Bilinear interpolation with a documented edge policy.

        Inside the grid both modes agree (plain bilinear
        interpolation).  Beyond an axis edge they differ:

        ``"extrapolate"`` (default)
            Continue the edge cell's linear trend — what Liberty
            tools do for mildly out-of-range queries, and what the
            calibration fits rely on.
        ``"clamp"``
            Pin the query to the nearest edge, so out-of-range
            lookups return the boundary value — the conservative
            policy for consumers that must never amplify a table
            beyond its measured support.

        Exact grid hits return the stored value (both modes).
        """
        return float(_bilinear(np.asarray(self.index_1),
                               np.asarray(self.index_2),
                               self.as_array(), slew, load,
                               mode=mode))

    def row(self, slew_index: int) -> List[float]:
        """Values across loads at one slew point."""
        return list(self.values[slew_index])

    def column(self, load_index: int) -> List[float]:
        """Values across slews at one load point."""
        return [row[load_index] for row in self.values]


def _bilinear(xs: np.ndarray, ys: np.ndarray, table: np.ndarray,
              x: float, y: float, mode: str = "extrapolate") -> float:
    """Bilinear interpolation; ``mode`` picks the edge policy.

    ``"extrapolate"`` leaves the edge cell's fraction unclamped, so
    out-of-range queries continue that cell's linear trend;
    ``"clamp"`` limits fractions to [0, 1], pinning queries to the
    boundary value.  Single-point axes collapse to the lower
    dimension in both modes (one cell has no trend to continue).
    """
    if mode not in ("extrapolate", "clamp"):
        raise ValueError(
            f"mode must be 'extrapolate' or 'clamp', got {mode!r}")

    def bracket(axis: np.ndarray, value: float) -> "tuple[int, float]":
        if axis.size == 1:
            return 0, 0.0
        index = int(np.searchsorted(axis, value)) - 1
        index = min(max(index, 0), axis.size - 2)
        span = axis[index + 1] - axis[index]
        fraction = (value - axis[index]) / span
        if mode == "clamp":
            fraction = min(max(fraction, 0.0), 1.0)
        return index, fraction

    i, fx = bracket(xs, x)
    j, fy = bracket(ys, y)
    if xs.size == 1 and ys.size == 1:
        return float(table[0, 0])
    if xs.size == 1:
        return float(table[0, j] * (1 - fy) + table[0, j + 1] * fy)
    if ys.size == 1:
        return float(table[i, 0] * (1 - fx) + table[i + 1, 0] * fx)
    v00, v01 = table[i, j], table[i, j + 1]
    v10, v11 = table[i + 1, j], table[i + 1, j + 1]
    top = v00 * (1 - fy) + v01 * fy
    bottom = v10 * (1 - fy) + v11 * fy
    return float(top * (1 - fx) + bottom * fx)
