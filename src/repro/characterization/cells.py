"""Repeater cell construction.

A *repeater* is either an inverter or a buffer (two cascaded
inverters); the paper's models cover both, with only the fitted
coefficients changing.  Cells are built at a fixed P/N width ratio
across all sizes, as Section III-E prescribes.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Tuple

from repro.spice.netlist import Circuit
from repro.spice.elements import ramp
from repro.tech.parameters import TechnologyParameters


class RepeaterKind(enum.Enum):
    """Repeater flavour."""

    INVERTER = "inverter"
    BUFFER = "buffer"

    @property
    def inverting(self) -> bool:
        return self is RepeaterKind.INVERTER


#: Size ratio between the second and first inverter of a buffer.
BUFFER_STAGE_RATIO = 4.0


@dataclass(frozen=True)
class RepeaterCell:
    """One repeater cell of a given drive strength.

    ``size`` is the drive strength in multiples of the minimum inverter;
    for buffers it is the strength of the *output* stage, with the input
    stage scaled down by :data:`BUFFER_STAGE_RATIO` (the first stage
    grows with the second, which is why buffer intrinsic delay stays
    nearly size-independent — the observation under Fig. 1).
    """

    tech: TechnologyParameters
    kind: RepeaterKind
    size: float

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError("size must be positive")

    # -- geometry ---------------------------------------------------------

    def output_stage_widths(self) -> Tuple[float, float]:
        """(wn, wp) of the output inverter, meters."""
        return self.tech.inverter_widths(self.size)

    def input_stage_widths(self) -> Tuple[float, float]:
        """(wn, wp) of the stage the cell input connects to, meters."""
        if self.kind is RepeaterKind.INVERTER:
            return self.output_stage_widths()
        first_size = max(self.size / BUFFER_STAGE_RATIO, 1.0)
        return self.tech.inverter_widths(first_size)

    def total_device_width(self) -> float:
        """Sum of all device widths in the cell, meters."""
        wn_out, wp_out = self.output_stage_widths()
        total = wn_out + wp_out
        if self.kind is RepeaterKind.BUFFER:
            wn_in, wp_in = self.input_stage_widths()
            total += wn_in + wp_in
        return total

    # -- electrical views ---------------------------------------------------

    def input_capacitance(self) -> float:
        """Input capacitance in farads (gate caps of the input stage)."""
        wn, wp = self.input_stage_widths()
        return self.tech.nmos.c_gate * wn + self.tech.pmos.c_gate * wp

    def leakage_power(self) -> float:
        """Average static power in watts over the two output states.

        The nMOS of an inverter leaks when the output is high, the pMOS
        when it is low; the cell-level average over both states is the
        ``p_s = (p_sn + p_sp) / 2`` of Section III-C.  For buffers the
        first stage's contribution is added the same way.
        """
        vdd = self.tech.vdd
        total = 0.0
        for wn, wp in self._stage_width_list():
            p_n = self.tech.nmos.leakage_power(wn, vdd)
            p_p = self.tech.pmos.leakage_power(wp, vdd)
            total += 0.5 * (p_n + p_p)
        return total

    def _stage_width_list(self) -> Tuple[Tuple[float, float], ...]:
        if self.kind is RepeaterKind.INVERTER:
            return (self.output_stage_widths(),)
        return (self.input_stage_widths(), self.output_stage_widths())

    # -- layout (finger-based, Section III-C) --------------------------------

    def layout_area(self) -> float:
        """Cell area in m^2 from the finger-count layout model.

        ``N_f = (w_p + w_n) / (h_row - 4 p_contact)`` fingers, cell width
        ``(N_f + 1) * p_contact``, area ``h_row * w_cell``.  Buffers add
        the first-stage fingers into the same row.
        """
        tech = self.tech
        usable_height = tech.row_height - 4.0 * tech.contact_pitch
        if usable_height <= 0:
            raise ValueError("row height too small for the contact pitch")
        total_width = self.total_device_width()
        fingers = max(math.ceil(total_width / usable_height), 1)
        cell_width = (fingers + 1) * tech.contact_pitch
        return tech.row_height * cell_width

    # -- circuit construction ------------------------------------------------

    def build_test_circuit(self, input_slew: float, load_cap: float,
                           rising_input: bool) -> Tuple[Circuit, float]:
        """Characterization testbench: ramp -> cell -> load capacitor.

        Returns the circuit and a suggested simulation stop time.  The
        cell input node is ``"in"`` and the output node is ``"out"``.
        """
        if input_slew <= 0:
            raise ValueError("input_slew must be positive")
        if load_cap < 0:
            raise ValueError("load_cap must be non-negative")
        tech = self.tech
        vdd = tech.vdd
        circuit = Circuit(f"{self.kind.value}_x{self.size:g}")
        circuit.add_supply("vdd", vdd)
        start = 0.1 * input_slew + 1e-12
        if rising_input:
            circuit.add_voltage_source(
                "in", ramp(0.0, vdd, start, input_slew))
        else:
            circuit.add_voltage_source(
                "in", ramp(vdd, 0.0, start, input_slew))

        if self.kind is RepeaterKind.INVERTER:
            wn, wp = self.output_stage_widths()
            circuit.add_inverter("in", "out", "vdd", tech.nmos, tech.pmos,
                                 wn, wp, vdd)
        else:
            wn1, wp1 = self.input_stage_widths()
            wn2, wp2 = self.output_stage_widths()
            circuit.add_inverter("in", "mid", "vdd", tech.nmos, tech.pmos,
                                 wn1, wp1, vdd)
            circuit.add_inverter("mid", "out", "vdd", tech.nmos, tech.pmos,
                                 wn2, wp2, vdd)
        circuit.add_capacitor("out", "0", load_cap)

        # Stop-time heuristic: ramp + several RC time constants of the
        # output stage into the load.
        wn_out, _ = self.output_stage_widths()
        overdrive = max(vdd - tech.nmos.vth, 0.2 * vdd)
        drive_resistance = vdd / (
            tech.nmos.k_sat * wn_out * overdrive**tech.nmos.alpha)
        settle = drive_resistance * (load_cap + self.input_capacitance())
        stop_time = start + input_slew + 10.0 * settle + 30e-12
        return circuit, stop_time

    def build_leakage_circuit(self, input_high: bool) -> Circuit:
        """DC leakage testbench with the input pinned at a rail."""
        tech = self.tech
        vdd = tech.vdd
        circuit = Circuit(f"{self.kind.value}_leak")
        circuit.add_supply("vdd", vdd)
        circuit.add_supply("in", vdd if input_high else 0.0)
        if self.kind is RepeaterKind.INVERTER:
            wn, wp = self.output_stage_widths()
            circuit.add_inverter("in", "out", "vdd", tech.nmos, tech.pmos,
                                 wn, wp, vdd)
        else:
            wn1, wp1 = self.input_stage_widths()
            wn2, wp2 = self.output_stage_widths()
            circuit.add_inverter("in", "mid", "vdd", tech.nmos, tech.pmos,
                                 wn1, wp1, vdd)
            circuit.add_inverter("mid", "out", "vdd", tech.nmos, tech.pmos,
                                 wn2, wp2, vdd)
        return circuit
