"""Buffering optimization (Section III-D).

Delay-optimal buffering produces impractically large repeaters; the
paper instead searches the (repeater count, repeater size) space for
the minimum of a weighted delay-power objective, and optionally applies
staggered insertion to cancel the coupling term in the delay equation.

* :mod:`repro.buffering.optimizer` — exhaustive + binary-search
  optimization of weighted objectives, and constrained variants
  (minimum power subject to a delay bound) used by the NoC synthesizer.
* :mod:`repro.buffering.schemes` — classic closed-form buffering.
* :mod:`repro.buffering.staggering` — staggered-insertion evaluation.
"""

from repro.buffering.optimizer import (
    BufferingSolution,
    max_feasible_length,
    minimize_power_under_delay,
    optimize_buffering,
)
from repro.buffering.schemes import delay_optimal_buffering
from repro.buffering.staggering import StaggeringComparison, compare_staggering

__all__ = [
    "BufferingSolution",
    "max_feasible_length",
    "minimize_power_under_delay",
    "optimize_buffering",
    "delay_optimal_buffering",
    "StaggeringComparison",
    "compare_staggering",
]
