"""Wire sizing co-optimized with repeater insertion.

The width-dependent resistivity model (Section III-B, after Shi & Pan)
makes wire sizing *superlinearly* effective in nanometer nodes: doubling
the width more than halves the resistance, because surface and
grain-boundary scattering relax as the cross-section grows.  This module
exposes that lever: it sweeps drawn width/spacing multiples of the base
layer, re-optimizes the buffering for each candidate geometry, and picks
the best configuration under the usual weighted delay-power objective —
optionally capped by a routing-pitch budget.

The repeater calibration is geometry-independent (it characterizes the
gates, not the wires), so one calibrated node serves every candidate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import dataclasses

from repro.buffering.optimizer import (
    DEFAULT_INPUT_SLEW,
    BufferingSolution,
    optimize_buffering,
)
from repro.models.calibration import CalibratedTechnology
from repro.models.interconnect import BufferedInterconnectModel
from repro.tech.design_styles import WireConfiguration
from repro.tech.parameters import TechnologyParameters

DEFAULT_WIDTH_MULTIPLES = (1.0, 1.5, 2.0, 3.0)
DEFAULT_SPACING_MULTIPLES = (1.0, 1.5, 2.0)


@dataclass(frozen=True)
class WireSizingSolution:
    """Best (wire geometry, buffering) pair found by the sweep."""

    width_multiple: float
    spacing_multiple: float
    config: WireConfiguration
    buffering: BufferingSolution
    pitch_multiple: float

    @property
    def delay(self) -> float:
        return self.buffering.delay

    @property
    def power(self) -> float:
        return self.buffering.power

    def describe(self) -> str:
        return (f"wire {self.width_multiple:g}W/{self.spacing_multiple:g}S "
                f"(pitch x{self.pitch_multiple:.2f}), "
                f"{self.buffering.num_repeaters} repeaters "
                f"x{self.buffering.repeater_size:.0f}: "
                f"delay {self.delay * 1e12:.0f} ps, "
                f"power {self.power * 1e3:.3f} mW")


def sized_configuration(base: WireConfiguration, width_multiple: float,
                        spacing_multiple: float) -> WireConfiguration:
    """The base configuration with a scaled drawn geometry."""
    if width_multiple <= 0 or spacing_multiple <= 0:
        raise ValueError("geometry multiples must be positive")
    return dataclasses.replace(
        base,
        layer=base.layer.scaled(width_multiple=width_multiple,
                                spacing_multiple=spacing_multiple),
    )


def optimize_wire_sizing(
    tech: TechnologyParameters,
    calibration: CalibratedTechnology,
    base_config: WireConfiguration,
    length: float,
    delay_weight: float = 0.5,
    width_multiples: Sequence[float] = DEFAULT_WIDTH_MULTIPLES,
    spacing_multiples: Sequence[float] = DEFAULT_SPACING_MULTIPLES,
    max_pitch_multiple: Optional[float] = None,
    input_slew: float = DEFAULT_INPUT_SLEW,
    activity_factor: float = 0.15,
) -> WireSizingSolution:
    """Sweep wire geometries, re-buffering each, and keep the best.

    ``max_pitch_multiple`` bounds the routing-resource cost: candidates
    whose pitch exceeds that multiple of the base pitch are skipped
    (a track-budget constraint).
    """
    if length <= 0:
        raise ValueError("length must be positive")
    base_pitch = base_config.layer.pitch

    best: Optional[WireSizingSolution] = None
    for width_multiple in width_multiples:
        for spacing_multiple in spacing_multiples:
            config = sized_configuration(base_config, width_multiple,
                                         spacing_multiple)
            pitch_multiple = config.layer.pitch / base_pitch
            if (max_pitch_multiple is not None
                    and pitch_multiple > max_pitch_multiple + 1e-9):
                continue
            model = BufferedInterconnectModel(
                tech=tech, calibration=calibration, config=config,
                activity_factor=activity_factor)
            buffering = optimize_buffering(
                model, length, delay_weight=delay_weight,
                input_slew=input_slew)
            candidate = WireSizingSolution(
                width_multiple=width_multiple,
                spacing_multiple=spacing_multiple,
                config=config,
                buffering=buffering,
                pitch_multiple=pitch_multiple,
            )
            if best is None or (candidate.buffering.objective
                                < best.buffering.objective):
                best = candidate
    if best is None:
        raise ValueError("no wire-geometry candidate met the pitch cap")
    return best


def sizing_frontier(
    tech: TechnologyParameters,
    calibration: CalibratedTechnology,
    base_config: WireConfiguration,
    length: float,
    width_multiples: Sequence[float] = DEFAULT_WIDTH_MULTIPLES,
    input_slew: float = DEFAULT_INPUT_SLEW,
) -> Tuple[Tuple[float, float, float], ...]:
    """(width multiple, delay, resistance/m) along the width axis.

    Used to demonstrate the superlinear payoff of widening: with
    scattering active, resistance falls faster than 1/width.
    """
    rows = []
    for width_multiple in width_multiples:
        config = sized_configuration(base_config, width_multiple, 1.0)
        model = BufferedInterconnectModel(
            tech=tech, calibration=calibration, config=config)
        buffering = optimize_buffering(model, length, delay_weight=1.0,
                                       input_slew=input_slew)
        rows.append((width_multiple, buffering.delay,
                     config.resistance_per_meter()))
    return tuple(rows)
