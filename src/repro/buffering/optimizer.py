"""Search-based buffering optimization.

The optimizer works against *any* model exposing the
``evaluate(length, num_repeaters, repeater_size, input_slew, ...)``
interface (the proposed model and both baselines), which is exactly how
the paper swaps models inside COSI-OCC.

Two search primitives, mirroring Section III-D:

* for a fixed repeater count, the objective is unimodal in the repeater
  size, so a **binary search on the size derivative** (implemented as a
  golden-section search, the robust equivalent) finds the best size;
* an **exhaustive sweep over repeater counts** around the delay-optimal
  count picks the best combination.

The objective is the weighted product ``delay^w * power^(1-w)`` —
scale-free, so no normalization constants are needed; ``w = 1`` recovers
delay-optimal buffering and smaller ``w`` trades delay for power.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.models.interconnect import InterconnectEstimate
from repro.units import ps

#: Default input slew assumed at the head of an optimized link.
DEFAULT_INPUT_SLEW = ps(100)

#: Practical repeater size cap — delay-optimal sizes beyond this are
#: "never used in practice" (Section III-D).
DEFAULT_MAX_SIZE = 128.0

#: Golden-section ratio.
_GOLDEN = (math.sqrt(5.0) - 1.0) / 2.0


@dataclass(frozen=True)
class BufferingSolution:
    """Result of a buffering optimization."""

    num_repeaters: int
    repeater_size: float
    estimate: InterconnectEstimate
    objective: float

    @property
    def delay(self) -> float:
        return self.estimate.delay

    @property
    def power(self) -> float:
        return self.estimate.total_power


def _weighted_objective(estimate: InterconnectEstimate,
                        delay_weight: float) -> float:
    """``delay^w * power^(1-w)`` (scale-free weighted product)."""
    if delay_weight >= 1.0:
        return estimate.delay
    if delay_weight <= 0.0:
        return estimate.total_power
    return (estimate.delay**delay_weight
            * estimate.total_power**(1.0 - delay_weight))


def _best_size_for_count(model, length: float, count: int,
                         input_slew: float, delay_weight: float,
                         max_size: float, bus_width: int
                         ) -> BufferingSolution:
    """Golden-section search over the repeater size for a fixed count."""
    def objective_at(size: float) -> "tuple[float, InterconnectEstimate]":
        estimate = model.evaluate(length, count, size, input_slew,
                                  bus_width=bus_width)
        return _weighted_objective(estimate, delay_weight), estimate

    low, high = 1.0, max_size
    x1 = high - _GOLDEN * (high - low)
    x2 = low + _GOLDEN * (high - low)
    f1, e1 = objective_at(x1)
    f2, e2 = objective_at(x2)
    for _ in range(40):
        if high - low < 0.25:
            break
        if f1 <= f2:
            high, x2, f2, e2 = x2, x1, f1, e1
            x1 = high - _GOLDEN * (high - low)
            f1, e1 = objective_at(x1)
        else:
            low, x1, f1, e1 = x1, x2, f2, e2
            x2 = low + _GOLDEN * (high - low)
            f2, e2 = objective_at(x2)
    if f1 <= f2:
        return BufferingSolution(count, x1, e1, f1)
    return BufferingSolution(count, x2, e2, f2)


def _use_kernel_search(model, use_kernels: Optional[bool]) -> bool:
    """Resolve the kernel-dispatch tri-state.

    ``None`` auto-detects (kernels engage for the plain proposed
    model); ``True`` insists and raises for unsupported models;
    ``False`` forces the scalar reference path.
    """
    if use_kernels is False:
        return False
    from repro.kernels.line import supports_model
    from repro.kernels.lut import serves_model
    supported = supports_model(model) or serves_model(model)
    if use_kernels and not supported:
        raise ValueError(
            f"use_kernels=True but {type(model).__name__} is not "
            "supported by the batched kernels (only the plain "
            "BufferedInterconnectModel and its LUT-served wrapper "
            "are)")
    return supported


def optimize_buffering(
    model,
    length: float,
    delay_weight: float = 0.5,
    input_slew: float = DEFAULT_INPUT_SLEW,
    max_repeaters: Optional[int] = None,
    max_size: float = DEFAULT_MAX_SIZE,
    bus_width: int = 1,
    counts: Optional[Sequence[int]] = None,
    use_kernels: Optional[bool] = None,
) -> BufferingSolution:
    """Best (count, size) for the weighted delay-power objective.

    ``counts`` overrides the repeater-count candidates; by default every
    count from 1 to ``max_repeaters`` (a heuristic cap derived from the
    line length) is tried.  When the model supports the batched
    kernels (see ``use_kernels``), all counts are searched as lanes of
    one lockstep golden-section search, following the same trajectory
    as this scalar loop.
    """
    if not 0.0 <= delay_weight <= 1.0:
        raise ValueError("delay_weight must lie in [0, 1]")
    if length <= 0:
        raise ValueError("length must be positive")

    if counts is None:
        if max_repeaters is None:
            # Generous cap: about four repeaters per millimeter.
            max_repeaters = max(2, int(length / 0.25e-3))
        counts = range(1, max_repeaters + 1)

    if _use_kernel_search(model, use_kernels):
        from repro.kernels.search import optimize_buffering_batch
        return optimize_buffering_batch(
            model, length, list(counts), delay_weight, input_slew,
            max_size, bus_width)

    best: Optional[BufferingSolution] = None
    for count in counts:
        candidate = _best_size_for_count(
            model, length, count, input_slew, delay_weight, max_size,
            bus_width)
        if best is None or candidate.objective < best.objective:
            best = candidate
    assert best is not None
    return best


def minimize_power_under_delay(
    model,
    length: float,
    max_delay: float,
    input_slew: float = DEFAULT_INPUT_SLEW,
    max_size: float = DEFAULT_MAX_SIZE,
    bus_width: int = 1,
    counts: Optional[Sequence[int]] = None,
    use_kernels: Optional[bool] = None,
) -> Optional[BufferingSolution]:
    """Cheapest buffering whose delay meets ``max_delay``.

    Returns ``None`` when no configuration meets the bound (the link is
    infeasible at this length and clock) — which is exactly the
    feasibility check the NoC synthesizer performs per candidate link.
    ``counts`` defaults to a sparse candidate set sized to the length.
    Kernel dispatch as in :func:`optimize_buffering`.
    """
    if max_delay <= 0:
        raise ValueError("max_delay must be positive")
    if counts is None:
        counts = _count_candidates(length)

    if _use_kernel_search(model, use_kernels):
        from repro.kernels.search import \
            minimize_power_under_delay_batch
        return minimize_power_under_delay_batch(
            model, length, max_delay, input_slew, max_size, bus_width,
            list(counts))

    best: Optional[BufferingSolution] = None
    for count in counts:
        # Fastest configuration at this count: delay-weighted search.
        fastest = _best_size_for_count(
            model, length, count, input_slew, 1.0, max_size, bus_width)
        if fastest.delay > max_delay:
            continue
        # Shrink the size until the delay bound is met, minimizing
        # power: power decreases monotonically with size, so binary
        # search for the smallest size still meeting the bound.
        low, high = 1.0, fastest.repeater_size
        low_est = model.evaluate(length, count, low, input_slew,
                                 bus_width=bus_width)
        if low_est.delay <= max_delay:
            chosen, chosen_est = low, low_est
        else:
            for _ in range(40):
                if high - low < 0.25:
                    break
                mid = 0.5 * (low + high)
                estimate = model.evaluate(length, count, mid, input_slew,
                                          bus_width=bus_width)
                if estimate.delay <= max_delay:
                    high = mid
                else:
                    low = mid
            chosen = high
            chosen_est = model.evaluate(length, count, chosen, input_slew,
                                        bus_width=bus_width)
        candidate = BufferingSolution(
            count, chosen, chosen_est, chosen_est.total_power)
        if best is None or candidate.estimate.total_power < best.power:
            best = candidate
    return best


def max_feasible_length(
    model,
    max_delay: float,
    input_slew: float = DEFAULT_INPUT_SLEW,
    upper_bound: float = 30e-3,
    max_size: float = DEFAULT_MAX_SIZE,
    use_kernels: Optional[bool] = None,
) -> float:
    """Longest line (meters) whose optimally buffered delay meets
    ``max_delay``.

    Used by the NoC synthesizer to prune candidate links; the paper
    observes that the optimistic original model admits "excessively
    long wires" that are not actually implementable.
    """
    def feasible(length: float) -> bool:
        solution = optimize_buffering(
            model, length, delay_weight=1.0, input_slew=input_slew,
            max_size=max_size,
            counts=_count_candidates(length),
            use_kernels=use_kernels)
        return solution.delay <= max_delay

    low = 0.1e-3
    if not feasible(low):
        return 0.0
    high = upper_bound
    if feasible(high):
        return high
    for _ in range(30):
        mid = 0.5 * (low + high)
        if feasible(mid):
            low = mid
        else:
            high = mid
    return low


def _count_candidates(length: float) -> Sequence[int]:
    """Sparse repeater-count candidates for fast feasibility checks."""
    dense = max(2, int(length / 0.25e-3))
    candidates = sorted({1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64, dense})
    return [count for count in candidates if count <= dense]
