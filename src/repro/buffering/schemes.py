"""Classic closed-form buffering schemes.

The Bakoglu delay-optimal formulas give the textbook repeater count and
size for a line; they serve as the reference point the search-based
optimizer is compared against (and as the scheme the original COSI-OCC
flow uses).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.models.calibration import CalibratedTechnology
from repro.models.repeater import RepeaterModel
from repro.models.wire import effective_load_capacitance
from repro.tech.design_styles import WireConfiguration
from repro.tech.parameters import TechnologyParameters
from repro.units import ps


@dataclass(frozen=True)
class ClosedFormBuffering:
    """Closed-form buffering prescription."""

    num_repeaters: int
    repeater_size: float


def delay_optimal_buffering(
    tech: TechnologyParameters,
    calibration: CalibratedTechnology,
    config: WireConfiguration,
    length: float,
    reference_slew: float = ps(100),
) -> ClosedFormBuffering:
    """Bakoglu-style delay-optimal count and size, with the *calibrated*
    per-size drive resistance and input capacitance.

    ``k = sqrt(0.4 R_w C_w / (0.7 R_0 C_0))`` and
    ``h = sqrt(R_0 C_w / (R_w C_0))`` where ``R_0``/``C_0`` are the
    unit-size repeater resistance and input capacitance.  The size that
    comes out is typically enormous — the motivation for the practical
    weighted optimization.
    """
    if length <= 0:
        raise ValueError("length must be positive")
    repeater = RepeaterModel(tech=tech, calibration=calibration)
    r_wire = config.resistance_per_meter() * length
    c_wire = effective_load_capacitance(config, length, 0.0)
    r0 = 0.5 * (repeater.drive_resistance(1.0, reference_slew, True)
                + repeater.drive_resistance(1.0, reference_slew, False))
    c0 = repeater.input_capacitance(1.0)
    count = max(1, round(math.sqrt(
        (0.4 * r_wire * c_wire) / (0.7 * r0 * c0))))
    size = math.sqrt(r0 * c_wire / (r_wire * c0))
    return ClosedFormBuffering(num_repeaters=count,
                               repeater_size=max(size, 1.0))
