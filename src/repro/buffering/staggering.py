"""Staggered repeater insertion (Section III-D).

Staggering offsets the repeaters of adjacent bus bits by half a segment
so neighbouring transitions overlap destructively: the worst-case Miller
amplification of the lateral capacitance disappears from the *delay*
equation (Miller factor -> 0) while the switched capacitance — and
therefore dynamic power per transition — is unchanged.

A staggered line is therefore strictly faster for the same buffering.
The paper's experiment converts that speed surplus into power: allow
the staggered line a small delay budget above the normally optimized
line (about 2%) and let the optimizer shrink count and size to the
cheapest configuration inside that budget.  At that operating point the
paper reports ~20% power reduction for just above 2% delay degradation;
:func:`compare_staggering` reproduces the experiment for one line.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.buffering.optimizer import (
    DEFAULT_INPUT_SLEW,
    BufferingSolution,
    minimize_power_under_delay,
    optimize_buffering,
)
from repro.models.interconnect import BufferedInterconnectModel


@dataclass(frozen=True)
class StaggeringComparison:
    """Outcome of the staggered-vs-normal buffering experiment.

    ``power_saving`` and ``delay_penalty`` are fractional (0.20 = 20%).
    ``normal`` is the weighted-optimal buffering with worst-case
    coupling; ``staggered`` is the cheapest staggered buffering whose
    delay stays within the allowed penalty of the normal delay.
    """

    normal: BufferingSolution
    staggered: BufferingSolution
    power_saving: float
    delay_penalty: float


def compare_staggering(
    model: BufferedInterconnectModel,
    length: float,
    allowed_delay_penalty: float = 0.025,
    delay_weight: float = 0.5,
    input_slew: float = DEFAULT_INPUT_SLEW,
) -> StaggeringComparison:
    """Optimize one line normally, then staggered at a delay budget.

    The staggered configuration minimizes power subject to
    ``delay <= (1 + allowed_delay_penalty) * normal delay`` — the
    slack created by cancelling the coupling term is spent on smaller,
    sparser repeaters.
    """
    if allowed_delay_penalty < 0:
        raise ValueError("allowed_delay_penalty must be non-negative")
    normal = optimize_buffering(model, length, delay_weight=delay_weight,
                                input_slew=input_slew)
    budget = (1.0 + allowed_delay_penalty) * normal.delay

    staggered_model = model.staggered()
    staggered = minimize_power_under_delay(
        staggered_model, length, budget, input_slew=input_slew)
    if staggered is None:  # pragma: no cover - budget >= feasible delay
        raise RuntimeError("staggered line infeasible at the delay budget")

    power_saving = 1.0 - staggered.power / normal.power
    delay_penalty = staggered.delay / normal.delay - 1.0
    return StaggeringComparison(
        normal=normal,
        staggered=staggered,
        power_saving=power_saving,
        delay_penalty=delay_penalty,
    )
