"""Circuit container with named nodes.

A :class:`Circuit` owns a registry of named nodes and lists of elements.
Node names are arbitrary strings; the name ``"0"`` (and the alias
``"gnd"``) is ground.  Indices are dense integers handed out in
creation order, which the MNA assembly in
:mod:`repro.spice.transient` relies on.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.spice.elements import (
    GROUND,
    Capacitor,
    CurrentSource,
    Resistor,
    VoltageSource,
    WaveformFunction,
    constant,
)
from repro.spice.mosfet import Mosfet
from repro.tech.parameters import DeviceParameters

#: Names that refer to the ground node.
GROUND_NAMES = frozenset({"0", "gnd", "GND", "vss", "VSS"})


class Circuit:
    """A flat netlist of linear elements, sources and MOSFETs."""

    def __init__(self, name: str = "circuit"):
        self.name = name
        self._node_index: Dict[str, int] = {}
        self._node_names: List[str] = []
        self.resistors: List[Resistor] = []
        self.capacitors: List[Capacitor] = []
        self.current_sources: List[CurrentSource] = []
        self.voltage_sources: List[VoltageSource] = []
        self.mosfets: List[Mosfet] = []

    # -- nodes -----------------------------------------------------------

    def node(self, name: str) -> int:
        """Index of the named node, creating it on first use."""
        if name in GROUND_NAMES:
            return GROUND
        index = self._node_index.get(name)
        if index is None:
            index = len(self._node_names)
            self._node_index[name] = index
            self._node_names.append(name)
        return index

    @property
    def node_count(self) -> int:
        """Number of non-ground nodes."""
        return len(self._node_names)

    def node_name(self, index: int) -> str:
        """Name of the node at ``index`` (``"0"`` for ground)."""
        if index == GROUND:
            return "0"
        return self._node_names[index]

    def node_names(self) -> List[str]:
        """All non-ground node names in index order."""
        return list(self._node_names)

    def has_node(self, name: str) -> bool:
        return name in GROUND_NAMES or name in self._node_index

    # -- elements ----------------------------------------------------------

    def add_resistor(self, node_a: str, node_b: str,
                     resistance: float) -> Resistor:
        """Resistor between two named nodes (ohms)."""
        element = Resistor(self.node(node_a), self.node(node_b), resistance)
        self.resistors.append(element)
        return element

    def add_capacitor(self, node_a: str, node_b: str,
                      capacitance: float) -> Capacitor:
        """Capacitor between two named nodes (farads)."""
        element = Capacitor(self.node(node_a), self.node(node_b),
                            capacitance)
        self.capacitors.append(element)
        return element

    def add_current_source(self, node: str,
                           current: WaveformFunction) -> CurrentSource:
        """Current source injecting ``current(t)`` amperes into ``node``."""
        element = CurrentSource(self.node(node), current)
        self.current_sources.append(element)
        return element

    def add_voltage_source(self, node: str,
                           voltage: WaveformFunction) -> VoltageSource:
        """Grounded voltage source driving ``node`` to ``voltage(t)``."""
        index = self.node(node)
        if index == GROUND:
            raise ValueError("cannot drive the ground node")
        if any(source.node == index for source in self.voltage_sources):
            raise ValueError(f"node {node!r} already has a voltage source")
        element = VoltageSource(index, voltage)
        self.voltage_sources.append(element)
        return element

    def add_supply(self, node: str, voltage: float) -> VoltageSource:
        """Constant supply rail."""
        return self.add_voltage_source(node, constant(voltage))

    def add_mosfet(self, drain: str, gate: str, source: str,
                   parameters: DeviceParameters, width: float,
                   reference_vdd: float = 1.0) -> Mosfet:
        """MOSFET with terminals given as node names; width in meters."""
        element = Mosfet(
            drain=self.node(drain),
            gate=self.node(gate),
            source=self.node(source),
            parameters=parameters,
            width=width,
            reference_vdd=reference_vdd,
        )
        self.mosfets.append(element)
        return element

    # -- composite helpers ---------------------------------------------

    def add_inverter(self, input_node: str, output_node: str,
                     supply_node: str, nmos: DeviceParameters,
                     pmos: DeviceParameters, wn: float, wp: float,
                     vdd: float) -> "tuple[Mosfet, Mosfet]":
        """A static CMOS inverter between ``input_node`` and
        ``output_node`` powered from ``supply_node``."""
        n_device = self.add_mosfet(output_node, input_node, "0",
                                   nmos, wn, reference_vdd=vdd)
        p_device = self.add_mosfet(output_node, input_node, supply_node,
                                   pmos, wp, reference_vdd=vdd)
        return n_device, p_device

    def add_rc_ladder(self, input_node: str, output_node: str,
                      total_resistance: float, total_capacitance: float,
                      segments: int, prefix: Optional[str] = None) -> None:
        """A distributed RC line as ``segments`` lumped pi-segments.

        Each segment carries R/n series resistance with C/n split half at
        each end (pi model), which converges to the distributed line as
        ``segments`` grows.
        """
        if segments < 1:
            raise ValueError("segments must be >= 1")
        prefix = prefix or f"{input_node}__{output_node}"
        r_seg = total_resistance / segments
        c_seg = total_capacitance / segments
        previous = input_node
        for index in range(segments):
            nxt = (output_node if index == segments - 1
                   else f"{prefix}__n{index + 1}")
            self.add_capacitor(previous, "0", 0.5 * c_seg)
            self.add_resistor(previous, nxt, r_seg)
            self.add_capacitor(nxt, "0", 0.5 * c_seg)
            previous = nxt

    # -- introspection ---------------------------------------------------

    def summary(self) -> str:
        """One-line element census for debugging."""
        return (f"{self.name}: {self.node_count} nodes, "
                f"{len(self.resistors)}R {len(self.capacitors)}C "
                f"{len(self.mosfets)}M {len(self.voltage_sources)}V "
                f"{len(self.current_sources)}I")

    def driven_nodes(self) -> Dict[int, Callable[[float], float]]:
        """Mapping node index -> voltage waveform for driven nodes."""
        return {source.node: source.voltage
                for source in self.voltage_sources}
