"""Waveform measurements: threshold crossings, delay, slew.

Definitions used throughout the library (and stated here once):

* **Delay** between two waveforms is measured at the 50% points of their
  respective swings.
* **Slew** (transition time) is the 20%–80% crossing interval scaled by
  1/0.6 to a full-swing equivalent.  With this definition an ideal
  linear ramp of duration ``T`` measures a slew of exactly ``T``, so
  "input slew" values fed to ramp sources and slews measured from
  simulation share one scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

#: Lower/upper measurement thresholds for slew, as swing fractions.
SLEW_LOW = 0.2
SLEW_HIGH = 0.8

#: Full-swing scale factor matching the 20-80 window.
SLEW_SCALE = 1.0 / (SLEW_HIGH - SLEW_LOW)


@dataclass(frozen=True)
class Waveform:
    """A sampled voltage waveform with measurement helpers."""

    times: np.ndarray
    values: np.ndarray

    def __post_init__(self) -> None:
        if len(self.times) != len(self.values):
            raise ValueError("times and values must have equal length")
        if len(self.times) < 2:
            raise ValueError("waveform needs at least two samples")

    # -- basic properties --------------------------------------------------

    @property
    def initial(self) -> float:
        return float(self.values[0])

    @property
    def final(self) -> float:
        return float(self.values[-1])

    @property
    def rising(self) -> bool:
        """True when the net excursion is upward."""
        return self.final > self.initial

    def swing(self) -> float:
        """Signed net excursion (final minus initial value)."""
        return self.final - self.initial

    # -- crossings -----------------------------------------------------------

    def crossing_time(self, level: float,
                      rising: Optional[bool] = None) -> float:
        """Time of the first crossing of ``level``.

        ``rising`` restricts the crossing direction; by default the
        waveform's net direction is used.  Linear interpolation between
        samples.  Raises ``ValueError`` when the level is never crossed.
        """
        if rising is None:
            rising = self.rising
        v = self.values
        if rising:
            below = v[:-1] < level
            above = v[1:] >= level
            hits = np.nonzero(below & above)[0]
        else:
            above_now = v[:-1] > level
            below_next = v[1:] <= level
            hits = np.nonzero(above_now & below_next)[0]
        if hits.size == 0:
            direction = "rising" if rising else "falling"
            raise ValueError(
                f"waveform never crosses {level:.4g} V {direction} "
                f"(range {v.min():.4g}..{v.max():.4g} V)")
        i = int(hits[0])
        v0, v1 = float(v[i]), float(v[i + 1])
        t0, t1 = float(self.times[i]), float(self.times[i + 1])
        if v1 == v0:
            return t0
        return t0 + (level - v0) * (t1 - t0) / (v1 - v0)

    def fraction_crossing(self, fraction: float,
                          v_low: float, v_high: float,
                          rising: Optional[bool] = None) -> float:
        """Crossing time of ``v_low + fraction * (v_high - v_low)``."""
        level = v_low + fraction * (v_high - v_low)
        return self.crossing_time(level, rising)

    # -- measurements ---------------------------------------------------------

    def slew(self, v_low: float, v_high: float,
             rising: Optional[bool] = None) -> float:
        """Full-swing-equivalent transition time (seconds).

        Measured between the 20% and 80% points of the ``v_low``..
        ``v_high`` swing and scaled by 1/0.6.
        """
        if rising is None:
            rising = self.rising
        first = SLEW_LOW if rising else SLEW_HIGH
        second = SLEW_HIGH if rising else SLEW_LOW
        t_first = self.fraction_crossing(first, v_low, v_high, rising)
        t_second = self.fraction_crossing(second, v_low, v_high, rising)
        return (t_second - t_first) * SLEW_SCALE

    def midpoint_time(self, v_low: float, v_high: float,
                      rising: Optional[bool] = None) -> float:
        """Time of the 50% crossing of the ``v_low``..``v_high`` swing."""
        return self.fraction_crossing(0.5, v_low, v_high, rising)

    def settled(self, target: float, tolerance: float) -> bool:
        """True when the final sample is within ``tolerance`` of
        ``target``."""
        return abs(self.final - target) <= tolerance

    def value_at(self, t: float) -> float:
        """Linearly interpolated value at time ``t``."""
        return float(np.interp(t, self.times, self.values))


def measure_delay(input_wave: Waveform, output_wave: Waveform,
                  v_low: float, v_high: float) -> float:
    """50%-to-50% propagation delay from input to output (seconds).

    The output may rise or fall independently of the input (an inverter
    inverts); each waveform's own direction is used for its crossing.
    """
    t_in = input_wave.midpoint_time(v_low, v_high)
    t_out = output_wave.midpoint_time(v_low, v_high)
    return t_out - t_in


def measure_slew(wave: Waveform, v_low: float, v_high: float) -> float:
    """Full-swing-equivalent slew of a waveform (seconds)."""
    return wave.slew(v_low, v_high)
