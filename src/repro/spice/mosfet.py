"""Alpha-power-law MOSFET model with a smooth subthreshold transition.

The alpha-power law (Sakurai–Newton) captures velocity saturation — the
dominant short-channel effect for delay — which is why digital-delay
literature, including the gate models the paper builds on, uses it for
hand analysis.  Two practical refinements make it usable inside a Newton
solver and for leakage characterization:

* The gate overdrive goes through a softplus interpolation
  ``v_eff = s * ln(1 + exp((v_gs - vth) / s))`` so the current is smooth
  (C-infinity) through the threshold and decays exponentially below it —
  the same interpolation idea as the EKV model.  The smoothing parameter
  ``s`` is solved per device flavour such that the off-current at
  ``v_gs = 0, v_ds = vdd`` equals the technology's specified subthreshold
  leakage, making DC leakage characterization consistent by construction.
* Channel-length modulation adds a finite output conductance in
  saturation, and the linear region is the standard smooth quadratic.

Terminal convention: :meth:`Mosfet.evaluate` takes physical terminal
voltages and returns the physical drain current (negative for a
conducting pMOS in the nMOS sign convention) plus analytic derivatives
for the Newton companion model.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Tuple

from scipy.optimize import brentq

from repro.tech.parameters import DeviceParameters


@dataclass(frozen=True)
class MosfetOperatingPoint:
    """Drain current and small-signal derivatives at one bias point.

    ``ids`` is the drain-to-source current (A); ``gm = d ids / d vgs``
    and ``gds = d ids / d vds`` are what the Newton solver stamps.
    """

    ids: float
    gm: float
    gds: float


# Cache of solved softplus smoothing parameters, keyed by the frozen
# DeviceParameters instance (hashable) and the reference vdd.
_SMOOTHING_CACHE: Dict[Tuple[DeviceParameters, float], float] = {}

#: Search interval for the smoothing parameter, in volts.
_SMOOTHING_RANGE = (0.005, 0.5)


def _softplus(x: float, s: float) -> float:
    """Numerically safe ``s * ln(1 + exp(x / s))``."""
    ratio = x / s
    if ratio > 40.0:
        return x
    if ratio < -40.0:
        return s * math.exp(ratio)
    return s * math.log1p(math.exp(ratio))


def _sigmoid(x: float, s: float) -> float:
    """Derivative of :func:`_softplus` with respect to ``x``."""
    ratio = x / s
    if ratio > 40.0:
        return 1.0
    if ratio < -40.0:
        return math.exp(ratio)
    return 1.0 / (1.0 + math.exp(-ratio))


def subthreshold_smoothing(  # repro: noqa[worker-safety-transitive] — pure memoization; the write is idempotent and keyed on the inputs
        parameters: DeviceParameters,
        reference_vdd: float) -> float:
    """Smoothing parameter ``s`` (volts) matching the specified leakage.

    Solves ``k_sat * v_eff(0)**alpha = i_leak`` where
    ``v_eff(0) = softplus(-vth, s)`` is the effective overdrive of an
    off device.  The solution is cached per (flavour, vdd).
    """
    key = (parameters, reference_vdd)
    cached = _SMOOTHING_CACHE.get(key)
    if cached is not None:
        return cached

    target = parameters.i_leak / parameters.k_sat

    def objective(s: float) -> float:
        v_eff = _softplus(-parameters.vth, s)
        v_dsat = parameters.k_lin * v_eff**(parameters.alpha / 2.0)
        clm = 1.0 + parameters.channel_length_modulation * max(
            reference_vdd - v_dsat, 0.0)
        return v_eff**parameters.alpha * clm - target

    low, high = _SMOOTHING_RANGE
    if objective(high) < 0:
        solution = high  # leakage spec higher than the model can reach
    elif objective(low) > 0:
        solution = low   # leakage spec lower than the model can reach
    else:
        solution = brentq(objective, low, high, xtol=1e-6)
    _SMOOTHING_CACHE[key] = solution
    return solution


@dataclass(frozen=True)
class Mosfet:
    """A MOSFET instance: node connections, flavour, and width (meters)."""

    drain: int
    gate: int
    source: int
    parameters: DeviceParameters
    width: float
    reference_vdd: float = 1.0

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise ValueError("width must be positive")

    # -- capacitances ----------------------------------------------------

    @property
    def gate_capacitance(self) -> float:
        """Total gate capacitance in farads."""
        return self.parameters.c_gate * self.width

    @property
    def drain_capacitance(self) -> float:
        """Drain diffusion capacitance in farads."""
        return self.parameters.c_drain * self.width

    # -- current ----------------------------------------------------------

    def evaluate(self, v_gs: float, v_ds: float) -> MosfetOperatingPoint:
        """Drain current and derivatives at physical terminal voltages."""
        sign = self.parameters.polarity
        vgs = sign * v_gs
        vds = sign * v_ds

        if vds >= 0:
            ids, gm, gds = self._forward(vgs, vds)
        else:
            # Channel conduction is symmetric: swap drain and source.
            # In the swapped frame vgs' = vgd = vgs - vds, vds' = -vds.
            ids_s, gm_s, gds_s = self._forward(vgs - vds, -vds)
            ids = -ids_s
            gm = -gm_s
            gds = gm_s + gds_s

        return MosfetOperatingPoint(ids=sign * ids, gm=gm, gds=gds)

    def _forward(self, vgs: float, vds: float
                 ) -> Tuple[float, float, float]:
        """Current and derivatives in the nMOS frame with vds >= 0."""
        p = self.parameters
        w = self.width
        s = subthreshold_smoothing(p, self.reference_vdd)

        v_eff = _softplus(vgs - p.vth, s)
        dv_eff = _sigmoid(vgs - p.vth, s)
        if v_eff <= 0.0:
            return 0.0, 0.0, 0.0

        i_sat = p.k_sat * w * v_eff**p.alpha
        di_sat_dvgs = p.alpha * p.k_sat * w * v_eff**(p.alpha - 1.0) * dv_eff
        v_dsat = p.k_lin * v_eff**(p.alpha / 2.0)
        dv_dsat_dvgs = (p.k_lin * (p.alpha / 2.0)
                        * v_eff**(p.alpha / 2.0 - 1.0) * dv_eff)

        lam = p.channel_length_modulation
        if vds >= v_dsat:
            clm = 1.0 + lam * (vds - v_dsat)
            ids = i_sat * clm
            gds = i_sat * lam
            gm = di_sat_dvgs * clm - i_sat * lam * dv_dsat_dvgs
        else:
            x = vds / v_dsat
            shape = (2.0 - x) * x
            ids = i_sat * shape
            gds = i_sat * (2.0 - 2.0 * x) / v_dsat
            dx_dvgs = -vds * dv_dsat_dvgs / (v_dsat * v_dsat)
            dshape_dvgs = (2.0 - 2.0 * x) * dx_dvgs
            gm = di_sat_dvgs * shape + i_sat * dshape_dvgs
        return ids, gm, gds

    def leakage_current(self, vdd: float) -> float:
        """Off-state current magnitude (A) including gate tunneling.

        Evaluated at ``v_gs = 0`` with the full supply across the channel
        — the bias of the non-conducting device in a static CMOS gate.
        """
        point = self.evaluate(0.0, self.parameters.polarity * vdd)
        return abs(point.ids) + self.parameters.i_gate_leak * self.width
