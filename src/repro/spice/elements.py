"""Linear circuit elements and independent sources.

Nodes are referred to by integer index; index ``-1`` is ground.  The
:class:`~repro.spice.netlist.Circuit` container hands out indices for
named nodes, so user code normally never touches raw indices.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

#: Node index reserved for ground.
GROUND = -1

WaveformFunction = Callable[[float], float]


@dataclass(frozen=True)
class Resistor:
    """Ideal resistor between two nodes."""

    node_a: int
    node_b: int
    resistance: float

    def __post_init__(self) -> None:
        if self.resistance <= 0:
            raise ValueError("resistance must be positive")

    @property
    def conductance(self) -> float:
        return 1.0 / self.resistance


@dataclass(frozen=True)
class Capacitor:
    """Ideal capacitor between two nodes (node_b may be ground)."""

    node_a: int
    node_b: int
    capacitance: float

    def __post_init__(self) -> None:
        if self.capacitance < 0:
            raise ValueError("capacitance must be non-negative")


@dataclass(frozen=True)
class CurrentSource:
    """Independent current source injecting into ``node`` (from ground)."""

    node: int
    current: WaveformFunction


@dataclass(frozen=True)
class VoltageSource:
    """Grounded ideal voltage source driving ``node``.

    Only grounded sources are supported: they model input drivers and
    supply rails, which is all the characterization and sign-off
    circuits need.  A driven node's voltage is a known function of time,
    so it is eliminated from the MNA unknowns rather than handled with a
    branch-current row — smaller, better-conditioned systems.
    """

    node: int
    voltage: WaveformFunction


def step(level: float, at: float = 0.0, initial: float = 0.0
         ) -> WaveformFunction:
    """Ideal step from ``initial`` to ``level`` at time ``at``."""
    def waveform(t: float) -> float:
        return level if t >= at else initial
    return waveform


def ramp(v_start: float, v_end: float, t_start: float,
         transition: float) -> WaveformFunction:
    """Linear ramp from ``v_start`` to ``v_end``.

    The ramp begins at ``t_start`` and completes after ``transition``
    seconds.  A ``transition`` of zero degenerates to a step.  This is
    the canonical "input slew" excitation: a ramp with transition time
    ``T`` has a measured full-swing slew of exactly ``T`` under the
    20–80% slew definition used throughout the library.
    """
    if transition < 0:
        raise ValueError("transition must be non-negative")

    def waveform(t: float) -> float:
        if t <= t_start:
            return v_start
        if transition == 0.0 or t >= t_start + transition:
            return v_end
        fraction = (t - t_start) / transition
        return v_start + fraction * (v_end - v_start)

    return waveform


def constant(level: float) -> WaveformFunction:
    """Constant source (supply rails)."""
    def waveform(_t: float) -> float:
        return level
    return waveform
