"""Transient analysis: MNA assembly + Newton iteration.

The solver uses the standard companion-model formulation: at each time
step the backward-Euler discretized KCL system

.. code-block:: text

    C (v1 - v0) / dt  +  G v1  +  i_mos(v1)  =  i_src(t1)

is solved for the unknown node voltages ``v1`` by Newton iteration with
the MOSFETs linearized around the current iterate.  Voltage-source nodes
are eliminated (their voltages are known functions of time), so the
linear system only spans the genuinely unknown nodes — small and dense,
which keeps the inner solve a single ``numpy.linalg.solve`` call.

Backward Euler is chosen over trapezoidal integration deliberately: it
is L-stable, so the stiff RC ladders of extracted interconnect cannot
ring numerically, at the cost of a little extra numerical damping that
the step-size default keeps negligible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

import numpy as np

from repro.spice.elements import GROUND
from repro.spice.netlist import Circuit
from repro.spice.waveform import Waveform

#: Leak conductance from every node to ground; keeps the system
#: non-singular when a node is only capacitively connected.
GMIN = 1e-12

#: Newton voltage-update damping limit, in volts.
MAX_NEWTON_STEP = 0.3


class ConvergenceError(RuntimeError):
    """Raised when Newton iteration fails to converge."""


@dataclass
class TransientResult:
    """Simulation output: a time axis plus per-node voltage traces."""

    times: np.ndarray
    voltages: Dict[str, np.ndarray]

    def waveform(self, node: str) -> Waveform:
        """The voltage trace of ``node`` as a measurable waveform."""
        try:
            values = self.voltages[node]
        except KeyError:
            known = ", ".join(sorted(self.voltages))
            raise KeyError(f"no trace for node {node!r}; traced: {known}")
        return Waveform(self.times, values)

    def final_voltage(self, node: str) -> float:
        """Last sample of ``node``'s trace."""
        return float(self.voltages[node][-1])


class _Assembly:
    """Pre-assembled constant matrices and index bookkeeping."""

    def __init__(self, circuit: Circuit):
        self.circuit = circuit
        n = circuit.node_count
        self.n = n
        driven = circuit.driven_nodes()
        self.driven_indices = np.array(sorted(driven), dtype=int)
        self.driven_waveforms = [driven[i] for i in sorted(driven)]
        unknown_mask = np.ones(n, dtype=bool)
        unknown_mask[self.driven_indices] = False
        self.unknown_indices = np.nonzero(unknown_mask)[0]
        # Position of each node in the unknown vector (-1 if driven).
        self.position = -np.ones(n, dtype=int)
        self.position[self.unknown_indices] = np.arange(
            self.unknown_indices.size)

        self.G = np.zeros((n, n))
        self.C = np.zeros((n, n))
        for resistor in circuit.resistors:
            _stamp_two_terminal(self.G, resistor.node_a, resistor.node_b,
                                resistor.conductance)
        for capacitor in circuit.capacitors:
            _stamp_two_terminal(self.C, capacitor.node_a, capacitor.node_b,
                                capacitor.capacitance)
        for mosfet in circuit.mosfets:
            # Gate capacitance splits into gate-source and gate-drain
            # (the latter produces the Miller feedthrough that makes
            # intrinsic delay slew-dependent); drain diffusion
            # capacitance goes to AC ground.
            c_gate = mosfet.gate_capacitance
            _stamp_two_terminal(self.C, mosfet.gate, mosfet.source,
                                0.7 * c_gate)
            _stamp_two_terminal(self.C, mosfet.gate, mosfet.drain,
                                0.3 * c_gate)
            _stamp_two_terminal(self.C, mosfet.drain, GROUND,
                                mosfet.drain_capacitance)
        self.G[np.diag_indices(n)] += GMIN

    def driven_values(self, t: float) -> np.ndarray:
        return np.array([w(t) for w in self.driven_waveforms])

    def source_currents(self, t: float) -> np.ndarray:
        currents = np.zeros(self.n)
        for source in self.circuit.current_sources:
            if source.node != GROUND:
                currents[source.node] += source.current(t)
        return currents


def _stamp_two_terminal(matrix: np.ndarray, a: int, b: int,
                        value: float) -> None:
    """Symmetric two-terminal stamp; ground rows/columns are dropped."""
    if a != GROUND:
        matrix[a, a] += value
    if b != GROUND:
        matrix[b, b] += value
    if a != GROUND and b != GROUND:
        matrix[a, b] -= value
        matrix[b, a] -= value


def _device_contributions(circuit: Circuit, v_all: np.ndarray
                          ) -> "tuple[np.ndarray, np.ndarray]":
    """Nonlinear device currents and Jacobian at node voltages ``v_all``.

    Returns ``(i_dev, J_dev)`` over all nodes, ground rows dropped.
    """
    n = v_all.size
    i_dev = np.zeros(n)
    jacobian = np.zeros((n, n))

    def volt(node: int) -> float:
        return 0.0 if node == GROUND else v_all[node]

    for mosfet in circuit.mosfets:
        d, g, s = mosfet.drain, mosfet.gate, mosfet.source
        point = mosfet.evaluate(volt(g) - volt(s), volt(d) - volt(s))
        # Current ids leaves the drain node and enters the source node.
        if d != GROUND:
            i_dev[d] += point.ids
        if s != GROUND:
            i_dev[s] -= point.ids
        # d ids / d v_d = gds ; d ids / d v_g = gm ;
        # d ids / d v_s = -(gm + gds).
        entries = ((d, point.gds), (g, point.gm),
                   (s, -(point.gm + point.gds)))
        for column, derivative in entries:
            if column == GROUND:
                continue
            if d != GROUND:
                jacobian[d, column] += derivative
            if s != GROUND:
                jacobian[s, column] -= derivative
    return i_dev, jacobian


def _newton_solve(assembly: _Assembly, v_guess: np.ndarray,
                  linear_matrix: np.ndarray, rhs_constant: np.ndarray,
                  tol: float, max_iterations: int,
                  device_scale: float = 1.0) -> np.ndarray:
    """Solve ``linear_matrix @ v + s * i_dev(v) = rhs_constant`` for the
    unknown nodes (``s`` = ``device_scale``; 1 for backward Euler, 1/2
    for the trapezoidal rule), holding driven nodes fixed at their
    values inside ``v_guess``.  Returns the full node-voltage vector."""
    unknown = assembly.unknown_indices
    v_all = v_guess.copy()
    if unknown.size == 0:
        return v_all  # fully driven circuit: nothing to solve
    for _ in range(max_iterations):
        i_dev, j_dev = _device_contributions(assembly.circuit, v_all)
        residual = (linear_matrix @ v_all + device_scale * i_dev
                    - rhs_constant)[unknown]
        system = (linear_matrix
                  + device_scale * j_dev)[np.ix_(unknown, unknown)]
        try:
            delta = np.linalg.solve(system, -residual)
        except np.linalg.LinAlgError as error:
            raise ConvergenceError(f"singular Newton system: {error}")
        # Damping: limit the update magnitude for robustness on the
        # steep exponential subthreshold region.
        worst = np.max(np.abs(delta))
        if worst > MAX_NEWTON_STEP:
            delta *= MAX_NEWTON_STEP / worst
        v_all[unknown] += delta
        if worst < tol:
            return v_all
    raise ConvergenceError(
        f"Newton failed to converge within {max_iterations} iterations "
        f"(last update {worst:.3e} V)")


def simulate_transient(
    circuit: Circuit,
    stop_time: float,
    time_step: Optional[float] = None,
    record: Optional[Iterable[str]] = None,
    newton_tol: float = 1e-6,
    max_newton_iterations: int = 60,
    method: str = "be",
) -> TransientResult:
    """Run a transient simulation from a DC start.

    Parameters
    ----------
    circuit:
        The netlist to simulate.
    stop_time:
        Simulation end time in seconds.
    time_step:
        Fixed step in seconds; defaults to ``stop_time / 1500``.
    record:
        Node names to record; defaults to all nodes.
    method:
        ``"be"`` (backward Euler, default — L-stable, mildly damped) or
        ``"trap"`` (trapezoidal — second-order accurate, undamped; can
        ring on very stiff nets but converges faster with step
        refinement).
    """
    if stop_time <= 0:
        raise ValueError("stop_time must be positive")
    if time_step is None:
        time_step = stop_time / 1500.0
    if time_step <= 0 or time_step > stop_time:
        raise ValueError("time_step must lie in (0, stop_time]")
    if method not in ("be", "trap"):
        raise ValueError(f"unknown integration method {method!r}")

    assembly = _Assembly(circuit)
    recorded = (list(record) if record is not None
                else circuit.node_names())
    recorded_indices = [circuit.node(name) for name in recorded]

    steps = int(np.ceil(stop_time / time_step))
    times = np.linspace(0.0, steps * time_step, steps + 1)

    # Initial DC solution at t = 0 (capacitors open).
    v_all = np.zeros(assembly.n)
    v_all[assembly.driven_indices] = assembly.driven_values(0.0)
    v_all = _newton_solve(
        assembly, v_all, assembly.G, assembly.source_currents(0.0),
        newton_tol, max_iterations=200)

    traces = np.empty((len(recorded_indices), steps + 1))
    traces[:, 0] = [0.0 if i == GROUND else v_all[i]
                    for i in recorded_indices]

    c_over_dt = assembly.C / time_step
    if method == "be":
        linear_matrix = assembly.G + c_over_dt
        device_scale = 1.0
    else:  # trapezoidal
        linear_matrix = 0.5 * assembly.G + c_over_dt
        device_scale = 0.5

    for step_index in range(1, steps + 1):
        t = times[step_index]
        v_next = v_all.copy()
        v_next[assembly.driven_indices] = assembly.driven_values(t)
        if method == "be":
            rhs = assembly.source_currents(t) + c_over_dt @ v_all
        else:
            # Trapezoidal: the previous time point's full residual
            # contributes half of the right-hand side.
            i_dev_prev, _ = _device_contributions(assembly.circuit,
                                                  v_all)
            rhs = (0.5 * assembly.source_currents(t)
                   + 0.5 * assembly.source_currents(times[step_index - 1])
                   + c_over_dt @ v_all
                   - 0.5 * (assembly.G @ v_all)
                   - 0.5 * i_dev_prev)
        v_all = _newton_solve(assembly, v_next, linear_matrix, rhs,
                              newton_tol, max_newton_iterations,
                              device_scale=device_scale)
        traces[:, step_index] = [0.0 if i == GROUND else v_all[i]
                                 for i in recorded_indices]

    voltages = {name: traces[row] for row, name in enumerate(recorded)}
    return TransientResult(times=times, voltages=voltages)
