"""DC operating-point analysis.

Solves the circuit with capacitors open (steady state), which is what
leakage characterization needs: with the input pinned at a rail, the
only currents flowing are the off-device leakage paths.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.spice.elements import GROUND
from repro.spice.netlist import Circuit
from repro.spice.transient import _Assembly, _newton_solve


def dc_operating_point(circuit: Circuit, newton_tol: float = 1e-9,
                       max_iterations: int = 400) -> Dict[str, float]:
    """Node voltages (volts) of the DC solution, keyed by node name."""
    assembly = _Assembly(circuit)
    v_all = np.zeros(assembly.n)
    v_all[assembly.driven_indices] = assembly.driven_values(0.0)
    v_all = _newton_solve(assembly, v_all, assembly.G,
                          assembly.source_currents(0.0),
                          newton_tol, max_iterations)
    return {name: float(v_all[circuit.node(name)])
            for name in circuit.node_names()}


def supply_current(circuit: Circuit, supply_node: str,
                   newton_tol: float = 1e-9) -> float:
    """DC current (amperes) drawn from a supply-rail voltage source.

    Computed as the sum of element currents leaving the supply node at
    the DC solution: resistor currents plus MOSFET channel currents of
    devices whose source or drain sits on the rail.
    """
    solution = dc_operating_point(circuit, newton_tol=newton_tol)

    def volt(index: int) -> float:
        if index == GROUND:
            return 0.0
        return solution[circuit.node_name(index)]

    supply_index = circuit.node(supply_node)
    if supply_index == GROUND:
        raise ValueError("supply node cannot be ground")

    total = 0.0
    for resistor in circuit.resistors:
        if resistor.node_a == supply_index:
            total += (volt(resistor.node_a)
                      - volt(resistor.node_b)) * resistor.conductance
        elif resistor.node_b == supply_index:
            total += (volt(resistor.node_b)
                      - volt(resistor.node_a)) * resistor.conductance
    for mosfet in circuit.mosfets:
        point = mosfet.evaluate(
            volt(mosfet.gate) - volt(mosfet.source),
            volt(mosfet.drain) - volt(mosfet.source))
        # ids flows drain -> source; current leaves the supply when the
        # supply sits on the drain side (positive ids) or enters when on
        # the source side.
        if mosfet.drain == supply_index:
            total += point.ids
        elif mosfet.source == supply_index:
            total -= point.ids
    return total
