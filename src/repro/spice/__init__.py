"""Nonlinear circuit simulation substrate (the SPICE substitute).

The paper calibrates its predictive models against SPICE and validates
them against a sign-off timer.  Neither tool can ship with this
reproduction, so this package implements the minimum viable equivalent:

* :mod:`repro.spice.netlist` — circuit container with named nodes.
* :mod:`repro.spice.elements` — linear elements and sources.
* :mod:`repro.spice.mosfet` — Sakurai–Newton alpha-power MOSFET model.
* :mod:`repro.spice.transient` — MNA transient analysis (trapezoidal
  integration, Newton iteration for the nonlinear devices).
* :mod:`repro.spice.dc` — DC operating point (leakage characterization).
* :mod:`repro.spice.waveform` — waveform measurements (delay, slew).

The simulator is deliberately small but real: it solves the nonlinear
circuit equations by Newton iteration on the modified-nodal-analysis
system, exactly the structure of a production SPICE engine, with the
device physics reduced to the alpha-power law that digital-delay
literature uses for hand analysis.
"""

from repro.spice.netlist import Circuit
from repro.spice.elements import (
    Capacitor,
    CurrentSource,
    Resistor,
    VoltageSource,
    ramp,
    step,
)
from repro.spice.mosfet import Mosfet, MosfetOperatingPoint
from repro.spice.transient import TransientResult, simulate_transient
from repro.spice.dc import dc_operating_point
from repro.spice.waveform import Waveform, measure_delay, measure_slew

__all__ = [
    "Circuit",
    "Capacitor",
    "CurrentSource",
    "Resistor",
    "VoltageSource",
    "ramp",
    "step",
    "Mosfet",
    "MosfetOperatingPoint",
    "TransientResult",
    "simulate_transient",
    "dc_operating_point",
    "Waveform",
    "measure_delay",
    "measure_slew",
]
