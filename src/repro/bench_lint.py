"""Cold-vs-warm lint benchmark: the incremental engine's receipt.

``repro bench lint`` scans a tree twice against a fresh on-disk cache
— once cold (every file parses, indexes, and caches) and once warm
(every file replays from its cached payload) — and records both wall
times in the benchmark registry history, alongside the cache hit/miss
counters that prove what each pass actually did.  The run doubles as
the incremental-lint regression gate: a warm pass that is not at
least :data:`SPEEDUP_FLOOR` times faster than the cold one, or that
misses the cache at all, exits nonzero.

Findings are also compared across the two passes — a cache replay
that changes the lint verdict would be a correctness bug, not a perf
problem, and fails the bench the same way.
"""

from __future__ import annotations

import json
import tempfile
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

#: Bump when the BENCH_lint.json layout changes incompatibly.
BENCH_SCHEMA = 1

#: The warm pass must be at least this many times faster than cold.
SPEEDUP_FLOOR = 5.0

#: Default tree to lint (quick restricts to the analysis package —
#: enough files to time, few enough for a CI smoke lane).  Resolved
#: against the installed ``repro`` package, not the working
#: directory, so ``repro bench lint`` works from anywhere.
DEFAULT_SUBTREES = ("",)
QUICK_SUBTREES = ("analysis", "kernels")


def _default_targets(quick: bool) -> Tuple[Path, ...]:
    import repro

    package = Path(repro.__file__).resolve().parent
    subtrees = QUICK_SUBTREES if quick else DEFAULT_SUBTREES
    return tuple(package / sub if sub else package for sub in subtrees)


def _display(path: Path) -> str:
    try:
        return str(path.relative_to(Path.cwd()))
    except ValueError:
        return str(path)


def _timed_scan(paths, cache_dir):
    from repro.analysis import scan_paths
    from repro.runtime.metrics import METRICS

    before_hit = METRICS.counters.get("lint.cache.hit", 0)
    before_miss = METRICS.counters.get("lint.cache.miss", 0)
    started = time.perf_counter()
    scan = scan_paths(paths, cache_dir=cache_dir)
    wall = time.perf_counter() - started
    hits = METRICS.counters.get("lint.cache.hit", 0) - before_hit
    misses = METRICS.counters.get("lint.cache.miss", 0) - before_miss
    return scan, wall, hits, misses


def run_lint_bench(quick: bool = False,
                   paths: Optional[Tuple[str, ...]] = None,
                   output: str = "BENCH_lint.json",
                   history: Optional[str] = None
                   ) -> Tuple[int, Dict[str, Any]]:
    """Run the cold/warm pair, write ``output``, return (status, report)."""
    from repro import bench_registry
    from repro.bench_registry import BenchSample
    from repro.runtime.manifest import run_environment, utc_timestamp

    if paths is None:
        targets = list(_default_targets(quick))
    else:
        targets = [Path(entry) for entry in paths]
    shown = [_display(target) for target in targets]

    with tempfile.TemporaryDirectory(prefix="repro-lint-bench-"
                                     ) as scratch:
        cache_dir = Path(scratch)
        cold, cold_s, _, cold_misses = _timed_scan(targets, cache_dir)
        warm, warm_s, warm_hits, warm_misses = _timed_scan(targets,
                                                           cache_dir)

    speedup = cold_s / warm_s if warm_s > 0 else float("inf")
    replay_ok = [f.to_json() for f in warm.findings] \
        == [f.to_json() for f in cold.findings]
    fully_warm = warm_misses == 0 and warm_hits == cold_misses
    passed = replay_ok and fully_warm and speedup >= SPEEDUP_FLOOR

    formatted: List[str] = [
        f"lint bench over {', '.join(shown)} "
        f"({cold.files_scanned} files scanned)",
        f"  cold: {cold_s:.3f} s ({cold_misses} cache misses)",
        f"  warm: {warm_s:.3f} s ({warm_hits} cache hits, "
        f"{warm_misses} misses)",
        f"  speedup: {speedup:.1f}x (floor {SPEEDUP_FLOOR:.0f}x)  "
        f"replay {'identical' if replay_ok else 'DIVERGED'}",
    ]
    report: Dict[str, Any] = {
        "schema": BENCH_SCHEMA,
        "generated_at": utc_timestamp(),
        "quick": quick,
        "env": run_environment(),
        "paths": shown,
        "files_scanned": cold.files_scanned,
        "cold_wall_s": cold_s,
        "warm_wall_s": warm_s,
        "speedup": speedup,
        "cache": {"cold_misses": cold_misses,
                  "warm_hits": warm_hits,
                  "warm_misses": warm_misses},
        "replay_identical": replay_ok,
        "passed": passed,
        "formatted": formatted,
    }
    with open(output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    record = bench_registry.build_record(
        "lint", node="-", quick=quick,
        config={"paths": shown, "quick": quick,
                "speedup_floor": SPEEDUP_FLOOR},
        samples=[
            BenchSample(name="lint.cold.wall", value=cold_s,
                        n=cold.files_scanned),
            BenchSample(name="lint.warm.wall", value=warm_s,
                        n=cold.files_scanned),
        ])
    report["history_path"] = str(
        bench_registry.append_record(record, history=history))
    return (0 if passed else 1), report
