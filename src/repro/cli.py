"""Command-line interface.

Installed as the ``repro`` console script::

    repro nodes                         # list technology nodes
    repro calibrate 65nm                # Table I coefficients for a node
    repro link 90nm 5 --weight 0.5      # optimize one link's buffering
    repro accuracy 90nm --lengths 1 5   # mini Table II
    repro synth dvopd 65nm              # one Table III cell
    repro table1 | table2 | table3      # full paper experiments
    repro staggering | runtime | leakage-area
    repro report trace.jsonl            # summarize a recorded trace
    repro lint src tests                # project-specific AST lint
    repro bench --quick                 # scalar-vs-kernel benchmarks
    repro bench yield --quick           # tail-yield estimator bench
    repro bench lut --quick             # LUT-vs-closed-form gate
    repro luts build 90nm --output benchmarks/luts/90nm.json
                                        # grid the calibrated model
    repro luts check 90nm               # drift-tracked recalibration
    repro mc 90nm --estimator importance --samples 200
                                        # variance-reduced Monte Carlo
    repro serve --port 8787             # interconnect-model service
    repro bench serve --quick           # serving latency + bit gate

Every subcommand prints the same artifacts the benchmark suite saves.

Every subcommand also accepts the shared runtime flags:

    --workers N     run parallel sweeps on N worker processes
                    (results are bit-identical to --workers 1)
    --no-cache      bypass the persistent disk cache entirely
    --max-retries N rebuild a crashed worker pool up to N times before
                    finishing the sweep serially (results identical)
    --stats         print a wall-time / cache-hit footer afterwards
                    (histogram metrics add p50/p95/p99 rows)
    --trace FILE    record a hierarchical span trace (JSONL) of the
                    run — including spans from worker processes — and
                    write a provenance manifest.json next to it
    --profile MODE  span-attributed profiling: 'time' prints a
                    self/total table per span path, 'memory' annotates
                    tracemalloc deltas onto spans, 'all' does both
    --metrics FILE  export the metrics registry (counters, timers,
                    histograms) in OpenMetrics text format
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.units import mm, ps, to_mw, to_ps


def _cmd_nodes(_args: argparse.Namespace) -> int:
    from repro.tech import available_nodes, get_technology
    print(f"{'node':<6} {'vdd':>5} {'clock':>9} {'global wire':>22}")
    for name in available_nodes():
        tech = get_technology(name)
        layer = tech.global_layer
        print(f"{name:<6} {tech.vdd:5.2f} "
              f"{tech.clock_frequency / 1e9:7.2f}GHz "
              f"{layer.width * 1e6:6.3f}um x {layer.thickness * 1e6:.3f}um")
    return 0


def _cmd_calibrate(args: argparse.Namespace) -> int:
    from repro.characterization import RepeaterKind
    from repro.models.calibration import (
        OutputSlewForm,
        describe_coefficients,
        load_calibration,
    )
    from repro.tech import get_technology
    tech = get_technology(args.node)
    calibration = load_calibration(
        tech, RepeaterKind(args.kind), OutputSlewForm(args.slew_form))
    print(describe_coefficients(calibration))
    return 0


def _cmd_link(args: argparse.Namespace) -> int:
    from repro.buffering import compare_staggering, optimize_buffering
    from repro.experiments.suite import ModelSuite
    suite = ModelSuite.for_node(args.node)
    length = mm(args.length_mm)
    solution = optimize_buffering(suite.proposed, length,
                                  delay_weight=args.weight)
    estimate = solution.estimate
    print(f"{args.length_mm:g} mm link @ {args.node} "
          f"(delay weight {args.weight:g}):")
    print(f"  {solution.num_repeaters} repeaters of size "
          f"x{solution.repeater_size:.1f}")
    print(f"  delay   {to_ps(estimate.delay):9.1f} ps")
    print(f"  power   {to_mw(estimate.total_power):9.3f} mW "
          f"(dynamic {to_mw(estimate.dynamic_power):.3f} + leakage "
          f"{to_mw(estimate.leakage_power):.3f})")
    print(f"  area    {estimate.total_area * 1e12:9.1f} um^2")
    if args.staggered:
        comparison = compare_staggering(suite.proposed, length)
        print(f"  staggered: {comparison.power_saving * 100:.1f}% power "
              f"saved at {comparison.delay_penalty * 100:+.2f}% delay")
    return 0


def _cmd_accuracy(args: argparse.Namespace) -> int:
    from repro.experiments import table2
    from repro.tech import DesignStyle
    lengths = tuple(mm(value) for value in args.lengths)
    result = table2.run(nodes=(args.node,), lengths=lengths,
                        styles=(DesignStyle(args.style),))
    print(result.format())
    return 0


def _cmd_synth(args: argparse.Namespace) -> int:
    from repro.experiments import table3
    from repro.noc.testcases import dual_vopd, vproc
    factory = vproc if args.design.lower() == "vproc" else dual_vopd
    case = table3.run_case(args.design.upper(), factory, args.node)
    from repro.noc.evaluation import NocReport
    print(NocReport.header())
    print(case.original_self.row())
    print(case.original_accurate.row())
    print(case.proposed_self.row())
    print(f"dynamic power underestimated "
          f"{case.dynamic_power_ratio:.2f}x by the original model")
    return 0


def _cmd_table1(_args: argparse.Namespace) -> int:
    from repro.experiments import table1
    print(table1.run().format())
    return 0


def _cmd_table2(_args: argparse.Namespace) -> int:
    from repro.experiments import table2
    print(table2.run().format())
    return 0


def _cmd_table3(_args: argparse.Namespace) -> int:
    from repro.experiments import table3
    print(table3.run().format())
    return 0


def _cmd_staggering(_args: argparse.Namespace) -> int:
    from repro.experiments import staggering
    print(staggering.run().format())
    return 0


def _cmd_runtime(_args: argparse.Namespace) -> int:
    from repro.experiments import runtime
    print(runtime.run().format())
    return 0


def _cmd_leakage_area(args: argparse.Namespace) -> int:
    from repro.experiments import leakage_area
    print(leakage_area.run(args.node).format())
    return 0


def _cmd_scaling(args: argparse.Namespace) -> int:
    from repro.experiments import scaling
    print(scaling.run(length=mm(args.length_mm)).format())
    return 0


def _cmd_corners(args: argparse.Namespace) -> int:
    from repro.experiments import corners
    print(corners.run(node=args.node,
                      length=mm(args.length_mm)).format())
    return 0


def _cmd_mesh(args: argparse.Namespace) -> int:
    from repro.experiments.suite import ModelSuite
    from repro.noc import build_mesh, evaluate_topology, synthesize
    from repro.noc.evaluation import NocReport
    from repro.noc.testcases import dual_vopd, vproc
    suite = ModelSuite.for_node(args.node)
    factory = vproc if args.design.lower() == "vproc" else dual_vopd
    spec = factory(suite.tech)
    custom = synthesize(spec, suite.proposed, suite.tech)
    mesh = build_mesh(spec)
    print(NocReport.header())
    print(evaluate_topology(custom, suite.proposed, suite.tech,
                            label="custom").row())
    print(evaluate_topology(mesh, suite.proposed, suite.tech,
                            label="mesh").row())
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.runtime.profile import write_flamegraph
    from repro.runtime.trace import (
        export_chrome_trace,
        read_trace,
        summarize_events,
    )
    try:
        events = read_trace(args.trace_file)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    summary = summarize_events(events)
    print(summary.format())
    if args.chrome:
        export_chrome_trace(events, args.chrome)
        print(f"chrome trace written to {args.chrome} "
              f"(open in chrome://tracing or ui.perfetto.dev)")
    if args.flamegraph:
        lines = write_flamegraph(events, args.flamegraph)
        print(f"flamegraph written to {args.flamegraph} "
              f"({lines} collapsed stacks; render with flamegraph.pl "
              f"or speedscope)")
    return 0 if summary.well_formed else 1


def _cmd_lint(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from repro.analysis import (prune_baseline, run_lint,
                                write_baseline)

    paths = [Path(entry)
             for entry in (args.paths or ["src", "tests", "scripts"])]
    rules = None
    if args.rules is not None:
        rules = [name.strip() for name in args.rules.split(",")
                 if name.strip()]
    # The lint fixtures are deliberate violations; keep them out of
    # every run unless a path names them directly.
    exclude = ("tests/analysis/fixtures",) + tuple(args.exclude or ())
    baseline_path = Path(args.baseline)
    skip_baseline = args.write_baseline or args.prune_baseline
    try:
        result = run_lint(paths, rules=rules, exclude=exclude,
                          baseline_path=(None if skip_baseline
                                         else baseline_path),
                          graph_path=(Path(args.graph)
                                      if args.graph else None))
    except (FileNotFoundError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.graph:
        print(f"call graph written to {args.graph}")
    if args.report:
        with open(args.report, "w", encoding="utf-8") as handle:
            json.dump(result.to_json(), handle, indent=2,
                      sort_keys=True)
            handle.write("\n")
    if args.write_baseline:
        write_baseline(baseline_path, result.all_findings)
        grandfathered = sum(
            1 for finding in result.all_findings
            if finding.rule != "syntax")
        print(f"baseline written to {baseline_path} "
              f"({grandfathered} findings grandfathered)")
        return 0
    if args.prune_baseline:
        if not baseline_path.exists():
            print(f"error: no baseline at {baseline_path}",
                  file=sys.stderr)
            return 2
        kept, pruned = prune_baseline(baseline_path,
                                      result.all_findings)
        print(f"baseline pruned: {pruned} stale occurrence"
              f"{'s' if pruned != 1 else ''} removed, "
              f"{kept} entr{'ies' if kept != 1 else 'y'} kept")
        return 0
    if args.format == "json":
        print(json.dumps(result.to_json(), indent=2, sort_keys=True))
    else:
        print(result.format_text())
    return 0 if result.clean else 1


def _cmd_luts(args: argparse.Namespace) -> int:
    """``repro luts build`` / ``repro luts check``."""
    from repro.experiments.suite import ModelSuite
    from repro.luts.artifact import (
        load_artifact,
        load_artifact_file,
        save_artifact_file,
        store_artifact,
    )
    from repro.luts.build import build_artifact
    from repro.luts.check import check_drift
    from repro.luts.grid import COARSE_GRID, DEFAULT_GRID
    from repro.runtime.manifest import record_block

    suite = ModelSuite.for_node(args.node)
    model = suite.proposed
    spec = COARSE_GRID if args.grid == "coarse" else DEFAULT_GRID

    if args.action == "build":
        artifact = build_artifact(model, args.node, spec)
        store_artifact(artifact, model)
        valid = artifact.tables["valid"]
        print(f"built LUT artifact for {args.node} "
              f"({args.grid} grid, {spec.points} points, "
              f"{100.0 * float(valid.mean()):.1f}% servable)")
        print(f"  interp error {artifact.measured_rel_error:.2e} vs "
              f"contract {spec.max_rel_error:.2e}")
        print(f"  content hash {artifact.content_hash}")
        if args.output:
            path = save_artifact_file(artifact, args.output)
            print(f"  exported to {path}")
        return 0

    if args.artifact:
        artifact = load_artifact_file(args.artifact)
        origin = args.artifact
    else:
        artifact = load_artifact(args.node, model, spec)
        origin = "LUT cache"
    if artifact is None:
        print(f"error: no usable artifact in {origin} — run "
              f"'repro luts build' first", file=sys.stderr)
        return 2
    report = check_drift(model, artifact, threshold=args.threshold)
    print(report.format())
    record_block("lut_drift", report.manifest_block())
    return 0 if report.within_threshold else 1


def _cmd_bench(args: argparse.Namespace) -> int:
    if args.suite == "diff":
        return _cmd_bench_diff(args)
    if args.suite == "lut":
        from repro.bench_lut import run_lut_bench
        output = args.output or "BENCH_lut.json"
        status, report = run_lut_bench(node=args.node,
                                       quick=args.quick,
                                       samples=args.samples,
                                       output=output, reps=args.reps,
                                       history=args.history)
        for line in report["formatted"]:
            print(line)
        print(f"report written to {output}")
        print(f"history record appended to {report['history_path']}")
        if status != 0:
            print("error: LUT speedup fell below the floor, the "
                  "interpolation error broke its contract, or "
                  "lookups were not worker-reproducible",
                  file=sys.stderr)
        return status
    if args.suite == "serve":
        from repro.bench_serve import run_serve_bench
        output = args.output or "BENCH_serve.json"
        status, report = run_serve_bench(node=args.node,
                                         quick=args.quick,
                                         clients=args.clients,
                                         requests=args.requests,
                                         seed=args.seed,
                                         output=output,
                                         history=args.history)
        for line in report["formatted"]:
            print(line)
        print(f"report written to {output}")
        print(f"history record appended to {report['history_path']}")
        if status != 0:
            print("error: served answers diverged from the direct "
                  "in-process call, coalescing never engaged, or "
                  "requests were dropped", file=sys.stderr)
        return status
    if args.suite == "lint":
        from repro.bench_lint import run_lint_bench
        output = args.output or "BENCH_lint.json"
        status, report = run_lint_bench(quick=args.quick,
                                        output=output,
                                        history=args.history)
        for line in report["formatted"]:
            print(line)
        print(f"report written to {output}")
        print(f"history record appended to {report['history_path']}")
        if status != 0:
            print("error: warm lint pass missed the cache or fell "
                  "below the incremental speedup floor",
                  file=sys.stderr)
        return status
    if args.suite == "yield":
        from repro.bench_yield import run_yield_bench
        output = args.output or "BENCH_yield.json"
        status, report = run_yield_bench(node=args.node,
                                         quick=args.quick,
                                         samples=args.samples,
                                         output=output,
                                         history=args.history)
        error = ("importance sampling needed more golden evals than "
                 "plain MC for the reference tail")
    else:
        from repro.bench import run_bench
        output = args.output or "BENCH_kernels.json"
        status, report = run_bench(node=args.node, quick=args.quick,
                                   samples=args.samples,
                                   output=output, reps=args.reps,
                                   history=args.history)
        error = "kernel/scalar equivalence drifted beyond tolerance"
    for line in report["formatted"]:
        print(line)
    print(f"report written to {output}")
    print(f"history record appended to {report['history_path']}")
    if status != 0:
        print(f"error: {error}", file=sys.stderr)
    return status


def _cmd_bench_diff(args: argparse.Namespace) -> int:
    """``repro bench diff``: gate the latest history records.

    Diffs every requested suite's newest history record against the
    committed ``BENCH_*.json`` baseline (or, with ``--against
    previous``, the preceding same-environment record).  Exits 1 on
    any regression unless ``--warn-only``; exits 2 when nothing was
    comparable at all — a gate that silently gates nothing is a
    misconfiguration, not a pass.
    """
    from repro import bench_registry

    suites = ([args.diff_suite] if args.diff_suite
              else ["kernels", "yield", "lut"])
    reports = []
    for suite in suites:
        report = bench_registry.diff_latest(
            suite,
            history=args.history,
            baseline=args.baseline,
            against=args.against,
            rel_threshold=args.threshold / 100.0)
        if report is None:
            print(f"bench diff: no {suite} history record or no "
                  f"{args.against} reference to compare against")
            continue
        print(report.format())
        reports.append(report)
    if not reports:
        print("error: nothing to diff (run 'repro bench' first)",
              file=sys.stderr)
        return 2
    regressions = sum(len(report.regressions) for report in reports)
    if regressions and args.warn_only:
        print(f"warning: {regressions} regression(s) "
              f"(--warn-only, not failing)")
        return 0
    return 1 if regressions else 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """``repro serve``: the interconnect-model query service.

    Exit codes: 2 on configuration conflicts (a CLI flag and its
    ``REPRO_SERVE_*`` variable disagreeing, or an out-of-range knob),
    0 on a clean shutdown (Ctrl-C).
    """
    import asyncio

    from repro.serve import (
        ReproServer,
        ServeConfigError,
        resolve_config,
    )

    try:
        config = resolve_config(
            host=args.host, port=args.port, socket=args.socket,
            shards=args.shards, window_ms=args.window_ms,
            max_batch=args.max_batch, memo_entries=args.memo_entries)
    except ServeConfigError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    async def _run() -> None:
        server = ReproServer(config)
        await server.start()
        listening = []
        if config.host:
            listening.append(f"http://{config.host}:{server.port}")
        if config.socket:
            listening.append(f"unix:{config.socket}")
        print(f"repro serve: listening on {', '.join(listening)} "
              f"({config.shards} shard(s), "
              f"window {config.window_ms} ms, "
              f"max batch {config.max_batch})", flush=True)
        try:
            await server.serve_forever()
        finally:
            await server.close()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        print("repro serve: shutting down")
    return 0


def _cmd_mc(args: argparse.Namespace) -> int:
    from repro.experiments.suite import ModelSuite
    from repro.signoff.extraction import extract_buffered_line
    from repro.signoff.variation import monte_carlo_line_delay
    suite = ModelSuite.for_node(args.node)
    model = suite.proposed
    line = extract_buffered_line(suite.tech, model.config,
                                 mm(args.length_mm), args.repeaters,
                                 args.size)
    critical = ps(args.critical_ps) if args.critical_ps else None
    target = ps(args.target_ci) if args.target_ci else None
    result = monte_carlo_line_delay(
        line, ps(args.slew_ps), samples=args.samples, seed=args.seed,
        engine=args.engine, model=model, estimator=args.estimator,
        critical_delay=critical, target_ci=target, lanes=args.lanes,
        beta=args.beta, prepass_samples=args.prepass)
    print(f"{args.length_mm:g} mm line @ {args.node}, "
          f"{args.repeaters} repeaters of size x{args.size:g} "
          f"({args.engine} engine, {args.estimator} estimator):")
    print("  " + result.format())
    if result.report is not None:
        print("  " + result.report.format())
    threshold = critical
    if threshold is None and result.report is not None \
            and result.report.critical_delay:
        threshold = result.report.critical_delay
    if threshold is None:
        threshold = result.mean + 3.0 * result.sigma
    print("  " + result.tail_probability(threshold).format())
    return 0


def _cmd_widths(args: argparse.Namespace) -> int:
    from repro.experiments.suite import ModelSuite
    from repro.noc import explore_widths
    from repro.noc.testcases import dual_vopd, vproc
    suite = ModelSuite.for_node(args.node)
    factory = vproc if args.design.lower() == "vproc" else dual_vopd
    spec = factory(suite.tech)
    print(explore_widths(spec, suite.proposed, suite.tech,
                         widths=tuple(args.widths)).format())
    return 0


def _runtime_options() -> argparse.ArgumentParser:
    """The shared ``--workers/--no-cache/--stats`` option group.

    Declared as a parent parser so every subcommand accepts the flags
    in the natural position (``repro table2 --workers 2 --stats``).
    """
    parent = argparse.ArgumentParser(add_help=False)
    group = parent.add_argument_group("runtime")
    group.add_argument("--workers", type=int, default=None,
                       metavar="N",
                       help="worker processes for parallel sweeps "
                            "(default: REPRO_WORKERS or serial)")
    group.add_argument("--no-cache", action="store_true",
                       help="bypass the persistent disk cache")
    group.add_argument("--max-retries", type=int, default=None,
                       metavar="N",
                       help="pool rebuilds after a mid-run worker "
                            "crash before the remaining work re-runs "
                            "serially (default: REPRO_MAX_RETRIES "
                            "or 0; results are identical either way)")
    group.add_argument("--stats", action="store_true",
                       help="print runtime statistics afterwards")
    group.add_argument("--trace", default=None, metavar="FILE",
                       help="write a JSONL span trace of the run and "
                            "a manifest.json next to it")
    group.add_argument("--profile", default="off",
                       choices=["off", "time", "memory", "all"],
                       help="span-attributed profiling: print a "
                            "self/total time table per span path; "
                            "'memory'/'all' add tracemalloc net/peak "
                            "bytes per span")
    group.add_argument("--metrics", default=None, metavar="FILE",
                       help="export the metrics registry (counters, "
                            "timers, histograms) to FILE in "
                            "OpenMetrics text format")
    return parent


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=("Predictive buffered-interconnect models and "
                     "NoC synthesis (Carloni et al., TVLSI 2010 "
                     "reproduction)"),
    )
    runtime_options = [_runtime_options()]
    sub = parser.add_subparsers(dest="command", required=True)

    def add_parser(name: str, **kwargs) -> argparse.ArgumentParser:
        return sub.add_parser(name, parents=runtime_options, **kwargs)

    add_parser("nodes", help="list technology nodes") \
        .set_defaults(func=_cmd_nodes)

    calibrate = add_parser("calibrate",
                           help="show Table I coefficients")
    calibrate.add_argument("node")
    calibrate.add_argument("--kind", default="inverter",
                           choices=["inverter", "buffer"])
    calibrate.add_argument("--slew-form", default="paper",
                           choices=["paper", "size-scaled"])
    calibrate.set_defaults(func=_cmd_calibrate)

    link = add_parser("link", help="optimize one link's buffering")
    link.add_argument("node")
    link.add_argument("length_mm", type=float)
    link.add_argument("--weight", type=float, default=0.5,
                      help="delay weight in [0, 1] (1 = delay-optimal)")
    link.add_argument("--staggered", action="store_true",
                      help="also report the staggered-insertion trade")
    link.set_defaults(func=_cmd_link)

    accuracy = add_parser("accuracy",
                              help="model accuracy vs sign-off")
    accuracy.add_argument("node")
    accuracy.add_argument("--lengths", type=float, nargs="+",
                          default=[1.0, 5.0, 10.0], metavar="MM")
    accuracy.add_argument("--style", default="swss",
                          choices=["swss", "shielded",
                                   "double-spacing"])
    accuracy.set_defaults(func=_cmd_accuracy)

    synth = add_parser("synth", help="synthesize a NoC test case")
    synth.add_argument("design", choices=["vproc", "dvopd"])
    synth.add_argument("node")
    synth.set_defaults(func=_cmd_synth)

    for name, func, help_text in (
            ("table1", _cmd_table1, "full Table I"),
            ("table2", _cmd_table2, "full Table II (slow)"),
            ("table3", _cmd_table3, "full Table III (slow)"),
            ("staggering", _cmd_staggering, "staggering experiment"),
            ("runtime", _cmd_runtime, "runtime comparison")):
        add_parser(name, help=help_text).set_defaults(func=func)

    leak = add_parser("leakage-area",
                          help="leakage/area model accuracy")
    leak.add_argument("node", nargs="?", default="90nm")
    leak.set_defaults(func=_cmd_leakage_area)

    scaling_cmd = add_parser("scaling",
                                 help="six-node scaling study")
    scaling_cmd.add_argument("--length-mm", type=float, default=5.0)
    scaling_cmd.set_defaults(func=_cmd_scaling)

    corners_cmd = add_parser("corners",
                                 help="corner guard-band experiment")
    corners_cmd.add_argument("node", nargs="?", default="90nm")
    corners_cmd.add_argument("--length-mm", type=float, default=5.0)
    corners_cmd.set_defaults(func=_cmd_corners)

    mesh_cmd = add_parser("mesh",
                              help="custom vs 2D-mesh comparison")
    mesh_cmd.add_argument("design", choices=["vproc", "dvopd"])
    mesh_cmd.add_argument("node", nargs="?", default="90nm")
    mesh_cmd.set_defaults(func=_cmd_mesh)

    widths_cmd = add_parser("widths",
                                help="flit-width exploration")
    widths_cmd.add_argument("design", choices=["vproc", "dvopd"])
    widths_cmd.add_argument("node", nargs="?", default="90nm")
    widths_cmd.add_argument("--widths", type=int, nargs="+",
                            default=[32, 64, 128])
    widths_cmd.set_defaults(func=_cmd_widths)

    report_cmd = add_parser("report",
                            help="summarize a --trace JSONL file")
    report_cmd.add_argument("trace_file")
    report_cmd.add_argument("--chrome", default=None, metavar="OUT",
                            help="also export a chrome://tracing JSON")
    report_cmd.add_argument("--flamegraph", default=None,
                            metavar="OUT",
                            help="also export a Brendan-Gregg "
                                 "collapsed-stack file (self-time "
                                 "weights in microseconds)")
    report_cmd.set_defaults(func=_cmd_report)

    lint_cmd = add_parser(
        "lint", help="project-specific AST static analysis")
    lint_cmd.add_argument("paths", nargs="*", metavar="PATH",
                          help="files or directories to scan "
                               "(default: src tests scripts)")
    lint_cmd.add_argument("--format", default="text",
                          choices=["text", "json"],
                          help="findings output format")
    lint_cmd.add_argument("--rules", default=None, metavar="R1,R2",
                          help="comma-separated subset of rules")
    lint_cmd.add_argument("--exclude", action="append", default=None,
                          metavar="FRAGMENT",
                          help="skip files whose path contains "
                               "FRAGMENT (repeatable)")
    lint_cmd.add_argument("--baseline", default="lint-baseline.json",
                          metavar="FILE",
                          help="baseline file of grandfathered "
                               "findings (used when it exists)")
    lint_cmd.add_argument("--write-baseline", action="store_true",
                          help="rewrite the baseline from the "
                               "current findings and exit 0")
    lint_cmd.add_argument("--prune-baseline", action="store_true",
                          help="drop baseline entries the current "
                               "tree no longer produces, then exit 0")
    lint_cmd.add_argument("--report", default=None, metavar="FILE",
                          help="also write a JSON findings report "
                               "to FILE")
    lint_cmd.add_argument("--graph", default=None, metavar="OUT",
                          help="also serialize the project call "
                               "graph (JSON for a .json suffix, "
                               "Graphviz DOT otherwise)")
    lint_cmd.set_defaults(func=_cmd_lint)

    bench_cmd = add_parser(
        "bench", help="tracked benchmark suites")
    bench_cmd.add_argument("suite", nargs="?", default="kernels",
                           choices=["kernels", "yield", "lint",
                                    "lut", "serve", "diff"],
                           help="'kernels' times scalar vs vectorized "
                                "paths; 'yield' compares tail-yield "
                                "estimators on the golden engine; "
                                "'lint' times cold vs warm "
                                "incremental lint; 'lut' gates the "
                                "characterization LUT tier against "
                                "the closed form; 'serve' load-tests "
                                "the query service and gates served "
                                "answers on bit-equality; 'diff' "
                                "gates the latest history record "
                                "against a reference")
    bench_cmd.add_argument("--node", default="90nm",
                           help="technology node (default 90nm)")
    bench_cmd.add_argument("--quick", action="store_true",
                           help="smaller sample counts (CI smoke)")
    bench_cmd.add_argument("--samples", type=int, default=None,
                           metavar="N",
                           help="Monte-Carlo draws (kernels: default "
                                "10000, 2000 with --quick; yield: "
                                "256, 64 with --quick)")
    bench_cmd.add_argument("--reps", type=int, default=1, metavar="N",
                           help="timing repetitions per kernels-suite "
                                "comparison; >1 records standard "
                                "errors for the diff's noise gate")
    bench_cmd.add_argument("--output", default=None, metavar="FILE",
                           help="benchmark report destination "
                                "(default BENCH_<suite>.json)")
    bench_cmd.add_argument("--history", default=None, metavar="FILE",
                           help="registry history file (default "
                                "benchmarks/results/history.jsonl)")
    bench_cmd.add_argument("--clients", type=int, default=None,
                           metavar="N",
                           help="(serve) concurrent load-generator "
                                "clients (default 32, 8 with "
                                "--quick)")
    bench_cmd.add_argument("--requests", type=int, default=None,
                           metavar="N",
                           help="(serve) requests per client "
                                "(default 8, 4 with --quick)")
    bench_cmd.add_argument("--seed", type=int, default=2010,
                           help="(serve) load-generator root seed")
    bench_cmd.add_argument("--suite", dest="diff_suite", default=None,
                           choices=["kernels", "yield", "lut",
                                    "serve"],
                           help="(diff) restrict to one suite "
                                "(default: all)")
    bench_cmd.add_argument("--baseline", default=None, metavar="FILE",
                           help="(diff) reference report (default "
                                "BENCH_<suite>.json)")
    bench_cmd.add_argument("--against", default="baseline",
                           choices=["baseline", "previous"],
                           help="(diff) compare against the committed "
                                "baseline or the previous "
                                "same-environment history record")
    bench_cmd.add_argument("--threshold", type=float, default=20.0,
                           metavar="PCT",
                           help="(diff) regression threshold in "
                                "percent (default 20)")
    bench_cmd.add_argument("--warn-only", action="store_true",
                           help="(diff) report regressions but "
                                "exit 0")
    bench_cmd.set_defaults(func=_cmd_bench)

    luts_cmd = add_parser(
        "luts", help="characterization LUT tier: build and drift-check"
                     " precomputed tables")
    luts_cmd.add_argument("action", choices=["build", "check"],
                          help="'build' grids the calibrated model "
                               "into a versioned artifact; 'check' "
                               "rebuilds the coefficients and diffs "
                               "them against the stored artifact")
    luts_cmd.add_argument("node", nargs="?", default="90nm",
                          help="technology node (default 90nm)")
    luts_cmd.add_argument("--grid", default="default",
                          choices=["default", "coarse"],
                          help="grid spec: 'default' serves the "
                               "production contract, 'coarse' is the "
                               "fast CI/smoke variant")
    luts_cmd.add_argument("--output", default=None, metavar="FILE",
                          help="(build) also export the committable "
                               "standalone JSON artifact to FILE")
    luts_cmd.add_argument("--artifact", default=None, metavar="FILE",
                          help="(check) diff against this exported "
                               "artifact file instead of the LUT "
                               "cache slot")
    luts_cmd.add_argument("--threshold", type=float, default=1e-9,
                          metavar="REL",
                          help="(check) maximum relative drift before "
                               "the exit status turns nonzero "
                               "(default 1e-9 — the builder is "
                               "deterministic, so any drift signals "
                               "recalibration)")
    luts_cmd.set_defaults(func=_cmd_luts)

    mc_cmd = add_parser(
        "mc", help="Monte-Carlo line delay under process variation")
    mc_cmd.add_argument("node", nargs="?", default="90nm")
    mc_cmd.add_argument("--length-mm", type=float, default=2.0,
                        help="line length in millimeters")
    mc_cmd.add_argument("--repeaters", type=int, default=2,
                        help="repeater count")
    mc_cmd.add_argument("--size", type=float, default=24.0,
                        help="repeater size (multiple of minimum)")
    mc_cmd.add_argument("--slew-ps", type=float, default=100.0,
                        help="input slew in picoseconds")
    mc_cmd.add_argument("--samples", type=int, default=64,
                        metavar="N", help="Monte-Carlo draws")
    mc_cmd.add_argument("--seed", type=int, default=2010)
    mc_cmd.add_argument("--engine", default="kernel",
                        choices=["golden", "model", "kernel"])
    mc_cmd.add_argument("--estimator", default="plain",
                        choices=["plain", "importance",
                                 "importance-sn", "qmc",
                                 "control-variate"],
                        help="sampling strategy (see "
                             "docs/yield-estimation.md)")
    mc_cmd.add_argument("--critical-ps", type=float, default=None,
                        metavar="PS",
                        help="critical delay (ps) the tail estimate "
                             "and the importance shift target "
                             "(default: mean + 3 sigma)")
    mc_cmd.add_argument("--target-ci", type=float, default=None,
                        metavar="PS",
                        help="keep doubling draws until the 95%% CI "
                             "half-width on the mean is below PS "
                             "picoseconds")
    mc_cmd.add_argument("--lanes", type=int, default=8,
                        help="scrambled-Sobol lanes (qmc estimator)")
    mc_cmd.add_argument("--beta", type=float, default=None,
                        help="control-variate coefficient (default: "
                             "estimated online)")
    mc_cmd.add_argument("--prepass", type=int, default=4096,
                        metavar="N",
                        help="cheap kernel draws for the pre-pass of "
                             "the model-backed estimators")
    mc_cmd.set_defaults(func=_cmd_mc)

    serve_cmd = add_parser(
        "serve", help="serve link-design and Monte-Carlo queries over "
                      "HTTP / a Unix socket")
    serve_cmd.add_argument("--host", default=None,
                           help="TCP bind address (default "
                                "127.0.0.1; REPRO_SERVE_HOST)")
    serve_cmd.add_argument("--port", type=int, default=None,
                           help="TCP port, 0 = ephemeral (default "
                                "8787; REPRO_SERVE_PORT)")
    serve_cmd.add_argument("--socket", default=None, metavar="PATH",
                           help="also listen on a Unix socket "
                                "(REPRO_SERVE_SOCKET)")
    serve_cmd.add_argument("--shards", type=int, default=None,
                           metavar="N",
                           help="warm worker processes, 0 = compute "
                                "in-process (default 2; "
                                "REPRO_SERVE_SHARDS)")
    serve_cmd.add_argument("--window-ms", type=int, default=None,
                           metavar="MS",
                           help="batch-coalescing window (default 2; "
                                "REPRO_SERVE_WINDOW_MS)")
    serve_cmd.add_argument("--max-batch", type=int, default=None,
                           metavar="N",
                           help="flush a window early at N queries "
                                "(default 64; REPRO_SERVE_MAX_BATCH)")
    serve_cmd.add_argument("--memo-entries", type=int, default=None,
                           metavar="N",
                           help="per-context link-design LRU bound "
                                "(default 4096; "
                                "REPRO_SERVE_MEMO_ENTRIES)")
    serve_cmd.set_defaults(func=_cmd_serve)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    import time

    from repro import runtime as rt

    parser = build_parser()
    args = parser.parse_args(argv)
    # Each invocation starts from a clean runtime configuration so a
    # prior in-process call's flags cannot leak into this one.
    rt.reset_configuration()
    rt.configure(
        workers=args.workers,
        cache_enabled=False if args.no_cache else None,
        max_retries=args.max_retries,
    )
    sink = None
    trace_path = getattr(args, "trace", None)
    if trace_path:
        sink = rt.JsonlSink(trace_path)
        rt.TRACER.add_sink(sink)
    # Span-attributed profiling: collect the run's spans in memory and
    # (for 'memory'/'all') attach the tracemalloc profiler so every
    # span gets net/peak byte annotations at its boundaries.
    profile_mode = getattr(args, "profile", "off") or "off"
    profile_memory = profile_mode in ("memory", "all")
    collector = None
    if profile_mode != "off":
        collector = rt.SpanCollector()
        rt.TRACER.add_sink(collector)
        if profile_memory:
            import tracemalloc
            tracemalloc.start()
            rt.TRACER.set_profiler(rt.MemoryProfiler())
    started_at = rt.utc_timestamp()
    started = time.perf_counter()
    try:
        with rt.METRICS.timer("command"), \
                rt.span(f"repro.{args.command}"):
            status = args.func(args)
    finally:
        wall_seconds = time.perf_counter() - started
        if sink is not None:
            rt.TRACER.remove_sink(sink)
            sink.close()
        if collector is not None:
            rt.TRACER.remove_sink(collector)
            if profile_memory:
                import tracemalloc
                rt.TRACER.set_profiler(None)
                tracemalloc.stop()
        if trace_path:
            config = {key: value for key, value in vars(args).items()
                      if key not in ("func",)}
            manifest = rt.build_manifest(
                args.command, config,
                workers=rt.resolve_workers(),
                cache_enabled=rt.cache_enabled(),
                wall_seconds=wall_seconds,
                started_at=started_at,
                trace_file=str(trace_path),
            )
            rt.write_manifest(rt.manifest_path_for(trace_path),
                              manifest)
        if collector is not None:
            profile = rt.build_profile(collector.events)
            print(profile.format(memory=profile_memory))
        metrics_path = getattr(args, "metrics", None)
        if metrics_path:
            with open(metrics_path, "w", encoding="utf-8") as handle:
                handle.write(rt.METRICS.to_openmetrics())
        if args.stats:
            workers = rt.resolve_workers()
            print(rt.METRICS.format_footer(
                extra={"workers": workers}))
    return status


if __name__ == "__main__":
    sys.exit(main())
