"""Corner sensitivity and guard-band measurement.

The paper's introduction argues accurate early models "reduce design
guard band".  This experiment quantifies the guard band for a concrete
link: a buffered interconnect is designed once at the typical corner,
then its *actual* delay and leakage are measured (golden simulation —
no model in the loop) at the slow, typical and fast corners.  The
slow/typical delay ratio is the timing margin a designer must carry;
the fast/typical leakage ratio is the power margin.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.buffering.optimizer import optimize_buffering
from repro.characterization.cells import RepeaterCell, RepeaterKind
from repro.experiments.suite import ModelSuite
from repro.signoff.extraction import extract_buffered_line
from repro.signoff.golden import evaluate_buffered_line
from repro.tech.corners import ProcessCorner, apply_corner, guard_band
from repro.tech.design_styles import WireConfiguration
from repro.units import mm, ps, to_ps


@dataclass(frozen=True)
class CornerRow:
    corner: ProcessCorner
    vdd: float
    delay: float
    leakage_power: float    # of one repeater of the design's size


@dataclass(frozen=True)
class CornerResult:
    node: str
    length: float
    num_repeaters: int
    repeater_size: float
    rows: Dict[ProcessCorner, CornerRow]

    def delay_guard_band(self) -> float:
        return guard_band(self.rows[ProcessCorner.SLOW].delay,
                          self.rows[ProcessCorner.TYPICAL].delay)

    def leakage_ratio(self) -> float:
        return (self.rows[ProcessCorner.FAST].leakage_power
                / self.rows[ProcessCorner.TYPICAL].leakage_power)

    def format(self) -> str:
        lines = [
            f"Corner sensitivity ({self.node}, "
            f"{self.length * 1e3:.0f} mm link, "
            f"{self.num_repeaters} repeaters x{self.repeater_size:.0f})",
            f"{'corner':<8} {'vdd':>6} {'delay ps':>9} {'leak nW':>9}",
        ]
        for corner in (ProcessCorner.SLOW, ProcessCorner.TYPICAL,
                       ProcessCorner.FAST):
            row = self.rows[corner]
            lines.append(f"{corner.value:<8} {row.vdd:6.2f} "
                         f"{to_ps(row.delay):9.1f} "
                         f"{row.leakage_power * 1e9:9.1f}")
        lines.append("")
        lines.append(
            f"timing guard band (slow vs typical): "
            f"{self.delay_guard_band() * 100:+.1f}%")
        lines.append(
            f"leakage spread (fast vs typical): "
            f"{self.leakage_ratio():.2f}x")
        return "\n".join(lines)


def run(node: str = "90nm", length: float = mm(5)) -> CornerResult:
    """Design at typical, measure at every corner (golden simulation)."""
    suite = ModelSuite.for_node(node)
    solution = optimize_buffering(suite.proposed, length,
                                  delay_weight=0.5)
    count, size = solution.num_repeaters, solution.repeater_size

    rows: Dict[ProcessCorner, CornerRow] = {}
    for corner in ProcessCorner:
        cornered = apply_corner(suite.tech, corner)
        config = WireConfiguration.for_style(cornered.global_layer,
                                             suite.config.style)
        line = extract_buffered_line(cornered, config, length, count,
                                     size)
        golden = evaluate_buffered_line(line, ps(100))
        cell = RepeaterCell(tech=cornered, kind=RepeaterKind.INVERTER,
                            size=size)
        rows[corner] = CornerRow(
            corner=corner,
            vdd=cornered.vdd,
            delay=golden.total_delay,
            leakage_power=cell.leakage_power(),
        )
    return CornerResult(
        node=node,
        length=length,
        num_repeaters=count,
        repeater_size=size,
        rows=rows,
    )
