"""Experiment drivers: one module per paper table/figure.

Each module exposes a ``run(...)`` function returning a result object
with a ``format()`` method that prints the paper-style rows.  The
benchmark suite (``benchmarks/``) and the examples call these drivers;
EXPERIMENTS.md records the measured outcomes against the paper's.

=====================  =================================================
module                 reproduces
=====================  =================================================
``table1``             Table I — fitted model coefficients per node
``fig1``               Fig. 1 — intrinsic delay vs input slew and size
``table2``             Table II — delay-model accuracy vs sign-off
``table3``             Table III — model impact on NoC synthesis
``staggering``         Section III-D — staggered insertion trade-off
``runtime``            Section IV — model vs sign-off runtime ratio
``leakage_area``       Section IV — leakage/area model accuracy
=====================  =================================================
"""

from repro.experiments.suite import ModelSuite

__all__ = ["ModelSuite"]
