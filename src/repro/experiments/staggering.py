"""Section III-D: the staggered-insertion power/delay trade-off.

The paper: *"We note that, for these technologies, power can be
reduced by 20% at the cost of just above 2% degradation in delay."*
``run()`` sweeps line lengths per node and reports the measured
saving/penalty pairs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.buffering.staggering import StaggeringComparison, \
    compare_staggering
from repro.experiments.suite import ModelSuite
from repro.units import mm, to_mm

DEFAULT_NODES = ("90nm", "65nm", "45nm")
DEFAULT_LENGTHS = (mm(3), mm(5), mm(10))


@dataclass(frozen=True)
class StaggeringRow:
    node: str
    length: float
    comparison: StaggeringComparison


@dataclass(frozen=True)
class StaggeringResult:
    rows: Tuple[StaggeringRow, ...]

    def format(self) -> str:
        lines = [
            "Staggered repeater insertion (Section III-D)",
            f"{'node':<6} {'L mm':>5} {'power saving':>13} "
            f"{'delay penalty':>14}  normal(n,size)  staggered(n,size)",
        ]
        for row in self.rows:
            c = row.comparison
            lines.append(
                f"{row.node:<6} {to_mm(row.length):5.0f} "
                f"{c.power_saving * 100:12.1f}% "
                f"{c.delay_penalty * 100:+13.2f}%  "
                f"({c.normal.num_repeaters},{c.normal.repeater_size:5.1f})"
                f"        "
                f"({c.staggered.num_repeaters},"
                f"{c.staggered.repeater_size:5.1f})")
        lines.append("")
        lines.append(
            f"mean saving {self.mean_saving() * 100:.1f}% at mean penalty "
            f"{self.mean_penalty() * 100:+.2f}% "
            f"(paper: ~20% for just above 2%)")
        return "\n".join(lines)

    def mean_saving(self) -> float:
        return (sum(r.comparison.power_saving for r in self.rows)
                / len(self.rows))

    def mean_penalty(self) -> float:
        return (sum(r.comparison.delay_penalty for r in self.rows)
                / len(self.rows))


def run(
    nodes: Sequence[str] = DEFAULT_NODES,
    lengths: Sequence[float] = DEFAULT_LENGTHS,
    allowed_delay_penalty: float = 0.025,
) -> StaggeringResult:
    rows: List[StaggeringRow] = []
    for node in nodes:
        suite = ModelSuite.for_node(node)
        for length in lengths:
            comparison = compare_staggering(
                suite.proposed, length,
                allowed_delay_penalty=allowed_delay_penalty)
            rows.append(StaggeringRow(node=node, length=length,
                                      comparison=comparison))
    return StaggeringResult(rows=tuple(rows))
