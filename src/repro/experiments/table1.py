"""Table I: fitting coefficients of the predictive models per node.

The paper's Table I lists the fitted coefficients of the repeater
models for six technologies.  ``run()`` produces the same table from
our calibration pipeline, plus the fit-quality numbers that back the
functional-form claims (intrinsic delay quadratic in slew, drive
resistance inverse in size, ...).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.characterization.cells import RepeaterKind
from repro.models.calibration import (
    CalibratedTechnology,
    OutputSlewForm,
    describe_coefficients,
    load_calibration,
)
from repro.tech.nodes import available_nodes, get_technology

#: The six nodes of the paper's Table I.
DEFAULT_NODES = ("90nm", "65nm", "45nm", "32nm", "22nm", "16nm")


@dataclass(frozen=True)
class Table1Result:
    """Calibrations per node plus rendering."""

    kind: RepeaterKind
    slew_form: OutputSlewForm
    calibrations: Dict[str, CalibratedTechnology]

    def format(self) -> str:
        lines = [
            "Table I — fitting coefficients for the predictive models",
            f"(repeater kind: {self.kind.value}, slew form: "
            f"{self.slew_form.value})",
            "",
        ]
        for node, calibration in self.calibrations.items():
            lines.append(describe_coefficients(calibration))
            lines.append("")
        return "\n".join(lines)

    def fit_quality_summary(self) -> Dict[str, Dict[str, float]]:
        """Per-node R^2 of each regression (for assertions/reporting)."""
        summary: Dict[str, Dict[str, float]] = {}
        for node, calibration in self.calibrations.items():
            summary[node] = {
                "intrinsic_rise": calibration.rise.intrinsic_r2,
                "intrinsic_fall": calibration.fall.intrinsic_r2,
                "drive_rise": calibration.rise.drive_r2,
                "drive_fall": calibration.fall.drive_r2,
                "slew_rise": calibration.rise.slew_r2,
                "slew_fall": calibration.fall.slew_r2,
                "leakage": calibration.leakage_r2,
                "area": calibration.area_r2,
            }
        return summary


def run(
    nodes: Optional[Sequence[str]] = None,
    kind: RepeaterKind = RepeaterKind.INVERTER,
    slew_form: OutputSlewForm = OutputSlewForm.PAPER,
) -> Table1Result:
    """Calibrate (or load) the coefficient table for the given nodes."""
    if nodes is None:
        nodes = [n for n in DEFAULT_NODES if n in available_nodes()]
    calibrations = {
        node: load_calibration(get_technology(node), kind, slew_form)
        for node in nodes
    }
    return Table1Result(kind=kind, slew_form=slew_form,
                        calibrations=calibrations)
