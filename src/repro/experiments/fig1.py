"""Fig. 1: repeater intrinsic delay vs input slew and inverter size.

The figure supports two claims (Section III-A):

1. intrinsic delay is *practically independent of repeater size*, and
2. it depends *nearly quadratically on the input slew*.

``run()`` re-derives the figure's data: for each (size, slew) pair it
measures delay at several loads, extrapolates the zero-load intercept
(the intrinsic delay), and reports the spread across sizes plus the
quadratic-fit quality across slews.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.characterization.cells import RepeaterCell, RepeaterKind
from repro.characterization.harness import _measure_point
from repro.models.regression import linear_fit, quadratic_fit
from repro.tech.nodes import get_technology
from repro.units import ps, to_ps

DEFAULT_SIZES = (4.0, 8.0, 16.0, 32.0, 64.0)
DEFAULT_SLEWS = (ps(20), ps(60), ps(120), ps(240), ps(400))
DEFAULT_LOAD_FACTORS = (2.0, 6.0, 12.0)


@dataclass(frozen=True)
class Fig1Result:
    """Intrinsic-delay surface: ``intrinsic[size][slew]`` (seconds)."""

    node: str
    rising_output: bool
    sizes: Tuple[float, ...]
    slews: Tuple[float, ...]
    intrinsic: Dict[float, Dict[float, float]]
    quadratic_r2: float
    size_spread: float   # max relative deviation across sizes

    def format(self) -> str:
        lines = [
            f"Fig. 1 — intrinsic delay vs input slew and size "
            f"({self.node}, {'rise' if self.rising_output else 'fall'})",
            "slew(ps)  " + "".join(f"x{size:<9g}" for size in self.sizes),
        ]
        for slew in self.slews:
            row = f"{to_ps(slew):7.0f}   "
            row += "".join(f"{to_ps(self.intrinsic[size][slew]):<10.2f}"
                           for size in self.sizes)
            lines.append(row)
        lines.append("")
        lines.append(f"quadratic fit across slews: R^2 = "
                     f"{self.quadratic_r2:.4f}")
        lines.append(f"max relative spread across sizes: "
                     f"{self.size_spread * 100:.1f}%")
        return "\n".join(lines)


def run(
    node: str = "90nm",
    sizes: Sequence[float] = DEFAULT_SIZES,
    slews: Sequence[float] = DEFAULT_SLEWS,
    load_factors: Sequence[float] = DEFAULT_LOAD_FACTORS,
    rising_output: bool = True,
) -> Fig1Result:
    """Measure the intrinsic-delay surface for one node."""
    tech = get_technology(node)
    intrinsic: Dict[float, Dict[float, float]] = {}
    for size in sizes:
        cell = RepeaterCell(tech=tech, kind=RepeaterKind.INVERTER,
                            size=size)
        c_in = cell.input_capacitance()
        loads = [factor * c_in for factor in load_factors]
        intrinsic[size] = {}
        for slew in slews:
            delays = [
                _measure_point(cell, slew, load, rising_output)[0]
                for load in loads
            ]
            fit = linear_fit(loads, delays)
            intrinsic[size][slew] = fit[0]

    # Claim 2: quadratic in slew (pool all sizes).
    xs: List[float] = []
    ys: List[float] = []
    for size in sizes:
        for slew in slews:
            xs.append(slew)
            ys.append(intrinsic[size][slew])
    quad = quadratic_fit(xs, ys)

    # Claim 1: independent of size — relative spread at each slew.
    spreads = []
    for slew in slews:
        values = [intrinsic[size][slew] for size in sizes]
        mean = sum(values) / len(values)
        spreads.append((max(values) - min(values)) / mean)
    return Fig1Result(
        node=node,
        rising_output=rising_output,
        sizes=tuple(sizes),
        slews=tuple(slews),
        intrinsic=intrinsic,
        quadratic_r2=quad.r_squared,
        size_spread=max(spreads),
    )
