"""Section IV: model-vs-sign-off runtime comparison.

The paper measures the closed-form model to be at least 2.1x faster
than PrimeTime's delay calculation, averaged over 50 trials.  Here the
golden flow is our own nonlinear simulation, so the gap is much larger;
the experiment records both absolute times and the ratio.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.buffering.optimizer import optimize_buffering
from repro.experiments.suite import ModelSuite
from repro.signoff.extraction import extract_buffered_line
from repro.signoff.golden import evaluate_buffered_line
from repro.units import mm, ps


@dataclass(frozen=True)
class RuntimeResult:
    node: str
    length: float
    trials: int
    model_seconds: float      # mean per evaluation
    golden_seconds: float     # mean per evaluation

    @property
    def speedup(self) -> float:
        if self.model_seconds <= 0:
            return float("inf")
        return self.golden_seconds / self.model_seconds

    def format(self) -> str:
        return (
            f"Runtime ({self.node}, {self.length * 1e3:.0f} mm line, "
            f"{self.trials} trials): proposed model "
            f"{self.model_seconds * 1e6:.1f} us/eval, golden "
            f"{self.golden_seconds * 1e3:.1f} ms/eval -> "
            f"{self.speedup:.0f}x faster "
            f"(paper: >= 2.1x vs PrimeTime)")


def run(node: str = "90nm", length: float = mm(5),
        trials: int = 50, golden_trials: int = 3) -> RuntimeResult:
    """Time the proposed model against the golden evaluation."""
    suite = ModelSuite.for_node(node)
    input_slew = ps(300)
    buffering = optimize_buffering(suite.proposed, length,
                                   delay_weight=0.5,
                                   input_slew=input_slew)
    count, size = buffering.num_repeaters, buffering.repeater_size

    started = time.perf_counter()
    for _ in range(trials):
        suite.proposed.evaluate(length, count, size, input_slew)
    model_seconds = (time.perf_counter() - started) / trials

    line = extract_buffered_line(suite.tech, suite.config, length,
                                 count, size)
    started = time.perf_counter()
    for _ in range(golden_trials):
        evaluate_buffered_line(line, input_slew, use_periodicity=False)
    golden_seconds = (time.perf_counter() - started) / golden_trials

    return RuntimeResult(
        node=node,
        length=length,
        trials=trials,
        model_seconds=model_seconds,
        golden_seconds=golden_seconds,
    )
