"""Technology-scaling study across all six nodes.

The paper's Table I spans 90 -> 16 nm precisely because global-wire
behaviour degrades with scaling while devices improve.  This experiment
makes that trend explicit: a fixed-length global link is optimally
buffered at every node and its delay-per-millimeter, repeater density,
energy-per-bit and feasible length at the node's clock are tabulated.

Expected shapes (the scaling story the paper's introduction tells):

* wire resistance per mm explodes (scattering + barrier + geometry);
* optimally buffered delay per mm *worsens* despite faster devices;
* repeater density rises;
* the feasible link length at the node's own clock collapses, which is
  exactly why NoCs (and accurate feasibility models) become necessary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.buffering.optimizer import (
    max_feasible_length,
    optimize_buffering,
)
from repro.experiments.suite import ModelSuite
from repro.runtime import parallel_map, span
from repro.units import mm, to_mm, to_ps

DEFAULT_NODES = ("90nm", "65nm", "45nm", "32nm", "22nm", "16nm")


@dataclass(frozen=True)
class ScalingRow:
    node: str
    clock_ghz: float
    wire_resistance_per_mm: float       # ohm/mm
    delay_per_mm: float                 # s/mm, optimally buffered
    repeaters_per_mm: float
    energy_per_bit_per_mm: float        # J/(bit*mm)
    feasible_length: float              # m at the node's clock


@dataclass(frozen=True)
class ScalingResult:
    length: float
    rows: Tuple[ScalingRow, ...]

    def format(self) -> str:
        lines = [
            f"Technology scaling of a {to_mm(self.length):.0f} mm "
            f"global link (delay-optimal buffering per node)",
            f"{'node':<6} {'clk GHz':>8} {'R ohm/mm':>9} "
            f"{'ps/mm':>7} {'rep/mm':>7} {'fJ/bit/mm':>10} "
            f"{'feasible mm':>12}",
        ]
        for row in self.rows:
            lines.append(
                f"{row.node:<6} {row.clock_ghz:8.2f} "
                f"{row.wire_resistance_per_mm:9.0f} "
                f"{to_ps(row.delay_per_mm):7.1f} "
                f"{row.repeaters_per_mm:7.2f} "
                f"{row.energy_per_bit_per_mm * 1e15:10.2f} "
                f"{to_mm(row.feasible_length):12.2f}")
        return "\n".join(lines)

    def resistance_trend(self) -> List[float]:
        return [row.wire_resistance_per_mm for row in self.rows]

    def feasible_trend(self) -> List[float]:
        return [row.feasible_length for row in self.rows]

    def delay_trend(self) -> List[float]:
        return [row.delay_per_mm for row in self.rows]


def _node_row(task: "Tuple[str, float]") -> ScalingRow:
    """One node's scaling row (pool-safe: the suite is built here, so
    only the node name and length cross the process boundary)."""
    node, length = task
    with span("scaling.node", node=node, length_mm=to_mm(length)):
        return _node_row_inner(node, length)


def _node_row_inner(node: str, length: float) -> ScalingRow:
    suite = ModelSuite.for_node(node)
    # Deep-nanometer nodes want repeaters every ~100 um; widen the
    # count search accordingly.
    solution = optimize_buffering(suite.proposed, length,
                                  delay_weight=0.8,
                                  max_repeaters=int(length / 0.1e-3))
    estimate = solution.estimate
    # Energy per bit: one transition's worth of switched charge.
    switched_energy = (estimate.dynamic_power
                       / (suite.proposed.activity_factor
                          * suite.tech.clock_frequency))
    feasible = max_feasible_length(suite.proposed,
                                   suite.tech.clock_period())
    return ScalingRow(
        node=node,
        clock_ghz=suite.tech.clock_frequency / 1e9,
        wire_resistance_per_mm=(suite.config.resistance_per_meter()
                                * 1e-3),
        delay_per_mm=estimate.delay / to_mm(length),
        repeaters_per_mm=estimate.num_repeaters / to_mm(length),
        energy_per_bit_per_mm=switched_energy / to_mm(length),
        feasible_length=feasible,
    )


def run(nodes: Sequence[str] = DEFAULT_NODES,
        length: float = mm(5),
        workers: Optional[int] = None) -> ScalingResult:
    """Evaluate the scaling table for the given nodes (one per task)."""
    with span("experiment.scaling", nodes=len(nodes)):
        rows: List[ScalingRow] = parallel_map(
            _node_row, [(node, length) for node in nodes],
            workers=workers, chunk=1, label="scaling.node")
    return ScalingResult(length=length, rows=tuple(rows))
