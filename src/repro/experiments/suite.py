"""Shared experiment context: a technology with all three models."""

from __future__ import annotations

from dataclasses import dataclass

from repro.characterization.cells import RepeaterKind
from repro.models.baselines.bakoglu import BakogluModel
from repro.models.baselines.pamunuwa import PamunuwaModel
from repro.models.calibration import (
    CalibratedTechnology,
    OutputSlewForm,
    load_calibration,
)
from repro.models.interconnect import BufferedInterconnectModel
from repro.tech.design_styles import DesignStyle, WireConfiguration
from repro.tech.nodes import get_technology
from repro.tech.parameters import TechnologyParameters


@dataclass(frozen=True)
class ModelSuite:
    """One technology node with the proposed model and both baselines.

    The baselines deliberately look at the *optimistic* wire view
    (bulk resistivity, no barrier) internally; the proposed model and
    the golden evaluator share the calibrated view in ``config``.
    """

    tech: TechnologyParameters
    calibration: CalibratedTechnology
    config: WireConfiguration
    proposed: BufferedInterconnectModel
    bakoglu: BakogluModel
    pamunuwa: PamunuwaModel

    @classmethod
    def for_node(
        cls,
        node: str,
        style: DesignStyle = DesignStyle.SWSS,
        kind: RepeaterKind = RepeaterKind.INVERTER,
        slew_form: OutputSlewForm = OutputSlewForm.PAPER,
        activity_factor: float = 0.15,
    ) -> "ModelSuite":
        """Build the suite for a built-in node (calibration cached)."""
        tech = get_technology(node)
        calibration = load_calibration(tech, kind, slew_form)
        config = WireConfiguration.for_style(tech.global_layer, style)
        return cls(
            tech=tech,
            calibration=calibration,
            config=config,
            proposed=BufferedInterconnectModel(
                tech, calibration, config,
                activity_factor=activity_factor),
            bakoglu=BakogluModel(tech, config,
                                 activity_factor=activity_factor),
            pamunuwa=PamunuwaModel(tech, config,
                                   activity_factor=activity_factor),
        )

    def models(self) -> "dict[str, object]":
        """Name -> model mapping in the order Table II reports them."""
        return {
            "bakoglu": self.bakoglu,
            "pamunuwa": self.pamunuwa,
            "proposed": self.proposed,
        }
