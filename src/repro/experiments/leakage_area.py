"""Section IV: accuracy of the leakage-power and area models.

The paper checks its linear leakage model against the Liberty cell
leakage values (max error < 11%) and its area model against the
Liberty cell areas (max error < 8%) for the INVD4..INVD20 drive
strengths.  ``run()`` repeats the check: the models are calibrated on
the standard size grid and then evaluated on the paper's size set,
comparing against freshly characterized reference values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

from repro.characterization.cells import RepeaterCell, RepeaterKind
from repro.characterization.harness import _measure_leakage
from repro.experiments.suite import ModelSuite
from repro.models.area import regression_repeater_area
from repro.models.power import repeater_leakage_power

#: The INVD4..INVD20 drive strengths of the paper's check.
DEFAULT_SIZES = (4.0, 6.0, 8.0, 12.0, 16.0, 20.0)


@dataclass(frozen=True)
class LeakageAreaRow:
    size: float
    leakage_reference: float
    leakage_model: float
    area_reference: float
    area_model: float

    @property
    def leakage_error(self) -> float:
        return (self.leakage_model - self.leakage_reference) \
            / self.leakage_reference

    @property
    def area_error(self) -> float:
        return (self.area_model - self.area_reference) \
            / self.area_reference


@dataclass(frozen=True)
class LeakageAreaResult:
    node: str
    rows: Tuple[LeakageAreaRow, ...]

    def max_leakage_error(self) -> float:
        return max(abs(row.leakage_error) for row in self.rows)

    def max_area_error(self) -> float:
        return max(abs(row.area_error) for row in self.rows)

    def format(self) -> str:
        lines = [
            f"Leakage/area model accuracy ({self.node})",
            f"{'size':>5} {'leak ref nW':>12} {'leak mod nW':>12} "
            f"{'err %':>7}  {'area ref um2':>13} {'area mod um2':>13} "
            f"{'err %':>7}",
        ]
        for row in self.rows:
            lines.append(
                f"{row.size:5.0f} {row.leakage_reference * 1e9:12.1f} "
                f"{row.leakage_model * 1e9:12.1f} "
                f"{row.leakage_error * 100:+7.1f}  "
                f"{row.area_reference * 1e12:13.3f} "
                f"{row.area_model * 1e12:13.3f} "
                f"{row.area_error * 100:+7.1f}")
        lines.append("")
        lines.append(
            f"max |leakage error| = {self.max_leakage_error() * 100:.1f}% "
            f"(paper < 11%); max |area error| = "
            f"{self.max_area_error() * 100:.1f}% (paper < 8%)")
        return "\n".join(lines)


def run(node: str = "90nm",
        sizes: Sequence[float] = DEFAULT_SIZES) -> LeakageAreaResult:
    """Compare model leakage/area against characterized references."""
    suite = ModelSuite.for_node(node)
    rows = []
    for size in sizes:
        cell = RepeaterCell(tech=suite.tech, kind=RepeaterKind.INVERTER,
                            size=size)
        leak_high, leak_low = _measure_leakage(cell)
        leakage_reference = 0.5 * (leak_high + leak_low)
        area_reference = cell.layout_area()

        leakage_model = repeater_leakage_power(
            suite.tech, suite.calibration, size)
        wn, _ = suite.tech.inverter_widths(size)
        area_model = regression_repeater_area(suite.calibration, wn)

        rows.append(LeakageAreaRow(
            size=size,
            leakage_reference=leakage_reference,
            leakage_model=leakage_model,
            area_reference=area_reference,
            area_model=area_model,
        ))
    return LeakageAreaResult(node=node, rows=tuple(rows))
