"""Table III: interconnect-model impact on NoC synthesis.

For each test case (VPROC, DVOPD) and node (90/65/45 nm at their
respective clocks), the NoC is synthesized twice: with the *original*
model (Bakoglu + optimistic wire view — the model COSI-OCC originally
used) and with the *proposed* model.  Three evaluations are reported:

* ``original/self``     — the original architecture as the original
  model costs it (what the original flow believes);
* ``original/accurate`` — the same architecture re-costed by the
  proposed model (what it would really cost; infeasible links show up
  here);
* ``proposed/self``     — the architecture the proposed model
  synthesizes and its cost.

The paper's headline observations this reproduces: dynamic power up to
~3x higher than the original model estimates, different hop counts,
large area differences, and original-model topologies containing wires
too long to be implementable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.experiments.suite import ModelSuite
from repro.noc.evaluation import NocReport, evaluate_topology
from repro.noc.spec import CommunicationSpec
from repro.noc.synthesis import SynthesisConfig, synthesize
from repro.noc.testcases import dual_vopd, vproc
from repro.noc.topology import NocTopology
from repro.runtime import parallel_map, span

DEFAULT_NODES = ("90nm", "65nm", "45nm")

SpecFactory = Callable[..., CommunicationSpec]

DEFAULT_DESIGNS: "Tuple[Tuple[str, SpecFactory], ...]" = (
    ("VPROC", vproc),
    ("DVOPD", dual_vopd),
)


@dataclass(frozen=True)
class Table3Case:
    """One (design, node) cell of Table III."""

    design: str
    node: str
    original_self: NocReport
    original_accurate: NocReport
    proposed_self: NocReport

    @property
    def dynamic_power_ratio(self) -> float:
        """Accurate / original estimate of the original architecture."""
        if self.original_self.dynamic_power <= 0:
            return float("inf")
        return (self.original_accurate.dynamic_power
                / self.original_self.dynamic_power)


@dataclass(frozen=True)
class Table3Result:
    cases: Tuple[Table3Case, ...]

    def format(self) -> str:
        lines = ["Table III — model impact on NoC synthesis", ""]
        for case in self.cases:
            lines.append(f"=== {case.design} @ {case.node} ===")
            lines.append(NocReport.header())
            lines.append(case.original_self.row())
            lines.append(case.original_accurate.row())
            lines.append(case.proposed_self.row())
            lines.append(
                f"  dynamic power underestimated "
                f"{case.dynamic_power_ratio:.2f}x by the original model; "
                f"{case.original_accurate.infeasible_links} original "
                f"link(s) infeasible under the accurate model")
            lines.append("")
        return "\n".join(lines)

    def max_dynamic_ratio(self) -> float:
        return max(case.dynamic_power_ratio for case in self.cases)

    def total_infeasible_links(self) -> int:
        return sum(case.original_accurate.infeasible_links
                   for case in self.cases)


def _synthesis_task(task: "Tuple[SpecFactory, str, str, "
                    "Optional[SynthesisConfig]]") -> NocTopology:
    """Synthesize one (spec, model) combination (pool-safe: the spec
    factory is a module-level function and the model is named by its
    :class:`ModelSuite` attribute, so workers rebuild both)."""
    factory, node, model_name, config = task
    suite = ModelSuite.for_node(node)
    spec = factory(suite.tech)
    return synthesize(spec, getattr(suite, model_name), suite.tech,
                      config=config)


def run_case(design_name: str, spec_factory: SpecFactory, node: str,
             config: Optional[SynthesisConfig] = None,
             workers: Optional[int] = None) -> Table3Case:
    """Synthesize and evaluate one (design, node) cell.

    The two syntheses (original model, proposed model) are independent
    problems and run as separate tasks — ``repro synth --workers 2``
    overlaps them.
    """
    with span("table3.case", design=design_name, node=node):
        tasks = [(spec_factory, node, model_name, config)
                 for model_name in ("bakoglu", "proposed")]
        original_topology, proposed_topology = parallel_map(
            _synthesis_task, tasks, workers=workers, chunk=1,
            label="table3.synthesis")

        suite = ModelSuite.for_node(node)
        return Table3Case(
            design=design_name,
            node=node,
            original_self=evaluate_topology(
                original_topology, suite.bakoglu, suite.tech,
                label="original/self"),
            original_accurate=evaluate_topology(
                original_topology, suite.proposed, suite.tech,
                label="original/accurate"),
            proposed_self=evaluate_topology(
                proposed_topology, suite.proposed, suite.tech,
                label="proposed/self"),
        )


def _case_task(task: "Tuple[str, SpecFactory, str, "
               "Optional[SynthesisConfig]]") -> Table3Case:
    """One (design, node) cell (pool-safe: the spec factories are
    module-level functions, so they pickle by reference).  Inside a
    pool worker the nested per-case ``parallel_map`` runs serially."""
    design_name, factory, node, config = task
    return run_case(design_name, factory, node, config)


def run(
    nodes: Sequence[str] = DEFAULT_NODES,
    designs: Sequence[Tuple[str, SpecFactory]] = DEFAULT_DESIGNS,
    config: Optional[SynthesisConfig] = None,
    workers: Optional[int] = None,
) -> Table3Result:
    """Full Table III sweep (designs x nodes), one cell per task."""
    tasks = [(design_name, factory, node, config)
             for design_name, factory in designs
             for node in nodes]
    with span("experiment.table3", cells=len(tasks)):
        cases: List[Table3Case] = parallel_map(_case_task, tasks,
                                               workers=workers, chunk=1,
                                               label="table3.case")
    return Table3Result(cases=tuple(cases))


def run_quick(node: str = "90nm") -> Table3Result:
    """Reduced sweep for tests: DVOPD on one node."""
    return run(nodes=(node,), designs=(("DVOPD", dual_vopd),))
