"""Sensitivity of system-level decisions to model accuracy.

The paper's introduction observes that "there has not been any study of
the sensitivity of system-level decisions to the accuracy of these
models" — and then demonstrates only the two endpoints (classic vs
proposed).  This experiment fills in the curve: the calibrated model's
drive-resistance coefficients are scaled by controlled factors
(optimistic < 1 < pessimistic), the NoC is re-synthesized with each
perturbed model, and every resulting architecture is costed under the
*unperturbed* accurate model.

The reported "regret" — how much more the perturbed-model architecture
truly costs than the accurate-model architecture — is the price of
model error at the system level.  Feasibility violations (links the
perturbed model accepted that the accurate model rejects) are counted
separately: those are not merely expensive but unbuildable.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Set, Tuple

from repro.experiments.suite import ModelSuite
from repro.models.calibration import (
    CalibratedTechnology,
    DirectionCoefficients,
)
from repro.models.interconnect import BufferedInterconnectModel
from repro.noc.evaluation import NocReport, evaluate_topology
from repro.noc.spec import CommunicationSpec
from repro.noc.synthesis import synthesize
from repro.noc.testcases import dual_vopd
from repro.noc.topology import NocTopology

DEFAULT_SCALES = (0.6, 0.8, 1.0, 1.25, 1.6)


def perturb_calibration(calibration: CalibratedTechnology,
                        drive_scale: float) -> CalibratedTechnology:
    """Scale the drive-resistance coefficients of both directions.

    ``drive_scale < 1`` models an optimistic characterization (wires
    look easier to drive than they are), ``> 1`` a pessimistic one.
    """
    if drive_scale <= 0:
        raise ValueError("drive_scale must be positive")

    def scale_direction(direction: DirectionCoefficients
                        ) -> DirectionCoefficients:
        b0, b1 = direction.drive
        return dataclasses.replace(
            direction, drive=(b0 * drive_scale, b1 * drive_scale))

    return dataclasses.replace(
        calibration,
        rise=scale_direction(calibration.rise),
        fall=scale_direction(calibration.fall),
    )


from repro.tech.design_styles import WireConfiguration


@dataclass(frozen=True)
class PerturbedWireConfiguration(WireConfiguration):
    """A wire view whose parasitics are off by a controlled factor.

    ``parasitic_scale < 1`` is an optimistic model (Bakoglu-direction
    error: wires look lighter and less resistive than reality);
    ``> 1`` is pessimistic.  The physical wires are unchanged — only
    what the *model* believes about them.
    """

    parasitic_scale: float = 1.0

    def resistance_per_meter(self) -> float:
        return (super().resistance_per_meter()
                * self.parasitic_scale)

    def ground_capacitance_per_meter(self) -> float:
        return (super().ground_capacitance_per_meter()
                * self.parasitic_scale)

    def coupling_capacitance_per_meter(self) -> float:
        return (super().coupling_capacitance_per_meter()
                * self.parasitic_scale)


def perturb_wire_view(config: WireConfiguration,
                      parasitic_scale: float
                      ) -> PerturbedWireConfiguration:
    """The same wires as ``config`` seen through an erroneous model."""
    if parasitic_scale <= 0:
        raise ValueError("parasitic_scale must be positive")
    return PerturbedWireConfiguration(
        layer=config.layer,
        style=config.style,
        delay_miller=config.delay_miller,
        power_miller=config.power_miller,
        include_scattering=config.include_scattering,
        include_barrier=config.include_barrier,
        parasitic_scale=parasitic_scale,
    )


def _link_set(topology: NocTopology) -> Set[Tuple[str, str]]:
    return {(a[1], b[1]) for a, b, _ in topology.links()
            if a[0] == "router" and b[0] == "router"}


@dataclass(frozen=True)
class SensitivityRow:
    """Outcome of synthesizing with one perturbed model."""

    scale: float
    believed: NocReport      # the perturbed model's own cost estimate
    actual: NocReport        # the accurate model's cost of the result
    topology_similarity: float   # Jaccard vs the accurate architecture
    regret: float            # actual power / accurate-optimal power - 1

    @property
    def estimation_error(self) -> float:
        """How far off the perturbed model believed its own cost was."""
        return self.believed.total_power / self.actual.total_power - 1.0


@dataclass(frozen=True)
class SensitivityResult:
    node: str
    design: str
    rows: Tuple[SensitivityRow, ...]

    def format(self) -> str:
        lines = [
            f"Decision sensitivity to model error "
            f"({self.design} @ {self.node}; wire parasitics scaled)",
            f"{'scale':>6} {'believed mW':>12} {'actual mW':>10} "
            f"{'est.err %':>10} {'regret %':>9} {'topo sim':>9} "
            f"{'infeas':>7}",
        ]
        for row in self.rows:
            lines.append(
                f"{row.scale:6.2f} "
                f"{row.believed.total_power * 1e3:12.2f} "
                f"{row.actual.total_power * 1e3:10.2f} "
                f"{row.estimation_error * 100:+10.1f} "
                f"{row.regret * 100:+9.2f} "
                f"{row.topology_similarity:9.2f} "
                f"{row.actual.infeasible_links:7d}")
        lines.append("")
        lines.append(
            "scale < 1 = optimistic wire model (Bakoglu direction); "
            "est.err = the model's self-estimate vs true cost; regret = "
            "true cost of its architecture vs the accurate-model "
            "architecture; infeas = accepted links that are "
            "unbuildable.")
        return "\n".join(lines)

    def max_regret(self) -> float:
        return max(row.regret for row in self.rows)

    def worst_estimation_error(self) -> float:
        return max(abs(row.estimation_error) for row in self.rows)

    def baseline_row(self) -> SensitivityRow:
        for row in self.rows:
            if row.scale == 1.0:
                return row
        raise ValueError("no unit-scale row in the sweep")


def run(
    node: str = "90nm",
    spec_factory: Callable[..., CommunicationSpec] = dual_vopd,
    scales: Sequence[float] = DEFAULT_SCALES,
    design_name: Optional[str] = None,
) -> SensitivityResult:
    """Sweep wire-parasitic scales and measure decision regret."""
    suite = ModelSuite.for_node(node)
    spec = spec_factory(suite.tech)
    if design_name is None:
        design_name = spec.name

    accurate_topology = synthesize(spec, suite.proposed, suite.tech)
    accurate_links = _link_set(accurate_topology)
    accurate_report = evaluate_topology(
        accurate_topology, suite.proposed, suite.tech, label="accurate")

    rows: List[SensitivityRow] = []
    for scale in scales:
        perturbed_model = BufferedInterconnectModel(
            tech=suite.tech,
            calibration=suite.calibration,
            config=perturb_wire_view(suite.config, scale),
            activity_factor=suite.proposed.activity_factor,
        )
        topology = synthesize(spec, perturbed_model, suite.tech)
        believed = evaluate_topology(topology, perturbed_model,
                                     suite.tech,
                                     label=f"scale {scale:g}/self")
        actual = evaluate_topology(topology, suite.proposed, suite.tech,
                                   label=f"scale {scale:g}/actual")
        links = _link_set(topology)
        union = accurate_links | links
        similarity = (len(accurate_links & links) / len(union)
                      if union else 1.0)
        regret = (actual.total_power / accurate_report.total_power
                  - 1.0)
        rows.append(SensitivityRow(
            scale=scale,
            believed=believed,
            actual=actual,
            topology_similarity=similarity,
            regret=regret,
        ))
    return SensitivityResult(node=node, design=design_name,
                             rows=tuple(rows))
