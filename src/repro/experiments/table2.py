"""Table II: delay-model accuracy against the golden sign-off flow.

The experiment: buffered interconnects of 1/3/5/10/15 mm, for three
technology nodes and two design styles, are laid out (uniform repeater
placement), extracted, and evaluated by the golden nonlinear-simulation
flow with a 300 ps input transition.  Each closed-form model then
predicts the same line's delay; the table reports the relative errors
of the Bakoglu model (B), the Pamunuwa model (P), and the proposed
model (Prop.), plus the golden delay (PT column) and the model/golden
runtime ratio (RT).

The buffering of each line is chosen once (with the proposed model's
weighted optimizer) and shared by every evaluation, mirroring the
paper's fixed physical testbench.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.buffering.optimizer import optimize_buffering
from repro.experiments.suite import ModelSuite
from repro.runtime import METRICS, parallel_map, span
from repro.signoff.extraction import extract_buffered_line
from repro.signoff.golden import evaluate_buffered_line
from repro.tech.design_styles import DesignStyle
from repro.units import mm, ps, to_mm, to_ps

DEFAULT_NODES = ("90nm", "65nm", "45nm")
DEFAULT_LENGTHS = (mm(1), mm(3), mm(5), mm(10), mm(15))
DEFAULT_STYLES = (DesignStyle.SWSS, DesignStyle.SHIELDED)

#: Input transition time at the head of the line (the paper uses 300 ps).
INPUT_SLEW = ps(300)

#: Delay-weight used to pick each line's practical buffering.
BUFFERING_WEIGHT = 0.5


@dataclass(frozen=True)
class Table2Row:
    """One line of Table II."""

    node: str
    style: DesignStyle
    length: float
    num_repeaters: int
    repeater_size: float
    golden_delay: float
    errors: Dict[str, float]      # model name -> relative error
    model_runtime: float          # s, proposed model evaluation
    golden_runtime: float         # s

    @property
    def runtime_ratio(self) -> float:
        """Golden runtime / model runtime (>= 1 means model faster)."""
        if self.model_runtime <= 0:
            return float("inf")
        return self.golden_runtime / self.model_runtime


@dataclass(frozen=True)
class Table2Result:
    rows: Tuple[Table2Row, ...]

    def format(self) -> str:
        lines = [
            "Table II — delay-model accuracy vs golden sign-off "
            f"(input slew {to_ps(INPUT_SLEW):.0f} ps)",
            f"{'node':<6} {'DS':<9} {'L mm':>5} {'n':>3} {'size':>6} "
            f"{'PT ps':>9} {'B %':>8} {'P %':>8} {'Prop %':>8} "
            f"{'RT':>9}",
        ]
        for row in self.rows:
            lines.append(
                f"{row.node:<6} {row.style.value:<9} "
                f"{to_mm(row.length):5.0f} {row.num_repeaters:3d} "
                f"{row.repeater_size:6.1f} "
                f"{to_ps(row.golden_delay):9.1f} "
                f"{row.errors['bakoglu'] * 100:+8.1f} "
                f"{row.errors['pamunuwa'] * 100:+8.1f} "
                f"{row.errors['proposed'] * 100:+8.1f} "
                f"{row.runtime_ratio:9.0f}x")
        lines.append("")
        lines.append(self.summary())
        return "\n".join(lines)

    def error_range(self, model: str) -> Tuple[float, float]:
        errors = [row.errors[model] for row in self.rows]
        return min(errors), max(errors)

    def max_abs_error(self, model: str) -> float:
        return max(abs(row.errors[model]) for row in self.rows)

    def summary(self) -> str:
        parts = []
        for model in ("bakoglu", "pamunuwa", "proposed"):
            low, high = self.error_range(model)
            parts.append(f"{model}: {low * 100:+.1f}%..{high * 100:+.1f}%")
        ratios = [row.runtime_ratio for row in self.rows]
        parts.append(f"model speedup over golden: >= {min(ratios):.0f}x")
        return "; ".join(parts)


def _evaluate_one(suite: ModelSuite, style: DesignStyle,
                  length: float) -> Table2Row:
    # The paper's testbenches are *uniformly buffered* lines: even the
    # shortest has a driving repeater plus at least one inserted
    # repeater, so the optimizer search starts at two.
    buffering = optimize_buffering(
        suite.proposed, length, delay_weight=BUFFERING_WEIGHT,
        input_slew=INPUT_SLEW,
        counts=range(2, max(3, int(length / 0.25e-3))))
    count = buffering.num_repeaters
    size = buffering.repeater_size

    line = extract_buffered_line(suite.tech, suite.config, length,
                                 count, size)
    golden = evaluate_buffered_line(line, INPUT_SLEW)

    errors: Dict[str, float] = {}
    model_runtime = 0.0
    for name, model in suite.models().items():
        started = time.perf_counter()
        estimate = model.evaluate(length, count, size, INPUT_SLEW)
        elapsed = time.perf_counter() - started
        errors[name] = (estimate.delay - golden.total_delay) \
            / golden.total_delay
        if name == "proposed":
            model_runtime = elapsed

    return Table2Row(
        node=suite.tech.name,
        style=style,
        length=length,
        num_repeaters=count,
        repeater_size=size,
        golden_delay=golden.total_delay,
        errors=errors,
        model_runtime=model_runtime,
        golden_runtime=golden.runtime_seconds,
    )


def _evaluate_task(task: "Tuple[str, str, float]") -> Table2Row:
    """One (node, style, length) cell (pool-safe: the suite is rebuilt
    from its node name, which is cheap thanks to the calibration
    caches, so workers receive only primitives)."""
    node, style_value, length = task
    style = DesignStyle(style_value)
    with span("table2.cell", node=node, style=style_value,
              length_mm=to_mm(length)):
        METRICS.count("table2.cells")
        suite = ModelSuite.for_node(node, style=style)
        return _evaluate_one(suite, style, length)


def run(
    nodes: Sequence[str] = DEFAULT_NODES,
    lengths: Sequence[float] = DEFAULT_LENGTHS,
    styles: Sequence[DesignStyle] = DEFAULT_STYLES,
    workers: Optional[int] = None,
) -> Table2Result:
    """Full Table II sweep (nodes x styles x lengths)."""
    tasks = [(node, style.value, length)
             for node in nodes
             for style in styles
             for length in lengths]
    with span("experiment.table2", cells=len(tasks)):
        rows: List[Table2Row] = parallel_map(_evaluate_task, tasks,
                                             workers=workers,
                                             label="table2.cell")
    return Table2Result(rows=tuple(rows))


def run_quick(node: str = "90nm") -> Table2Result:
    """Reduced sweep for tests: one node, one style, three lengths."""
    return run(nodes=(node,), lengths=(mm(1), mm(5), mm(10)),
               styles=(DesignStyle.SWSS,))
