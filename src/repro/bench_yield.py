"""Tail-yield estimator benchmark: golden evaluations vs CI width.

``repro bench yield`` runs every Monte-Carlo estimator against one
reference line on the *golden* engine, all targeting the same 3-sigma
tail-yield question — P(delay > mean + 3 sigma) — and writes
``BENCH_yield.json`` recording, per estimator, the golden evaluations
spent, the tail probability with its 95% CI, and the **plain-MC
equivalent**: how many plain binomial draws would be needed to match
the achieved CI width (``p * (1 - p) / se**2``).  The headline ratio

    ``saving = plain_equivalent_evals / golden_evals``

is the paper-motivating claim in one number: the importance-sampling
estimator resolves the same tail CI from >= 10x fewer golden
simulations.  The bench exits non-zero if importance sampling does
worse than plain Monte Carlo (saving < 1) — the CI regression gate.

The threshold is calibrated from the plain run itself (its mean +
3 sigma), so every estimator answers the identical question; the plain
run at bench-sized N typically scores *zero* tail hits — which is the
point: the tail is exactly where plain MC stops working.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

#: Bump when the BENCH_yield.json layout changes incompatibly.
YIELD_SCHEMA = 1

#: Golden Monte-Carlo draws per estimator (full / --quick).
DEFAULT_DRAWS = 256
QUICK_DRAWS = 64

#: Reference line: a short 90 nm global link (2 mm, 2 repeaters of
#: size 24) — small enough that golden draws stay affordable, long
#: enough that per-stage variation averages realistically.
REFERENCE_LENGTH_MM = 2.0
REFERENCE_REPEATERS = 2
REFERENCE_SIZE = 24.0
REFERENCE_SLEW_PS = 100.0

#: Estimators benchmarked, in report order.
BENCH_ESTIMATORS = ("plain", "importance", "importance-sn", "qmc",
                    "control-variate")

#: Cheap kernel draws spent by the model-backed estimators' pre-pass.
PREPASS_SAMPLES = 4096

#: The estimator saving (plain-equivalent / golden evals) the CI gate
#: requires of importance sampling.
MIN_IMPORTANCE_SAVING = 1.0


@dataclass(frozen=True)
class YieldBenchEntry:
    """One estimator's tail-yield benchmark record."""

    estimator: str
    draws: int
    golden_evals: int
    model_evals: int
    wall_s: float
    mean_ps: float
    se_ps: float
    ess: float
    tail_probability: float
    tail_se: float
    tail_ci_width: float
    plain_equivalent_evals: float

    @property
    def saving(self) -> float:
        """Plain-MC draws replaced per golden draw spent
        (dimensionless ratio)."""
        if self.golden_evals <= 0:
            return 0.0
        return self.plain_equivalent_evals / self.golden_evals

    def to_payload(self) -> Dict[str, Any]:
        return {
            "estimator": self.estimator,
            "draws": self.draws,
            "golden_evals": self.golden_evals,
            "model_evals": self.model_evals,
            "wall_s": self.wall_s,
            "mean_ps": self.mean_ps,
            "se_ps": self.se_ps,
            "ess": self.ess,
            "tail_probability": self.tail_probability,
            "tail_se": self.tail_se,
            "tail_ci_width": self.tail_ci_width,
            "plain_equivalent_evals": self.plain_equivalent_evals,
            "saving": self.saving,
        }

    def format(self) -> str:
        return (f"{self.estimator:<16} golden={self.golden_evals:<5d} "
                f"P(tail)={self.tail_probability:9.2e} "
                f"+/-{self.tail_ci_width:8.2e} "
                f"plain-equiv={self.plain_equivalent_evals:10.0f} "
                f"saving={self.saving:7.1f}x "
                f"({self.wall_s:.1f} s)")


def _bench_entry(estimator: str, line, model, draws: int,
                 threshold_s: float, seed: int) -> YieldBenchEntry:
    from repro.signoff.variation import monte_carlo_line_delay
    from repro.units import ps

    started = time.perf_counter()
    result = monte_carlo_line_delay(
        line, ps(REFERENCE_SLEW_PS), samples=draws, seed=seed,
        workers=1, engine="golden", model=model, estimator=estimator,
        critical_delay=threshold_s, prepass_samples=PREPASS_SAMPLES)
    wall = time.perf_counter() - started
    tail = result.tail_probability(threshold_s)
    report = result.report
    return YieldBenchEntry(
        estimator=estimator,
        draws=len(result.samples),
        golden_evals=report.golden_evals,
        model_evals=report.model_evals,
        wall_s=wall,
        mean_ps=result.mean * 1e12,
        se_ps=report.standard_error * 1e12,
        ess=report.ess,
        tail_probability=tail.probability,
        tail_se=tail.standard_error,
        tail_ci_width=2.0 * tail.ci_half_width,
        plain_equivalent_evals=tail.plain_equivalent_evals,
    )


def run_yield_bench(node: str = "90nm", quick: bool = False,
                    samples: Optional[int] = None, seed: int = 2010,
                    output: str = "BENCH_yield.json",
                    history: Optional[str] = None
                    ) -> "Tuple[int, Dict[str, Any]]":
    """Run the tail-yield bench, write ``output``, return
    ``(status, report)``.

    Status is 0 when the importance-sampling estimator achieves at
    least :data:`MIN_IMPORTANCE_SAVING` plain-equivalent draws per
    golden evaluation, 1 otherwise.  Like the kernels bench, the run
    appends one record to the benchmark registry history.
    """
    from repro import bench_registry
    from repro.experiments.suite import ModelSuite
    from repro.runtime.manifest import run_environment, utc_timestamp
    from repro.signoff.extraction import extract_buffered_line
    from repro.signoff.variation import monte_carlo_line_delay
    from repro.units import mm, ps

    if samples is None:
        samples = QUICK_DRAWS if quick else DEFAULT_DRAWS
    suite = ModelSuite.for_node(node)
    model = suite.proposed
    line = extract_buffered_line(model.tech, model.config,
                                 mm(REFERENCE_LENGTH_MM),
                                 REFERENCE_REPEATERS, REFERENCE_SIZE)

    # Calibrate the 3-sigma threshold from the plain golden run, so
    # every estimator answers the same tail question.
    started = time.perf_counter()
    plain_result = monte_carlo_line_delay(
        line, ps(REFERENCE_SLEW_PS), samples=samples, seed=seed,
        workers=1, engine="golden", estimator="plain")
    plain_wall = time.perf_counter() - started
    threshold = plain_result.three_sigma_delay()
    plain_tail = plain_result.tail_probability(threshold)
    plain_report = plain_result.report
    entries: List[YieldBenchEntry] = [YieldBenchEntry(
        estimator="plain",
        draws=len(plain_result.samples),
        golden_evals=plain_report.golden_evals,
        model_evals=plain_report.model_evals,
        wall_s=plain_wall,
        mean_ps=plain_result.mean * 1e12,
        se_ps=plain_report.standard_error * 1e12,
        ess=plain_report.ess,
        tail_probability=plain_tail.probability,
        tail_se=plain_tail.standard_error,
        tail_ci_width=2.0 * plain_tail.ci_half_width,
        plain_equivalent_evals=plain_tail.plain_equivalent_evals,
    )]
    for estimator in BENCH_ESTIMATORS[1:]:
        entries.append(_bench_entry(estimator, line, model, samples,
                                    threshold, seed))

    report: Dict[str, Any] = {
        "schema": YIELD_SCHEMA,
        "generated_at": utc_timestamp(),
        "node": node,
        "quick": quick,
        "line": {
            "length_mm": REFERENCE_LENGTH_MM,
            "repeaters": REFERENCE_REPEATERS,
            "size": REFERENCE_SIZE,
            "input_slew_ps": REFERENCE_SLEW_PS,
        },
        "threshold_ps": threshold * 1e12,
        "seed": seed,
        "env": run_environment(),
        "results": [entry.to_payload() for entry in entries],
    }
    with open(output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    record = bench_registry.build_record(
        "yield", node=node, quick=quick,
        config={"node": node, "quick": quick, "samples": samples,
                "seed": seed},
        samples=[bench_registry.BenchSample(
            name=f"{entry.estimator}.wall", value=entry.wall_s,
            se=0.0, n=entry.draws) for entry in entries],
        generated_at=report["generated_at"])
    history_path = bench_registry.append_record(record, history)
    report["history_path"] = str(history_path)
    # Human-readable lines for the CLI; not part of the JSON artifact.
    report["formatted"] = [
        f"3-sigma tail threshold: {threshold * 1e12:.1f} ps "
        f"(plain mean {plain_result.mean * 1e12:.1f} ps)",
        *[entry.format() for entry in entries],
    ]
    importance = next(entry for entry in entries
                      if entry.estimator == "importance")
    status = 0 if importance.saving >= MIN_IMPORTANCE_SAVING else 1
    return status, report
