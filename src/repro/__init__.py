"""Reproduction package root."""

__version__ = "1.0.0"
