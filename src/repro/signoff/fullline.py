"""Whole-line golden evaluation in a single circuit.

The stage-based golden evaluator (:mod:`repro.signoff.golden`) breaks
the buffered line at repeater inputs and re-launches each stage with an
ideal ramp of the measured slew — the abstraction every static timer
makes.  This module provides the even stronger reference used to
validate *that* abstraction: the entire line — every repeater and every
distributed wire segment — simulated as one nonlinear circuit, with no
ramp re-launching anywhere.

At ~10 nodes per stage the monolithic circuit stays small enough for
the dense MNA solver, so this is practical for the line lengths of
Table II.  The cross-check (``tests/signoff/test_fullline.py``) shows
the stage decomposition tracks the monolithic simulation to within a
few percent, which is the justification for using the fast stage-based
flow as the Table II reference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.signoff.extraction import ExtractedLine
from repro.spice.elements import ramp
from repro.spice.netlist import Circuit
from repro.spice.transient import simulate_transient

#: RC sections per wire segment in the monolithic circuit.  Fewer than
#: the stage-based flow's eight keeps the node count moderate; four
#: sections keep the distributed-line error under ~1%.
FULLLINE_SEGMENTS = 4


@dataclass(frozen=True)
class FullLineResult:
    """Monolithic simulation outcome."""

    total_delay: float
    output_slew: float
    node_count: int


def build_full_line_circuit(
    line: ExtractedLine,
    input_slew: float,
    miller_factor: Optional[float] = None,
) -> "tuple[Circuit, float]":
    """The whole buffered line as one netlist.

    ``input_slew`` is in seconds.  Returns the circuit and a suggested
    stop time.  The line input node is ``in`` and the far-end
    (receiver input) node is ``out``.
    """
    if miller_factor is None:
        miller_factor = line.config.delay_miller
    tech = line.tech
    vdd = tech.vdd

    circuit = Circuit(f"fullline_{tech.name}")
    circuit.add_supply("vdd", vdd)
    start = 0.1 * input_slew + 1e-12
    circuit.add_voltage_source("in", ramp(0.0, vdd, start, input_slew))

    elmore_total = 0.0
    previous = "in"
    for index, stage in enumerate(line.stages):
        wn, wp = tech.inverter_widths(stage.driver_size)
        drive = f"s{index}_drv"
        out = ("out" if index == line.num_repeaters - 1
               else f"s{index}_out")
        circuit.add_inverter(previous, drive, "vdd", tech.nmos,
                             tech.pmos, wn, wp, vdd)
        wire_cap = stage.wire.total_cap(miller_factor)
        circuit.add_rc_ladder(drive, out, stage.wire.resistance,
                              wire_cap, FULLLINE_SEGMENTS,
                              prefix=f"s{index}")
        previous = out

        overdrive = max(vdd - tech.nmos.vth, 0.2 * vdd)
        drive_resistance = vdd / (tech.nmos.k_sat * wn
                                  * overdrive**tech.nmos.alpha)
        elmore_total += (drive_resistance
                         * (wire_cap + line.stage_load_cap(index))
                         + stage.wire.resistance
                         * (0.5 * wire_cap
                            + line.stage_load_cap(index)))
    circuit.add_capacitor("out", "0", line.receiver_cap)

    stop_time = start + input_slew + 10.0 * elmore_total + 50e-12
    return circuit, stop_time


def evaluate_full_line(
    line: ExtractedLine,
    input_slew: float,
    miller_factor: Optional[float] = None,
    max_retries: int = 3,
) -> FullLineResult:
    """Simulate the entire line monolithically and measure its timing,
    driving it with a ramp of ``input_slew`` seconds."""
    circuit, stop_time = build_full_line_circuit(line, input_slew,
                                                 miller_factor)
    vdd = line.tech.vdd
    # An even repeater count leaves the far end at the input's polarity;
    # an odd count inverts it.
    rising_output = line.num_repeaters % 2 == 0
    target = vdd if rising_output else 0.0

    for _attempt in range(max_retries + 1):
        result = simulate_transient(
            circuit, stop_time,
            time_step=stop_time / max(2000, 400 * line.num_repeaters),
            record=["in", "out"])
        out_wave = result.waveform("out")
        if out_wave.settled(target, 0.02 * vdd):
            break
        stop_time *= 2.0
    else:  # pragma: no cover - defensive
        raise RuntimeError("full-line simulation never settled")

    in_wave = result.waveform("in")
    delay = (out_wave.midpoint_time(0.0, vdd)
             - in_wave.midpoint_time(0.0, vdd))
    return FullLineResult(
        total_delay=delay,
        output_slew=out_wave.slew(0.0, vdd),
        node_count=circuit.node_count,
    )
