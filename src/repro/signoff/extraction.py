"""Parasitic extraction for placed buffered lines.

The paper's validation flow places repeaters at equal distances along
the wire with SOC Encounter, routes at the layer's minimum width and
spacing, and extracts the RC parasitics.  This module reproduces that
structure analytically: the geometry is deterministic (uniform
spacing, fixed layer), so the extracted parasitics follow directly
from the technology database.

An :class:`ExtractedLine` is the golden evaluator's input and can be
serialized to SPEF via :mod:`repro.signoff.spef`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.tech.design_styles import WireConfiguration
from repro.tech.parameters import TechnologyParameters


@dataclass(frozen=True)
class WireSegmentParasitics:
    """Lumped totals of one wire segment between two repeaters.

    ``resistance`` in ohms; ``ground_cap`` and ``coupling_cap`` in
    farads.  ``coupling_cap`` is the total lateral capacitance to both
    neighbours (amplification by a Miller factor happens at evaluation
    time, because it depends on the assumed switching scenario, not on
    the layout).
    """

    resistance: float
    ground_cap: float
    coupling_cap: float
    length: float

    def total_cap(self, miller_factor: float) -> float:
        """Effective grounded farads for a switching scenario, given
        a dimensionless ``miller_factor``."""
        return self.ground_cap + miller_factor * self.coupling_cap


@dataclass(frozen=True)
class StageParasitics:
    """One repeater stage: the driver plus the wire segment it drives."""

    driver_size: float
    wire: WireSegmentParasitics


@dataclass(frozen=True)
class ExtractedLine:
    """Extracted view of a uniformly buffered interconnect.

    ``stages[k]`` holds repeater ``k`` (driving) and the wire segment
    between repeater ``k`` and repeater ``k+1`` (or the receiver for the
    last stage).  ``receiver_cap`` is the input capacitance of the
    sink's receiver gate, in farads.
    """

    tech: TechnologyParameters
    config: WireConfiguration
    length: float
    stages: Tuple[StageParasitics, ...]
    receiver_cap: float

    @property
    def num_repeaters(self) -> int:
        return len(self.stages)

    def repeater_input_cap(self, stage_index: int) -> float:
        """Input capacitance (F) of the repeater driving ``stage_index``."""
        wn, wp = self.tech.inverter_widths(
            self.stages[stage_index].driver_size)
        return (self.tech.nmos.c_gate * wn + self.tech.pmos.c_gate * wp)

    def stage_load_cap(self, stage_index: int) -> float:
        """Gate farads loading the far end of stage ``stage_index``."""
        if stage_index + 1 < len(self.stages):
            return self.repeater_input_cap(stage_index + 1)
        return self.receiver_cap

    def total_wire_resistance(self) -> float:
        """Summed wire resistance of every stage, in ohms."""
        return sum(stage.wire.resistance for stage in self.stages)

    def total_wire_cap(self, miller_factor: float) -> float:
        """Summed effective wire farads under a dimensionless
        ``miller_factor``."""
        return sum(stage.wire.total_cap(miller_factor)
                   for stage in self.stages)


def extract_buffered_line(
    tech: TechnologyParameters,
    config: WireConfiguration,
    length: float,
    num_repeaters: int,
    repeater_size: float,
    receiver_size: Optional[float] = None,
) -> ExtractedLine:
    """Extract the parasitics of a uniformly buffered line.

    Parameters
    ----------
    tech:
        Technology node.
    config:
        Wire configuration (layer + design style).
    length:
        Total route length in meters.
    num_repeaters:
        Number of repeaters, all placed at equal spacing starting at the
        source (so each drives a segment of ``length / num_repeaters``).
    repeater_size:
        Drive strength of every repeater (multiple of the minimum
        inverter).
    receiver_size:
        Drive strength of the receiving gate at the sink; defaults to
        the repeater size (a same-size receiver, as in the paper's
        testbench layouts).
    """
    if length <= 0:
        raise ValueError("length must be positive")
    if num_repeaters < 1:
        raise ValueError("need at least one repeater")
    if repeater_size <= 0:
        raise ValueError("repeater_size must be positive")

    segment_length = length / num_repeaters
    r_per_m = config.resistance_per_meter()
    cg_per_m = config.ground_capacitance_per_meter()
    cc_per_m = config.coupling_capacitance_per_meter()

    segment = WireSegmentParasitics(
        resistance=r_per_m * segment_length,
        ground_cap=cg_per_m * segment_length,
        coupling_cap=cc_per_m * segment_length,
        length=segment_length,
    )
    stages = tuple(
        StageParasitics(driver_size=repeater_size, wire=segment)
        for _ in range(num_repeaters)
    )

    if receiver_size is None:
        receiver_size = repeater_size
    wn, wp = tech.inverter_widths(receiver_size)
    receiver_cap = tech.nmos.c_gate * wn + tech.pmos.c_gate * wp

    return ExtractedLine(
        tech=tech,
        config=config,
        length=length,
        stages=stages,
        receiver_cap=receiver_cap,
    )
