"""Monte-Carlo process variation on buffered interconnects.

Corners (:mod:`repro.tech.corners`) shift *every* device together —
the die-to-die component of variation.  Within-die variation perturbs
each repeater independently, and because a buffered line is a chain of
N stages, independent per-stage variations average out: the line's
delay sigma shrinks roughly as ``1/sqrt(N)`` relative to a single
stage.  Corner analysis therefore over-margins long repeated wires —
a well-known effect this module lets you measure with the golden
simulator in the loop.

Sampling model: each repeater instance draws its own multiplicative
perturbations of ``k_sat`` (drive strength) and ``vth`` from normal
distributions with configurable sigmas, using a seeded generator so
experiments are reproducible.

Determinism contract: every Monte-Carlo draw owns an independent RNG
stream spawned from the root seed (``SeedSequence(seed).spawn``), so
the sample vector is bit-identical for any ``workers`` count — the
serial loop and a process pool walk the very same streams.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.runtime import METRICS, parallel_map, span, \
    spawn_seed_sequences
from repro.signoff.extraction import ExtractedLine
from repro.signoff.golden import simulate_stage
from repro.tech.parameters import DeviceParameters, \
    TechnologyParameters

#: Default within-die sigmas (fraction of nominal).
DEFAULT_DRIVE_SIGMA = 0.05
DEFAULT_VTH_SIGMA = 0.03


@dataclass(frozen=True)
class VariationModel:
    """Within-die variation magnitudes."""

    drive_sigma: float = DEFAULT_DRIVE_SIGMA
    vth_sigma: float = DEFAULT_VTH_SIGMA

    def __post_init__(self) -> None:
        if self.drive_sigma < 0 or self.vth_sigma < 0:
            raise ValueError("sigmas must be non-negative")

    def perturb_device(self, device: DeviceParameters,
                       rng: np.random.Generator) -> DeviceParameters:
        drive_factor = float(rng.normal(1.0, self.drive_sigma))
        vth_factor = float(rng.normal(1.0, self.vth_sigma))
        # Clip pathological tail draws to physical values.
        drive_factor = max(drive_factor, 0.5)
        vth_factor = min(max(vth_factor, 0.5), 1.5)
        return dataclasses.replace(
            device,
            k_sat=device.k_sat * drive_factor,
            vth=device.vth * vth_factor,
        )

    def perturb_technology(self, tech: TechnologyParameters,
                           rng: np.random.Generator
                           ) -> TechnologyParameters:
        """One device-instance view: both flavours independently drawn."""
        return dataclasses.replace(
            tech,
            nmos=self.perturb_device(tech.nmos, rng),
            pmos=self.perturb_device(tech.pmos, rng),
        )


@dataclass(frozen=True)
class VariationResult:
    """Monte-Carlo delay statistics of one buffered line."""

    samples: Tuple[float, ...]
    nominal_delay: float

    @property
    def mean(self) -> float:
        """Sample mean delay, in seconds."""
        return float(np.mean(self.samples))

    @property
    def sigma(self) -> float:
        """Sample standard deviation, in seconds."""
        return float(np.std(self.samples))

    @property
    def sigma_over_mean(self) -> float:
        """Relative spread sigma/mean, dimensionless."""
        return self.sigma / self.mean

    def three_sigma_delay(self) -> float:
        """The statistical 3-sigma timing bound, in seconds."""
        return self.mean + 3.0 * self.sigma

    def format(self) -> str:
        return (f"{len(self.samples)} samples: mean "
                f"{self.mean * 1e12:.1f} ps, sigma "
                f"{self.sigma * 1e12:.2f} ps "
                f"({self.sigma_over_mean * 100:.2f}%), 3-sigma "
                f"{self.three_sigma_delay() * 1e12:.1f} ps "
                f"(nominal {self.nominal_delay * 1e12:.1f} ps)")


def sample_line_delay(
    line: ExtractedLine,
    input_slew: float,
    variation: VariationModel,
    rng: np.random.Generator,
) -> float:
    """One Monte-Carlo draw (seconds): every repeater independently
    perturbed, the line driven with an ``input_slew``-second ramp.

    Each stage is simulated with its own perturbed device set; slews
    propagate through the perturbed chain exactly as in the golden
    flow (no periodicity shortcut — every stage is unique here).
    """
    slew = input_slew
    rising = True
    total = 0.0
    for index, stage in enumerate(line.stages):
        perturbed = variation.perturb_technology(line.tech, rng)
        timing = simulate_stage(
            perturbed,
            stage.driver_size,
            stage.wire.resistance,
            stage.wire.total_cap(line.config.delay_miller),
            line.stage_load_cap(index),
            slew,
            rising,
        )
        total += timing.delay
        slew = timing.output_slew
        rising = not rising
    return total


def _sample_task(task: "Tuple[ExtractedLine, float, VariationModel, "
                 "np.random.SeedSequence]") -> float:
    """One Monte-Carlo draw on its own spawned stream (pool-safe)."""
    line, input_slew, variation, seed_sequence = task
    METRICS.count("variation.samples")
    with METRICS.timer("variation.sample"):
        return sample_line_delay(line, input_slew, variation,
                                 np.random.default_rng(seed_sequence))


def monte_carlo_line_delay(
    line: ExtractedLine,
    input_slew: float,
    samples: int = 30,
    variation: Optional[VariationModel] = None,
    seed: int = 2010,
    workers: Optional[int] = None,
) -> VariationResult:
    """Monte-Carlo delay distribution of a buffered line driven with
    a ramp of ``input_slew`` seconds.

    Deterministic for a given ``seed`` regardless of ``workers``:
    stream 0 of the spawned root sequence computes the nominal delay
    (variation disabled, sigma 0, sharing the same flow) and stream
    ``i`` computes draw ``i``, whether it runs here or in a pool.
    """
    if samples < 2:
        raise ValueError("need at least two samples")
    if variation is None:
        variation = VariationModel()
    streams = spawn_seed_sequences(seed, samples + 1)

    with span("signoff.monte_carlo", samples=samples, seed=seed,
              stages=len(line.stages)) as batch:
        nominal = _sample_task((line, input_slew,
                                VariationModel(0.0, 0.0), streams[0]))
        tasks = [(line, input_slew, variation, stream)
                 for stream in streams[1:]]
        draws: List[float] = parallel_map(_sample_task, tasks,
                                          workers=workers)
        batch.annotate(nominal_delay=nominal)
    return VariationResult(samples=tuple(draws),
                           nominal_delay=nominal)
