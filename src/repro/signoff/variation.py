"""Monte-Carlo process variation on buffered interconnects.

Corners (:mod:`repro.tech.corners`) shift *every* device together —
the die-to-die component of variation.  Within-die variation perturbs
each repeater independently, and because a buffered line is a chain of
N stages, independent per-stage variations average out: the line's
delay sigma shrinks roughly as ``1/sqrt(N)`` relative to a single
stage.  Corner analysis therefore over-margins long repeated wires —
a well-known effect this module lets you measure with the golden
simulator in the loop.

Sampling model: each repeater instance draws its own multiplicative
perturbations of ``k_sat`` (drive strength) and ``vth`` from normal
distributions with configurable sigmas, using a seeded generator so
experiments are reproducible.

Determinism contract: every Monte-Carlo draw owns an independent RNG
stream spawned from the root seed (``SeedSequence(seed).spawn``), so
the sample vector is bit-identical for any ``workers`` count — the
serial loop and a process pool walk the very same streams.

Three evaluation engines share that contract:

* ``"golden"`` (default) — the nonlinear transient simulator, one
  stage simulation per perturbed repeater; the reference.
* ``"model"`` — the closed-form proposed model, with variation mapped
  into an effective transition width through the alpha-power law
  (:func:`_effective_width`); one scalar stage chain per draw.
* ``"kernel"`` — the same closed-form mapping evaluated by
  :func:`repro.kernels.variation.line_delay_batch`: all draws become
  lanes of one batched call.  Factor matrices are drawn from the very
  same spawned streams, so the sample vector is bit-identical to the
  ``"model"`` engine for any ``workers`` count.

Orthogonally to the engine, the ``estimator`` argument picks the
sampling strategy (:mod:`repro.signoff.estimators`): plain Monte
Carlo, model-steered importance sampling, scrambled-Sobol
quasi-Monte Carlo, or a model control variate — all returning the
same result type extended with a standard-error/ESS report, all
honoring the determinism contract above.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.models.wire import effective_load_capacitance, wire_delay
from repro.runtime import METRICS, span
from repro.signoff.extraction import ExtractedLine
from repro.signoff.golden import simulate_stage
from repro.tech.parameters import DeviceParameters, \
    TechnologyParameters

#: Default within-die sigmas (fraction of nominal).
DEFAULT_DRIVE_SIGMA = 0.05
DEFAULT_VTH_SIGMA = 0.03

#: Evaluation engines accepted by :func:`monte_carlo_line_delay`.
ENGINES = ("golden", "model", "kernel")

#: Minimum gate overdrive under perturbation, as a fraction of vdd.
OVERDRIVE_FLOOR = 0.05


@dataclass(frozen=True)
class VariationModel:
    """Within-die variation magnitudes."""

    drive_sigma: float = DEFAULT_DRIVE_SIGMA
    vth_sigma: float = DEFAULT_VTH_SIGMA

    def __post_init__(self) -> None:
        if self.drive_sigma < 0 or self.vth_sigma < 0:
            raise ValueError("sigmas must be non-negative")

    def perturb_device(self, device: DeviceParameters,
                       rng: np.random.Generator) -> DeviceParameters:
        drive_factor = float(rng.normal(1.0, self.drive_sigma))
        vth_factor = float(rng.normal(1.0, self.vth_sigma))
        # Clip pathological tail draws to physical values.
        drive_factor = max(drive_factor, 0.5)
        vth_factor = min(max(vth_factor, 0.5), 1.5)
        return dataclasses.replace(
            device,
            k_sat=device.k_sat * drive_factor,
            vth=device.vth * vth_factor,
        )

    def perturb_technology(self, tech: TechnologyParameters,
                           rng: np.random.Generator
                           ) -> TechnologyParameters:
        """One device-instance view: both flavours independently drawn."""
        return dataclasses.replace(
            tech,
            nmos=self.perturb_device(tech.nmos, rng),
            pmos=self.perturb_device(tech.pmos, rng),
        )


@dataclass(frozen=True)
class VariationResult:
    """Monte-Carlo delay statistics of one buffered line."""

    samples: Tuple[float, ...]
    nominal_delay: float

    @property
    def mean(self) -> float:
        """Sample mean delay, in seconds."""
        return float(np.mean(self.samples))

    @property
    def sigma(self) -> float:
        """Sample standard deviation, in seconds."""
        return float(np.std(self.samples))

    @property
    def sigma_over_mean(self) -> float:
        """Relative spread sigma/mean, dimensionless."""
        return self.sigma / self.mean

    def three_sigma_delay(self) -> float:
        """The statistical 3-sigma timing bound, in seconds."""
        return self.mean + 3.0 * self.sigma

    def format(self) -> str:
        return (f"{len(self.samples)} samples: mean "
                f"{self.mean * 1e12:.1f} ps, sigma "
                f"{self.sigma * 1e12:.2f} ps "
                f"({self.sigma_over_mean * 100:.2f}%), 3-sigma "
                f"{self.three_sigma_delay() * 1e12:.1f} ps "
                f"(nominal {self.nominal_delay * 1e12:.1f} ps)")


def sample_line_delay(
    line: ExtractedLine,
    input_slew: float,
    variation: VariationModel,
    rng: np.random.Generator,
) -> float:
    """One Monte-Carlo draw (seconds): every repeater independently
    perturbed, the line driven with an ``input_slew``-second ramp.

    Each stage is simulated with its own perturbed device set; slews
    propagate through the perturbed chain exactly as in the golden
    flow (no periodicity shortcut — every stage is unique here).
    """
    slew = input_slew
    rising = True
    total = 0.0
    for index, stage in enumerate(line.stages):
        perturbed = variation.perturb_technology(line.tech, rng)
        timing = simulate_stage(
            perturbed,
            stage.driver_size,
            stage.wire.resistance,
            stage.wire.total_cap(line.config.delay_miller),
            line.stage_load_cap(index),
            slew,
            rising,
        )
        total += timing.delay
        slew = timing.output_slew
        rising = not rising
    return total


def _sample_task(task: "Tuple[ExtractedLine, float, VariationModel, "
                 "np.random.SeedSequence]") -> float:
    """One Monte-Carlo draw on its own spawned stream (pool-safe)."""
    line, input_slew, variation, seed_sequence = task
    METRICS.count("variation.samples")
    with METRICS.timer("variation.sample"):
        return sample_line_delay(line, input_slew, variation,
                                 np.random.default_rng(seed_sequence))


def _clip_drive(factor: float) -> float:
    """Clip a drive-strength draw to physical values (golden's rule)."""
    return max(factor, 0.5)


def _clip_vth(factor: float) -> float:
    """Clip a threshold-voltage draw to physical values."""
    return min(max(factor, 0.5), 1.5)


def _effective_width(device: DeviceParameters, width: float, vdd: float,
                     drive_factor: float, vth_factor: float) -> float:
    """Effective transition width (m) of a perturbed device.

    Maps the multiplicative (drive, vth) perturbations into the
    closed-form model's width argument via the alpha-power law: drive
    current is linear in width, and the vth shift scales the gate
    overdrive (floored at ``OVERDRIVE_FLOOR * vdd``).  The batched
    mirror is :func:`repro.kernels.variation.effective_widths`.
    """
    overdrive = max(vdd - device.vth * vth_factor, OVERDRIVE_FLOOR * vdd)
    nominal_overdrive = vdd - device.vth
    # np.power rather than the builtin ** so this stays bit-identical
    # to the batched kernel (libm pow can differ in the last ulp).
    return (width * drive_factor
            * float(np.power(overdrive / nominal_overdrive,
                             device.alpha)))


def _uniform_geometry(line: ExtractedLine) -> "Tuple[int, float]":
    """(num_repeaters, repeater_size) of a uniformly sized line.

    The closed-form engines evaluate the model's uniform-line formula,
    so every stage must share one driver size.
    """
    sizes = {stage.driver_size for stage in line.stages}
    if len(sizes) != 1:
        raise ValueError(
            "model/kernel engines need a uniformly sized line, got "
            f"driver sizes {sorted(sizes)}")
    return line.num_repeaters, line.stages[0].driver_size


def _model_sample_line_delay(
    model,
    line: ExtractedLine,
    input_slew: float,
    variation: VariationModel,
    rng: np.random.Generator,
) -> float:
    """One closed-form Monte-Carlo draw (seconds).

    Draws the four per-stage factors in the golden sampler's order
    (nMOS drive, nMOS vth, pMOS drive, pMOS vth) so the random stream
    stays comparable, then evaluates the perturbed closed-form stage
    chain.  This is the scalar golden reference for the batched
    ``"kernel"`` engine.
    """
    count, size = _uniform_geometry(line)
    segment = line.length / count
    repeater = model.repeater_model()
    input_cap = repeater.input_capacitance(size)
    wn, wp = model.tech.inverter_widths(size)
    slew = input_slew
    rising = True
    total = 0.0
    inverting = model.calibration.kind.inverting
    for stage in range(count):
        n_drive = _clip_drive(float(rng.normal(1.0,
                                               variation.drive_sigma)))
        n_vth = _clip_vth(float(rng.normal(1.0, variation.vth_sigma)))
        p_drive = _clip_drive(float(rng.normal(1.0,
                                               variation.drive_sigma)))
        p_vth = _clip_vth(float(rng.normal(1.0, variation.vth_sigma)))
        next_cap = input_cap if stage + 1 < count else line.receiver_cap
        load = effective_load_capacitance(model.config, segment,
                                          next_cap)
        d_wire = wire_delay(model.config, segment, next_cap)
        direction = model.calibration.direction(rising)
        if rising:
            device, width = model.tech.pmos, wp
            drive_factor, vth_factor = p_drive, p_vth
        else:
            device, width = model.tech.nmos, wn
            drive_factor, vth_factor = n_drive, n_vth
        wr = _effective_width(device, width, model.tech.vdd,
                              drive_factor, vth_factor)
        total += direction.delay(slew, wr, load) + d_wire
        slew = direction.output_slew(load, slew, wr)
        if inverting:
            rising = not rising
    return total


def _model_sample_task(task) -> float:
    """One closed-form draw on its own spawned stream (pool-safe)."""
    model, line, input_slew, variation, seed_sequence = task
    METRICS.count("variation.samples")
    with METRICS.timer("variation.sample"):
        return _model_sample_line_delay(
            model, line, input_slew, variation,
            np.random.default_rng(seed_sequence))


def _closed_form_base(model):
    """The plain closed-form model beneath ``model``.

    The LUT-served wrapper
    (:class:`repro.luts.model.LUTInterconnectModel`) carries its
    calibrated base model at ``.base``; anything else passes through
    unchanged.  The batched variation kernels replay the exact stage
    chain, so they always want the base — the LUT tier accelerates
    the *model engine* through its own first-order lane instead
    (:func:`_lut_monte_carlo`).
    """
    from repro.kernels.lut import serves_model
    if serves_model(model):
        return model.base
    return model


def _lut_monte_carlo(
    model,
    line: ExtractedLine,
    input_slew: float,
    variation: VariationModel,
    streams: "List[np.random.SeedSequence]",
) -> "Optional[Tuple[float, List[float]]]":
    """(nominal, draws) through the LUT first-order lane, or ``None``.

    Serves only LUT-backed models whose tables cover this line (see
    :meth:`repro.luts.model.LUTInterconnectModel.mc_response`); the
    caller falls back to the scalar closed-form chain otherwise.
    Walks exactly the streams the scalar engines walk — stream 0 is
    the nominal — so the factor draws stay aligned with the ``model``
    engine; the per-draw stage chain is replaced by the tabulated
    nominal plus a fused first-order response
    (:func:`repro.kernels.lut.line_delay_first_order`), which makes
    the draw loop O(samples) instead of O(samples * stages) and
    worker-count independent by construction.
    """
    from repro.kernels.lut import line_delay_first_order, serves_model
    from repro.signoff.estimators.engines import (
        factor_matrix,
        standard_normal_rows,
    )

    if not serves_model(model):
        return None
    response = model.mc_response(line, input_slew)
    if response is None:
        return None
    nominal_delay, weights = response
    count, _ = _uniform_geometry(line)
    z = standard_normal_rows(streams, 4 * count)
    factors = factor_matrix(z, variation, count, nominal_first=True)
    METRICS.count("variation.samples", len(streams))
    delays = line_delay_first_order(nominal_delay, weights, factors)
    return float(delays[0]), [float(d) for d in delays[1:]]


def _kernel_monte_carlo(
    model,
    line: ExtractedLine,
    input_slew: float,
    variation: VariationModel,
    streams: "List[np.random.SeedSequence]",
) -> "Tuple[float, List[float]]":
    """(nominal, draws) via one batched kernel call.

    Walks exactly the streams the scalar engines walk: stream ``i``'s
    generator emits the same ``4 * stages`` normal draws (vectorized
    draws from one generator are bit-identical to sequential scalar
    draws), so the factor matrix — and therefore the sample vector —
    matches the ``"model"`` engine bit-for-bit.
    """
    from repro.kernels.variation import line_delay_batch
    from repro.signoff.estimators.engines import (
        factor_matrix,
        standard_normal_rows,
    )

    count, size = _uniform_geometry(line)
    # Generator.normal(loc, scale) computes loc + scale * z in exactly
    # the order factor_matrix applies, so building the factor matrix
    # from the stacked raw draws keeps every factor bit-identical to
    # per-stream normal() calls.  Stream 0 is the nominal: the
    # nominal_first row is forced to 1.0 (a sigma-0 draw).
    z = standard_normal_rows(streams, 4 * count)
    factors = factor_matrix(z, variation, count, nominal_first=True)
    METRICS.count("variation.samples", len(streams))
    delays = line_delay_batch(_closed_form_base(model), line.length,
                              count, size, line.receiver_cap,
                              input_slew, factors)
    return float(delays[0]), [float(d) for d in delays[1:]]


def _require_closed_form_model(model) -> None:
    from repro.kernels.line import supports_model
    if model is None:
        raise ValueError(
            "the 'model'/'kernel' engines and the model-backed "
            "estimators (importance sampling, control variates) need "
            "the closed-form model; pass "
            "model=BufferedInterconnectModel(...)")
    if not supports_model(_closed_form_base(model)):
        raise TypeError(
            "the closed-form engines and estimators evaluate the "
            "plain BufferedInterconnectModel formula (directly or "
            "beneath the LUT-served wrapper); got "
            f"{type(model).__name__}")


#: Sample-doubling rounds a ``target_ci`` request may spend before
#: returning the best interval reached so far.
MAX_TARGET_ROUNDS = 6


def monte_carlo_line_delay(
    line: ExtractedLine,
    input_slew: float,
    samples: int = 30,
    variation: Optional[VariationModel] = None,
    seed: int = 2010,
    workers: Optional[int] = None,
    engine: str = "golden",
    model=None,
    estimator: str = "plain",
    critical_delay: Optional[float] = None,
    target_ci: Optional[float] = None,
    lanes: int = 8,
    beta: Optional[float] = None,
    prepass_samples: int = 4096,
) -> VariationResult:
    """Monte-Carlo delay distribution of a buffered line driven with
    a ramp of ``input_slew`` seconds.

    Deterministic for a given ``seed`` regardless of ``workers``:
    stream 0 of the spawned root sequence computes the nominal delay
    (variation disabled, sigma 0, sharing the same flow) and stream
    ``i`` computes draw ``i``, whether it runs here or in a pool.

    ``engine`` selects the evaluator (see the module docstring);
    ``"model"`` and ``"kernel"`` require the matching closed-form
    ``model`` and a uniformly sized ``line``, and produce identical
    sample vectors to each other.

    ``estimator`` selects the sampling strategy (see
    :mod:`repro.signoff.estimators`): ``"plain"`` reproduces the
    historical flow bit-for-bit; ``"importance"``/``"importance-sn"``
    shift the draws toward delays beyond ``critical_delay`` seconds
    (default: the model's mean + 3 sigma) with likelihood-ratio
    reweighting; ``"qmc"`` spreads ``lanes`` scrambled-Sobol lanes;
    ``"control-variate"`` corrects the mean by the model's known
    expectation with coefficient ``beta`` (``None`` = estimated).
    The model-backed estimators spend ``prepass_samples`` cheap
    kernel draws and therefore need ``model`` even on the golden
    engine.  The result is a :class:`VariationResult` extended with a
    standard-error / effective-sample-size report.

    ``target_ci`` (seconds) asks for a 95% confidence interval on the
    mean no wider than ``2 * target_ci``: the run doubles ``samples``
    (up to ``MAX_TARGET_ROUNDS`` times) until the half-width reaches
    the target.  Doubling re-spawns a stream prefix, so the escalation
    is as deterministic as a single run.

    Fault tolerance: because every draw owns its stream, a worker
    that dies mid-sweep is survived — ``parallel_map`` re-runs the
    unfinished draws and the distribution is bit-identical to an
    undisturbed run (``faults.worker_crash`` counts the recovery). A
    draw that *fails* raises :class:`repro.runtime.TaskError` naming
    the draw's task index under the ``variation.*`` labels above.
    """
    # Validate the requested names before anything touches the line
    # geometry or the model: a typo'd estimator on a non-uniform line
    # must name the typo, not the geometry.
    from repro.signoff.estimators import (
        ESTIMATORS,
        EstimationRequest,
        MODEL_BACKED,
        get_estimator,
    )
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}; expected one of "
                         f"{ENGINES}")
    if estimator not in ESTIMATORS:
        raise ValueError(f"unknown estimator {estimator!r}; expected "
                         f"one of {ESTIMATORS}")
    if samples < 2:
        raise ValueError("need at least two samples")
    if lanes < 1:
        raise ValueError("lanes must be >= 1")
    if prepass_samples < 2:
        raise ValueError("prepass_samples must be >= 2")
    if target_ci is not None and target_ci <= 0:
        raise ValueError("target_ci must be positive")
    if engine != "golden" or estimator in MODEL_BACKED:
        _require_closed_form_model(model)
    if variation is None:
        variation = VariationModel()

    run = get_estimator(estimator)
    request = EstimationRequest(
        line=line, input_slew=input_slew, samples=samples,
        variation=variation, seed=seed, workers=workers,
        engine=engine, model=model, critical_delay=critical_delay,
        lanes=lanes, beta=beta, prepass_samples=prepass_samples)
    with span("signoff.monte_carlo", samples=samples, seed=seed,
              stages=len(line.stages), engine=engine,
              estimator=estimator) as batch:
        with METRICS.observed("mc.batch_seconds"):
            result = run(request)
        from repro.signoff.estimators import CI_Z
        while (target_ci is not None
               and request.samples < samples * 2 ** MAX_TARGET_ROUNDS
               and CI_Z * result.standard_error > target_ci):
            request = dataclasses.replace(request,
                                          samples=request.samples * 2)
            METRICS.count("mc.target_rounds")
            with METRICS.observed("mc.batch_seconds"):
                result = run(request)
        METRICS.count(f"mc.estimator.{estimator}")
        report = result.report
        batch.annotate(nominal_delay=result.nominal_delay)
        if report is not None:
            METRICS.count("mc.ess", int(round(report.ess)))
            METRICS.count("mc.golden_evals", report.golden_evals)
            METRICS.count("mc.model_evals", report.model_evals)
            batch.annotate(standard_error=report.standard_error,
                           ess=report.ess)
    return result
