"""Golden sign-off evaluation (the PrimeTime SI substitute).

The paper validates its closed-form models against an industry sign-off
timer running on extracted layout parasitics.  This package provides the
equivalent reference flow:

* :mod:`repro.signoff.extraction` — builds the parasitics of a placed
  buffered line (uniformly spaced repeaters, per-segment distributed RC
  with lateral coupling) straight from the technology geometry, playing
  the role of the SOC Encounter place/route/extract step.
* :mod:`repro.signoff.spef` — SPEF-like parasitic exchange format.
* :mod:`repro.signoff.awe` — RC-tree moment computation and a two-pole
  AWE delay estimate (the family of methods sign-off timers use).
* :mod:`repro.signoff.golden` — the golden delay/slew evaluation:
  stage-by-stage nonlinear transient simulation of the full line.
"""

from repro.signoff.extraction import (
    ExtractedLine,
    StageParasitics,
    WireSegmentParasitics,
    extract_buffered_line,
)
from repro.signoff.golden import GoldenResult, evaluate_buffered_line
from repro.signoff.awe import (
    RCTree,
    elmore_delay,
    rc_tree_moments,
    two_pole_delay,
)
from repro.signoff.spef import dumps_spef, loads_spef

__all__ = [
    "ExtractedLine",
    "StageParasitics",
    "WireSegmentParasitics",
    "extract_buffered_line",
    "GoldenResult",
    "evaluate_buffered_line",
    "RCTree",
    "elmore_delay",
    "rc_tree_moments",
    "two_pole_delay",
    "dumps_spef",
    "loads_spef",
]
